#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== uniq-analyzer (determinism / panic-safety / unsafe-audit) =="
# Hard gate: exits nonzero on any unsuppressed error-severity finding.
# JSON output keeps the failure machine-readable for tooling on top.
cargo run -q -p uniq-analyzer -- check --format json

echo "== cargo test (UNIQ_THREADS=1) =="
UNIQ_THREADS=1 cargo test -q --workspace

echo "== cargo test (UNIQ_THREADS=4) =="
UNIQ_THREADS=4 cargo test -q --workspace

echo "CI green."
