#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "CI green."
