#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== uniq-analyzer (determinism / panic-safety / unsafe-audit) =="
# Hard gate: exits nonzero on any unsuppressed error-severity finding.
# JSON output keeps the failure machine-readable for tooling on top.
cargo run -q -p uniq-analyzer -- check --format json

echo "== cargo test (UNIQ_THREADS=1) =="
UNIQ_THREADS=1 cargo test -q --workspace

echo "== cargo test (UNIQ_THREADS=4) =="
UNIQ_THREADS=4 cargo test -q --workspace

echo "== release build (profiling + baseline gate binaries) =="
cargo build --release -q -p uniq-cli -p uniq-bench

echo "== profile smoke (uniq profile wrapper + stage coverage) =="
ci_tmp="$(mktemp -d)"
trap 'rm -rf "$ci_tmp"' EXIT
target/release/uniq profile personalize --seed 6 --out "$ci_tmp/hrtf" \
  --anechoic --grid 15 \
  --profile-out "$ci_tmp/profile.json" --flame-out "$ci_tmp/flame.txt" \
  > "$ci_tmp/profile.log"
grep -q "per-stage wall clock:" "$ci_tmp/profile.log"
target/release/baseline verify-profile "$ci_tmp/profile.json"
test -s "$ci_tmp/flame.txt"

echo "== baseline determinism (two runs, bit-identical quality) =="
target/release/baseline run --out "$ci_tmp/fresh_a.json"
target/release/baseline run --out "$ci_tmp/fresh_b.json"
target/release/baseline quality-identical "$ci_tmp/fresh_a.json" "$ci_tmp/fresh_b.json"

echo "== baseline compare vs BENCH_BASELINE.json (UNIQ_THREADS=1) =="
UNIQ_THREADS=1 target/release/baseline compare \
  --baseline BENCH_BASELINE.json --fresh "$ci_tmp/fresh_a.json"

echo "== baseline compare vs BENCH_BASELINE.json (UNIQ_THREADS=4) =="
UNIQ_THREADS=4 target/release/baseline compare --baseline BENCH_BASELINE.json

echo "CI green."
