#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== uniq-analyzer (line-local rules + call-graph dataflow, 10s budget) =="
# Hard gate: exits nonzero on any unsuppressed error-severity finding,
# line-local or interprocedural (determinism taint, panic reachability,
# lock order, hot-path allocation). The run self-times via the obs
# stopwatch and warns on stderr past the wall-time budget; the JSON
# findings report (schema 1) lands in bench_results/ for tooling.
cargo run -q -p uniq-analyzer -- check \
  --out bench_results/analyzer_findings.json --budget-seconds 10

echo "== cargo test (UNIQ_THREADS=1) =="
UNIQ_THREADS=1 cargo test -q --workspace

echo "== cargo test (UNIQ_THREADS=4) =="
UNIQ_THREADS=4 cargo test -q --workspace

echo "== release build (profiling + baseline gate binaries) =="
cargo build --release -q -p uniq-cli -p uniq-bench

echo "== profile smoke (uniq profile wrapper + stage coverage) =="
ci_tmp="$(mktemp -d)"
trap 'rm -rf "$ci_tmp"' EXIT
target/release/uniq profile personalize --seed 6 --out "$ci_tmp/hrtf" \
  --anechoic --grid 15 \
  --profile-out "$ci_tmp/profile.json" --flame-out "$ci_tmp/flame.txt" \
  > "$ci_tmp/profile.log"
grep -q "per-stage wall clock:" "$ci_tmp/profile.log"
target/release/baseline verify-profile "$ci_tmp/profile.json"
test -s "$ci_tmp/flame.txt"

echo "== memprof smoke (allocation attribution, 1 and 4 threads) =="
# The memprof wrapper must attribute allocations to pipeline stages at
# any pool size, write the snapshot JSON, and compose with the profiler
# (alloc columns in the latency table).
for threads in 1 4; do
  UNIQ_THREADS=$threads target/release/uniq memprof personalize --seed 6 \
    --out "$ci_tmp/mp_hrtf" --anechoic --grid 15 \
    --alloc-out "$ci_tmp/alloc_$threads.json" > "$ci_tmp/memprof.log"
  grep -q "per-stage allocations:" "$ci_tmp/memprof.log"
  grep -q "fusion" "$ci_tmp/memprof.log"
  test -s "$ci_tmp/alloc_$threads.json"
done
target/release/uniq memprof profile personalize --seed 6 \
  --out "$ci_tmp/mp_hrtf" --anechoic --grid 15 > "$ci_tmp/memprof_prof.log"
grep -q "alloc-b" "$ci_tmp/memprof_prof.log"

echo "== allocator overhead (memprof-wrapped vs bare personalize) =="
# The counting allocator must be effectively free: even with recording
# on, the wrapped run stays near the bare run (which pays one relaxed
# atomic load per allocation). Best-of-3 to shave scheduler noise; the
# 5% target is warn-tier, 25% is the hard CI ceiling.
best_of_3_ns() {
  local best=""
  for _ in 1 2 3; do
    local t0 t1 dt
    t0=$(date +%s%N)
    "$@" > /dev/null
    t1=$(date +%s%N)
    dt=$((t1 - t0))
    if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
  done
  echo "$best"
}
bare_ns=$(best_of_3_ns env UNIQ_THREADS=1 target/release/uniq personalize \
  --seed 6 --out "$ci_tmp/ov_hrtf" --anechoic --grid 15)
prof_ns=$(best_of_3_ns env UNIQ_THREADS=1 target/release/uniq memprof personalize \
  --seed 6 --out "$ci_tmp/ov_hrtf" --anechoic --grid 15)
overhead_pct=$(awk -v b="$bare_ns" -v p="$prof_ns" \
  'BEGIN { printf "%.1f", (p - b) * 100.0 / b }')
echo "allocator overhead: ${overhead_pct}% (bare ${bare_ns}ns, memprof ${prof_ns}ns)"
if ! awk -v o="$overhead_pct" 'BEGIN { exit !(o < 25.0) }'; then
  echo "allocator overhead ${overhead_pct}% exceeds the 25% CI ceiling" >&2
  exit 1
fi
awk -v o="$overhead_pct" 'BEGIN { exit !(o < 5.0) }' \
  || echo "warning: allocator overhead ${overhead_pct}% exceeds the 5% target"

echo "== fault-matrix smoke (every fault class, 1 and 4 threads) =="
# Each injectable fault class at its default (preset) intensity must
# degrade gracefully: the wrapped personalize completes with exit 0 and
# prints a populated degradation report, at both pool sizes.
fault_plans="drop@2 truncate:0.5@3 clip:0.35 snr:-12@4 \
  gyro-dropout:0.45:0.05 gyro-sat:12 jitter:0.05 dup@5 reorder@6"
for plan in $fault_plans; do
  for threads in 1 4; do
    UNIQ_THREADS=$threads target/release/uniq faults personalize --seed 6 \
      --anechoic --grid 15 --snr 45 --fault-plan "$plan" \
      > "$ci_tmp/faults.log"
    grep -q "degradation:" "$ci_tmp/faults.log"
  done
done
# A failing wrapped command must propagate its nonzero exit status.
if target/release/uniq faults personalize --seed 6 --anechoic \
  --fault-plan bogus-class >/dev/null 2>&1; then
  echo "faults wrapper swallowed a failure exit status" >&2
  exit 1
fi

echo "== trace-report smoke (causal tree reconstruction, 1 and 4 threads) =="
# A personalize run's JSONL trace must rebuild into a complete causal
# tree (exit 0 = no orphans) whose report names the critical path,
# regardless of pool size.
for threads in 1 4; do
  UNIQ_THREADS=$threads target/release/uniq personalize --seed 6 \
    --out "$ci_tmp/trace_hrtf" --anechoic --grid 15 \
    --metrics-out "$ci_tmp/trace_$threads.jsonl" \
    --telemetry-out "$ci_tmp/telemetry_$threads.prom" > /dev/null
  target/release/uniq trace report "$ci_tmp/trace_$threads.jsonl" \
    > "$ci_tmp/trace_report.log"
  grep -q "critical path:" "$ci_tmp/trace_report.log"
  grep -q "uniq_personalize_ns_count" "$ci_tmp/telemetry_$threads.prom"
done

echo "== store smoke (put/get/verify round trip, 1 and 4 threads) =="
# The content-addressed store must round-trip the personalized HRTF
# bit-exactly: put at both pool sizes lands on the same content key
# (one blob + one dedup hit), get succeeds, verify walks every blob
# clean, and export/import closes the text-format loop.
UNIQ_THREADS=1 target/release/uniq store put --store "$ci_tmp/store" \
  --seed 6 --anechoic --grid 15 --snr 45 --history "$ci_tmp/history.jsonl" \
  > "$ci_tmp/store_put_1.log"
grep -q "^key " "$ci_tmp/store_put_1.log"
UNIQ_THREADS=4 target/release/uniq store put --store "$ci_tmp/store" \
  --seed 6 --anechoic --grid 15 --snr 45 --history "$ci_tmp/history.jsonl" \
  > "$ci_tmp/store_put_4.log"
grep -q "deduplicated" "$ci_tmp/store_put_4.log"
store_key="$(awk '/^key /{print $2}' "$ci_tmp/store_put_1.log")"
target/release/uniq store get --store "$ci_tmp/store" --key "$store_key" \
  --table "$ci_tmp/store_hrtf.uniqhrtf" > /dev/null
target/release/uniq store ls --store "$ci_tmp/store" | grep -q "$store_key"
target/release/uniq store verify --store "$ci_tmp/store"
target/release/uniq store export --store "$ci_tmp/store" --key "$store_key" \
  --out "$ci_tmp/store_export.uniqhrtf" > /dev/null
target/release/uniq store import --store "$ci_tmp/store" \
  --table "$ci_tmp/store_export.uniqhrtf" --seed 6 > /dev/null
# A missing key must be a typed failure (exit 1), not a crash.
if target/release/uniq store get --store "$ci_tmp/store" \
  --key 0000000000000000 >/dev/null 2>&1; then
  echo "store get succeeded on a key that does not exist" >&2
  exit 1
fi

echo "== serve smoke (live server + loadgen drain, 1 and 4 threads) =="
# A live sharded server must publish its ephemeral port, serve a seeded
# population through the closed-loop harness with zero fingerprint
# conflicts (loadgen exits nonzero on any), answer the repeat prefix
# from the result cache, drain on the shutdown request, and print the
# same population fingerprint at every pool size.
for threads in 1 4; do
  rm -f "$ci_tmp/serve_addr"
  UNIQ_THREADS=$threads target/release/uniq serve --addr 127.0.0.1:0 \
    --shards 2 --grid 15 --snr 45 --anechoic \
    --store "$ci_tmp/serve_store_$threads" \
    --addr-file "$ci_tmp/serve_addr" > "$ci_tmp/serve_$threads.log" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    [ -s "$ci_tmp/serve_addr" ] && break
    sleep 0.1
  done
  [ -s "$ci_tmp/serve_addr" ] || { echo "serve never published an address" >&2; exit 1; }
  UNIQ_THREADS=$threads target/release/uniq loadgen \
    --addr "$(cat "$ci_tmp/serve_addr")" --subjects 4 --clients 2 \
    --shutdown > "$ci_tmp/loadgen_$threads.log"
  wait "$serve_pid"
  grep -q "serve drained" "$ci_tmp/serve_$threads.log"
  grep -q " 2 cached," "$ci_tmp/loadgen_$threads.log"
  grep -q "loadgen.request" "$ci_tmp/loadgen_$threads.log"
done
# Determinism across pool sizes: both runs served the same population and
# must print the same fingerprint — with server and harness agreeing.
fp() { awk '/population fingerprint/{print $NF}' "$1" | head -1; }
[ "$(fp "$ci_tmp/loadgen_1.log")" = "$(fp "$ci_tmp/loadgen_4.log")" ] \
  || { echo "serve fingerprint differs across pool sizes" >&2; exit 1; }
[ "$(fp "$ci_tmp/serve_1.log")" = "$(fp "$ci_tmp/loadgen_1.log")" ] \
  || { echo "server and loadgen disagree on the population fingerprint" >&2; exit 1; }

echo "== baseline determinism (two runs, bit-identical quality) =="
target/release/baseline run --out "$ci_tmp/fresh_a.json" --history "$ci_tmp/history.jsonl"
target/release/baseline run --out "$ci_tmp/fresh_b.json" --history "$ci_tmp/history.jsonl"
target/release/baseline quality-identical "$ci_tmp/fresh_a.json" "$ci_tmp/fresh_b.json"

echo "== run-ledger gate (two baseline records: compare exact, trend warn-tier) =="
# Both baseline runs appended a ledger record; back-to-back runs on the
# same revision must compare clean (exit 0 — fingerprints and quality
# bit-identical).
target/release/uniq history compare "$ci_tmp/history.jsonl"
# The trend gate is warn-tier in CI: a latency warning (exit 1) is
# machine noise and tolerated; a quality regression (exit 2) is fatal.
trend_rc=0
target/release/uniq history trend "$ci_tmp/history.jsonl" || trend_rc=$?
if [ "$trend_rc" -ge 2 ]; then
  echo "history trend gate: quality regression (exit $trend_rc)" >&2
  exit 1
elif [ "$trend_rc" -eq 1 ]; then
  echo "history trend gate: latency warning tolerated (exit 1)"
fi

echo "== baseline compare vs BENCH_BASELINE.json (UNIQ_THREADS=1) =="
UNIQ_THREADS=1 target/release/baseline compare \
  --baseline BENCH_BASELINE.json --fresh "$ci_tmp/fresh_a.json"

echo "== baseline compare vs BENCH_BASELINE.json (UNIQ_THREADS=4) =="
UNIQ_THREADS=4 target/release/baseline compare --baseline BENCH_BASELINE.json

echo "CI green."
