//! Integration test: the §4.4 export path — a personalized table survives
//! a save/load round trip and keeps working for applications (rendering,
//! AoA) identically.

use std::path::PathBuf;
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_subjects::Subject;

fn temp_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("uniq_serialization_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn exported_table_round_trips_and_keeps_working() {
    let cfg = UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        ..UniqConfig::fast_test()
    };
    let subject = Subject::from_seed(500);
    let result = personalize(&subject, &cfg, 3).expect("personalization");
    let original = result.hrtf;

    // Save and reload through the application-facing format.
    let path = temp_file("roundtrip.uniqhrtf");
    uniq_core::io::save(&original, &path).expect("save");
    let restored = uniq_core::io::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // Structure identical.
    assert_eq!(restored.sample_rate(), original.sample_rate());
    assert_eq!(restored.near().angles(), original.near().angles());
    assert_eq!(restored.far().angles(), original.far().angles());

    // Rendering through the restored table is bit-identical.
    let sig = uniq_dsp::signal::linear_chirp(300.0, 8000.0, 0.02, cfg.render.sample_rate);
    let a = original.synthesize(&sig, 45.0, true);
    let b = restored.synthesize(&sig, 45.0, true);
    assert_eq!(a.left, b.left);
    assert_eq!(a.right, b.right);

    // And AoA with the restored table gives the same answer.
    let renderer = subject.renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
    let setup = uniq_acoustics::measure::MeasurementSetup::anechoic(cfg.render.sample_rate, 40.0);
    let rec = uniq_acoustics::measure::record_plane_wave(&renderer, &setup, 60.0, &sig, 9);
    let est_a = uniq_core::aoa::estimate_known_source(&rec, &sig, original.far(), &cfg);
    let est_b = uniq_core::aoa::estimate_known_source(&rec, &sig, restored.far(), &cfg);
    assert_eq!(est_a, est_b);
}

#[test]
fn parser_rejects_truncated_files() {
    let cfg = UniqConfig {
        in_room: false,
        grid_step_deg: 30.0,
        ..UniqConfig::fast_test()
    };
    let subject = Subject::from_seed(501);
    let result = personalize(&subject, &cfg, 5).expect("personalization");
    let text = uniq_core::io::to_string(&result.hrtf);

    // Chop the file mid-entry: the parser must reject, not mis-load.
    let cut = text.len() * 2 / 3;
    let truncated = &text[..cut];
    assert!(uniq_core::io::from_str(truncated).is_err());
}
