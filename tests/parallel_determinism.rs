//! Parallel-vs-sequential bit-identity: the determinism contract of the
//! uniq-par engine. The same seeded subject personalized at `threads = 1`
//! and `threads = 8` must produce bit-identical HRTFs, AoA estimates, and
//! observability aggregates — thread count changes scheduling, never
//! results.

use std::collections::BTreeMap;
use std::sync::Arc;

use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
use uniq_core::batch::{hrtf_fingerprint, personalize_batch};
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize, PersonalizationResult};
use uniq_obs::sink::MemorySink;
use uniq_obs::Event;
use uniq_subjects::Subject;

fn cfg_with(threads: usize) -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 10.0,
        threads,
        ..UniqConfig::fast_test()
    }
}

fn assert_results_identical(a: &PersonalizationResult, b: &PersonalizationResult) {
    assert_eq!(a.radius_m.to_bits(), b.radius_m.to_bits());
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.localization, b.localization);
    assert_eq!(a.fusion.head.a.to_bits(), b.fusion.head.a.to_bits());
    for (x, y) in a.hrtf.far().irs().iter().zip(b.hrtf.far().irs()) {
        assert_eq!(x.left, y.left);
        assert_eq!(x.right, y.right);
    }
    for (x, y) in a.hrtf.near().irs().iter().zip(b.hrtf.near().irs()) {
        assert_eq!(x.left, y.left);
        assert_eq!(x.right, y.right);
    }
}

#[test]
fn pipeline_is_bit_identical_across_thread_counts() {
    let subject = Subject::from_seed(70);
    let sequential = personalize(&subject, &cfg_with(1), 42).expect("sequential run");
    let parallel = personalize(&subject, &cfg_with(8), 42).expect("parallel run");
    assert_results_identical(&sequential, &parallel);
}

#[test]
fn aoa_estimates_identical_across_thread_counts() {
    let c1 = cfg_with(1);
    let c8 = cfg_with(8);
    let subject = Subject::from_seed(90);
    let renderer = subject.renderer(c1.render, 1024);
    let angles: Vec<f64> = (0..=36).map(|k| k as f64 * 5.0).collect();
    let bank = renderer.ground_truth_bank(&angles);
    let setup = MeasurementSetup::anechoic(c1.render.sample_rate, 40.0);
    let probe = c1.probe();

    for truth in [20.0, 75.0, 140.0] {
        let rec = record_plane_wave(&renderer, &setup, truth, &probe, 7);
        let known1 = uniq_core::aoa::estimate_known_source(&rec, &probe, &bank, &c1);
        let known8 = uniq_core::aoa::estimate_known_source(&rec, &probe, &bank, &c8);
        assert_eq!(
            known1.to_bits(),
            known8.to_bits(),
            "known-source AoA diverged at θ={truth}: {known1} vs {known8}"
        );
        let unknown1 = uniq_core::aoa::estimate_unknown_source(&rec, &bank, &c1);
        let unknown8 = uniq_core::aoa::estimate_unknown_source(&rec, &bank, &c8);
        assert_eq!(
            unknown1.to_bits(),
            unknown8.to_bits(),
            "unknown-source AoA diverged at θ={truth}: {unknown1} vs {unknown8}"
        );
    }
}

type CounterTotals = BTreeMap<&'static str, u64>;
type MetricBits = BTreeMap<&'static str, Vec<u64>>;
type SpanCounts = BTreeMap<&'static str, usize>;

/// Aggregates one recorded run: per-name counter totals, per-name sorted
/// metric value bits, and per-name span counts. Event *order* may differ
/// across thread counts (workers interleave); the aggregates may not.
fn aggregates(events: &[Event]) -> (CounterTotals, MetricBits, SpanCounts) {
    let mut counters = BTreeMap::new();
    let mut metrics: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut spans = BTreeMap::new();
    for e in events {
        match e {
            Event::Counter { name, delta } => *counters.entry(*name).or_insert(0) += delta,
            Event::Metric { name, value, .. } => {
                metrics.entry(*name).or_default().push(value.to_bits())
            }
            Event::SpanStart { name, .. } => *spans.entry(*name).or_insert(0) += 1,
            Event::SpanEnd { .. } => {}
        }
    }
    for values in metrics.values_mut() {
        values.sort_unstable();
    }
    (counters, metrics, spans)
}

#[test]
fn observability_aggregates_identical_across_thread_counts() {
    let subject = Subject::from_seed(71);
    let record = |threads: usize| {
        let sink = Arc::new(MemorySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            personalize(&subject, &cfg_with(threads), 43).expect("pipeline succeeds")
        });
        aggregates(&sink.events())
    };
    let (counters1, metrics1, spans1) = record(1);
    let (counters8, metrics8, spans8) = record(8);
    assert_eq!(counters1, counters8, "counter totals diverged");
    assert_eq!(spans1, spans8, "span counts diverged");
    assert_eq!(
        metrics1.keys().collect::<Vec<_>>(),
        metrics8.keys().collect::<Vec<_>>(),
        "metric names diverged"
    );
    for (name, values) in &metrics1 {
        assert_eq!(
            values, &metrics8[name],
            "metric {name} values diverged between thread counts"
        );
    }
}

/// The causal ids are part of the determinism contract: every span's
/// `(trace_id, span_id, parent_id)` triple is a pure function of its
/// position in the call tree, so a run at 8 threads must assign the
/// exact same ids as a run at 1 thread (acceptance criterion of the
/// telemetry layer — `uniq trace report` output must not depend on
/// `UNIQ_THREADS`).
#[test]
fn span_ids_bit_identical_across_thread_counts() {
    let subject = Subject::from_seed(73);
    let record = |threads: usize| {
        let sink = Arc::new(MemorySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            personalize(&subject, &cfg_with(threads), 45).expect("pipeline succeeds")
        });
        let mut ids: Vec<(&'static str, u64, u64, u64)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, ids, .. } => {
                    Some((*name, ids.trace, ids.span, ids.parent))
                }
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids
    };
    let ids1 = record(1);
    let ids8 = record(8);
    assert!(!ids1.is_empty(), "no spans recorded");
    assert_eq!(ids1, ids8, "span id triples diverged between thread counts");
    // Non-root spans must link to a parent that exists in the same run.
    let spans: std::collections::BTreeSet<u64> = ids1.iter().map(|t| t.2).collect();
    for (name, _, _, parent) in &ids1 {
        assert!(
            *parent == 0 || spans.contains(parent),
            "span {name} has a dangling parent id"
        );
    }
}

#[test]
fn faulted_pipeline_bit_identical_across_thread_counts() {
    use uniq_core::degrade::DegradationPolicy;
    use uniq_core::pipeline::personalize_faulted;
    use uniq_faults::FaultPlan;

    // A compound plan exercising every injection boundary: acoustic
    // corruption, gyro corruption, and session-structure faults.
    let plan = FaultPlan::parse(
        "drop@2,snr:-9@4,clip:0.5,jitter:0.03,gyro-dropout:0.45:0.05",
        9,
    )
    .expect("plan parses");
    let policy = DegradationPolicy::default();
    let subject = Subject::from_seed(72);
    let sequential = personalize_faulted(&subject, &cfg_with(1), 44, &plan, &policy)
        .expect("sequential faulted run");
    let parallel = personalize_faulted(&subject, &cfg_with(8), 44, &plan, &policy)
        .expect("parallel faulted run");
    assert_results_identical(&sequential.result, &parallel.result);
    assert_eq!(
        sequential.degradation, parallel.degradation,
        "degradation reports diverged between thread counts"
    );
}

/// N parallel writers racing `Store::put` must leave the store in the
/// same logical state as a sequential run: one blob per distinct
/// artifact, exact dedup accounting, a replayable index, and a store
/// fingerprint that is bit-identical at 1 and 8 threads (index line
/// *order* may differ; the contents may not).
#[test]
fn store_state_bit_identical_across_parallel_writers() {
    use uniq_store::Store;

    // 24 put jobs over 8 distinct artifacts → 16 dedup hits, regardless
    // of which writer wins each race.
    let jobs: Vec<u64> = (0..24).map(|i| i % 8).collect();
    let run = |threads: usize| {
        let root =
            std::env::temp_dir().join(format!("uniq_store_par_{}_{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = Store::open(&root).expect("open scratch store");
        let pool = uniq_par::pool(threads);
        let outcomes = pool.par_map_chunked(&jobs, 1, |&seed| {
            let mut artifact = uniq_store::HrtfArtifact {
                seed,
                subject_fingerprint: 0,
                config_hash: 0xD15C,
                sample_rate: 48_000.0,
                head: [0.08, 0.09, 0.10],
                radius_m: 0.4 + seed as f64 * 0.01,
                attempts: 1,
                localization: vec![(seed as f64, seed as f64 + 0.5)],
                near: uniq_store::Grid {
                    angles_deg: vec![0.0, 90.0],
                    ir_len: 3,
                    irs: vec![
                        (vec![seed as f64, 1.0, 2.0], vec![3.0, 4.0, 5.0]),
                        (vec![6.0, 7.0, seed as f64], vec![9.0, 10.0, 11.0]),
                    ],
                },
                far: uniq_store::Grid::empty(),
                degradation_json: None,
            };
            artifact.subject_fingerprint = artifact.fingerprint();
            store.put(&artifact).expect("parallel put")
        });
        assert_eq!(outcomes.iter().filter(|o| o.deduped).count(), 16);
        assert_eq!(store.len(), 8);
        assert_eq!(store.dedup_hits(), 16);
        assert!(
            store.verify().is_clean(),
            "store corrupt after parallel puts"
        );
        let fingerprint = store.fingerprint();
        // Reopening replays the index the writers appended concurrently.
        drop(store);
        let reopened = Store::open(&root).expect("reopen after parallel puts");
        assert_eq!(reopened.len(), 8);
        assert_eq!(reopened.fingerprint(), fingerprint);
        let _ = std::fs::remove_dir_all(&root);
        fingerprint
    };
    assert_eq!(
        run(1),
        run(8),
        "store fingerprint diverged between 1 and 8 writer threads"
    );
}

#[test]
fn batch_fingerprint_identical_across_thread_counts() {
    let cfg = UniqConfig {
        grid_step_deg: 15.0,
        threads: 1,
        ..cfg_with(1)
    };
    let seeds = [70u64, 71, 72, 73];
    let fp1 = hrtf_fingerprint(&personalize_batch(&seeds, &cfg, 1, 2));
    let fp8 = hrtf_fingerprint(&personalize_batch(&seeds, &cfg, 8, 2));
    assert_eq!(fp1, fp8, "batch outputs diverged between 1 and 8 threads");
}
