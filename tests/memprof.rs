//! Memory-profile gates over the real pipeline: per-stage allocation
//! count/bytes must be *bit-identical* across repeated runs and across
//! thread counts (the deterministic columns of `uniq-memprof`), and the
//! hot-path stages must not allocate per call beyond their pinned setup
//! allowance.
//!
//! The counting allocator is process-global, so every test here
//! serializes on one mutex and prewarms the workload before measuring
//! (first runs pay one-time lazy initialization; gates compare steady
//! state).

use std::sync::{Arc, Mutex};
use uniq_bench::baseline::{alloc_invariant, alloc_profile, BaselineSpec};
use uniq_core::pipeline::personalize_with_retry;
use uniq_profile::ProfileSink;
use uniq_subjects::Subject;

#[global_allocator]
static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();

/// Serializes the measuring tests: the profiler's counters are
/// process-global and `cargo test` runs tests concurrently.
static GATE: Mutex<()> = Mutex::new(());

/// Renders the deterministic columns of two snapshots side by side —
/// failure output that names the drifting stage directly.
fn diff_table(a: &uniq_memprof::AllocSnapshot, b: &uniq_memprof::AllocSnapshot) -> String {
    let mut out =
        String::from("stage                         allocs(a)  allocs(b)   bytes(a)   bytes(b)\n");
    let names: std::collections::BTreeSet<&String> =
        a.stages.keys().chain(b.stages.keys()).collect();
    for name in names {
        let sa = a.stages.get(name.as_str()).copied().unwrap_or_default();
        let sb = b.stages.get(name.as_str()).copied().unwrap_or_default();
        let marker = if (sa.allocs, sa.bytes) == (sb.allocs, sb.bytes) {
            " "
        } else {
            "!"
        };
        out.push_str(&format!(
            "{marker} {name:<28} {:>9} {:>10} {:>10} {:>10}\n",
            sa.allocs, sb.allocs, sa.bytes, sb.bytes
        ));
    }
    out
}

#[test]
fn per_stage_allocs_bit_identical_across_runs() {
    let _gate = GATE.lock().unwrap();
    let spec = BaselineSpec::quick();
    let a = alloc_profile(&spec, 1);
    let b = alloc_profile(&spec, 1);
    assert!(
        alloc_invariant(&a, &b),
        "two identical runs disagree on per-stage allocations:\n{}",
        diff_table(&a, &b)
    );
    assert!(!a.stages.is_empty(), "profile attributed nothing");
}

/// Pinned per-call allocation allowances for the hot-path stages — the
/// runtime form of the analyzer's static hot-path-alloc rule. Each stage
/// is allowed its *pre-span setup* allocations (scratch and output
/// buffers sized once per call before the tight loops); the gate fails
/// when a change adds per-call allocation beyond that. The numbers are
/// deterministic (bit-identical across runs and thread counts, asserted
/// above), so the ceilings sit directly on today's measured values.
const HOT_PATH_ALLOWANCE: &[(&str, u64, u64)] = &[
    // (stage, max allocs per call, max bytes per call)
    (uniq_obs::names::SPAN_FUSION, 447, 2_685_816),
    (uniq_obs::names::SPAN_CHANNEL_ESTIMATE, 8, 327_680),
];

#[test]
fn hot_path_stages_stay_within_pinned_alloc_allowance() {
    let _gate = GATE.lock().unwrap();
    let spec = BaselineSpec::quick();
    let cfg = spec.config(1);
    let subject = Subject::from_seed(spec.seed);
    // Prewarm outside the profiled sink so lazy one-time setup does not
    // count against the allowance.
    uniq_obs::with_sink(Arc::new(uniq_memprof::StageTrackingSink), || {
        personalize_with_retry(&subject, &cfg, spec.seed, 3).expect("personalize failed");
    });
    let profile = Arc::new(ProfileSink::new());
    let (_, snap) = uniq_obs::with_sink(profile.clone(), || {
        uniq_memprof::measure(|| {
            personalize_with_retry(&subject, &cfg, spec.seed, 3).expect("personalize failed")
        })
    });
    let report = profile.report();
    for &(stage, max_allocs, max_bytes) in HOT_PATH_ALLOWANCE {
        let calls = report.stage(stage).map(|s| s.count).unwrap_or(0);
        assert!(calls > 0, "hot-path stage {stage:?} never ran");
        let alloc = snap.stage(stage).copied().unwrap_or_default();
        let (per_allocs, per_bytes) = (alloc.allocs.div_ceil(calls), alloc.bytes.div_ceil(calls));
        assert!(
            per_allocs <= max_allocs && per_bytes <= max_bytes,
            "hot-path stage {stage:?} allocates {per_allocs} times / {per_bytes} bytes per call \
             (over {calls} calls) — allowance is {max_allocs} / {max_bytes}; either remove the \
             new per-call allocation or re-pin the allowance with justification"
        );
    }
}

#[test]
fn per_stage_allocs_thread_invariant_1_vs_8() {
    let _gate = GATE.lock().unwrap();
    let spec = BaselineSpec::quick();
    let mut a = alloc_profile(&spec, 1);
    let mut b = alloc_profile(&spec, 8);
    if !alloc_invariant(&a, &b) {
        // Steady-state settlement (same contract as
        // `alloc_profile_matrix`): a one-time lazy initialization — a
        // queue buffer or thread-local stack growing past its initial
        // capacity on a scheduling-dependent path — may land in either
        // measured run once per process; re-measuring cannot pay it
        // again, so only a genuine thread-count dependence diverges
        // twice.
        a = alloc_profile(&spec, 1);
        b = alloc_profile(&spec, 8);
    }
    assert!(
        alloc_invariant(&a, &b),
        "per-stage allocations vary with the thread count (t=1 vs t=8):\n{}",
        diff_table(&a, &b)
    );
}
