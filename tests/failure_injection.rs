//! Failure-injection integration tests: the pipeline must degrade
//! gracefully — clean errors, never panics or silent garbage — under
//! hostile conditions.

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize, PersonalizationError};
use uniq_core::session::run_session;
use uniq_imu::trajectory::Imperfections;
use uniq_imu::GyroModel;
use uniq_subjects::Subject;

fn base_cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        ..UniqConfig::fast_test()
    }
}

#[test]
fn hopeless_snr_fails_cleanly() {
    // At −10 dB SNR the chirp is buried; the pipeline must return an
    // error (no tap / rejection / fusion failure), not nonsense.
    let cfg = UniqConfig {
        snr_db: -10.0,
        ..base_cfg()
    };
    let subject = Subject::from_seed(400);
    match personalize(&subject, &cfg, 1) {
        Err(_) => {} // any structured error is acceptable
        Ok(result) => {
            // If it *does* survive, the gesture-quality gate must have
            // been satisfied legitimately.
            assert!(result.fusion.mean_residual_deg <= cfg.max_fusion_residual_deg);
        }
    }
}

#[test]
fn broken_gyro_triggers_rejection_or_wide_residual() {
    // A gyro with a massive bias makes α drift far from θ(E); the §4.6
    // auto-correction should fire (or the residual must reflect it).
    let cfg = UniqConfig {
        gyro: GyroModel {
            bias_dps: 5.0,
            noise_std_dps: 2.0,
            bias_walk_dps: 0.5,
        },
        ..base_cfg()
    };
    let subject = Subject::from_seed(401);
    match personalize(&subject, &cfg, 2) {
        Err(PersonalizationError::GestureRejected { residual_deg, .. }) => {
            assert!(residual_deg > cfg.max_fusion_residual_deg * 0.5);
        }
        Err(_) => {}
        Ok(result) => panic!(
            "broken gyro slipped through with residual {:.1}°",
            result.fusion.mean_residual_deg
        ),
    }
}

#[test]
fn dropped_measurements_still_personalize() {
    // Simulate a user who only manages half the stops: fusion needs ≥ 4.
    let cfg = UniqConfig {
        stops: 5,
        ..base_cfg()
    };
    let subject = Subject::from_seed(402);
    let result = personalize(&subject, &cfg, 3).expect("5 stops suffice");
    assert_eq!(result.localization.len(), 5);
}

#[test]
fn severe_gesture_sessions_remain_consistent() {
    // Severe arm droop: the session must still produce monotone-ish IMU
    // angles and valid taps at every stop.
    let mut subject = Subject::from_seed(403);
    subject.gesture = Imperfections::severe();
    let cfg = base_cfg();
    let session = run_session(&subject, &cfg, 4).expect("session survives");
    for stop in &session.stops {
        assert!(stop.channel.tap_left.is_finite());
        assert!(stop.channel.tap_right.is_finite());
        assert!(stop.channel.tap_left > 0.0);
    }
}

#[test]
fn tiny_room_gate_never_panics() {
    // An aggressive gate can cut pinna taps; quality drops but the
    // pipeline must hold together.
    let cfg = UniqConfig {
        room_gate_s: 0.0005, // 24 samples
        ..base_cfg()
    };
    let subject = Subject::from_seed(404);
    // A structured failure is fine; success must produce a full table.
    if let Ok(result) = personalize(&subject, &cfg, 5) {
        assert_eq!(result.hrtf.far().len(), cfg.output_grid().len());
    }
}

#[test]
fn reverberant_room_with_low_snr_structured_outcome() {
    let cfg = UniqConfig {
        in_room: true,
        snr_db: 12.0,
        ..base_cfg()
    };
    let subject = Subject::from_seed(405);
    // Either outcome is fine; what matters is no panic and, on success,
    // a complete table.
    if let Ok(result) = personalize(&subject, &cfg, 6) {
        assert_eq!(result.hrtf.near().len(), cfg.output_grid().len());
    }
}
