//! Failure-injection integration tests: the pipeline must degrade
//! gracefully — clean errors, never panics or silent garbage — under
//! hostile conditions.

use uniq_core::channel::ChannelError;
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize, PersonalizationError};
use uniq_core::session::{run_session, SessionError};
use uniq_imu::trajectory::Imperfections;
use uniq_imu::GyroModel;
use uniq_subjects::Subject;

fn base_cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        ..UniqConfig::fast_test()
    }
}

#[test]
fn hopeless_snr_fails_cleanly() {
    // At −10 dB SNR the chirp is buried; the pipeline must return an
    // error (no tap / rejection / fusion failure), not nonsense.
    let cfg = UniqConfig {
        snr_db: -10.0,
        ..base_cfg()
    };
    let subject = Subject::from_seed(400);
    match personalize(&subject, &cfg, 1) {
        Err(_) => {} // any structured error is acceptable
        Ok(result) => {
            // If it *does* survive, the gesture-quality gate must have
            // been satisfied legitimately.
            assert!(result.fusion.mean_residual_deg <= cfg.max_fusion_residual_deg);
        }
    }
}

#[test]
fn broken_gyro_triggers_rejection_or_wide_residual() {
    // A gyro with a massive bias makes α drift far from θ(E); the §4.6
    // auto-correction should fire (or the residual must reflect it).
    let cfg = UniqConfig {
        gyro: GyroModel {
            bias_dps: 5.0,
            noise_std_dps: 2.0,
            bias_walk_dps: 0.5,
        },
        ..base_cfg()
    };
    let subject = Subject::from_seed(401);
    match personalize(&subject, &cfg, 2) {
        Err(PersonalizationError::GestureRejected { residual_deg, .. }) => {
            assert!(residual_deg > cfg.max_fusion_residual_deg * 0.5);
        }
        Err(_) => {}
        Ok(result) => panic!(
            "broken gyro slipped through with residual {:.1}°",
            result.fusion.mean_residual_deg
        ),
    }
}

#[test]
fn dropped_measurements_still_personalize() {
    // Simulate a user who only manages half the stops: fusion needs ≥ 4.
    let cfg = UniqConfig {
        stops: 5,
        ..base_cfg()
    };
    let subject = Subject::from_seed(402);
    let result = personalize(&subject, &cfg, 3).expect("5 stops suffice");
    assert_eq!(result.localization.len(), 5);
}

#[test]
fn severe_gesture_sessions_remain_consistent() {
    // Severe arm droop: the session must still produce monotone-ish IMU
    // angles and valid taps at every stop.
    let mut subject = Subject::from_seed(403);
    subject.gesture = Imperfections::severe();
    let cfg = base_cfg();
    let session = run_session(&subject, &cfg, 4).expect("session survives");
    for stop in &session.stops {
        assert!(stop.channel.tap_left.is_finite());
        assert!(stop.channel.tap_right.is_finite());
        assert!(stop.channel.tap_left > 0.0);
    }
}

#[test]
fn tiny_room_gate_never_panics() {
    // An aggressive gate can cut pinna taps; quality drops but the
    // pipeline must hold together.
    let cfg = UniqConfig {
        room_gate_s: 0.0005, // 24 samples
        ..base_cfg()
    };
    let subject = Subject::from_seed(404);
    // A structured failure is fine; success must produce a full table.
    if let Ok(result) = personalize(&subject, &cfg, 5) {
        assert_eq!(result.hrtf.far().len(), cfg.output_grid().len());
    }
}

#[test]
fn hopeless_snr_fails_cleanly_under_parallel_session() {
    // The same hostile condition as `hopeless_snr_fails_cleanly`, but with
    // the per-stop loop fanned over 8 workers: failures must surface as
    // the same structured errors, never as a worker panic or a generic
    // join error, and a session failure must name the failing stop.
    let cfg = UniqConfig {
        snr_db: -10.0,
        threads: 8,
        ..base_cfg()
    };
    let subject = Subject::from_seed(400);
    match personalize(&subject, &cfg, 1) {
        Err(PersonalizationError::Session(SessionError::Stop { stop, error })) => {
            assert!(stop < cfg.stops, "stop index {stop} out of range");
            assert_eq!(error, ChannelError::NoFirstTap);
        }
        Err(_) => {} // other structured errors (rejection, fusion) are fine
        Ok(result) => {
            assert!(result.fusion.mean_residual_deg <= cfg.max_fusion_residual_deg);
        }
    }
}

#[test]
fn parallel_and_sequential_sessions_agree_on_the_failing_stop() {
    // Whatever a hostile config does, the parallel session must report the
    // same outcome as the sequential one — including *which* stop failed
    // (try_par_map returns the lowest-index error, as a serial scan would).
    let subject = Subject::from_seed(400);
    for snr in [-10.0, 5.0, 45.0] {
        let seq = run_session(
            &subject,
            &UniqConfig {
                snr_db: snr,
                threads: 1,
                ..base_cfg()
            },
            7,
        );
        let par = run_session(
            &subject,
            &UniqConfig {
                snr_db: snr,
                threads: 8,
                ..base_cfg()
            },
            7,
        );
        match (&seq, &par) {
            (Ok(a), Ok(b)) => assert_eq!(a.stops.len(), b.stops.len()),
            (Err(a), Err(b)) => assert_eq!(a, b, "snr {snr}: different failing stop"),
            _ => panic!("snr {snr}: sequential and parallel outcomes disagree"),
        }
    }
}

#[test]
fn session_errors_name_the_failing_stop() {
    // The error contract batch callers rely on: stop identity in the
    // variant, in the message, and the underlying cause in source().
    let err = SessionError::Stop {
        stop: 7,
        error: ChannelError::NoFirstTap,
    };
    assert!(err.to_string().contains("stop 7"), "message: {err}");
    assert!(err.to_string().contains("no detectable first tap"));
    let source = std::error::Error::source(&err).expect("carries its cause");
    assert_eq!(source.to_string(), ChannelError::NoFirstTap.to_string());

    let wrapped = PersonalizationError::Session(err);
    assert!(wrapped.to_string().contains("stop 7"), "lost stop identity");
}

#[test]
fn failed_subjects_in_a_batch_are_identified_not_joined() {
    // Force every subject to fail (impossible residual bound, one
    // attempt): each outcome must come back tagged with its subject's
    // seed and a structured error — a mid-batch failure never aborts the
    // batch or degenerates into an anonymous join error.
    let cfg = UniqConfig {
        max_fusion_residual_deg: 0.001,
        threads: 1,
        ..base_cfg()
    };
    let seeds = [410u64, 411, 412, 413];
    let outcomes = uniq_core::batch::personalize_batch(&seeds, &cfg, 4, 1);
    assert_eq!(outcomes.len(), seeds.len());
    for (outcome, &seed) in outcomes.iter().zip(&seeds) {
        assert_eq!(outcome.seed, seed, "outcome lost its subject identity");
        let err = outcome
            .result
            .as_ref()
            .expect_err("impossible residual bound must reject");
        assert!(
            matches!(err, PersonalizationError::GestureRejected { .. }),
            "subject {seed}: unexpected error {err:?}"
        );
    }
}

#[test]
fn trace_file_survives_a_failing_pipeline_without_truncated_lines() {
    // A failing run is exactly when the trace matters most. Run the
    // hopeless-SNR scenario under a buffered JsonLinesSink, let the sink
    // flush on drop (no explicit flush call), and require that the file
    // holds only complete JSON lines — a truncated tail would mean the
    // buffer lost the events closest to the failure.
    let cfg = UniqConfig {
        snr_db: -10.0,
        ..base_cfg()
    };
    let subject = Subject::from_seed(400);
    let path =
        std::env::temp_dir().join(format!("uniq_failure_trace_{}.jsonl", std::process::id()));
    {
        let sink = std::sync::Arc::new(
            uniq_obs::sink::JsonLinesSink::create(&path).expect("create trace file"),
        );
        let outcome = uniq_obs::with_sink(sink, || personalize(&subject, &cfg, 1));
        // (Either outcome is acceptable — see hopeless_snr_fails_cleanly —
        // but the trace contract below must hold either way.)
        let _ = outcome;
    } // last Arc drops here; Drop must flush the tail of the buffer

    let content = std::fs::read_to_string(&path).expect("trace file readable");
    std::fs::remove_file(&path).ok();
    assert!(!content.is_empty(), "no events reached the trace file");
    assert!(
        content.ends_with('\n'),
        "file ends mid-line: buffered tail was lost on drop"
    );
    for (i, line) in content.lines().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "line {i} is not a complete JSON object: {line:?}"
        );
    }
}

#[test]
fn reverberant_room_with_low_snr_structured_outcome() {
    let cfg = UniqConfig {
        in_room: true,
        snr_db: 12.0,
        ..base_cfg()
    };
    let subject = Subject::from_seed(405);
    // Either outcome is fine; what matters is no panic and, on success,
    // a complete table.
    if let Ok(result) = personalize(&subject, &cfg, 6) {
        assert_eq!(result.hrtf.near().len(), cfg.output_grid().len());
    }
}
