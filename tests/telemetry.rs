//! Integration tests for the uniq-telemetry layer: sharded metric
//! aggregation is thread-count-invariant, the self-overhead stays
//! bounded, causal traces round-trip through the JSONL sink into a
//! complete tree, and the run ledger's trend gate catches injected
//! regressions.

use std::sync::Arc;

use uniq_core::batch::personalize_batch;
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_obs::names::OBS_TELEMETRY_OVERHEAD_NS;
use uniq_subjects::Subject;
use uniq_telemetry::ledger::{self, LedgerRecord};
use uniq_telemetry::trace::parse_trace;
use uniq_telemetry::TelemetrySink;

fn cfg_with(threads: usize) -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        threads,
        ..UniqConfig::fast_test()
    }
}

#[test]
fn registry_deterministic_across_thread_counts() {
    // The sharded sink assigns events to per-worker shards, so shard
    // contents differ between thread counts — but the aggregated
    // registry's determinism key (counter totals, span counts, metric
    // counts and extremes) must not.
    let record = |threads: usize| {
        let sink = Arc::new(TelemetrySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            personalize_batch(&[70u64, 71, 72, 73], &cfg_with(threads), threads, 2);
        });
        sink.snapshot()
    };
    let snap1 = record(1);
    let snap8 = record(8);
    assert_eq!(
        snap1.determinism_key(),
        snap8.determinism_key(),
        "aggregated registry diverged between 1 and 8 threads"
    );
    assert_eq!(snap1.dropped, 0, "registered-only workload dropped events");
}

#[test]
fn overhead_metric_emitted_and_bounded() {
    let subject = Subject::from_seed(6);
    let sink = Arc::new(TelemetrySink::new());
    uniq_obs::with_sink(sink.clone(), || {
        personalize(&subject, &cfg_with(1), 6).expect("pipeline succeeds")
    });
    let snapshot = sink.snapshot();

    let overhead = snapshot
        .metrics
        .get(OBS_TELEMETRY_OVERHEAD_NS)
        .expect("overhead metric present in the snapshot");
    assert_eq!(overhead.count, 1);
    assert_eq!(snapshot.overhead_ns as f64, overhead.sum);

    // The acceptance bound: recording overhead under 5% of the seed-6
    // personalize wall time (the root span's recorded duration).
    let personalize_ns = snapshot
        .spans
        .get("personalize")
        .expect("personalize span recorded")
        .sum();
    assert!(personalize_ns > 0);
    assert!(
        u128::from(snapshot.overhead_ns) < personalize_ns / 20,
        "telemetry overhead {} ns exceeds 5% of personalize {} ns",
        snapshot.overhead_ns,
        personalize_ns
    );
}

#[test]
fn trace_round_trips_through_jsonl_sink() {
    let path =
        std::env::temp_dir().join(format!("uniq_telemetry_trace_{}.jsonl", std::process::id()));
    {
        let sink =
            Arc::new(uniq_obs::sink::JsonLinesSink::create(&path).expect("create trace file"));
        uniq_obs::with_sink(sink, || {
            let subject = Subject::from_seed(6);
            personalize(&subject, &cfg_with(4), 6).expect("pipeline succeeds")
        });
    } // buffered sink flushes on drop

    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let tree = parse_trace(&text).expect("trace parses");
    std::fs::remove_file(&path).ok();

    // Complete reconstruction: every span links into the tree.
    assert!(
        tree.orphans.is_empty(),
        "orphaned spans: {:?}",
        tree.orphans
    );
    assert_eq!(tree.trace_ids.len(), 1, "one run, one trace id");
    let root_names: Vec<&str> = tree
        .roots
        .iter()
        .map(|&i| tree.nodes[i].name.as_str())
        .collect();
    assert_eq!(root_names, ["personalize"]);

    // The critical path starts at the root and descends.
    let path_names: Vec<String> = tree
        .critical_path()
        .into_iter()
        .map(|(name, _)| name)
        .collect();
    assert_eq!(path_names.first().map(String::as_str), Some("personalize"));
    assert!(path_names.len() >= 2, "critical path has no children");

    // Every pipeline stage shows up in the self-time table and report.
    let self_times = tree.self_times();
    let report = tree.render_report();
    for stage in uniq_obs::names::PIPELINE_STAGES {
        assert!(self_times.contains_key(*stage), "stage {stage} missing");
        assert!(report.contains(stage), "report lacks stage {stage}");
    }
    assert!(report.contains("critical path:"), "{report}");
    assert!(!report.contains("orphaned"), "{report}");
}

/// Builds a plausible baseline ledger record with the given quality
/// value and per-stage latency scale.
fn synthetic_record(quality: f64, latency_scale: f64) -> LedgerRecord {
    let mut r = LedgerRecord::new("baseline");
    r.seed = 6;
    r.threads = 4;
    r.wall_seconds = 2.0 * latency_scale;
    r.fingerprint = "0x00000000deadbeef".to_string();
    r.quality
        .insert("localization_median_deg".to_string(), quality);
    r.stage_p50_ns
        .insert("fusion".to_string(), 1_000_000.0 * latency_scale);
    r.stage_p99_ns
        .insert("fusion".to_string(), 2_000_000.0 * latency_scale);
    r
}

#[test]
fn ledger_trend_flags_injected_quality_drift() {
    // Four stable runs, then one with >2% quality drift: exit 2.
    let mut records: Vec<LedgerRecord> = (0..4).map(|_| synthetic_record(8.0, 1.0)).collect();
    records.push(synthetic_record(8.0 * 1.05, 1.0));
    let report = ledger::trend(
        &records,
        ledger::DEFAULT_QUALITY_TOL,
        ledger::DEFAULT_LATENCY_TOL,
    );
    assert_eq!(report.exit_code, 2, "{:?}", report.findings);

    // Within-tolerance drift passes.
    let mut stable: Vec<LedgerRecord> = (0..4).map(|_| synthetic_record(8.0, 1.0)).collect();
    stable.push(synthetic_record(8.0 * 1.01, 1.0));
    let report = ledger::trend(
        &stable,
        ledger::DEFAULT_QUALITY_TOL,
        ledger::DEFAULT_LATENCY_TOL,
    );
    assert_eq!(report.exit_code, 0, "{:?}", report.findings);
}

#[test]
fn ledger_trend_flags_injected_latency_regression() {
    let mut records: Vec<LedgerRecord> = (0..4).map(|_| synthetic_record(8.0, 1.0)).collect();
    records.push(synthetic_record(8.0, 3.0));
    let report = ledger::trend(
        &records,
        ledger::DEFAULT_QUALITY_TOL,
        ledger::DEFAULT_LATENCY_TOL,
    );
    assert_eq!(report.exit_code, 1, "{:?}", report.findings);
}

#[test]
fn ledger_compare_accepts_identical_runs() {
    let records = vec![synthetic_record(8.0, 1.0), synthetic_record(8.0, 1.0)];
    let report = ledger::compare_last_two(
        &records,
        ledger::DEFAULT_QUALITY_TOL,
        ledger::DEFAULT_LATENCY_TOL,
    );
    assert_eq!(report.exit_code, 0, "{:?}", report.findings);

    // A changed fingerprint is a determinism break: exit 2.
    let mut changed = synthetic_record(8.0, 1.0);
    changed.fingerprint = "0x0000000000000bad".to_string();
    let records = vec![synthetic_record(8.0, 1.0), changed];
    let report = ledger::compare_last_two(
        &records,
        ledger::DEFAULT_QUALITY_TOL,
        ledger::DEFAULT_LATENCY_TOL,
    );
    assert_eq!(report.exit_code, 2, "{:?}", report.findings);
}

#[test]
fn prometheus_exposition_covers_the_pipeline() {
    let sink = Arc::new(TelemetrySink::new());
    uniq_obs::with_sink(sink.clone(), || {
        let subject = Subject::from_seed(6);
        personalize(&subject, &cfg_with(1), 6).expect("pipeline succeeds")
    });
    let text = uniq_telemetry::expose::prometheus(&sink.snapshot());
    assert!(text.contains("uniq_personalize_ns_count 1"), "{text}");
    assert!(text.contains("uniq_fusion_ns"), "{text}");
    assert!(text.contains("uniq_obs_telemetry_overhead_ns"), "{text}");
    assert!(text.contains("uniq_telemetry_dropped_events 0"), "{text}");
}
