//! Robustness conformance: the graceful-degradation contract.
//!
//! 1. The empty fault plan is a guaranteed no-op — `personalize_faulted`
//!    must produce bit-identical output to the plain `personalize` path.
//! 2. Every fault class at its default (preset) intensity must degrade
//!    gracefully: `personalize` completes `Ok` and the degradation report
//!    records what happened.
//! 3. Faulted runs are deterministic: re-running the same plan yields the
//!    same bits and the same report.
//! 4. A faulted run emits only registered observability names.

use std::sync::Arc;
use uniq_core::config::UniqConfig;
use uniq_core::degrade::DegradationPolicy;
use uniq_core::pipeline::{personalize, personalize_faulted, FaultedPersonalization};
use uniq_core::PersonalHrtf;
use uniq_faults::{class, FaultPlan};
use uniq_obs::sink::MemorySink;
use uniq_obs::Event;
use uniq_subjects::Subject;

fn cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        ..UniqConfig::fast_test()
    }
}

fn assert_hrtfs_bit_identical(a: &PersonalHrtf, b: &PersonalHrtf, what: &str) {
    for (x, y) in a.far().irs().iter().zip(b.far().irs()) {
        assert_eq!(x.left, y.left, "{what}: far-field left IRs differ");
        assert_eq!(x.right, y.right, "{what}: far-field right IRs differ");
    }
    for (x, y) in a.near().irs().iter().zip(b.near().irs()) {
        assert_eq!(x.left, y.left, "{what}: near-field left IRs differ");
        assert_eq!(x.right, y.right, "{what}: near-field right IRs differ");
    }
}

fn run_faulted(plan: &FaultPlan, seed: u64) -> FaultedPersonalization {
    personalize_faulted(
        &Subject::from_seed(seed),
        &cfg(),
        seed,
        plan,
        &DegradationPolicy::default(),
    )
    .expect("faulted personalization completes")
}

#[test]
fn empty_plan_is_bit_identical_to_the_clean_pipeline() {
    let seed = 6u64;
    let clean = personalize(&Subject::from_seed(seed), &cfg(), seed).expect("clean run");
    let faulted = run_faulted(&FaultPlan::empty(), seed);

    assert!(faulted.degradation.is_clean(), "empty plan must read clean");
    assert_eq!(faulted.degradation.stops_dropped, 0);
    assert_eq!(faulted.degradation.retries, 0);
    assert!(faulted.degradation.fault_classes.is_empty());

    assert_eq!(
        clean.fusion.head.a.to_bits(),
        faulted.result.fusion.head.a.to_bits(),
        "fitted head diverged under an empty plan"
    );
    assert_eq!(clean.localization, faulted.result.localization);
    assert_eq!(clean.radius_m.to_bits(), faulted.result.radius_m.to_bits());
    assert_hrtfs_bit_identical(&clean.hrtf, &faulted.result.hrtf, "empty plan");
}

#[test]
fn every_fault_class_degrades_gracefully() {
    let seed = 6u64;
    let stops = cfg().stops;
    for &label in class::ALL {
        let plan = FaultPlan::preset(label, seed).expect("every class has a preset");
        let faulted = run_faulted(&plan, seed);
        let report = &faulted.degradation;
        assert!(
            !report.fault_classes.is_empty(),
            "{label}: report must record the injected fault"
        );
        assert!(
            report.fault_classes.contains(&label),
            "{label}: missing from recorded classes {:?}",
            report.fault_classes
        );
        assert!(
            report.stops_used >= 4,
            "{label}: only {} stops survived",
            report.stops_used
        );
        assert_eq!(
            report.stops_used + report.stops_dropped,
            stops,
            "{label}: stop accounting broken"
        );
        assert!(
            !faulted.result.hrtf.far().is_empty(),
            "{label}: empty far-field bank"
        );
    }
}

#[test]
fn dropped_chirp_costs_exactly_one_stop() {
    let seed = 6u64;
    let plan = FaultPlan::preset(class::DROP, seed).expect("drop preset");
    let report = run_faulted(&plan, seed).degradation;
    assert_eq!(report.stops_dropped, 1, "one dropped chirp, one lost stop");
    assert_eq!(report.stops_used, cfg().stops - 1);
    // The retry policy spent its extra capture on the dead stop before
    // giving up (persistent faults survive retries).
    assert!(report.retries >= 1, "retry should have been attempted");
    let dropped: Vec<_> = report.stops.iter().filter(|s| !s.used).collect();
    assert_eq!(dropped.len(), 1);
    assert_eq!(dropped[0].stop, 2, "preset targets stop 2");
    assert_eq!(dropped[0].faults, vec![class::DROP]);
}

#[test]
fn transient_faults_heal_through_retry() {
    let seed = 6u64;
    // Same drop, but transient: the retry capture is clean, so no stop is
    // lost and the report shows the heal.
    let plan = FaultPlan::parse("drop@2~", seed).expect("plan parses");
    let report = run_faulted(&plan, seed).degradation;
    assert_eq!(report.stops_dropped, 0, "transient fault must heal");
    assert_eq!(report.stops_used, cfg().stops);
    assert!(report.retries >= 1, "healing takes a retry");
    let healed = report.stops.iter().find(|s| s.stop == 2).expect("stop 2");
    assert!(healed.used);
    assert_eq!(healed.attempts, 2);
}

#[test]
fn faulted_runs_are_deterministic() {
    let seed = 6u64;
    let plan = FaultPlan::parse("snr:-9@4,clip:0.5,jitter:0.03", 17).expect("plan parses");
    let a = run_faulted(&plan, seed);
    let b = run_faulted(&plan, seed);
    assert_eq!(a.degradation, b.degradation, "reports diverged across runs");
    assert_hrtfs_bit_identical(&a.result.hrtf, &b.result.hrtf, "repeat run");

    // A different session seed still completes, with its own bits.
    let other = personalize_faulted(
        &Subject::from_seed(seed + 1),
        &cfg(),
        seed + 1,
        &plan,
        &DegradationPolicy::default(),
    )
    .expect("other subject completes");
    assert!(other.degradation.stops_used >= 4);
}

#[test]
fn faulted_run_emits_only_registered_names() {
    let seed = 6u64;
    let plan = FaultPlan::preset(class::SNR, seed).expect("snr preset");
    let sink = Arc::new(MemorySink::new());
    uniq_obs::with_sink(sink.clone(), || run_faulted(&plan, seed));
    let events = sink.events();
    assert!(!events.is_empty(), "faulted run emitted nothing");
    let mut saw_faults_span = false;
    for e in &events {
        match e {
            Event::Metric { name, .. } | Event::Counter { name, .. } => {
                assert!(
                    uniq_obs::names::ALL_METRICS.contains(name),
                    "unregistered metric/counter {name:?}"
                );
            }
            Event::SpanStart { name, .. } => {
                assert!(
                    uniq_obs::names::ALL_SPANS.contains(name),
                    "unregistered span {name:?}"
                );
                saw_faults_span |= *name == uniq_obs::names::SPAN_FAULTS;
            }
            Event::SpanEnd { .. } => {}
        }
    }
    assert!(saw_faults_span, "faulted run must open the faults span");
}
