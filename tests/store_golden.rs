//! Golden `.uhrtf` fixture: `tests/data/seed6.uhrtf` is the pinned
//! seed-6 personalized HRTF (the `BENCH_BASELINE.json` workload) as
//! written by `baseline run --store`. The bytes, content key, and
//! embedded fingerprint are pinned here; regenerating the pipeline must
//! reproduce the file verbatim. Refresh the fixture together with the
//! baseline: `cargo run --release -p uniq-bench --bin baseline -- bless
//! --store DIR` and copy the new blob over `tests/data/seed6.uhrtf`.

use std::path::Path;
use uniq_bench::baseline::{BaselineSpec, BASELINE_FILE};
use uniq_core::pipeline::personalize_with_retry;
use uniq_profile::json::Json;
use uniq_store::{content_key, decode, encode, HrtfArtifact, Store};
use uniq_subjects::Subject;

/// Pinned size of the fixture in bytes.
const GOLDEN_LEN: usize = 213_628;

/// Pinned content key (FNV-1a 64 of the encoded bytes, lowercase hex).
const GOLDEN_KEY: &str = "90e85c24c918c227";

fn golden_bytes() -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/seed6.uhrtf");
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn pinned_fingerprint() -> u64 {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(BASELINE_FILE);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc = Json::parse(&text).expect("BENCH_BASELINE.json parses");
    let hex = doc
        .get("quality")
        .and_then(|q| q.get("personalize_fingerprint"))
        .and_then(Json::as_str)
        .expect("baseline carries quality.personalize_fingerprint");
    u64::from_str_radix(hex.trim_start_matches("0x"), 16)
        .expect("personalize_fingerprint is 0x-prefixed hex")
}

#[test]
fn golden_fixture_bytes_and_key_are_pinned() {
    let bytes = golden_bytes();
    assert_eq!(bytes.len(), GOLDEN_LEN, "fixture byte length drifted");
    assert_eq!(
        content_key(&bytes),
        GOLDEN_KEY,
        "fixture content key drifted"
    );
}

#[test]
fn golden_fixture_decodes_to_the_pinned_baseline_hrtf() {
    let bytes = golden_bytes();
    let artifact = decode(&bytes).expect("golden fixture decodes");
    assert_eq!(artifact.seed, BaselineSpec::pinned().seed);
    assert_eq!(
        artifact.subject_fingerprint,
        pinned_fingerprint(),
        "fixture fingerprint disagrees with BENCH_BASELINE.json"
    );
    assert_eq!(
        artifact.fingerprint(),
        artifact.subject_fingerprint,
        "stamped fingerprint no longer matches the payload"
    );
    // Canonical codec: re-encoding reproduces the checked-in file
    // verbatim.
    assert_eq!(encode(&artifact).expect("re-encode"), bytes);
    // And the grids are usable, not just parseable.
    let table = artifact.to_table().expect("fixture builds a lookup table");
    assert!(!table.near().irs().is_empty());
    assert!(!table.far().irs().is_empty());
}

#[test]
fn regenerating_the_pipeline_reproduces_the_fixture_verbatim() {
    let spec = BaselineSpec::pinned();
    let cfg = spec.config(1);
    let subject = Subject::from_seed(spec.seed);
    let result = personalize_with_retry(&subject, &cfg, spec.seed, 3).expect("pinned workload");
    let artifact = HrtfArtifact::from_result(spec.seed, &result, cfg.content_hash(), None);
    let bytes = encode(&artifact).expect("fresh artifact encodes");
    assert_eq!(
        content_key(&bytes),
        GOLDEN_KEY,
        "fresh seed-6 run no longer hashes to the pinned key — numeric drift"
    );
    assert_eq!(
        bytes,
        golden_bytes(),
        "fresh seed-6 run diverged from the fixture"
    );

    // Putting the fresh artifact lands on the same key, and importing
    // the fixture on top is a pure dedup hit.
    let root = std::env::temp_dir().join(format!("uniq_store_golden_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Store::open(&root).expect("open scratch store");
    let fresh = store.put(&artifact).expect("put fresh artifact");
    assert_eq!(fresh.key, GOLDEN_KEY);
    assert!(!fresh.deduped);
    let fixture = decode(&golden_bytes()).expect("fixture decodes");
    assert!(store.put(&fixture).expect("re-put fixture").deduped);
    drop(store);
    let _ = std::fs::remove_dir_all(&root);
}
