//! Serve conformance battery: the wire protocol under malformed input,
//! determinism under concurrency, backpressure shedding, and graceful
//! shutdown — every gate the sharded personalization server must hold.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use uniq_acoustics::measure::{BinauralRecording, InjectionSite, RecordingInjector};
use uniq_core::batch::{hrtf_fingerprint, BatchOutcome};
use uniq_core::config::UniqConfig;
use uniq_core::degrade::FaultHook;
use uniq_core::pipeline::personalize_with_retry;
use uniq_imu::gyro::RateInjector;
use uniq_obs::sink::MemorySink;
use uniq_obs::Event;
use uniq_serve::{loadgen, protocol, LoadgenConfig, Response, ServeConfig, Server};
use uniq_subjects::Subject;

/// The fast serve workload config: anechoic, coarse grid, test preset —
/// the battery exercises the server, not HRTF synthesis depth.
fn fast_cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        threads: 1,
        ..UniqConfig::fast_test()
    }
}

fn scratch(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("uniq_serve_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// One line-delimited protocol client.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).expect("write line");
        self.stream.write_all(b"\n").expect("write newline");
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write raw bytes");
    }

    /// Reads one response line; `None` when the server closed the stream.
    fn read_raw(&mut self) -> Option<String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(line.trim_end().to_string()),
            Err(_) => None,
        }
    }

    fn read_response(&mut self) -> Response {
        let line = self.read_raw().expect("server closed unexpectedly");
        protocol::parse_response(&line)
            .unwrap_or_else(|e| panic!("unparseable reply {line:?}: {e}"))
    }

    fn expect_error(&mut self, kind: &str) {
        match self.read_response() {
            Response::Error { kind: got, .. } => assert_eq!(got, kind, "wrong error kind"),
            other => panic!("expected {kind} error, got {other:?}"),
        }
    }

    fn personalize(&mut self, seed: u64) {
        self.send(&format!("{{\"type\":\"personalize\",\"seed\":{seed}}}"));
    }
}

fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    for _ in 0..2000 {
        if probe() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// The result fingerprint the library path computes for one subject —
/// the number every serve response must reproduce bit for bit.
fn library_fingerprint(seed: u64, cfg: &UniqConfig) -> u64 {
    let subject = Subject::from_seed(seed);
    let result = personalize_with_retry(&subject, cfg, seed, 3).expect("library personalize");
    hrtf_fingerprint(&[BatchOutcome {
        seed,
        result: Ok(result),
        seconds: 0.0,
    }])
}

#[test]
fn protocol_conformance_battery() {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            shards: 1,
            base: fast_cfg(),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();
    let mut expected_errors = 0u64;

    // Frame-level corruption the connection survives: the frame boundary
    // is known, so the stream resynchronizes and later requests work.
    let mut c = Client::connect(addr);
    c.send_raw(b"\xff\xfe not utf8 \xff\n");
    c.expect_error("invalid_utf8");
    expected_errors += 1;
    c.send("{\"type\":\"ping\" oops");
    c.expect_error("bad_json");
    expected_errors += 1;
    c.send("42");
    c.expect_error("bad_json");
    expected_errors += 1;
    c.send("{\"type\":\"personalize\"}");
    c.expect_error("missing_field");
    expected_errors += 1;
    c.send("{\"type\":\"personalize\",\"seed\":\"banana\"}");
    c.expect_error("bad_field");
    expected_errors += 1;
    c.send("{\"type\":\"personalize\",\"seed\":7,\"bogus\":true}");
    c.expect_error("unknown_field");
    expected_errors += 1;
    c.send("{\"type\":\"frobnicate\"}");
    c.expect_error("unknown_type");
    expected_errors += 1;
    let huge_plan = "x".repeat(protocol::MAX_STRING_BYTES + 1);
    c.send(&format!(
        "{{\"type\":\"personalize\",\"seed\":7,\"fault_plan\":\"{huge_plan}\"}}"
    ));
    c.expect_error("body_too_large");
    expected_errors += 1;

    // Interleaved half-frames: requests split across writes reassemble.
    c.send_raw(b"{\"type\":\"pi");
    std::thread::sleep(Duration::from_millis(20));
    c.send_raw(b"ng\"}\n{\"type\":\"ping\"}\n");
    assert_eq!(c.read_response(), Response::Pong);
    assert_eq!(c.read_response(), Response::Pong);
    drop(c);

    // Oversized frame: no newline within the line limit. Fatal — the
    // stream cannot be resynchronized, so after the typed error the
    // server closes the connection.
    let mut c = Client::connect(addr);
    let oversized = vec![b'a'; protocol::MAX_LINE_BYTES + 1];
    c.send_raw(&oversized);
    c.expect_error("line_too_long");
    expected_errors += 1;
    assert_eq!(
        c.read_raw(),
        None,
        "connection must close after line_too_long"
    );

    // Truncated frame: bytes then EOF without a newline. Nothing to
    // respond to; the server records the error and closes.
    let mut c = Client::connect(addr);
    c.send_raw(b"{\"type\":\"ping\"");
    c.stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    assert_eq!(c.read_raw(), None);
    expected_errors += 1;

    // The server survived all of it, and counted every failure.
    wait_until("error counters to settle", || {
        server.stats().errors == expected_errors
    });
    let mut c = Client::connect(addr);
    c.send("{\"type\":\"stats\"}");
    match c.read_response() {
        Response::Stats(stats) => {
            assert_eq!(stats.errors, expected_errors);
            assert_eq!(stats.requests, 0, "no personalize request was admitted");
            assert_eq!(stats.ok, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    let report = server.shutdown();
    assert_eq!(report.stats.errors, expected_errors);
    assert!(report.fingerprints.is_empty());
}

#[test]
fn random_garbage_never_kills_the_server() {
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            shards: 1,
            base: fast_cfg(),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Seeded xorshift: the byte stream is reproducible run to run.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..40 {
        let mut c = Client::connect(addr);
        let len = (next() % 512 + 1) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            let b = (next() % 256) as u8;
            // Bias in some newlines so frames actually complete.
            bytes.push(if b.is_multiple_of(11) { b'\n' } else { b });
        }
        c.send_raw(&bytes);
        c.send_raw(b"\n");
        // Drain whatever comes back until the server goes quiet or
        // closes; every line must parse as a *typed* response — the
        // server never emits garbage, whatever it is fed.
        c.stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("set timeout");
        while let Some(line) = c.read_raw() {
            protocol::parse_response(&line)
                .unwrap_or_else(|e| panic!("round {round}: unparseable reply {line:?}: {e}"));
        }
    }

    // Still alive and well-behaved.
    let mut c = Client::connect(addr);
    c.send("{\"type\":\"ping\"}");
    assert_eq!(c.read_response(), Response::Pong);
    server.shutdown();
}

#[test]
fn concurrency_preserves_fingerprints_and_cache_skips_fusion() {
    let cfg = fast_cfg();
    let subjects: u64 = 4;
    let seed_base: u64 = 300;
    let library: BTreeMap<u64, u64> = (seed_base..seed_base + subjects)
        .map(|seed| (seed, library_fingerprint(seed, &cfg)))
        .collect();

    // The same population served at 1 and at 16 concurrent clients must
    // produce bit-identical per-subject fingerprints — and they must be
    // the library path's numbers, not merely self-consistent.
    let mut by_concurrency = Vec::new();
    let memory = Arc::new(MemorySink::new());
    for clients in [1usize, 16] {
        let root = scratch(&format!("conc_{clients}"));
        // The server captures the ambient sink at start: every span its
        // workers emit lands in `memory`.
        let server = uniq_obs::with_sink(memory.clone(), || {
            Server::start(
                "127.0.0.1:0",
                ServeConfig {
                    shards: 2,
                    base: cfg.clone(),
                    store_dir: Some(root.clone()),
                    ..ServeConfig::default()
                },
            )
        })
        .expect("start server");
        let report = loadgen::run(&LoadgenConfig {
            addr: server.local_addr().to_string(),
            subjects,
            seed_base,
            clients,
            repeat: 0.0,
            ..LoadgenConfig::default()
        })
        .expect("loadgen run");
        assert_eq!(report.fingerprint_conflicts, 0);
        assert_eq!(report.ok, subjects);

        let fusion_runs_before_repeat = count_spans(&memory, "fusion");
        // Repeat one subject: the response must come from the result
        // store — flagged, zero pipeline attempts, and *no* new fusion
        // span anywhere in the server.
        let mut c = Client::connect(server.local_addr());
        c.personalize(seed_base);
        match c.read_response() {
            Response::Personalized(reply) => {
                assert!(reply.cache_hit, "repeat request must hit the cache");
                assert_eq!(reply.attempts, 0);
                assert_eq!(reply.fingerprint, library[&seed_base]);
                assert!(!reply.key.is_empty(), "cache hit carries the content key");
            }
            other => panic!("expected personalized reply, got {other:?}"),
        }
        assert_eq!(
            count_spans(&memory, "fusion"),
            fusion_runs_before_repeat,
            "a cache hit must not run fusion"
        );

        let drain = server.shutdown();
        assert_eq!(drain.stats.cache_hits, 1);
        assert_eq!(
            drain.fingerprints, library,
            "served fingerprints != library path"
        );
        by_concurrency.push(report.fingerprints);
        let _ = std::fs::remove_dir_all(&root);
    }
    assert_eq!(
        by_concurrency[0], by_concurrency[1],
        "concurrency changed the served results"
    );
}

fn count_spans(memory: &MemorySink, name: &str) -> usize {
    memory
        .events()
        .iter()
        .filter(|e| matches!(e, Event::SpanStart { name: n, .. } if *n == name))
        .count()
}

/// A [`FaultHook`] that blocks every pipeline run at its first recording
/// until the gate opens — the deterministic "slow shard" used to pin
/// requests in flight. It never corrupts anything.
#[derive(Debug)]
struct GateHook {
    open: Mutex<bool>,
    cv: Condvar,
    arrivals: AtomicU64,
}

impl GateHook {
    fn new() -> Arc<GateHook> {
        Arc::new(GateHook {
            open: Mutex::new(false),
            cv: Condvar::new(),
            arrivals: AtomicU64::new(0),
        })
    }

    fn release(&self) {
        *self.open.lock().expect("gate poisoned") = true;
        self.cv.notify_all();
    }

    fn arrivals(&self) -> u64 {
        self.arrivals.load(Ordering::SeqCst)
    }
}

impl RecordingInjector for GateHook {
    fn corrupt_recording(
        &self,
        _site: InjectionSite,
        _rec: &mut BinauralRecording,
    ) -> Vec<&'static str> {
        self.arrivals.fetch_add(1, Ordering::SeqCst);
        let mut open = self.open.lock().expect("gate poisoned");
        while !*open {
            open = self.cv.wait(open).expect("gate poisoned");
        }
        Vec::new()
    }
}

impl RateInjector for GateHook {
    fn corrupt_rates(&self, _rates_dps: &mut [f64], _dt: f64) -> Vec<&'static str> {
        Vec::new()
    }
}

impl FaultHook for GateHook {}

#[test]
fn full_queue_sheds_deterministically() {
    let gate = GateHook::new();
    let memory = Arc::new(MemorySink::new());
    let server = uniq_obs::with_sink(memory.clone(), || {
        Server::start(
            "127.0.0.1:0",
            ServeConfig {
                shards: 1,
                queue_depth: 1,
                base: fast_cfg(),
                fault_hook: Some(gate.clone()),
                ..ServeConfig::default()
            },
        )
    })
    .expect("start server");
    let addr = server.local_addr();

    // A: in flight, pinned at the gate. B: fills the depth-1 queue.
    let mut a = Client::connect(addr);
    a.personalize(900);
    wait_until("request A to reach the pipeline", || gate.arrivals() >= 1);
    let mut b = Client::connect(addr);
    b.personalize(901);
    wait_until("request B to be queued", || server.submitted() == 2);

    // C and D arrive at a full queue: shed immediately with the explicit
    // overloaded response — the connection never blocks on a full shard.
    for seed in [902u64, 903] {
        let mut c = Client::connect(addr);
        c.personalize(seed);
        match c.read_response() {
            Response::Overloaded { shard, queue_depth } => {
                assert_eq!(shard, 0);
                assert_eq!(queue_depth, 1);
            }
            other => panic!("expected overloaded, got {other:?}"),
        }
    }
    assert_eq!(server.stats().shed, 2);

    // The pinned requests still complete once the shard unblocks.
    gate.release();
    for client in [&mut a, &mut b] {
        match client.read_response() {
            Response::Personalized(reply) => {
                assert!(!reply.cache_hit);
                assert!(
                    reply.degradation.is_some(),
                    "faulted runs report degradation"
                );
            }
            other => panic!("expected personalized reply, got {other:?}"),
        }
    }

    let drain = server.shutdown();
    assert_eq!(drain.stats.requests, 4);
    assert_eq!(drain.stats.ok, 2);
    assert_eq!(drain.stats.shed, 2);
    // The shed counter the telemetry plane sees agrees with the wire.
    assert_eq!(memory.counter_total(uniq_obs::names::SERVE_SHED), 2);
    assert_eq!(memory.counter_total(uniq_obs::names::SERVE_REQUESTS), 4);
}

/// A global sink that counts flushes — proves shutdown pushes buffered
/// observability output before the process would exit.
#[derive(Debug, Default)]
struct FlushCounter {
    flushes: AtomicU64,
}

impl uniq_obs::sink::Sink for FlushCounter {
    fn on_event(&self, _event: &uniq_obs::Event) {}
    fn flush(&self) {
        self.flushes.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn graceful_shutdown_drains_flushes_and_leaves_no_torn_blobs() {
    let flushes = Arc::new(FlushCounter::default());
    // First caller wins the process-global slot; either way the flush
    // travels through flush_global_sink, which this test owns here.
    uniq_obs::set_global_sink(flushes.clone());
    let flushed_before = flushes.flushes.load(Ordering::SeqCst);

    let gate = GateHook::new();
    let root = scratch("shutdown");
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            shards: 1,
            queue_depth: 8,
            base: fast_cfg(),
            store_dir: Some(root.clone()),
            fault_hook: Some(gate.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.local_addr();

    // Two requests in flight: A pinned at the gate, B queued behind it.
    let mut a = Client::connect(addr);
    a.personalize(950);
    wait_until("request A to reach the pipeline", || gate.arrivals() >= 1);
    let mut b = Client::connect(addr);
    b.personalize(951);
    wait_until("request B to be queued", || server.submitted() == 2);

    // Shutdown on another thread: it must wait for A and B, not abort them.
    let shutdown = std::thread::spawn(move || server.shutdown());

    // While draining, new connections are refused with a *typed* response
    // — a client sees why, not a bare RST.
    wait_until("drain refusals to begin", || {
        let mut probe = Client::connect(addr);
        probe
            .stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .expect("set timeout");
        match probe.read_raw().map(|l| protocol::parse_response(&l)) {
            Some(Ok(Response::Error { kind, .. })) => kind == "shutting_down",
            _ => false,
        }
    });

    gate.release();
    for client in [&mut a, &mut b] {
        match client.read_response() {
            Response::Personalized(_) => {}
            other => panic!("in-flight request lost to shutdown: {other:?}"),
        }
    }
    let drain = shutdown.join().expect("shutdown thread");
    assert_eq!(drain.stats.ok, 2);
    assert_eq!(drain.stats.requests, 2);
    assert_eq!(drain.fingerprints.len(), 2);
    assert!(
        flushes.flushes.load(Ordering::SeqCst) > flushed_before,
        "shutdown must flush the global sink"
    );

    // Faulted requests bypass the store, so it stayed empty — but intact,
    // with no torn or temporary files left behind.
    let store = uniq_store::Store::open(&root).expect("reopen store");
    assert!(store.verify().is_clean(), "store corrupt after shutdown");
    let mut stray = Vec::new();
    scan_tmp_files(&root, &mut stray);
    assert!(
        stray.is_empty(),
        "temporary files survived shutdown: {stray:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

fn scan_tmp_files(dir: &std::path::Path, hits: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            scan_tmp_files(&path, hits);
        } else if path.to_string_lossy().contains(".tmp") {
            hits.push(path);
        }
    }
}

#[test]
fn two_shards_sustain_throughput_with_latency_profile() {
    let root = scratch("throughput");
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            shards: 2,
            base: fast_cfg(),
            store_dir: Some(root.clone()),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let subjects: u64 = 8;
    let report = loadgen::run(&LoadgenConfig {
        addr: server.local_addr().to_string(),
        subjects,
        seed_base: 40,
        clients: 4,
        repeat: 0.25,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    let drain = server.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(report.errors, 0);
    assert_eq!(report.overloaded, 0);
    assert_eq!(report.ok, report.requests);
    // Repeats (one per client at ratio 0.25) all come back from the store.
    assert_eq!(report.cache_hits, report.requests - subjects);
    assert_eq!(drain.stats.cache_hits, report.cache_hits);
    // The headline gate: two shards sustain at least 2 subjects/second on
    // the serve workload config.
    assert!(
        report.subjects_per_second >= 2.0,
        "throughput gate failed: {:.2} subjects/s",
        report.subjects_per_second
    );
    // Latency percentiles come from the uniq-profile stage histogram.
    assert!(report.p50_ms > 0.0);
    assert!(report.p99_ms >= report.p50_ms);
    let stage = report
        .profile
        .stage(uniq_obs::names::SPAN_LOADGEN_REQUEST)
        .expect("loadgen.request stage profiled");
    assert_eq!(stage.count, report.requests);
}
