//! Integration tests for the uniq-profile layer: profiling observes the
//! real pipeline without changing a single output bit, and its report
//! covers every documented stage.

use std::sync::Arc;

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize, PersonalizationResult};
use uniq_profile::ProfileSink;
use uniq_subjects::Subject;

// threads is pinned to 1: the path/self-time assertions below rely on
// every span sharing one stack. On pool workers spans root at the
// worker's own (empty) stack — cross-thread parentage is intentionally
// not stitched (see uniq-profile docs); worker attribution has its own
// coverage in the uniq-profile unit tests.
fn profile_cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 10.0,
        threads: 1,
        ..UniqConfig::fast_test()
    }
}

fn assert_results_identical(a: &PersonalizationResult, b: &PersonalizationResult) {
    assert_eq!(a.radius_m, b.radius_m);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.localization, b.localization);
    assert_eq!(a.fusion.head.a, b.fusion.head.a);
    for (x, y) in a.hrtf.far().irs().iter().zip(b.hrtf.far().irs()) {
        assert_eq!(x.left, y.left);
        assert_eq!(x.right, y.right);
    }
    for (x, y) in a.hrtf.near().irs().iter().zip(b.hrtf.near().irs()) {
        assert_eq!(x.left, y.left);
        assert_eq!(x.right, y.right);
    }
}

#[test]
fn profiling_never_changes_the_output() {
    let cfg = profile_cfg();
    let subject = Subject::from_seed(90);

    let bare = personalize(&subject, &cfg, 46).expect("bare run succeeds");
    let profile = Arc::new(ProfileSink::new());
    let profiled = uniq_obs::with_sink(profile.clone(), || {
        personalize(&subject, &cfg, 46).expect("profiled run succeeds")
    });

    assert_results_identical(&bare, &profiled);
}

#[test]
fn profile_report_covers_the_pipeline() {
    let cfg = profile_cfg();
    let subject = Subject::from_seed(91);
    let profile = Arc::new(ProfileSink::new());
    uniq_obs::with_sink(profile.clone(), || {
        personalize(&subject, &cfg, 47).expect("pipeline succeeds")
    });
    let report = profile.report();

    // Every documented pipeline stage shows up with coherent statistics.
    for stage in uniq_obs::names::PIPELINE_STAGES {
        let s = report
            .stage(stage)
            .unwrap_or_else(|| panic!("stage {stage} missing"));
        assert!(s.count >= 1);
        assert!(s.total_nanos > 0, "{stage} total is zero");
        assert!(
            u128::from(s.min_nanos) <= s.total_nanos
                && s.p50_nanos <= s.p90_nanos
                && s.p90_nanos <= s.p99_nanos
                && s.p99_nanos <= s.max_nanos,
            "{stage} percentiles disordered: {s:?}"
        );
    }
    let root = report.stage("personalize").unwrap();
    assert_eq!(root.count, 1);
    assert_eq!(root.depth, 0);
    // One channel estimation per stop.
    assert_eq!(
        report.stage("channel.estimate").unwrap().count,
        cfg.stops as u64
    );

    // Call paths root at the personalize span, and its self time plus
    // every descendant's adds back up to its total.
    assert!(!report.paths.is_empty());
    for p in &report.paths {
        assert!(
            p.path == "personalize" || p.path.starts_with("personalize;"),
            "path {} escaped the root span",
            p.path
        );
    }
    let self_sum: u128 = report.paths.iter().map(|p| p.self_nanos).sum();
    assert_eq!(
        self_sum, root.total_nanos,
        "self times must sum to the root total"
    );

    // The exporters agree with the report.
    let table = report.render_table();
    assert!(table.contains("personalize") && table.contains("p99"));
    let json = uniq_profile::json::Json::parse(&report.to_json()).expect("profile JSON parses");
    assert_eq!(
        json.get("stages").unwrap().as_array().unwrap().len(),
        report.stages.len()
    );
    let collapsed = report.collapsed_stacks();
    assert_eq!(collapsed.lines().count(), report.paths.len());
}
