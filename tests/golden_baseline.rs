//! Golden end-to-end regression: the seed-6 personalize run must
//! reproduce the HRTF fingerprint checked into `BENCH_BASELINE.json`
//! bit for bit — through the plain pipeline AND through the
//! fault-injection path with an empty plan. Any divergence means the
//! pipeline's numeric behavior changed; refresh the baseline only for
//! intentional changes (`cargo run --release -p uniq-bench --bin
//! baseline -- bless`).

use std::path::Path;
use uniq_bench::baseline::{BaselineSpec, BASELINE_FILE};
use uniq_core::batch::{hrtf_fingerprint, BatchOutcome};
use uniq_core::degrade::DegradationPolicy;
use uniq_core::pipeline::{personalize_faulted, personalize_with_retry, PersonalizationResult};
use uniq_faults::FaultPlan;
use uniq_profile::json::Json;
use uniq_subjects::Subject;

fn pinned_fingerprint() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(BASELINE_FILE);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc = Json::parse(&text).expect("BENCH_BASELINE.json parses");
    doc.get("quality")
        .and_then(|q| q.get("personalize_fingerprint"))
        .and_then(Json::as_str)
        .expect("baseline carries quality.personalize_fingerprint")
        .to_string()
}

fn fingerprint_of(seed: u64, result: &PersonalizationResult) -> String {
    format!(
        "{:#018x}",
        hrtf_fingerprint(&[BatchOutcome {
            seed,
            result: Ok(result.clone()),
            seconds: 0.0,
        }])
    )
}

#[test]
fn seed6_personalize_matches_checked_in_fingerprint() {
    let pinned = pinned_fingerprint();
    let spec = BaselineSpec::pinned();
    let cfg = spec.config(1);
    let subject = Subject::from_seed(spec.seed);

    let clean = personalize_with_retry(&subject, &cfg, spec.seed, 3).expect("pinned workload");
    assert_eq!(
        fingerprint_of(spec.seed, &clean),
        pinned,
        "clean pipeline drifted from BENCH_BASELINE.json"
    );

    // The degradation path with an empty plan must reproduce the exact
    // same bits — graceful degradation costs nothing when nothing fails.
    let faulted = personalize_faulted(
        &subject,
        &cfg,
        spec.seed,
        &FaultPlan::empty(),
        &DegradationPolicy::default(),
    )
    .expect("empty-plan workload");
    assert!(faulted.degradation.is_clean());
    assert_eq!(
        fingerprint_of(spec.seed, &faulted.result),
        pinned,
        "empty-plan fault path drifted from BENCH_BASELINE.json"
    );
}
