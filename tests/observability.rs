//! Integration tests for the uniq-obs tracing/metrics layer: the pipeline
//! emits the documented span hierarchy and quality metrics, and the
//! instrumentation never changes the numerical output.

use std::sync::Arc;

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize, personalize_with_retry, PersonalizationResult};
use uniq_obs::sink::{MemorySink, NoopSink};
use uniq_obs::Event;
use uniq_subjects::Subject;

fn obs_cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 10.0,
        ..UniqConfig::fast_test()
    }
}

#[test]
fn pipeline_emits_expected_span_hierarchy() {
    let cfg = obs_cfg();
    let subject = Subject::from_seed(70);
    let memory = Arc::new(MemorySink::new());
    uniq_obs::with_sink(memory.clone(), || {
        personalize(&subject, &cfg, 42).expect("pipeline succeeds")
    });

    let tree = memory.span_tree();
    assert!(!tree.is_empty(), "no spans recorded");

    // Root span at depth 0, everything else nested beneath it.
    assert_eq!(tree[0], ("personalize".to_string(), 0));
    for (name, depth) in &tree[1..] {
        assert!(*depth >= 1, "span {name} escaped the personalize root");
    }

    // Stage spans appear, each directly under `personalize`.
    for stage in [
        "session",
        "fusion",
        "nearfield.assemble",
        "nearfield.interpolate",
        "nearfar.convert",
    ] {
        let depth = tree
            .iter()
            .find(|(name, _)| name == stage)
            .unwrap_or_else(|| panic!("missing span {stage}"))
            .1;
        assert_eq!(depth, 1, "span {stage} not nested directly under root");
    }

    // Channel estimation runs once per stop, inside `session`.
    let per_stop: Vec<usize> = tree
        .iter()
        .filter(|(name, _)| name == "channel.estimate")
        .map(|(_, depth)| *depth)
        .collect();
    assert_eq!(per_stop.len(), cfg.stops, "one channel span per stop");
    assert!(per_stop.iter().all(|d| *d == 2));

    // Span timings are recorded and the root dominates its children.
    let root_nanos = memory.span_nanos("personalize");
    assert!(root_nanos > 0);
    assert!(memory.span_nanos("fusion") <= root_nanos);
}

#[test]
fn pipeline_records_quality_metrics() {
    let cfg = obs_cfg();
    let subject = Subject::from_seed(71);
    let memory = Arc::new(MemorySink::new());
    let result = uniq_obs::with_sink(memory.clone(), || {
        personalize_with_retry(&subject, &cfg, 43, 3).expect("pipeline succeeds")
    });

    // Per-stop fusion residuals: one per localized stop, all finite.
    let residuals = memory.metric_values("fusion.stop_residual_deg");
    assert!(!residuals.is_empty());
    assert!(residuals.iter().all(|r| r.is_finite() && *r >= 0.0));
    let mean = memory.metric_values("fusion.mean_residual_deg");
    assert_eq!(mean.len(), 1);

    // First-tap SNR: emitted per ear per stop, positive for a 45 dB setup.
    let snrs = memory.metric_values("channel.first_tap_snr_db");
    assert!(!snrs.is_empty());
    assert!(snrs.iter().all(|s| *s > 0.0), "snrs: {snrs:?}");

    // The estimated radius metric matches the returned result.
    let radius = memory.metric_values("personalize.radius_m");
    assert_eq!(radius.last().copied(), Some(result.radius_m));

    // Attempts metric matches the retry count the caller sees.
    let attempts = memory.metric_values("personalize.attempts");
    assert_eq!(attempts.last().copied(), Some(result.attempts as f64));

    // Interpolation-quality diagnostics are emitted when a sink is active.
    assert!(!memory
        .metric_values("nearfield.interp_tap_dev_mean")
        .is_empty());
}

fn assert_results_identical(a: &PersonalizationResult, b: &PersonalizationResult) {
    assert_eq!(a.radius_m, b.radius_m);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.localization, b.localization);
    assert_eq!(a.fusion.head.a, b.fusion.head.a);
    for (x, y) in a.hrtf.far().irs().iter().zip(b.hrtf.far().irs()) {
        assert_eq!(x.left, y.left);
        assert_eq!(x.right, y.right);
    }
    for (x, y) in a.hrtf.near().irs().iter().zip(b.hrtf.near().irs()) {
        assert_eq!(x.left, y.left);
        assert_eq!(x.right, y.right);
    }
}

#[test]
fn instrumentation_never_changes_the_output() {
    // Observability must observe: identical results with no sink, the
    // no-op sink and the recording sink, bit for bit.
    let cfg = obs_cfg();
    let subject = Subject::from_seed(72);

    let bare = personalize(&subject, &cfg, 44).expect("bare run succeeds");
    let noop = uniq_obs::with_sink(Arc::new(NoopSink), || {
        personalize(&subject, &cfg, 44).expect("noop run succeeds")
    });
    let recorded = uniq_obs::with_sink(Arc::new(MemorySink::new()), || {
        personalize(&subject, &cfg, 44).expect("recorded run succeeds")
    });

    assert_results_identical(&bare, &noop);
    assert_results_identical(&bare, &recorded);
}

#[test]
fn every_emitted_name_is_registered() {
    // Exercise the full instrumented surface — the pipeline (clean and
    // faulted), the batch runner, both AoA estimators, and the render
    // layer — and check that every span, metric and counter name it
    // emits is declared in `uniq_obs::names`. A name minted inline at an
    // instrumentation site would dodge the profiler's stage registry,
    // the telemetry registry (which silently drops unknown names), and
    // the baseline gate.
    let cfg = obs_cfg();
    let memory = Arc::new(MemorySink::new());
    uniq_obs::with_sink(memory.clone(), || {
        let subject = Subject::from_seed(73);
        let result = personalize(&subject, &cfg, 45).expect("pipeline succeeds");

        let batch_cfg = UniqConfig {
            threads: 2,
            ..cfg.clone()
        };
        uniq_core::batch::personalize_batch(&[73, 74], &batch_cfg, 2, 1);
        // An impossible residual bound rejects every gesture, exercising
        // the rejection, retry, and batch-failure counters.
        let failing_cfg = UniqConfig {
            max_fusion_residual_deg: 0.001,
            ..batch_cfg.clone()
        };
        uniq_core::batch::personalize_batch(&[75], &failing_cfg, 1, 2);

        // Faulted run: the degradation path has its own counters.
        let plan = uniq_faults::FaultPlan::parse("drop@2,snr:-9@4", 9).expect("plan parses");
        let policy = uniq_core::degrade::DegradationPolicy::default();
        uniq_core::pipeline::personalize_faulted(&subject, &cfg, 46, &plan, &policy)
            .expect("faulted run succeeds");

        let table = &result.hrtf;
        let sig = uniq_acoustics::signals::generate(
            uniq_acoustics::signals::SignalKind::WhiteNoise,
            0.4,
            table.sample_rate(),
            9,
        );
        let rendered = table.synthesize(&sig, 60.0, true);
        let rec = uniq_acoustics::measure::BinauralRecording {
            left: rendered.left,
            right: rendered.right,
        };
        uniq_core::aoa::estimate_known_source(&rec, &sig, table.far(), &cfg);
        uniq_core::aoa::estimate_unknown_source(&rec, table.far(), &cfg);

        // Render layer: snapshot mix, motion timeline, comparison metrics.
        let sample_rate = table.sample_rate();
        let artifact = uniq_store::HrtfArtifact::from_result(45, &result, cfg.content_hash(), None);
        let engine = uniq_render::BinauralEngine::new(result.hrtf);
        let mut scene = uniq_render::Scene::new();
        scene.add("voice", uniq_geometry::Vec2::new(-2.0, 1.0), 1.0);
        let pose = uniq_render::ListenerPose::default();
        let out = engine.render_scene(&scene, &pose, &sig);
        let poses = uniq_render::motion::turning_head(0.0, 40.0, 4);
        uniq_render::motion::render_with_motion(&engine, &scene, &poses, &sig, 256, 64);
        uniq_render::metrics::compare(&out, &out, sample_rate);

        // Memory profiler: summarizing a snapshot emits the alloc.* span,
        // counters and metrics. (This test binary does not install the
        // counting allocator, so the snapshot is empty — the audit checks
        // names, not values.)
        uniq_memprof::snapshot().emit_obs_summary();

        // Artifact store: put (twice, so the dedup counter fires), get,
        // and a deep verify exercise every store.* span and metric.
        let root = std::env::temp_dir().join(format!("uniq_obs_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = uniq_store::Store::open(&root).expect("open scratch store");
        let outcome = store.put(&artifact).expect("store put");
        assert!(store.put(&artifact).expect("dedup put").deduped);
        store.get(&outcome.key).expect("store get");
        assert!(store.verify().is_clean());
        drop(store);
        let _ = std::fs::remove_dir_all(&root);

        // Serve layer: a live server under loadgen emits the
        // serve.request span, admission/cache counters and the request
        // timing metric, while the harness emits loadgen.request. A
        // malformed line fires serve.errors, and a gated depth-1 queue
        // fires serve.shed deterministically.
        let serve_root =
            std::env::temp_dir().join(format!("uniq_obs_serve_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&serve_root);
        let server = uniq_serve::Server::start(
            "127.0.0.1:0",
            uniq_serve::ServeConfig {
                shards: 1,
                base: cfg.clone(),
                store_dir: Some(serve_root.clone()),
                ..Default::default()
            },
        )
        .expect("start audit server");
        uniq_serve::loadgen::run(&uniq_serve::LoadgenConfig {
            addr: server.local_addr().to_string(),
            subjects: 1,
            seed_base: 73,
            clients: 1,
            repeat: 1.0,
            ..Default::default()
        })
        .expect("audit loadgen");
        send_serve_line(server.local_addr(), "definitely not json");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&serve_root);

        let gate = Arc::new(ObsGateHook::default());
        let gated = uniq_serve::Server::start(
            "127.0.0.1:0",
            uniq_serve::ServeConfig {
                shards: 1,
                queue_depth: 1,
                base: cfg.clone(),
                fault_hook: Some(gate.clone()),
                ..Default::default()
            },
        )
        .expect("start gated server");
        let addr = gated.local_addr();
        // A pinned in flight, B filling the queue, C shed.
        let mut streams = Vec::new();
        streams.push(send_serve_request(addr, 80));
        wait_for("request A to reach the pipeline", || {
            gate.arrivals.load(std::sync::atomic::Ordering::SeqCst) >= 1
        });
        streams.push(send_serve_request(addr, 81));
        wait_for("request B to be queued", || gated.submitted() == 2);
        send_serve_request(addr, 82);
        wait_for("request C to be shed", || gated.stats().shed == 1);
        gate.release();
        drop(streams);
        gated.shutdown();
    });

    let events = memory.events();
    assert!(!events.is_empty(), "no events recorded");
    let mut emitted_spans = std::collections::BTreeSet::new();
    let mut emitted_metrics = std::collections::BTreeSet::new();
    for event in &events {
        match event {
            Event::SpanStart { name, .. } | Event::SpanEnd { name, .. } => {
                emitted_spans.insert(*name);
                assert!(
                    uniq_obs::names::ALL_SPANS.contains(name),
                    "span {name:?} is not in uniq_obs::names::ALL_SPANS"
                );
            }
            Event::Metric { name, .. } | Event::Counter { name, .. } => {
                emitted_metrics.insert(*name);
                assert!(
                    uniq_obs::names::ALL_METRICS.contains(name),
                    "metric/counter {name:?} is not in uniq_obs::names::ALL_METRICS"
                );
            }
        }
    }

    // Reverse audit: every *registered* name is either exercised by the
    // workload above or on the explicit allow-list of names emitted only
    // by machinery this in-process workload cannot reach. A registered
    // name nobody emits is dead weight that silently rots.
    const EMITTED_ELSEWHERE: &[&str] = &[
        // Aggregated by TelemetrySink at snapshot time, not via a sink event.
        uniq_obs::names::OBS_TELEMETRY_OVERHEAD_NS,
    ];
    for name in uniq_obs::names::ALL_SPANS {
        assert!(
            emitted_spans.contains(name) || EMITTED_ELSEWHERE.contains(name),
            "registered span {name:?} was never emitted by the audit workload; \
             exercise it here or add it to EMITTED_ELSEWHERE with a reason"
        );
    }
    for name in uniq_obs::names::ALL_METRICS {
        assert!(
            emitted_metrics.contains(name) || EMITTED_ELSEWHERE.contains(name),
            "registered metric {name:?} was never emitted by the audit workload; \
             exercise it here or add it to EMITTED_ELSEWHERE with a reason"
        );
    }
}

/// Polls until `probe` holds — sequences the serve audit workload
/// without sleeping for fixed durations.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    for _ in 0..2000 {
        if probe() {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Writes one raw line to the serve socket and waits for the response
/// line (a typed error for malformed input).
fn send_serve_line(addr: std::net::SocketAddr, line: &str) {
    use std::io::{BufRead, BufReader, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to audit server");
    stream.write_all(line.as_bytes()).expect("write line");
    stream.write_all(b"\n").expect("write newline");
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .expect("read reply");
    assert!(!reply.is_empty(), "server closed without responding");
}

/// Fires a personalize request and keeps the connection open so the
/// reply has somewhere to land.
fn send_serve_request(addr: std::net::SocketAddr, seed: u64) -> std::net::TcpStream {
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to audit server");
    stream
        .write_all(format!("{{\"type\":\"personalize\",\"seed\":{seed}}}\n").as_bytes())
        .expect("write request");
    stream
}

/// Blocks every pipeline run at its first recording until released — a
/// deterministic way to pin the gated server's single shard so the
/// audit can fill its queue and observe a shed.
#[derive(Debug, Default)]
struct ObsGateHook {
    open: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
    arrivals: std::sync::atomic::AtomicU64,
}

impl ObsGateHook {
    fn release(&self) {
        *self.open.lock().expect("gate poisoned") = true;
        self.cv.notify_all();
    }
}

impl uniq_acoustics::measure::RecordingInjector for ObsGateHook {
    fn corrupt_recording(
        &self,
        _site: uniq_acoustics::measure::InjectionSite,
        _rec: &mut uniq_acoustics::measure::BinauralRecording,
    ) -> Vec<&'static str> {
        self.arrivals
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let mut open = self.open.lock().expect("gate poisoned");
        while !*open {
            open = self.cv.wait(open).expect("gate poisoned");
        }
        Vec::new()
    }
}

impl uniq_imu::gyro::RateInjector for ObsGateHook {
    fn corrupt_rates(&self, _rates_dps: &mut [f64], _dt: f64) -> Vec<&'static str> {
        Vec::new()
    }
}

impl uniq_core::FaultHook for ObsGateHook {}
