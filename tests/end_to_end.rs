//! Cross-crate integration tests: the full UNIQ pipeline from simulated
//! gesture to personalized HRTF and its applications.

use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
use uniq_core::aoa::{estimate_known_source, front_back_accuracy};
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize, personalize_with_retry};
use uniq_geometry::vec2::angle_diff_deg;
use uniq_subjects::{evaluation_cohort, global_template, Subject};

fn integration_cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 10.0,
        ..UniqConfig::fast_test()
    }
}

#[test]
fn full_pipeline_personalizes_a_cohort_member() {
    let cfg = integration_cfg();
    let subject = &evaluation_cohort()[0];
    let result = personalize(subject, &cfg, 7).expect("pipeline succeeds");

    // Output structure.
    assert_eq!(result.hrtf.near().len(), cfg.output_grid().len());
    assert_eq!(result.hrtf.far().len(), cfg.output_grid().len());
    assert!(result.radius_m > cfg.min_radius_m);

    // Head parameters within anthropometric distance of the truth.
    assert!((result.fusion.head.a - subject.head.a).abs() < 0.015);
}

#[test]
fn personalization_beats_global_template_end_to_end() {
    // The paper's headline result (Figs 18–19) as an integration gate.
    let cfg = integration_cfg();
    let subject = &evaluation_cohort()[1];
    let result = personalize(subject, &cfg, 11).unwrap();

    let grid = cfg.output_grid();
    let truth = subject.ground_truth(cfg.render, &grid);
    let global = global_template(cfg.render, &grid);

    let mut personal = 0.0;
    let mut generic = 0.0;
    for ((est, glob), gt) in result
        .hrtf
        .far()
        .irs()
        .iter()
        .zip(global.irs())
        .zip(truth.irs())
    {
        let (pl, pr) = est.similarity(gt);
        let (gl, gr) = glob.similarity(gt);
        personal += (pl + pr) / 2.0;
        generic += (gl + gr) / 2.0;
    }
    let n = grid.len() as f64;
    assert!(
        personal / n > generic / n,
        "personal {personal} vs global {generic}"
    );
}

#[test]
fn personalized_hrtf_improves_known_source_aoa() {
    // The §4.5 application as an integration gate: AoA with the
    // personalized template beats AoA with the global template.
    let cfg = integration_cfg();
    let subject = &evaluation_cohort()[2];
    let result = personalize(subject, &cfg, 13).unwrap();

    let renderer = subject.renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
    let setup = MeasurementSetup::anechoic(cfg.render.sample_rate, 40.0);
    let probe = cfg.probe();
    let global = global_template(cfg.render, &cfg.output_grid());

    let mut personal_err = 0.0;
    let mut global_err = 0.0;
    let mut pairs_personal = Vec::new();
    for (i, truth) in [25.0, 60.0, 115.0, 150.0].iter().enumerate() {
        let rec = record_plane_wave(&renderer, &setup, *truth, &probe, 20 + i as u64);
        let est_p = estimate_known_source(&rec, &probe, result.hrtf.far(), &cfg);
        let est_g = estimate_known_source(&rec, &probe, &global, &cfg);
        personal_err += angle_diff_deg(est_p, *truth);
        global_err += angle_diff_deg(est_g, *truth);
        pairs_personal.push((est_p, *truth));
    }
    assert!(
        personal_err <= global_err,
        "personal {personal_err} vs global {global_err}"
    );
    // Front/back should be mostly right with the personal template.
    assert!(front_back_accuracy(&pairs_personal) >= 0.75);
}

#[test]
fn retry_loop_survives_a_sloppy_volunteer() {
    // Volunteers 4–5 perform the severe gesture; the pipeline may need a
    // retry, but must converge within three attempts.
    let cfg = integration_cfg();
    let subject = &evaluation_cohort()[4];
    let result = personalize_with_retry(subject, &cfg, 17, 3).expect("retry loop converges");
    assert!(result.attempts <= 3);
}

#[test]
fn pipeline_works_inside_a_reverberant_room() {
    // §4.6: room echoes are gated out; the pipeline runs at home, not in
    // an anechoic chamber.
    let cfg = UniqConfig {
        in_room: true,
        ..integration_cfg()
    };
    let subject = Subject::from_seed(300);
    let result = personalize(&subject, &cfg, 23).expect("pipeline succeeds in a room");
    let errs: Vec<f64> = result
        .localization
        .iter()
        .map(|(t, e)| angle_diff_deg(*t, *e))
        .collect();
    assert!(uniq_dsp::stats::median(&errs) < 10.0);
}

#[test]
fn binaural_rendering_through_personalized_hrtf() {
    // HRTF → render crate integration: a virtual source placed left is
    // heard louder on the left through the personalized table.
    let cfg = integration_cfg();
    let subject = Subject::from_seed(301);
    let result = personalize(&subject, &cfg, 29).unwrap();

    let engine = uniq_render::BinauralEngine::new(result.hrtf);
    let mut scene = uniq_render::Scene::new();
    scene.add("voice", uniq_geometry::Vec2::new(-3.0, 1.0), 1.0);
    let sig = uniq_dsp::signal::linear_chirp(200.0, 10_000.0, 0.05, cfg.render.sample_rate);
    let out = engine.render_scene(&scene, &uniq_render::ListenerPose::default(), &sig);
    let el: f64 = out.left.iter().map(|v| v * v).sum();
    let er: f64 = out.right.iter().map(|v| v * v).sum();
    assert!(
        el > er,
        "left virtual source not left-dominant: {el} vs {er}"
    );
}
