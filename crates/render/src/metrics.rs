//! Perceptual-proxy metrics — toward the paper's §7 "externalization"
//! evaluation.
//!
//! True externalization needs human listeners; the paper instead shows its
//! HRTFs are "mathematically close to true HRTFs". This module provides
//! the objective proxies that literature uses before a user study:
//! log-spectral distortion, broadband ITD/ILD errors, and a combined
//! proxy score comparing a *rendered* binaural signal against what a real
//! source at the same location would have produced at the ears.

use uniq_core::hrtf::BinauralSignal;
use uniq_dsp::stft::log_spectral_distortion;
use uniq_dsp::xcorr::xcorr_peak_lag_subsample;

/// Objective comparison of a rendered binaural signal against a reference.
#[derive(Debug, Clone, Copy)]
pub struct BinauralMetrics {
    /// Mean absolute log-spectral distortion across both ears, dB.
    pub lsd_db: f64,
    /// Interaural time-difference error, samples.
    pub itd_error_samples: f64,
    /// Interaural level-difference error, dB.
    pub ild_error_db: f64,
}

impl BinauralMetrics {
    /// A combined proxy score in `[0, 1]`: 1 = indistinguishable cues.
    /// Weights follow the usual perceptual priorities (ITD ≲ 1 sample and
    /// ILD ≲ 1 dB are near-inaudible; LSD matters above a few dB).
    pub fn externalization_proxy(&self) -> f64 {
        let itd_term = (-self.itd_error_samples.abs() / 2.0).exp();
        let ild_term = (-self.ild_error_db.abs() / 3.0).exp();
        let lsd_term = (-self.lsd_db.max(0.0) / 6.0).exp();
        (itd_term * ild_term * lsd_term).cbrt()
    }
}

/// Computes the metrics between a rendered signal and a reference (what a
/// real source would have produced), both at `sample_rate`.
///
/// # Panics
/// Panics if either signal is empty.
pub fn compare(
    rendered: &BinauralSignal,
    reference: &BinauralSignal,
    sample_rate: f64,
) -> BinauralMetrics {
    assert!(
        !rendered.left.is_empty() && !reference.left.is_empty(),
        "cannot compare empty signals"
    );
    let _span = uniq_obs::span(uniq_obs::names::SPAN_RENDER_METRICS);

    // Frame-averaged log-spectral distortion per ear over the audible band.
    let lsd = |a: &[f64], b: &[f64]| -> f64 {
        log_spectral_distortion(a, b, sample_rate, 200.0, 16_000.0)
    };
    let lsd_db =
        0.5 * (lsd(&rendered.left, &reference.left) + lsd(&rendered.right, &reference.right));

    // ITD via interaural cross-correlation lag.
    let itd = |s: &BinauralSignal| xcorr_peak_lag_subsample(&s.left, &s.right);
    let itd_error_samples = (itd(rendered) - itd(reference)).abs();

    // ILD in dB.
    let ild = |s: &BinauralSignal| -> f64 {
        let e = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().max(1e-30);
        10.0 * (e(&s.left) / e(&s.right)).log10()
    };
    let ild_error_db = (ild(rendered) - ild(reference)).abs();

    let m = BinauralMetrics {
        lsd_db,
        itd_error_samples,
        ild_error_db,
    };
    uniq_obs::metric(
        uniq_obs::names::RENDER_EXTERNALIZATION_PROXY,
        m.externalization_proxy(),
        "score",
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_acoustics::types::RenderConfig;
    use uniq_core::hrtf::PersonalHrtf;
    use uniq_dsp::conv::convolve;
    use uniq_geometry::{HeadBoundary, HeadParams};

    fn subject_renderer(seed: u64) -> Renderer {
        Renderer::new(
            HeadBoundary::new(HeadParams::average_adult(), 512),
            PinnaModel::from_seed(seed),
            PinnaModel::from_seed(seed + 1),
            RenderConfig::default(),
        )
    }

    fn ear_truth(r: &Renderer, theta: f64, sig: &[f64]) -> BinauralSignal {
        let ir = r.render_plane(theta);
        BinauralSignal {
            left: convolve(sig, &ir.left),
            right: convolve(sig, &ir.right),
        }
    }

    #[test]
    fn identical_signals_score_perfect() {
        let r = subject_renderer(800);
        let sig = uniq_dsp::signal::linear_chirp(200.0, 10_000.0, 0.05, 48_000.0);
        let truth = ear_truth(&r, 50.0, &sig);
        let m = compare(&truth, &truth, 48_000.0);
        assert!(m.lsd_db < 1e-9);
        assert!(m.itd_error_samples < 1e-9);
        assert!(m.ild_error_db < 1e-9);
        assert!((m.externalization_proxy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn own_hrtf_beats_other_subjects_hrtf() {
        // Render through the subject's own table vs another subject's: the
        // proxy must rank "own" higher — the quantitative version of the
        // paper's externalization goal.
        let truth_renderer = subject_renderer(800);
        let own = PersonalHrtf::new(
            truth_renderer
                .near_field_bank(&[30.0, 50.0, 70.0], 0.4)
                .expect("0.4 m clears the head"),
            truth_renderer.ground_truth_bank(&[30.0, 50.0, 70.0]),
            HeadParams::average_adult(),
        );
        let other_renderer = subject_renderer(900);
        let other = PersonalHrtf::new(
            other_renderer
                .near_field_bank(&[30.0, 50.0, 70.0], 0.4)
                .expect("0.4 m clears the head"),
            other_renderer.ground_truth_bank(&[30.0, 50.0, 70.0]),
            HeadParams::average_adult(),
        );

        let sig = uniq_dsp::signal::linear_chirp(200.0, 12_000.0, 0.1, 48_000.0);
        let reference = ear_truth(&truth_renderer, 50.0, &sig);
        let own_rendered = own.synthesize(&sig, 50.0, true);
        let other_rendered = other.synthesize(&sig, 50.0, true);

        let m_own = compare(&own_rendered, &reference, 48_000.0);
        let m_other = compare(&other_rendered, &reference, 48_000.0);
        assert!(
            m_own.externalization_proxy() > m_other.externalization_proxy(),
            "own {:.3} vs other {:.3}",
            m_own.externalization_proxy(),
            m_other.externalization_proxy()
        );
    }

    #[test]
    fn itd_error_detected() {
        let r = subject_renderer(810);
        let sig = uniq_dsp::signal::linear_chirp(300.0, 8000.0, 0.05, 48_000.0);
        let reference = ear_truth(&r, 60.0, &sig);
        // Shift one ear by 5 samples → ITD error ≈ 5.
        let mut skewed = reference.clone();
        skewed.right = uniq_dsp::align::shift_signal(&skewed.right, 5);
        let m = compare(&skewed, &reference, 48_000.0);
        assert!(
            (m.itd_error_samples - 5.0).abs() < 1.0,
            "itd error {}",
            m.itd_error_samples
        );
        assert!(m.externalization_proxy() < 0.6);
    }

    #[test]
    fn ild_error_detected() {
        let r = subject_renderer(820);
        let sig = uniq_dsp::signal::linear_chirp(300.0, 8000.0, 0.05, 48_000.0);
        let reference = ear_truth(&r, 60.0, &sig);
        let mut skewed = reference.clone();
        for v in skewed.left.iter_mut() {
            *v *= 2.0; // +6 dB on one ear
        }
        let m = compare(&skewed, &reference, 48_000.0);
        assert!(
            (m.ild_error_db - 6.0).abs() < 0.5,
            "ild error {}",
            m.ild_error_db
        );
    }

    #[test]
    #[should_panic(expected = "empty signals")]
    fn empty_signals_rejected() {
        let empty = BinauralSignal {
            left: vec![],
            right: vec![],
        };
        compare(&empty, &empty, 48_000.0);
    }
}
