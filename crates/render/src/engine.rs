//! Snapshot rendering: a scene at one instant through the personalized
//! HRTF.

use crate::scene::{ListenerPose, Scene};
use uniq_core::hrtf::{BinauralSignal, PersonalHrtf};

/// A binaural rendering engine bound to one user's HRTF.
#[derive(Debug, Clone)]
pub struct BinauralEngine {
    hrtf: PersonalHrtf,
}

impl BinauralEngine {
    /// Creates an engine for a personalized (or global) HRTF table.
    pub fn new(hrtf: PersonalHrtf) -> Self {
        BinauralEngine { hrtf }
    }

    /// The underlying HRTF table.
    pub fn hrtf(&self) -> &PersonalHrtf {
        &self.hrtf
    }

    /// Renders `signal` as if emitted from every source in the scene
    /// simultaneously (all sources share the signal — see
    /// [`BinauralEngine::render_sources`] for distinct signals), heard by
    /// a listener at `pose`. Sources at the listener position are skipped.
    pub fn render_scene(
        &self,
        scene: &Scene,
        pose: &ListenerPose,
        signal: &[f64],
    ) -> BinauralSignal {
        let pairs: Vec<(&[f64], _)> = scene.sources.iter().map(|s| (signal, s)).collect();
        self.mix(pose, &pairs)
    }

    /// Renders per-source signals (each source its own audio) and mixes.
    ///
    /// # Panics
    /// Panics if `signals` and scene sources differ in count.
    pub fn render_sources(
        &self,
        scene: &Scene,
        pose: &ListenerPose,
        signals: &[Vec<f64>],
    ) -> BinauralSignal {
        assert_eq!(
            signals.len(),
            scene.sources.len(),
            "one signal per source required"
        );
        let pairs: Vec<(&[f64], _)> = signals
            .iter()
            .map(Vec::as_slice)
            .zip(&scene.sources)
            .collect();
        self.mix(pose, &pairs)
    }

    fn mix(
        &self,
        pose: &ListenerPose,
        pairs: &[(&[f64], &crate::scene::SceneSource)],
    ) -> BinauralSignal {
        let _span = uniq_obs::span(uniq_obs::names::SPAN_RENDER_ENGINE);
        if !pairs.is_empty() {
            uniq_obs::counter(uniq_obs::names::RENDER_SOURCES, pairs.len() as u64);
        }
        let mut left: Vec<f64> = Vec::new();
        let mut right: Vec<f64> = Vec::new();
        for (signal, source) in pairs {
            let rel = pose.world_to_head(source.position);
            if rel.norm() < 1e-9 {
                continue;
            }
            let scaled: Vec<f64> = signal.iter().map(|v| v * source.gain).collect();
            let out = self.hrtf.synthesize_at(&scaled, rel);
            accumulate(&mut left, &out.left);
            accumulate(&mut right, &out.right);
        }
        let n = left.len().max(right.len());
        left.resize(n, 0.0);
        right.resize(n, 0.0);
        BinauralSignal { left, right }
    }
}

fn accumulate(acc: &mut Vec<f64>, add: &[f64]) {
    if acc.len() < add.len() {
        acc.resize(add.len(), 0.0);
    }
    for (a, b) in acc.iter_mut().zip(add) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::Scene;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_acoustics::types::RenderConfig;
    use uniq_geometry::{HeadBoundary, HeadParams, Vec2};

    fn engine() -> BinauralEngine {
        let cfg = RenderConfig::default();
        let head = HeadParams::average_adult();
        let r = Renderer::new(
            HeadBoundary::new(head, 512),
            PinnaModel::from_seed(201),
            PinnaModel::from_seed(202),
            cfg,
        );
        let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
        let hrtf = PersonalHrtf::new(
            r.near_field_bank(&angles, 0.4)
                .expect("0.4 m clears the head"),
            r.ground_truth_bank(&angles),
            head,
        );
        BinauralEngine::new(hrtf)
    }

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn empty_scene_renders_silence() {
        let e = engine();
        let out = e.render_scene(&Scene::new(), &ListenerPose::default(), &[1.0; 64]);
        assert!(out.left.is_empty() && out.right.is_empty());
    }

    #[test]
    fn left_source_louder_left() {
        let e = engine();
        let mut scene = Scene::new();
        scene.add("voice", Vec2::new(-3.0, 0.0), 1.0);
        // Broadband signal so the head-shadow low-pass dominates any
        // per-ear pinna comb differences.
        let sig = uniq_dsp::signal::linear_chirp(200.0, 12_000.0, 0.05, 48_000.0);
        let out = e.render_scene(&scene, &ListenerPose::default(), &sig);
        assert!(energy(&out.left) > 1.3 * energy(&out.right));
    }

    #[test]
    fn head_rotation_keeps_world_direction() {
        // Source fixed ahead in the world; listener turns to face it after
        // starting turned away. Facing it, the ears balance.
        let e = engine();
        let mut scene = Scene::new();
        scene.add("piano", Vec2::new(0.0, 3.0), 1.0);
        let sig = uniq_dsp::signal::linear_chirp(200.0, 12_000.0, 0.05, 48_000.0);

        let askew = ListenerPose {
            position: Vec2::ZERO,
            heading_deg: 60.0,
        };
        let facing = ListenerPose::default();
        let out_askew = e.render_scene(&scene, &askew, &sig);
        let out_facing = e.render_scene(&scene, &facing, &sig);

        let imbalance =
            |o: &uniq_core::hrtf::BinauralSignal| (energy(&o.left) / energy(&o.right)).ln().abs();
        assert!(
            imbalance(&out_facing) < imbalance(&out_askew),
            "facing the source should balance the ears"
        );
    }

    #[test]
    fn two_sources_mix_linearly() {
        let e = engine();
        let sig = uniq_dsp::signal::tone(500.0, 0.01, 48_000.0);
        let pose = ListenerPose::default();

        let mut left_scene = Scene::new();
        left_scene.add("l", Vec2::new(-2.0, 0.0), 1.0);
        let mut right_scene = Scene::new();
        right_scene.add("r", Vec2::new(2.0, 0.0), 1.0);
        let mut both = Scene::new();
        both.add("l", Vec2::new(-2.0, 0.0), 1.0);
        both.add("r", Vec2::new(2.0, 0.0), 1.0);

        let a = e.render_scene(&left_scene, &pose, &sig);
        let b = e.render_scene(&right_scene, &pose, &sig);
        let ab = e.render_scene(&both, &pose, &sig);
        for k in 0..ab.left.len() {
            let expect = a.left.get(k).unwrap_or(&0.0) + b.left.get(k).unwrap_or(&0.0);
            assert!((ab.left[k] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn gain_scales_output() {
        let e = engine();
        let sig = uniq_dsp::signal::tone(500.0, 0.01, 48_000.0);
        let pose = ListenerPose::default();
        let mut quiet = Scene::new();
        quiet.add("s", Vec2::new(-2.0, 1.0), 0.5);
        let mut loud = Scene::new();
        loud.add("s", Vec2::new(-2.0, 1.0), 1.0);
        let q = e.render_scene(&quiet, &pose, &sig);
        let l = e.render_scene(&loud, &pose, &sig);
        assert!((energy(&l.left) / energy(&q.left) - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one signal per source")]
    fn render_sources_count_mismatch() {
        let e = engine();
        let mut scene = Scene::new();
        scene.add("a", Vec2::new(1.0, 1.0), 1.0);
        e.render_sources(&scene, &ListenerPose::default(), &[]);
    }
}
