//! Minimal 16-bit PCM WAV output for binaural renders.
//!
//! Examples and downstream tools write what the listener would hear; a
//! RIFF/WAVE writer needs ~40 lines, so we avoid an external dependency.

use uniq_core::hrtf::BinauralSignal;

/// Serializes interleaved stereo 16-bit PCM WAV bytes from a binaural
/// signal, clamping samples to `[-1, 1]`.
///
/// ```
/// use uniq_core::hrtf::BinauralSignal;
/// use uniq_render::wav::to_wav_bytes;
/// let s = BinauralSignal { left: vec![0.0; 480], right: vec![0.0; 480] };
/// let bytes = to_wav_bytes(&s, 48_000.0);
/// assert_eq!(&bytes[..4], b"RIFF");
/// assert_eq!(bytes.len(), 44 + 480 * 4);
/// ```
///
/// # Panics
/// Panics if the channel lengths differ or the sample rate is not a
/// positive integer-representable value.
pub fn to_wav_bytes(signal: &BinauralSignal, sample_rate: f64) -> Vec<u8> {
    assert_eq!(
        signal.left.len(),
        signal.right.len(),
        "stereo channels must match"
    );
    assert!(
        sample_rate > 0.0 && sample_rate <= u32::MAX as f64,
        "bad sample rate {sample_rate}"
    );
    let sr = sample_rate.round() as u32;
    let n = signal.left.len() as u32;
    let data_bytes = n * 4; // 2 channels × 2 bytes
    let mut out = Vec::with_capacity(44 + data_bytes as usize);

    // RIFF header.
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&(36 + data_bytes).to_le_bytes());
    out.extend_from_slice(b"WAVE");
    // fmt chunk: PCM, stereo, 16-bit.
    out.extend_from_slice(b"fmt ");
    out.extend_from_slice(&16u32.to_le_bytes());
    out.extend_from_slice(&1u16.to_le_bytes()); // PCM
    out.extend_from_slice(&2u16.to_le_bytes()); // channels
    out.extend_from_slice(&sr.to_le_bytes());
    out.extend_from_slice(&(sr * 4).to_le_bytes()); // byte rate
    out.extend_from_slice(&4u16.to_le_bytes()); // block align
    out.extend_from_slice(&16u16.to_le_bytes()); // bits per sample
                                                 // data chunk.
    out.extend_from_slice(b"data");
    out.extend_from_slice(&data_bytes.to_le_bytes());
    for (l, r) in signal.left.iter().zip(&signal.right) {
        for v in [l, r] {
            let q = (v.clamp(-1.0, 1.0) * i16::MAX as f64).round() as i16;
            out.extend_from_slice(&q.to_le_bytes());
        }
    }
    out
}

/// Writes a binaural signal to a stereo WAV file.
///
/// # Errors
/// Propagates I/O errors.
pub fn write_wav(
    signal: &BinauralSignal,
    sample_rate: f64,
    path: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::write(path, to_wav_bytes(signal, sample_rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> BinauralSignal {
        BinauralSignal {
            left: vec![0.0, 0.5, -0.5, 1.0],
            right: vec![1.0, -1.0, 0.25, 0.0],
        }
    }

    #[test]
    fn header_fields_correct() {
        let bytes = to_wav_bytes(&sig(), 48_000.0);
        assert_eq!(&bytes[0..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        assert_eq!(&bytes[12..16], b"fmt ");
        // channels
        assert_eq!(u16::from_le_bytes([bytes[22], bytes[23]]), 2);
        // sample rate
        assert_eq!(
            u32::from_le_bytes([bytes[24], bytes[25], bytes[26], bytes[27]]),
            48_000
        );
        // bits per sample
        assert_eq!(u16::from_le_bytes([bytes[34], bytes[35]]), 16);
        // total size: 44-byte header + 4 frames × 4 bytes
        assert_eq!(bytes.len(), 44 + 16);
    }

    #[test]
    fn samples_quantized_and_interleaved() {
        let bytes = to_wav_bytes(&sig(), 8000.0);
        let sample = |idx: usize| i16::from_le_bytes([bytes[44 + idx * 2], bytes[45 + idx * 2]]);
        assert_eq!(sample(0), 0); // L0
        assert_eq!(sample(1), i16::MAX); // R0
        assert_eq!(sample(2), (0.5 * i16::MAX as f64).round() as i16); // L1
        assert_eq!(sample(3), -i16::MAX); // R1 (clamped −1.0)
    }

    #[test]
    fn clipping_is_clamped() {
        let s = BinauralSignal {
            left: vec![2.0],
            right: vec![-3.0],
        };
        let bytes = to_wav_bytes(&s, 8000.0);
        let l = i16::from_le_bytes([bytes[44], bytes[45]]);
        let r = i16::from_le_bytes([bytes[46], bytes[47]]);
        assert_eq!(l, i16::MAX);
        assert_eq!(r, -i16::MAX);
    }

    #[test]
    fn file_write_roundtrip() {
        let dir = std::env::temp_dir().join("uniq_wav_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wav");
        write_wav(&sig(), 16_000.0, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[0..4], b"RIFF");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "channels must match")]
    fn ragged_channels_rejected() {
        let s = BinauralSignal {
            left: vec![0.0; 3],
            right: vec![0.0; 4],
        };
        to_wav_bytes(&s, 8000.0);
    }
}
