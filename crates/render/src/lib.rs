//! # uniq-render
//!
//! The application layer the paper motivates (§1): once UNIQ has produced
//! a personalized HRTF, applications place virtual sound sources around
//! the listener — a "follow me" navigation voice, the members of a
//! virtual meeting, the instruments of an AR/VR orchestra.
//!
//! * [`scene`] — world-space sources and the listener pose.
//! * [`engine`] — snapshot rendering: world → head frame → HRTF filtering
//!   → mixdown.
//! * [`motion`] — block rendering with crossfades for moving sources and
//!   rotating heads ("even if the head rotates ... the piano and the
//!   violin remain fixed in their absolute directions").
//! * [`wav`] — 16-bit stereo WAV output so renders can actually be heard.
//! * [`room`] — RIR ⊛ HRTF playback (the §7 "Integrating Room Multipath"
//!   extension): image-source echoes spatialized through the personal HRTF.
//! * [`metrics`] — objective externalization proxies (§7): log-spectral
//!   distortion, ITD/ILD errors, combined score.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod metrics;
pub mod motion;
pub mod room;
pub mod scene;
pub mod wav;

pub use engine::BinauralEngine;
pub use scene::{ListenerPose, Scene, SceneSource};
