//! World-space sound sources and the listener pose.

use uniq_geometry::Vec2;

/// A virtual sound source fixed in world coordinates.
#[derive(Debug, Clone)]
pub struct SceneSource {
    /// Human-readable name (for logs/examples).
    pub name: String,
    /// World position, metres.
    pub position: Vec2,
    /// Source gain applied before spatialization.
    pub gain: f64,
}

/// The listener's pose in world coordinates.
#[derive(Debug, Clone, Copy)]
pub struct ListenerPose {
    /// World position of the head centre, metres.
    pub position: Vec2,
    /// Heading: the world bearing (degrees, counter-clockwise from the
    /// world +y axis) the nose points at. 0 = facing world +y.
    pub heading_deg: f64,
}

impl Default for ListenerPose {
    fn default() -> Self {
        ListenerPose {
            position: Vec2::ZERO,
            heading_deg: 0.0,
        }
    }
}

impl ListenerPose {
    /// Transforms a world point into the head frame (x through the ears,
    /// +y out of the nose).
    pub fn world_to_head(&self, world: Vec2) -> Vec2 {
        let rel = world - self.position;
        // Undo the heading: rotate clockwise by the heading angle. The
        // head frame's polar convention (θ from +y toward −x) matches the
        // world bearing convention, so this is a plain rotation.
        rel.rotated(-self.heading_deg.to_radians())
    }

    /// The head-frame polar angle (paper convention, degrees) at which a
    /// world point is perceived.
    ///
    /// # Panics
    /// Panics if the point coincides with the listener position.
    pub fn perceived_theta(&self, world: Vec2) -> f64 {
        uniq_geometry::vec2::theta_from_vec(self.world_to_head(world))
    }
}

/// A collection of world-fixed sources.
#[derive(Debug, Clone, Default)]
pub struct Scene {
    /// The sources.
    pub sources: Vec<SceneSource>,
}

impl Scene {
    /// Creates an empty scene.
    pub fn new() -> Self {
        Scene::default()
    }

    /// Adds a source and returns its index.
    pub fn add(&mut self, name: impl Into<String>, position: Vec2, gain: f64) -> usize {
        self.sources.push(SceneSource {
            name: name.into(),
            position,
            gain,
        });
        self.sources.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_to_head_identity_pose() {
        let pose = ListenerPose::default();
        let p = Vec2::new(1.0, 2.0);
        assert_eq!(pose.world_to_head(p), p);
    }

    #[test]
    fn heading_rotation_compensates() {
        // Listener turns 90° to the left (toward world −x). A source at
        // world +y (ahead before the turn) should now be on the right ear
        // side: θ = 270°.
        let pose = ListenerPose {
            position: Vec2::ZERO,
            heading_deg: 90.0,
        };
        let theta = pose.perceived_theta(Vec2::new(0.0, 5.0));
        assert!((theta - 270.0).abs() < 1e-9, "theta {theta}");
    }

    #[test]
    fn translation_shifts_bearing() {
        let pose = ListenerPose {
            position: Vec2::new(0.0, 5.0),
            heading_deg: 0.0,
        };
        // A source at the origin is now directly behind.
        let theta = pose.perceived_theta(Vec2::ZERO);
        assert!((theta - 180.0).abs() < 1e-9);
    }

    #[test]
    fn facing_a_source_puts_it_ahead() {
        // Source north-east of the listener; heading toward it.
        let pose = ListenerPose {
            position: Vec2::ZERO,
            heading_deg: 315.0, // bearing of (+1, +1): −45° = 315°
        };
        let theta = pose.perceived_theta(Vec2::new(1.0, 1.0));
        assert!(!(1.0..=359.0).contains(&theta), "theta {theta}");
    }

    #[test]
    fn scene_add_indexes() {
        let mut s = Scene::new();
        assert_eq!(s.add("a", Vec2::ZERO, 1.0), 0);
        assert_eq!(s.add("b", Vec2::new(1.0, 0.0), 0.5), 1);
        assert_eq!(s.sources.len(), 2);
    }
}
