//! Room-multipath-integrated binaural rendering — the paper's §7
//! "Integrating Room Multipath" extension.
//!
//! UNIQ strips room echoes while *measuring* the HRTF, but truly immersive
//! playback should put them back: "a real immersive experience can only be
//! achieved by filtering the earphone sound with both the room impulse
//! response (RIR) and the HRTF." This module renders a virtual source
//! inside a virtual room: the direct path plus every image source is
//! spatialized through the personalized HRTF from its own direction and
//! distance, building the combined RIR ⊛ HRTF rendering the paper asks
//! for.

use crate::scene::ListenerPose;
use uniq_acoustics::room::Shoebox;
use uniq_core::hrtf::{BinauralSignal, PersonalHrtf};
use uniq_dsp::delay::delay_fractional;
use uniq_geometry::Vec2;

/// Renders `signal` from a world-space source inside `room`, heard through
/// `hrtf` by a listener at `pose`. Each image source is delayed by its
/// extra path, attenuated by spreading and wall loss, and spatialized from
/// its own direction.
///
/// The room is defined in the *listener's head frame* (the head centre is
/// the origin, matching [`Shoebox`]'s convention), so `pose.position` must
/// be the origin; the pose contributes only its heading.
///
/// # Panics
/// Panics if the pose is translated (room geometry is head-centred) or the
/// source sits at the head centre.
pub fn render_in_room(
    hrtf: &PersonalHrtf,
    room: &Shoebox,
    source_head_frame: Vec2,
    pose: &ListenerPose,
    signal: &[f64],
    speed_of_sound: f64,
) -> BinauralSignal {
    assert!(
        pose.position.norm() < 1e-9,
        "room rendering is head-centred; move the room, not the listener"
    );
    room.validate();
    assert!(source_head_frame.norm() > 1e-9, "source at head centre");

    let direct_dist = source_head_frame.norm();
    let sr = hrtf.sample_rate();

    // Collect (position, gain) including the direct path (gain 1).
    let mut arrivals = vec![(source_head_frame, 1.0)];
    arrivals.extend(room.image_sources(source_head_frame));

    let mut left: Vec<f64> = Vec::new();
    let mut right: Vec<f64> = Vec::new();
    for (pos, wall_gain) in arrivals {
        let dist = pos.norm();
        // Spreading relative to the direct path; extra flight time too.
        let gain = wall_gain * direct_dist / dist;
        let extra_delay = (dist - direct_dist).max(0.0) / speed_of_sound * sr;
        // Rotate into the current heading before looking up the HRIR.
        let rel = pos.rotated(-pose.heading_deg.to_radians());
        // Pad so the fractional delay does not truncate the echo's tail
        // (delay_fractional keeps its input length).
        let mut feed: Vec<f64> = signal.iter().map(|v| v * gain).collect();
        feed.resize(
            signal.len() + extra_delay.ceil() as usize + uniq_dsp::delay::SINC_HALF_WIDTH,
            0.0,
        );
        let delayed = delay_fractional(&feed, extra_delay);
        let out = hrtf.synthesize_at(&delayed, rel.normalized() * dist.max(0.05));
        accumulate(&mut left, &out.left);
        accumulate(&mut right, &out.right);
    }
    let n = left.len().max(right.len());
    left.resize(n, 0.0);
    right.resize(n, 0.0);
    BinauralSignal { left, right }
}

fn accumulate(acc: &mut Vec<f64>, add: &[f64]) {
    if acc.len() < add.len() {
        acc.resize(add.len(), 0.0);
    }
    for (a, b) in acc.iter_mut().zip(add) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_acoustics::types::RenderConfig;
    use uniq_geometry::{HeadBoundary, HeadParams};

    fn hrtf() -> PersonalHrtf {
        let cfg = RenderConfig::default();
        let head = HeadParams::average_adult();
        // Identical pinnae on both ears: these tests assert geometric
        // (head-shadow / rotation) effects, which random per-ear pinna
        // differences would otherwise mask.
        let r = Renderer::new(
            HeadBoundary::new(head, 512),
            PinnaModel::from_seed(701),
            PinnaModel::from_seed(701),
            cfg,
        );
        let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
        PersonalHrtf::new(
            r.near_field_bank(&angles, 0.4)
                .expect("0.4 m clears the head"),
            r.ground_truth_bank(&angles),
            head,
        )
    }

    fn energy(v: &[f64]) -> f64 {
        v.iter().map(|x| x * x).sum()
    }

    #[test]
    fn echoic_render_longer_and_richer_than_dry() {
        let h = hrtf();
        let room = Shoebox::typical_living_room();
        let src = Vec2::new(-1.2, 0.8);
        let sig = uniq_dsp::signal::linear_chirp(300.0, 6000.0, 0.05, 48_000.0);
        let wet = render_in_room(&h, &room, src, &ListenerPose::default(), &sig, 343.0);
        let dry = h.synthesize_at(&sig, src);
        assert!(wet.left.len() > dry.left.len());
        assert!(energy(&wet.left) > energy(&dry.left));
    }

    #[test]
    fn dry_part_unchanged_by_room() {
        // The direct arrival inside the echoic render equals the dry
        // render until the first wall echo arrives.
        let h = hrtf();
        let room = Shoebox::typical_living_room();
        let src = Vec2::new(-1.0, 0.5);
        let sig = uniq_dsp::signal::impulse(64, 0);
        let wet = render_in_room(&h, &room, src, &ListenerPose::default(), &sig, 343.0);
        let dry = h.synthesize_at(&sig, src);
        // First echo detour: nearest image at ≥ 2·min_wall − |src| →
        // extra ≥ 2·(min_wall − |src|).
        let extra_m = 2.0 * (room.min_wall_distance() - src.norm());
        let guard = (extra_m / 343.0 * 48_000.0 * 0.8) as usize;
        for k in 0..guard.min(dry.left.len()) {
            assert!(
                (wet.left[k] - dry.left[k]).abs() < 1e-6,
                "early echo at sample {k}"
            );
        }
    }

    #[test]
    fn heading_rotates_the_whole_room() {
        let h = hrtf();
        let room = Shoebox::typical_living_room();
        let src = Vec2::new(-1.5, 0.0); // hard left
        let sig = uniq_dsp::signal::linear_chirp(300.0, 8000.0, 0.03, 48_000.0);
        let facing_front = render_in_room(&h, &room, src, &ListenerPose::default(), &sig, 343.0);
        let facing_source = render_in_room(
            &h,
            &room,
            src,
            &ListenerPose {
                position: Vec2::ZERO,
                heading_deg: 90.0,
            },
            &sig,
            343.0,
        );
        // Facing front: source is lateral → strong imbalance; facing the
        // source: balanced-ish.
        let imb = |s: &BinauralSignal| (energy(&s.left) / energy(&s.right)).ln().abs();
        assert!(imb(&facing_front) > imb(&facing_source));
    }

    #[test]
    #[should_panic(expected = "head-centred")]
    fn translated_pose_rejected() {
        let h = hrtf();
        render_in_room(
            &h,
            &Shoebox::typical_living_room(),
            Vec2::new(1.0, 0.0),
            &ListenerPose {
                position: Vec2::new(0.5, 0.0),
                heading_deg: 0.0,
            },
            &[1.0],
            343.0,
        );
    }
}
