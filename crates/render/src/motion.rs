//! Block rendering with crossfades for moving sources / rotating heads.
//!
//! Motion is rendered per block: the listener pose (from the earphone's
//! motion sensors, per the paper's §1 scenario) is sampled at block
//! boundaries, each block is spatialized with its pose, and adjacent
//! blocks are equal-power crossfaded to avoid clicks when the HRIR
//! switches.

use crate::engine::BinauralEngine;
use crate::scene::{ListenerPose, Scene};
use uniq_core::hrtf::BinauralSignal;

/// Renders `signal` through a timeline of listener poses (one per block of
/// `block_len` samples), crossfading `fade_len` samples between blocks.
///
/// # Panics
/// Panics if `block_len == 0` or `fade_len >= block_len`, or `poses` is
/// empty.
pub fn render_with_motion(
    engine: &BinauralEngine,
    scene: &Scene,
    poses: &[ListenerPose],
    signal: &[f64],
    block_len: usize,
    fade_len: usize,
) -> BinauralSignal {
    assert!(block_len > 0, "block_len must be positive");
    assert!(fade_len < block_len, "fade must fit inside a block");
    assert!(!poses.is_empty(), "need at least one pose");
    let _span = uniq_obs::span(uniq_obs::names::SPAN_RENDER_MOTION);

    let mut left = vec![0.0; signal.len() + 4096];
    let mut right = vec![0.0; signal.len() + 4096];

    let n_blocks = signal.len().div_ceil(block_len);
    if n_blocks > 0 {
        uniq_obs::counter(uniq_obs::names::RENDER_BLOCKS, n_blocks as u64);
        // fade_in + fade_out samples per interior boundary.
        uniq_obs::metric(
            uniq_obs::names::RENDER_CROSSFADE_SAMPLES,
            (2 * fade_len * n_blocks.saturating_sub(1)) as f64,
            "samples",
        );
    }
    for b in 0..n_blocks {
        let start = b * block_len;
        let end = (start + block_len + fade_len).min(signal.len());
        let pose = poses[b.min(poses.len() - 1)];

        // Fade the *input* chunk (complementary linear ramps summing to 1
        // across the overlap), then convolve. By linearity, overlap-adding
        // the rendered outputs reconstructs a static render exactly, while
        // pose changes crossfade smoothly over `fade_len` samples.
        let fade_in = if b == 0 { 0 } else { fade_len };
        let fade_out = if end == signal.len() { 0 } else { fade_len };
        let chunk: Vec<f64> = signal[start..end]
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                let mut g = 1.0;
                if fade_in > 0 && k < fade_in {
                    g *= (k as f64 + 0.5) / fade_in as f64;
                }
                let from_end = (end - start) - k;
                if fade_out > 0 && from_end <= fade_out {
                    g *= (from_end as f64 - 0.5) / fade_out as f64;
                }
                g * v
            })
            .collect();
        let out = engine.render_scene(scene, &pose, &chunk);

        for (k, (l, r)) in out.left.iter().zip(&out.right).enumerate() {
            if start + k < left.len() {
                left[start + k] += l;
                right[start + k] += r;
            }
        }
    }

    BinauralSignal { left, right }
}

/// Builds a pose timeline for a listener smoothly turning from
/// `from_heading` to `to_heading` (degrees) over `n_blocks` blocks.
pub fn turning_head(from_heading: f64, to_heading: f64, n_blocks: usize) -> Vec<ListenerPose> {
    assert!(n_blocks >= 1, "need at least one block");
    (0..n_blocks)
        .map(|b| {
            let t = if n_blocks == 1 {
                0.0
            } else {
                b as f64 / (n_blocks - 1) as f64
            };
            ListenerPose {
                position: uniq_geometry::Vec2::ZERO,
                heading_deg: from_heading + t * (to_heading - from_heading),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_acoustics::pinna::PinnaModel;
    use uniq_acoustics::render::Renderer;
    use uniq_acoustics::types::RenderConfig;
    use uniq_core::hrtf::PersonalHrtf;
    use uniq_geometry::{HeadBoundary, HeadParams, Vec2};

    fn engine() -> BinauralEngine {
        let cfg = RenderConfig::default();
        let head = HeadParams::average_adult();
        let r = Renderer::new(
            HeadBoundary::new(head, 512),
            PinnaModel::from_seed(211),
            PinnaModel::from_seed(212),
            cfg,
        );
        let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
        BinauralEngine::new(PersonalHrtf::new(
            r.near_field_bank(&angles, 0.4)
                .expect("0.4 m clears the head"),
            r.ground_truth_bank(&angles),
            head,
        ))
    }

    #[test]
    fn static_pose_matches_snapshot_render() {
        let e = engine();
        let mut scene = Scene::new();
        scene.add("s", Vec2::new(-2.0, 1.0), 1.0);
        let sig = uniq_dsp::signal::tone(700.0, 0.05, 48_000.0);
        let pose = ListenerPose::default();
        let moving = render_with_motion(&e, &scene, &[pose], &sig, 1024, 64);
        let snapshot = e.render_scene(&scene, &pose, &sig);
        // Compare the overlap region energy: within a few percent (block
        // overlap-add of a LTI render is near-exact away from edges).
        let n = snapshot.left.len().min(moving.left.len());
        let err: f64 = moving.left[..n]
            .iter()
            .zip(&snapshot.left[..n])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let e_ref: f64 = snapshot.left[..n].iter().map(|v| v * v).sum();
        assert!(err / e_ref < 0.05, "block render deviates: {}", err / e_ref);
    }

    #[test]
    fn turning_head_moves_energy_between_ears() {
        let e = engine();
        let mut scene = Scene::new();
        scene.add("piano", Vec2::new(0.0, 3.0), 1.0);
        let sr = 48_000.0;
        let sig = uniq_dsp::signal::linear_chirp(300.0, 10_000.0, 0.5, sr);
        let poses = turning_head(80.0, 280.0, 24); // left-facing → right-facing
        let out = render_with_motion(&e, &scene, &poses, &sig, 1024, 128);

        let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        let early_l = energy(&out.left[..4096]);
        let early_r = energy(&out.right[..4096]);
        let late_l = energy(&out.left[16384..20480]);
        let late_r = energy(&out.right[16384..20480]);
        // Facing left (heading 80°): source ahead-right → right ear louder.
        assert!(early_r > early_l, "early: L {early_l} R {early_r}");
        // Facing right (heading 280°): source ahead-left → left ear louder.
        assert!(late_l > late_r, "late: L {late_l} R {late_r}");
    }

    #[test]
    fn no_clicks_at_block_boundaries() {
        let e = engine();
        let mut scene = Scene::new();
        scene.add("s", Vec2::new(-2.0, 1.0), 1.0);
        let sr = 48_000.0;
        let sig = uniq_dsp::signal::tone(400.0, 0.3, sr);
        let poses = turning_head(0.0, 180.0, 14);
        let out = render_with_motion(&e, &scene, &poses, &sig, 1024, 128);
        // Largest sample-to-sample jump should stay modest relative to the
        // peak (a click would spike it).
        let peak = out.left.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
        let max_jump = out
            .left
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0_f64, f64::max);
        assert!(
            max_jump < 0.5 * peak,
            "click detected: jump {max_jump} vs peak {peak}"
        );
    }

    #[test]
    fn timeline_helper_endpoints() {
        let t = turning_head(10.0, 50.0, 5);
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].heading_deg, 10.0);
        assert_eq!(t[4].heading_deg, 50.0);
    }

    #[test]
    #[should_panic(expected = "fade must fit")]
    fn oversized_fade_rejected() {
        let e = engine();
        render_with_motion(
            &e,
            &Scene::new(),
            &[ListenerPose::default()],
            &[0.0; 10],
            8,
            8,
        );
    }
}
