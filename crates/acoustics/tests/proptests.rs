//! Property-based tests for the forward acoustic simulator.

use proptest::prelude::*;
use std::sync::OnceLock;
use uniq_acoustics::pinna::PinnaModel;
use uniq_acoustics::render::Renderer;
use uniq_acoustics::shadow::{shadow_fir, shadow_magnitude};
use uniq_acoustics::types::RenderConfig;
use uniq_geometry::vec2::unit_from_theta;
use uniq_geometry::{HeadBoundary, HeadParams};

fn renderer() -> &'static Renderer {
    static R: OnceLock<Renderer> = OnceLock::new();
    R.get_or_init(|| {
        Renderer::new(
            HeadBoundary::new(HeadParams::average_adult(), 512),
            PinnaModel::from_seed(7001),
            PinnaModel::from_seed(7002),
            RenderConfig::default(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rendered_irs_finite_and_nonzero(theta in 0.0..360.0f64, r in 0.3..1.5f64) {
        let ir = renderer().render_point(unit_from_theta(theta) * r).unwrap();
        let e: f64 = ir.left.iter().chain(&ir.right).map(|v| v * v).sum();
        prop_assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn closer_sources_are_louder(theta in 0.0..360.0f64) {
        let near = renderer().render_point(unit_from_theta(theta) * 0.3).unwrap();
        let far = renderer().render_point(unit_from_theta(theta) * 1.2).unwrap();
        let e = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        prop_assert!(e(&near.left) + e(&near.right) > e(&far.left) + e(&far.right));
    }

    #[test]
    fn pinna_response_energy_bounded(
        seed in 0u64..500,
        angle in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        let p = PinnaModel::from_seed(seed);
        let ir = p.response(angle, 48_000.0, 256);
        let e: f64 = ir.iter().map(|v| v * v).sum();
        // Direct tap energy 1 plus up to 8 echoes of gain ≤ 0.65·1.8.
        prop_assert!(e >= 0.9 && e < 1.0 + 8.0 * 1.4_f64.powi(2), "energy {e}");
    }

    #[test]
    fn pinna_angle_continuity(seed in 0u64..100, angle in -3.0..3.0f64) {
        let p = PinnaModel::from_seed(seed);
        let a = p.response(angle, 48_000.0, 128);
        let b = p.response(angle + 0.01, 48_000.0, 128);
        let sim = uniq_dsp::xcorr::peak_normalized_xcorr(&a, &b);
        // 0.01 rad steps: a micro-echo with a large delay modulation can
        // sweep across samples, so demand smoothness, not identity.
        prop_assert!(sim > 0.95, "discontinuous pinna at {angle}: {sim}");
    }

    #[test]
    fn shadow_magnitude_in_unit_interval(f in 0.0..24_000.0f64, wrap in 0.0..3.0f64) {
        let m = shadow_magnitude(f, wrap, 0.6, 4000.0);
        prop_assert!((0.0..=1.0).contains(&m));
    }

    #[test]
    fn shadow_fir_dc_is_unity(wrap in 0.01..3.0f64) {
        let taps = shadow_fir(wrap, 0.6, 4000.0, 48_000.0).unwrap();
        let dc: f64 = taps.iter().sum();
        prop_assert!((dc - 1.0).abs() < 1e-9, "dc = {dc}");
    }

    #[test]
    fn plane_renders_differ_across_angles(t1 in 0.0..180.0f64, delta in 15.0..90.0f64) {
        let t2 = (t1 + delta).min(180.0);
        prop_assume!(t2 - t1 > 10.0);
        let a = renderer().render_plane(t1);
        let b = renderer().render_plane(t2);
        let (sim, _) = a.similarity(&b);
        prop_assert!(sim < 0.9999, "θ {t1} vs {t2}: {sim}");
    }
}
