//! The core binaural renderer.
//!
//! Composes, per ear: wrap delay (fractional-sample tap) → spreading loss →
//! frequency-dependent shadow FIR (when occluded) → angle-sensitive pinna
//! multipath. Point sources model the phone in the near field; plane waves
//! model far-field sources (and generate ground-truth HRIR banks in place
//! of the paper's anechoic chamber).

use crate::pinna::PinnaModel;
use crate::shadow::{group_delay_samples, shadow_fir};
use crate::types::{BinauralIr, HrirBank, RenderConfig};
use uniq_dsp::conv::convolve;
use uniq_dsp::delay::add_fractional_impulse;
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::planewave::plane_path_to_ear;
use uniq_geometry::{Ear, HeadBoundary, Vec2};

/// A near-field measurement circle intersected the head: the requested
/// radius places a measurement point inside (or on) the boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NearFieldError {
    /// First angle (degrees) whose measurement point fell inside the head.
    pub angle_deg: f64,
    /// The requested circle radius, metres.
    pub radius_m: f64,
}

impl std::fmt::Display for NearFieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "near-field radius {} m does not clear the head at {}°",
            self.radius_m, self.angle_deg
        )
    }
}

impl std::error::Error for NearFieldError {}

/// A subject-specific binaural renderer: head geometry plus one pinna model
/// per ear.
///
/// ```
/// use uniq_acoustics::{Renderer, PinnaModel, RenderConfig};
/// use uniq_geometry::{HeadBoundary, HeadParams, Vec2};
/// let r = Renderer::new(
///     HeadBoundary::new(HeadParams::average_adult(), 256),
///     PinnaModel::from_seed(1),
///     PinnaModel::from_seed(2),
///     RenderConfig::default(),
/// );
/// let hrir = r.render_point(Vec2::new(-0.4, 0.1)).expect("outside the head");
/// assert_eq!(hrir.len(), RenderConfig::default().ir_len);
/// ```
#[derive(Debug, Clone)]
pub struct Renderer {
    cfg: RenderConfig,
    boundary: HeadBoundary,
    pinna_left: PinnaModel,
    pinna_right: PinnaModel,
}

impl Renderer {
    /// Builds a renderer.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or an IR shorter than the
    /// pinna models require.
    pub fn new(
        boundary: HeadBoundary,
        pinna_left: PinnaModel,
        pinna_right: PinnaModel,
        cfg: RenderConfig,
    ) -> Self {
        cfg.validate();
        let need = pinna_left
            .required_len(cfg.sample_rate)
            .max(pinna_right.required_len(cfg.sample_rate));
        assert!(
            cfg.ir_len > need + (cfg.base_delay * cfg.sample_rate) as usize + 64,
            "ir_len {} too short for pinna tail {need} plus base delay",
            cfg.ir_len
        );
        Renderer {
            cfg,
            boundary,
            pinna_left,
            pinna_right,
        }
    }

    /// The render configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.cfg
    }

    /// The head boundary being rendered.
    pub fn boundary(&self) -> &HeadBoundary {
        &self.boundary
    }

    /// The pinna model of one ear.
    pub fn pinna(&self, ear: Ear) -> &PinnaModel {
        match ear {
            Ear::Left => &self.pinna_left,
            Ear::Right => &self.pinna_right,
        }
    }

    /// Renders the binaural impulse response of a point source at `src`
    /// (head frame, metres). Returns `None` if `src` is inside the head.
    pub fn render_point(&self, src: Vec2) -> Option<BinauralIr> {
        let mut out = BinauralIr::zeros(self.cfg.ir_len);
        for ear in Ear::BOTH {
            let p = path_to_ear(&self.boundary, src, ear)?;
            let gain = 1.0 / p.length.max(0.05);
            let ir = self.render_arrival(p.length, p.wrap_angle, p.arrival_dir, gain, ear);
            match ear {
                Ear::Left => out.left = ir,
                Ear::Right => out.right = ir,
            }
        }
        Some(out)
    }

    /// Renders the binaural impulse response of a far-field plane wave from
    /// polar angle `theta_deg` (unit incident amplitude).
    pub fn render_plane(&self, theta_deg: f64) -> BinauralIr {
        let mut out = BinauralIr::zeros(self.cfg.ir_len);
        for ear in Ear::BOTH {
            let p = plane_path_to_ear(&self.boundary, theta_deg, ear);
            let ir = self.render_arrival(p.excess, p.wrap_angle, p.arrival_dir, 1.0, ear);
            match ear {
                Ear::Left => out.left = ir,
                Ear::Right => out.right = ir,
            }
        }
        out
    }

    /// Ground-truth far-field HRIR bank at the given angles — the stand-in
    /// for the paper's anechoic-chamber measurement rig.
    pub fn ground_truth_bank(&self, angles_deg: &[f64]) -> HrirBank {
        let pairs = angles_deg
            .iter()
            .map(|&a| (a, self.render_plane(a)))
            .collect();
        HrirBank::new(pairs, self.cfg.sample_rate)
    }

    /// Near-field HRIR bank measured on a circle of `radius` metres.
    ///
    /// # Errors
    /// Returns [`NearFieldError`] if the circle does not clear the head
    /// at some angle — the error names the first offending angle so a
    /// caller sweeping radii can report exactly where the geometry
    /// failed instead of dying mid-batch.
    pub fn near_field_bank(
        &self,
        angles_deg: &[f64],
        radius: f64,
    ) -> Result<HrirBank, NearFieldError> {
        let mut pairs = Vec::with_capacity(angles_deg.len());
        for &a in angles_deg {
            let src = uniq_geometry::vec2::unit_from_theta(a) * radius;
            let ir = self.render_point(src).ok_or(NearFieldError {
                angle_deg: a,
                radius_m: radius,
            })?;
            pairs.push((a, ir));
        }
        Ok(HrirBank::new(pairs, self.cfg.sample_rate))
    }

    /// Renders a single arrival into an ear IR: fractional-delay tap,
    /// spreading gain, shadow FIR when wrapped, then pinna multipath.
    ///
    /// `path_metres` may be a point-source path length or a plane-wave
    /// excess (negative allowed — the base delay keeps taps causal).
    fn render_arrival(
        &self,
        path_metres: f64,
        wrap_angle: f64,
        arrival_dir: Vec2,
        gain: f64,
        ear: Ear,
    ) -> Vec<f64> {
        let cfg = &self.cfg;
        let delay = cfg.metres_to_samples(path_metres);
        debug_assert!(
            delay >= 0.0,
            "negative tap position {delay}; increase base_delay"
        );

        // Raw (possibly shadow-filtered) arrival tap.
        let mut tap = vec![0.0; cfg.ir_len];
        match shadow_fir(wrap_angle, cfg.shadow_kappa, cfg.shadow_f0, cfg.sample_rate) {
            None => add_fractional_impulse(&mut tap, delay, gain),
            Some(kernel) => {
                // Place the tap earlier by the FIR group delay so the
                // filtered arrival lands at the true time.
                let pos = delay - group_delay_samples() as f64;
                let mut imp = vec![0.0; cfg.ir_len];
                add_fractional_impulse(&mut imp, pos.max(0.0), gain);
                let full = convolve(&imp, &kernel);
                tap.copy_from_slice(&full[..cfg.ir_len]);
            }
        }

        // Pinna multipath for the local arrival angle.
        let local = local_arrival_angle(arrival_dir, ear);
        let pinna = self.pinna(ear);
        let pinna_ir = pinna.response(local, cfg.sample_rate, pinna.required_len(cfg.sample_rate));
        let full = convolve(&tap, &pinna_ir);
        full[..cfg.ir_len].to_vec()
    }
}

/// Local arrival angle at an ear: the signed angle (radians) between the
/// ear's outward normal and the *incoming* ray direction. 0 means the wave
/// hits the ear head-on from the side; positive angles rotate toward the
/// front of the head for both ears (so left/right pinnae see mirrored
/// geometry, as anatomy does).
pub fn local_arrival_angle(arrival_dir: Vec2, ear: Ear) -> f64 {
    let outward = match ear {
        Ear::Left => Vec2::new(-1.0, 0.0),
        Ear::Right => Vec2::new(1.0, 0.0),
    };
    let incoming = -arrival_dir; // direction back toward the source
    let raw = outward.cross(incoming).atan2(outward.dot(incoming));
    // Mirror so +angle = toward the nose for both ears.
    match ear {
        Ear::Left => -raw,
        Ear::Right => raw,
    }
}

/// Convenience free function: render a point source with a throwaway
/// renderer (used by tests and examples).
pub fn render_point_source(
    boundary: &HeadBoundary,
    pinna_left: &PinnaModel,
    pinna_right: &PinnaModel,
    cfg: RenderConfig,
    src: Vec2,
) -> Option<BinauralIr> {
    Renderer::new(
        boundary.clone(),
        pinna_left.clone(),
        pinna_right.clone(),
        cfg,
    )
    .render_point(src)
}

/// Convenience free function: render a plane wave with a throwaway
/// renderer.
pub fn render_plane_wave(
    boundary: &HeadBoundary,
    pinna_left: &PinnaModel,
    pinna_right: &PinnaModel,
    cfg: RenderConfig,
    theta_deg: f64,
) -> BinauralIr {
    Renderer::new(
        boundary.clone(),
        pinna_left.clone(),
        pinna_right.clone(),
        cfg,
    )
    .render_plane(theta_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::peaks::first_tap;
    use uniq_geometry::vec2::unit_from_theta;
    use uniq_geometry::HeadParams;

    fn renderer() -> Renderer {
        Renderer::new(
            HeadBoundary::new(HeadParams::average_adult(), 1024),
            PinnaModel::from_seed(100),
            PinnaModel::from_seed(101),
            RenderConfig::default(),
        )
    }

    #[test]
    fn point_source_inside_head_rejected() {
        assert!(renderer().render_point(Vec2::ZERO).is_none());
    }

    #[test]
    fn left_source_arrives_left_first() {
        let r = renderer();
        let ir = r.render_point(Vec2::new(-0.5, 0.0)).unwrap();
        let lt = first_tap(&ir.left, 0.25).unwrap();
        let rt = first_tap(&ir.right, 0.25).unwrap();
        assert!(
            lt.position < rt.position,
            "left {} right {}",
            lt.position,
            rt.position
        );
        // TDoA should correspond to a plausible wrap difference: between
        // 0.1 m and 0.35 m of path.
        let cfg = r.config();
        let d_m = (rt.position - lt.position) / cfg.sample_rate * cfg.speed_of_sound;
        assert!(d_m > 0.10 && d_m < 0.35, "TDoA path {} m", d_m);
    }

    #[test]
    fn first_tap_matches_geometric_delay() {
        let r = renderer();
        let src = Vec2::new(-0.4, 0.1);
        let ir = r.render_point(src).unwrap();
        let p = path_to_ear(r.boundary(), src, Ear::Left).unwrap();
        let expect = r.config().metres_to_samples(p.length);
        let tap = first_tap(&ir.left, 0.25).unwrap();
        assert!(
            (tap.position - expect).abs() < 1.5,
            "tap at {} expected {expect}",
            tap.position
        );
    }

    #[test]
    fn shadowed_ear_weaker_than_lit_ear() {
        let r = renderer();
        let ir = r.render_point(Vec2::new(-0.5, 0.0)).unwrap();
        let energy = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>();
        assert!(energy(&ir.left) > 2.0 * energy(&ir.right));
    }

    #[test]
    fn plane_wave_itd_sign() {
        let r = renderer();
        let ir = r.render_plane(60.0); // source on the left
        let lt = first_tap(&ir.left, 0.25).unwrap();
        let rt = first_tap(&ir.right, 0.25).unwrap();
        assert!(lt.position < rt.position);
    }

    #[test]
    fn ground_truth_bank_has_all_angles() {
        let r = renderer();
        let angles: Vec<f64> = (0..=6).map(|k| k as f64 * 30.0).collect();
        let bank = r.ground_truth_bank(&angles);
        assert_eq!(bank.len(), 7);
        assert_eq!(bank.angles()[0], 0.0);
        assert_eq!(bank.angles()[6], 180.0);
    }

    #[test]
    fn near_field_differs_from_far_field() {
        // The near/far distinction that motivates §4.3: same angle,
        // different HRIR.
        let r = renderer();
        let near = r.render_point(unit_from_theta(45.0) * 0.25).unwrap();
        let far = r.render_plane(45.0);
        let (sim_l, _) = near.similarity(&far);
        assert!(sim_l < 0.999, "near and far identical: {sim_l}");
    }

    #[test]
    fn hrir_varies_with_angle() {
        let r = renderer();
        let a = r.render_plane(40.0);
        let b = r.render_plane(60.0);
        let (sim, _) = a.similarity(&b);
        assert!(sim < 0.999, "no angular sensitivity: {sim}");
    }

    #[test]
    fn different_subjects_render_differently() {
        let cfg = RenderConfig::default();
        let boundary = HeadBoundary::new(HeadParams::average_adult(), 1024);
        let r1 = Renderer::new(
            boundary.clone(),
            PinnaModel::from_seed(1),
            PinnaModel::from_seed(2),
            cfg,
        );
        let r2 = Renderer::new(
            boundary,
            PinnaModel::from_seed(3),
            PinnaModel::from_seed(4),
            cfg,
        );
        let (sim, _) = r1.render_plane(45.0).similarity(&r2.render_plane(45.0));
        assert!(sim < 0.98, "subjects too similar: {sim}");
    }

    #[test]
    fn local_arrival_angle_mirrors() {
        // Frontal wave (travelling −y) hits both ears at the same local
        // angle after mirroring.
        let dir = Vec2::new(0.0, -1.0);
        let l = local_arrival_angle(dir, Ear::Left);
        let r = local_arrival_angle(dir, Ear::Right);
        assert!((l - r).abs() < 1e-12, "mirror broken: {l} vs {r}");
        // Wave from the left (travelling +x) hits the left ear head-on.
        let head_on = local_arrival_angle(Vec2::new(1.0, 0.0), Ear::Left);
        assert!(head_on.abs() < 1e-12);
    }

    #[test]
    fn energy_is_finite_and_nonzero() {
        let r = renderer();
        for theta in [0.0, 90.0, 180.0, 270.0] {
            let ir = r.render_plane(theta);
            let e: f64 = ir.left.iter().map(|v| v * v).sum();
            assert!(e.is_finite() && e > 0.0, "θ={theta}: energy {e}");
        }
    }
}
