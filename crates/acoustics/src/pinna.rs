//! Angle-sensitive pinna micro-echo models.
//!
//! §2 of the paper establishes two facts the whole system rests on:
//!
//! 1. a pinna's impulse response changes markedly with the arrival angle
//!    (Fig 2a — strongly diagonal autocorrelation matrix), and
//! 2. two people's pinnae differ for the *same* angle (Fig 2b).
//!
//! We model a pinna as a direct tap plus `K` micro-echoes whose delays and
//! gains vary smoothly with the local arrival angle through low-order
//! Fourier series. Coefficients are drawn from a subject-seeded RNG, so a
//! pinna is a reproducible function of `(subject seed, ear)` — personal by
//! construction.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniq_dsp::delay::add_fractional_impulse;

/// One micro-echo of a pinna model.
#[derive(Debug, Clone, Copy)]
pub struct PinnaTap {
    /// Delay at arrival angle 0, milliseconds.
    pub base_delay_ms: f64,
    /// First-harmonic delay modulation amplitude, milliseconds.
    pub delay_mod_ms: f64,
    /// Phase of the delay modulation, radians.
    pub delay_phase: f64,
    /// Gain at arrival angle 0 (relative to the direct tap).
    pub gain: f64,
    /// First-harmonic gain modulation amplitude (fraction of `gain`).
    pub gain_mod: f64,
    /// Phase of the gain modulation, radians.
    pub gain_phase: f64,
    /// Second-harmonic delay modulation amplitude, milliseconds.
    pub delay_mod2_ms: f64,
    /// Elevation delay-modulation amplitude, milliseconds (3-D extension:
    /// how strongly this micro-echo's timing shifts as the source rises).
    pub elev_delay_mod_ms: f64,
    /// Elevation gain-modulation fraction (3-D extension).
    pub elev_gain_mod: f64,
}

/// An angle-sensitive pinna impulse-response model for one ear.
///
/// ```
/// use uniq_acoustics::pinna::PinnaModel;
/// use uniq_dsp::xcorr::peak_normalized_xcorr;
/// let pinna = PinnaModel::from_seed(7);
/// let frontal = pinna.response(0.0, 48_000.0, 128);
/// let lateral = pinna.response(1.2, 48_000.0, 128);
/// // The response depends on where the sound comes from (Fig 2a).
/// assert!(peak_normalized_xcorr(&frontal, &lateral) < 1.0 - 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct PinnaModel {
    taps: Vec<PinnaTap>,
}

/// Bounds used when sampling random pinna models.
mod ranges {
    /// Number of micro-echo taps.
    pub const TAPS: std::ops::Range<usize> = 5..9;
    /// Base micro-echo delay, ms (0.05–0.55 ms ≈ 2–26 samples at 48 kHz).
    pub const BASE_DELAY_MS: std::ops::Range<f64> = 0.05..0.55;
    /// Delay modulation amplitude, ms.
    pub const DELAY_MOD_MS: std::ops::Range<f64> = 0.05..0.20;
    /// Second-harmonic delay modulation, ms.
    pub const DELAY_MOD2_MS: std::ops::Range<f64> = 0.01..0.08;
    /// Echo gain relative to the direct tap.
    pub const GAIN: std::ops::Range<f64> = 0.15..0.65;
    /// Gain modulation fraction.
    pub const GAIN_MOD: std::ops::Range<f64> = 0.2..0.8;
    /// Elevation delay-modulation amplitude, ms.
    pub const ELEV_DELAY_MOD_MS: std::ops::Range<f64> = 0.03..0.15;
    /// Elevation gain-modulation fraction.
    pub const ELEV_GAIN_MOD: std::ops::Range<f64> = 0.1..0.5;
}

impl PinnaModel {
    /// Builds a model from explicit taps (mainly for tests).
    pub fn from_taps(taps: Vec<PinnaTap>) -> Self {
        PinnaModel { taps }
    }

    /// Samples a random pinna for the given seed. Different seeds give
    /// markedly different pinnae; the same seed is fully reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(ranges::TAPS);
        let taps = (0..n)
            .map(|_| PinnaTap {
                base_delay_ms: rng.gen_range(ranges::BASE_DELAY_MS),
                delay_mod_ms: rng.gen_range(ranges::DELAY_MOD_MS),
                delay_phase: rng.gen_range(0.0..std::f64::consts::TAU),
                gain: rng.gen_range(ranges::GAIN) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                gain_mod: rng.gen_range(ranges::GAIN_MOD),
                gain_phase: rng.gen_range(0.0..std::f64::consts::TAU),
                delay_mod2_ms: rng.gen_range(ranges::DELAY_MOD2_MS),
                elev_delay_mod_ms: rng.gen_range(ranges::ELEV_DELAY_MOD_MS),
                elev_gain_mod: rng.gen_range(ranges::ELEV_GAIN_MOD),
            })
            .collect();
        PinnaModel { taps }
    }

    /// The micro-echo taps.
    pub fn taps(&self) -> &[PinnaTap] {
        &self.taps
    }

    /// Renders the pinna impulse response for a wave arriving at
    /// `arrival_angle` radians (local angle at the ear), as `len` samples
    /// at `sample_rate`. Tap 0 of the output is the direct (unit) arrival.
    pub fn response(&self, arrival_angle: f64, sample_rate: f64, len: usize) -> Vec<f64> {
        self.response_3d(arrival_angle, 0.0, sample_rate, len)
    }

    /// Renders the pinna response for a 3-D arrival: `arrival_angle` as in
    /// [`PinnaModel::response`], plus the `elevation` (radians) of the
    /// incoming ray above the horizontal plane. Elevation modulates each
    /// micro-echo's delay and gain through its own Fourier terms — the
    /// cue that breaks the cone of confusion in real pinnae.
    pub fn response_3d(
        &self,
        arrival_angle: f64,
        elevation: f64,
        sample_rate: f64,
        len: usize,
    ) -> Vec<f64> {
        let mut ir = vec![0.0; len];
        add_fractional_impulse(&mut ir, 0.0, 1.0);
        for t in &self.taps {
            let delay_ms = t.base_delay_ms
                + t.delay_mod_ms * (arrival_angle + t.delay_phase).sin()
                + t.delay_mod2_ms * (2.0 * arrival_angle + t.delay_phase).sin()
                + t.elev_delay_mod_ms * (elevation + 0.5 * t.delay_phase).sin();
            let delay_samples = (delay_ms.max(0.02) / 1000.0) * sample_rate;
            let gain = t.gain
                * (1.0 + t.gain_mod * (arrival_angle + t.gain_phase).cos())
                * (1.0 + t.elev_gain_mod * (elevation + t.gain_phase).sin());
            add_fractional_impulse(&mut ir, delay_samples, gain);
        }
        ir
    }

    /// Length (in samples at `sample_rate`) needed to contain every tap of
    /// this model plus the interpolation kernel tail.
    pub fn required_len(&self, sample_rate: f64) -> usize {
        let max_ms = self
            .taps
            .iter()
            .map(|t| t.base_delay_ms + t.delay_mod_ms + t.delay_mod2_ms + t.elev_delay_mod_ms)
            .fold(0.0_f64, f64::max);
        (max_ms / 1000.0 * sample_rate).ceil() as usize + uniq_dsp::delay::SINC_HALF_WIDTH + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::xcorr::peak_normalized_xcorr;

    const SR: f64 = 48_000.0;

    #[test]
    fn reproducible_from_seed() {
        let a = PinnaModel::from_seed(7);
        let b = PinnaModel::from_seed(7);
        let ra = a.response(0.3, SR, 128);
        let rb = b.response(0.3, SR, 128);
        assert_eq!(ra, rb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PinnaModel::from_seed(1).response(0.0, SR, 128);
        let b = PinnaModel::from_seed(2).response(0.0, SR, 128);
        let sim = peak_normalized_xcorr(&a, &b);
        assert!(sim < 0.98, "seeds too similar: {sim}");
    }

    #[test]
    fn angle_sensitivity_like_fig2a() {
        // Same pinna, angles 20° apart should decorrelate noticeably;
        // identical angles correlate perfectly. This is the Fig 2a diagonal.
        let p = PinnaModel::from_seed(42);
        let r0 = p.response(0.0, SR, 128);
        let r0b = p.response(0.0, SR, 128);
        let r20 = p.response(20f64.to_radians(), SR, 128);
        let r90 = p.response(90f64.to_radians(), SR, 128);
        assert!((peak_normalized_xcorr(&r0, &r0b) - 1.0).abs() < 1e-12);
        let c20 = peak_normalized_xcorr(&r0, &r20);
        let c90 = peak_normalized_xcorr(&r0, &r90);
        assert!(c20 < 0.999, "no sensitivity at 20°: {c20}");
        assert!(c90 < c20 + 0.05, "90° should decorrelate at least as much");
    }

    #[test]
    fn response_is_smooth_in_angle() {
        let p = PinnaModel::from_seed(9);
        let r1 = p.response(0.50, SR, 128);
        let r2 = p.response(0.51, SR, 128);
        let sim = peak_normalized_xcorr(&r1, &r2);
        assert!(sim > 0.99, "tiny angle step decorrelated too much: {sim}");
    }

    #[test]
    fn direct_tap_is_unit_without_echoes() {
        // With no micro-echoes the response is exactly a unit delta.
        let p = PinnaModel::from_taps(vec![]);
        let r = p.response(1.0, SR, 64);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!(r[1..].iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn isolated_tap_lands_at_its_delay() {
        let p = PinnaModel::from_taps(vec![PinnaTap {
            base_delay_ms: 0.5,
            delay_mod_ms: 0.0,
            delay_phase: 0.0,
            gain: -0.4,
            gain_mod: 0.0,
            gain_phase: 0.0,
            delay_mod2_ms: 0.0,
            elev_delay_mod_ms: 0.0,
            elev_gain_mod: 0.0,
        }]);
        let r = p.response(0.3, SR, 128);
        assert!((r[0] - 1.0).abs() < 1e-12);
        let at = (0.5e-3 * SR) as usize; // 24 samples
        assert!((r[at] + 0.4).abs() < 1e-9, "tap value {}", r[at]);
    }

    #[test]
    fn required_len_contains_all_energy() {
        let p = PinnaModel::from_seed(11);
        let need = p.required_len(SR);
        let long = p.response(0.7, SR, need + 64);
        let tail: f64 = long[need..].iter().map(|v| v * v).sum();
        assert!(tail < 1e-12, "energy beyond required_len: {tail}");
    }

    #[test]
    fn elevation_changes_response() {
        let p = PinnaModel::from_seed(77);
        let flat = p.response_3d(0.4, 0.0, SR, 128);
        let raised = p.response_3d(0.4, 0.8, SR, 128);
        let sim = peak_normalized_xcorr(&flat, &raised);
        assert!(sim < 0.999, "no elevation sensitivity: {sim}");
        // Zero elevation must reduce exactly to the 2-D response.
        assert_eq!(flat, p.response(0.4, SR, 128));
    }

    #[test]
    fn elevation_response_smooth() {
        let p = PinnaModel::from_seed(78);
        let a = p.response_3d(0.3, 0.50, SR, 128);
        let b = p.response_3d(0.3, 0.51, SR, 128);
        assert!(peak_normalized_xcorr(&a, &b) > 0.99);
    }

    #[test]
    fn taps_within_sampling_ranges() {
        for seed in 0..20 {
            let p = PinnaModel::from_seed(seed);
            assert!((5..9).contains(&p.taps().len()));
            for t in p.taps() {
                assert!((0.05..0.55).contains(&t.base_delay_ms));
                assert!(t.gain.abs() >= 0.15 && t.gain.abs() < 0.65);
            }
        }
    }
}
