//! Speaker–microphone system response and its compensation.
//!
//! Every recording passes through the phone speaker and the in-ear
//! microphone, whose combined response is far from flat (Fig 16 of the
//! paper: unstable below 50 Hz, usable over 100 Hz – 10 kHz). UNIQ's first
//! engineering step (§4.6) calibrates this response by playing a flat
//! chirp with the microphone co-located with the speaker, then divides it
//! out of every subsequent channel estimate.

use uniq_dsp::filter::BiquadCascade;
use uniq_dsp::spectrum::amplitude_to_db;

/// The emulated speaker–microphone chain.
#[derive(Debug, Clone)]
pub struct SystemResponse {
    cascade: BiquadCascade,
    sample_rate: f64,
}

impl SystemResponse {
    /// A budget phone-speaker + in-ear-microphone pair: 4th-order band-pass
    /// with corners near 90 Hz and 16 kHz — the Fig 16 shape.
    pub fn budget_hardware(sample_rate: f64) -> Self {
        SystemResponse {
            cascade: BiquadCascade::butterworth_bandpass(90.0, 16_000.0, sample_rate),
            sample_rate,
        }
    }

    /// An idealized flat chain (for ablations isolating hardware effects).
    pub fn flat(sample_rate: f64) -> Self {
        SystemResponse {
            cascade: BiquadCascade::new(vec![]),
            sample_rate,
        }
    }

    /// Sample rate the filters were designed for.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Applies the hardware colouration to a signal.
    pub fn apply(&self, signal: &[f64]) -> Vec<f64> {
        self.cascade.filter(signal)
    }

    /// Magnitude response at `freq` hertz.
    pub fn magnitude(&self, freq: f64) -> f64 {
        self.cascade.response(freq, self.sample_rate).abs()
    }

    /// Magnitude response in decibels (Fig 16's y-axis).
    pub fn magnitude_db(&self, freq: f64) -> f64 {
        amplitude_to_db(self.magnitude(freq))
    }

    /// The calibration measurement: the system's impulse response as
    /// estimated by playing `probe` through the chain with the microphone
    /// co-located with the speaker, then deconvolving.
    pub fn calibrate(&self, probe: &[f64], ir_len: usize) -> Vec<f64> {
        let recorded = self.apply(probe);
        uniq_dsp::deconv::wiener_deconvolve(&recorded, probe, 1e-4, ir_len)
    }
}

/// Compensates a channel estimate for the calibrated system response:
/// divides the channel spectrum by the system spectrum (Wiener-regularized
/// so the unstable sub-50 Hz region cannot explode).
pub fn compensate_response(channel: &[f64], system_ir: &[f64], noise_floor: f64) -> Vec<f64> {
    uniq_dsp::deconv::wiener_deconvolve(channel, system_ir, noise_floor, channel.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::signal::linear_chirp;

    const SR: f64 = 48_000.0;

    #[test]
    fn fig16_shape() {
        let sys = SystemResponse::budget_hardware(SR);
        // Unstable (heavily attenuated) below 50 Hz.
        assert!(sys.magnitude_db(30.0) < -15.0);
        // Reasonably flat over the usable band.
        for f in [200.0, 1000.0, 5000.0, 10_000.0] {
            assert!(
                sys.magnitude_db(f).abs() < 3.0,
                "not flat at {f} Hz: {} dB",
                sys.magnitude_db(f)
            );
        }
        // Rolls off again toward Nyquist.
        assert!(sys.magnitude_db(22_000.0) < -6.0);
    }

    #[test]
    fn flat_system_is_identity() {
        let sys = SystemResponse::flat(SR);
        let sig = linear_chirp(100.0, 10_000.0, 0.01, SR);
        assert_eq!(sys.apply(&sig), sig);
        assert!((sys.magnitude(1234.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_captures_response() {
        let sys = SystemResponse::budget_hardware(SR);
        let probe = linear_chirp(50.0, 20_000.0, 0.1, SR);
        let ir = sys.calibrate(&probe, 256);
        // The calibrated IR's spectrum should match the filter's magnitude
        // in the probe band.
        let spec = uniq_dsp::fft::rfft(&ir);
        let n = spec.len();
        for f in [500.0, 2000.0, 8000.0] {
            let bin = (f / SR * n as f64).round() as usize;
            let got = spec[bin].abs();
            let want = sys.magnitude(bin as f64 * SR / n as f64);
            assert!(
                (got - want).abs() < 0.1,
                "calibration off at {f} Hz: {got} vs {want}"
            );
        }
    }

    #[test]
    fn compensation_flattens_channel() {
        // A channel measured through the system, then compensated, should
        // recover the in-band structure of the raw channel.
        let sys = SystemResponse::budget_hardware(SR);
        let mut channel = vec![0.0; 128];
        channel[10] = 1.0;
        channel[30] = -0.4;
        let coloured = sys.apply(&channel);
        let probe = linear_chirp(50.0, 20_000.0, 0.1, SR);
        let sys_ir = sys.calibrate(&probe, 128);
        let restored = compensate_response(&coloured, &sys_ir, 1e-3);
        // Peaks should be back near their raw amplitudes/locations.
        assert!(restored[10] > 0.7, "main tap lost: {}", restored[10]);
        assert!(restored[30] < -0.25, "echo tap lost: {}", restored[30]);
    }
}
