//! # uniq-acoustics
//!
//! Forward acoustic propagation simulator for the UNIQ reproduction — the
//! stand-in for the paper's physical world (volunteers, a Xiaomi phone
//! with a pasted speaker, SP-TFB-2 in-ear microphones, and a real room).
//!
//! The simulator renders what an in-ear microphone records when a source
//! plays near a head:
//!
//! * [`types`] — binaural impulse-response containers ([`BinauralIr`],
//!   [`HrirBank`]) and the [`RenderConfig`] shared across the workspace.
//! * [`shadow`] — frequency-dependent diffraction-shadow attenuation
//!   (creeping waves lose high frequencies as they wrap the head).
//! * [`pinna`] — angle-sensitive pinna micro-echo models; the per-subject
//!   parameters that make HRTFs personal (§2, Fig 2 of the paper).
//! * [`render`] — the core renderer: point-source and plane-wave HRIRs
//!   combining wrap delay, spreading loss, shadow filtering and pinna
//!   multipath.
//! * [`render3d`] — the 3-D forward model for the §7 elevation extension.
//! * [`room`] — image-source shoebox reverberation; room echoes arrive
//!   after head/pinna taps, which UNIQ's pre-processing exploits (§4.6).
//! * [`system`] — the speaker–microphone frequency response (Fig 16) and
//!   its calibration/compensation.
//! * [`signals`] — stochastic test signals: white noise, synthetic music
//!   and speech (the unknown-source categories of Fig 22).
//! * [`measure`] — the measurement channel: probe playback through the
//!   full chain with configurable SNR.
//!
//! Everything is deterministic given an RNG seed; `rand::StdRng` seeds are
//! threaded explicitly so experiments are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measure;
pub mod pinna;
pub mod render;
pub mod render3d;
pub mod room;
pub mod shadow;
pub mod signals;
pub mod system;
pub mod types;

pub use pinna::PinnaModel;
pub use render::{render_plane_wave, render_point_source, NearFieldError, Renderer};
pub use types::{BinauralIr, HrirBank, RenderConfig};
