//! Shared containers: binaural impulse responses, HRIR banks, render
//! configuration.

use uniq_dsp::xcorr::peak_normalized_xcorr;

/// Render/simulation configuration shared by the forward simulator and the
/// UNIQ pipeline.
#[derive(Debug, Clone, Copy)]
pub struct RenderConfig {
    /// Audio sample rate, hertz.
    pub sample_rate: f64,
    /// Length of rendered head impulse responses, samples.
    pub ir_len: usize,
    /// Speed of sound, metres per second.
    pub speed_of_sound: f64,
    /// Shadow-attenuation strength κ (see [`crate::shadow`]).
    pub shadow_kappa: f64,
    /// Shadow-attenuation reference frequency f₀, hertz.
    pub shadow_f0: f64,
    /// Base acoustic latency added to every rendered path, seconds. Keeps
    /// fractional-delay kernels fully causal and mimics fixed hardware
    /// buffering; identical for both ears so TDoA is unaffected.
    pub base_delay: f64,
}

impl Default for RenderConfig {
    fn default() -> Self {
        RenderConfig {
            sample_rate: uniq_dsp::DEFAULT_SAMPLE_RATE,
            ir_len: 512,
            speed_of_sound: uniq_dsp::SPEED_OF_SOUND,
            shadow_kappa: 0.6,
            shadow_f0: 4000.0,
            base_delay: 0.001,
        }
    }
}

impl RenderConfig {
    /// Converts a path length in metres to a delay in samples.
    pub fn metres_to_samples(&self, metres: f64) -> f64 {
        (metres / self.speed_of_sound + self.base_delay) * self.sample_rate
    }

    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on non-positive rates/lengths or absurd parameters.
    pub fn validate(&self) {
        assert!(self.sample_rate > 0.0, "sample_rate must be positive");
        assert!(self.ir_len >= 64, "ir_len too short for head acoustics");
        assert!(self.speed_of_sound > 0.0, "speed of sound must be positive");
        assert!(self.base_delay >= 0.0, "base delay cannot be negative");
    }
}

/// A pair of left/right impulse responses (an HRIR once associated with an
/// angle).
#[derive(Debug, Clone, PartialEq)]
pub struct BinauralIr {
    /// Left-ear impulse response.
    pub left: Vec<f64>,
    /// Right-ear impulse response.
    pub right: Vec<f64>,
}

impl BinauralIr {
    /// Creates a pair of equal-length responses.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn new(left: Vec<f64>, right: Vec<f64>) -> Self {
        assert_eq!(
            left.len(),
            right.len(),
            "binaural IR halves must have equal length"
        );
        BinauralIr { left, right }
    }

    /// An all-zero pair of the given length.
    pub fn zeros(len: usize) -> Self {
        BinauralIr {
            left: vec![0.0; len],
            right: vec![0.0; len],
        }
    }

    /// Length in samples (same for both ears).
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// Whether the responses are zero-length.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }

    /// The paper's similarity metric against another HRIR: peak-normalized
    /// cross-correlation per ear, returned as `(left, right)`.
    pub fn similarity(&self, other: &BinauralIr) -> (f64, f64) {
        (
            peak_normalized_xcorr(&self.left, &other.left),
            peak_normalized_xcorr(&self.right, &other.right),
        )
    }

    /// Element-wise scale of both ears (gain staging).
    pub fn scaled(&self, gain: f64) -> BinauralIr {
        BinauralIr {
            left: self.left.iter().map(|v| v * gain).collect(),
            right: self.right.iter().map(|v| v * gain).collect(),
        }
    }

    /// Accumulates `other` into `self` (mixing renderer paths).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn add_assign(&mut self, other: &BinauralIr) {
        assert_eq!(self.len(), other.len(), "cannot mix IRs of unequal length");
        for (a, b) in self.left.iter_mut().zip(&other.left) {
            *a += b;
        }
        for (a, b) in self.right.iter_mut().zip(&other.right) {
            *a += b;
        }
    }
}

/// A bank of HRIRs indexed by polar angle (degrees, paper convention).
///
/// Both the ground-truth measurement rig and UNIQ's estimated output use
/// this container; `angles_deg` is kept sorted ascending.
#[derive(Debug, Clone)]
pub struct HrirBank {
    angles_deg: Vec<f64>,
    irs: Vec<BinauralIr>,
    sample_rate: f64,
}

impl HrirBank {
    /// Builds a bank from `(angle, HRIR)` pairs; sorts by angle.
    ///
    /// # Panics
    /// Panics if empty, lengths differ, angles repeat, or any angle is NaN.
    pub fn new(mut pairs: Vec<(f64, BinauralIr)>, sample_rate: f64) -> Self {
        assert!(!pairs.is_empty(), "HrirBank needs at least one entry");
        assert!(
            pairs.iter().all(|(angle, _)| !angle.is_nan()),
            "NaN angle in HrirBank"
        );
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in pairs.windows(2) {
            assert!(
                w[1].0 - w[0].0 > 1e-9,
                "duplicate angle {} in HrirBank",
                w[0].0
            );
        }
        let len = pairs[0].1.len();
        assert!(
            pairs.iter().all(|(_, ir)| ir.len() == len),
            "all HRIRs in a bank must share a length"
        );
        let (angles_deg, irs) = pairs.into_iter().unzip();
        HrirBank {
            angles_deg,
            irs,
            sample_rate,
        }
    }

    /// Measured angles, ascending.
    pub fn angles(&self) -> &[f64] {
        &self.angles_deg
    }

    /// The stored HRIRs, index-aligned with [`HrirBank::angles`].
    pub fn irs(&self) -> &[BinauralIr] {
        &self.irs
    }

    /// Sample rate of the impulse responses.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.irs.len()
    }

    /// Whether the bank is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.irs.is_empty()
    }

    /// The HRIR measured at the angle nearest to `theta_deg` (wrapping).
    pub fn nearest(&self, theta_deg: f64) -> (&BinauralIr, f64) {
        let t = theta_deg.rem_euclid(360.0);
        let (idx, _) = self
            .angles_deg
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = wrap_diff(**a, t);
                let db = wrap_diff(**b, t);
                da.total_cmp(&db)
            })
            // uniq-analyzer: allow(panic-safety) — the constructor asserts the bank is non-empty
            .expect("non-empty bank");
        (&self.irs[idx], self.angles_deg[idx])
    }

    /// Index of the entry at exactly `theta_deg` (±1e−6°), if present.
    pub fn index_of(&self, theta_deg: f64) -> Option<usize> {
        self.angles_deg
            .iter()
            .position(|a| (a - theta_deg).abs() < 1e-6)
    }
}

fn wrap_diff(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    d.min(360.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ir(v: f64, len: usize) -> BinauralIr {
        BinauralIr::new(vec![v; len], vec![v; len])
    }

    #[test]
    fn config_defaults_validate() {
        RenderConfig::default().validate();
    }

    #[test]
    fn metres_to_samples_includes_base_delay() {
        let cfg = RenderConfig {
            sample_rate: 48000.0,
            base_delay: 0.001,
            ..Default::default()
        };
        let s = cfg.metres_to_samples(0.343);
        // 1 ms path + 1 ms base = 96 samples.
        assert!((s - 96.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_binaural_panics() {
        BinauralIr::new(vec![0.0; 4], vec![0.0; 5]);
    }

    #[test]
    fn similarity_self_is_one() {
        let mut b = BinauralIr::zeros(64);
        b.left[10] = 1.0;
        b.right[12] = 0.5;
        let (l, r) = b.similarity(&b);
        assert!((l - 1.0).abs() < 1e-9);
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn add_assign_mixes() {
        let mut a = ir(1.0, 4);
        a.add_assign(&ir(0.5, 4));
        assert_eq!(a.left, vec![1.5; 4]);
    }

    #[test]
    fn bank_sorts_by_angle() {
        let bank = HrirBank::new(
            vec![(90.0, ir(1.0, 8)), (0.0, ir(2.0, 8)), (45.0, ir(3.0, 8))],
            48000.0,
        );
        assert_eq!(bank.angles(), &[0.0, 45.0, 90.0]);
        assert_eq!(bank.irs()[0].left[0], 2.0);
    }

    #[test]
    fn bank_nearest_wraps() {
        let bank = HrirBank::new(vec![(10.0, ir(1.0, 8)), (350.0, ir(2.0, 8))], 48000.0);
        let (got, ang) = bank.nearest(356.0);
        assert_eq!(ang, 350.0);
        assert_eq!(got.left[0], 2.0);
        let (_, ang) = bank.nearest(2.0);
        assert_eq!(ang, 10.0); // 2° is 8° from 10° but 12° from 350°
    }

    #[test]
    fn bank_index_of() {
        let bank = HrirBank::new(vec![(0.0, ir(1.0, 8)), (10.0, ir(1.0, 8))], 48e3);
        assert_eq!(bank.index_of(10.0), Some(1));
        assert_eq!(bank.index_of(5.0), None);
    }

    #[test]
    #[should_panic(expected = "duplicate angle")]
    fn bank_rejects_duplicates() {
        HrirBank::new(vec![(0.0, ir(1.0, 8)), (0.0, ir(1.0, 8))], 48e3);
    }

    #[test]
    #[should_panic(expected = "share a length")]
    fn bank_rejects_ragged() {
        HrirBank::new(vec![(0.0, ir(1.0, 8)), (1.0, ir(1.0, 9))], 48e3);
    }
}
