//! Frequency-dependent diffraction-shadow attenuation.
//!
//! A creeping wave that wraps angle `φ` around the head sheds energy
//! continuously, and sheds *more at higher frequencies* — the classic
//! head-shadow low-pass. We use a first-order UTD-flavoured magnitude
//! model:
//!
//! ```text
//! A(f, φ) = exp(−κ · φ · sqrt(f / f₀))
//! ```
//!
//! with `κ` and `f₀` from [`crate::types::RenderConfig`]. The renderer
//! realizes this magnitude as a **linear-phase FIR** (frequency sampling),
//! so shadowed taps keep their arrival time while losing treble.

use uniq_dsp::complex::Complex;
use uniq_dsp::fft::ifft;
use uniq_dsp::window::{window, WindowKind};

/// Number of taps in the generated shadow FIR (odd → symmetric linear
/// phase with integer group delay `(LEN-1)/2`).
pub const SHADOW_FIR_LEN: usize = 33;

/// Frequency-sampling design size.
const DESIGN_N: usize = 256;

/// The shadow magnitude `A(f, φ)` of the model above.
pub fn shadow_magnitude(freq_hz: f64, wrap_angle: f64, kappa: f64, f0: f64) -> f64 {
    if wrap_angle <= 0.0 {
        return 1.0;
    }
    (-kappa * wrap_angle * (freq_hz.max(0.0) / f0).sqrt()).exp()
}

/// Designs the linear-phase shadow FIR for a given wrap angle.
///
/// Returns `None` for non-positive wrap angles (no filtering needed —
/// the caller should place the raw tap). The kernel's group delay is
/// [`group_delay_samples`] samples; the renderer subtracts it when placing
/// taps so arrival times stay exact.
pub fn shadow_fir(wrap_angle: f64, kappa: f64, f0: f64, sample_rate: f64) -> Option<Vec<f64>> {
    if wrap_angle <= 0.0 {
        return None;
    }
    // Sample the desired magnitude on the full FFT grid (conjugate
    // symmetric, zero phase) and inverse transform.
    let mut spec = vec![Complex::ZERO; DESIGN_N];
    for (k, s) in spec.iter_mut().enumerate() {
        let f = if k <= DESIGN_N / 2 {
            k as f64 * sample_rate / DESIGN_N as f64
        } else {
            (DESIGN_N - k) as f64 * sample_rate / DESIGN_N as f64
        };
        *s = Complex::from_real(shadow_magnitude(f, wrap_angle, kappa, f0));
    }
    let impulse = ifft(&spec);
    // Zero-phase impulse is centred at 0 (wrapping negatively); rotate so
    // the centre lands mid-kernel, window, truncate.
    let half = SHADOW_FIR_LEN / 2;
    let win = window(WindowKind::Hann, SHADOW_FIR_LEN);
    let mut taps: Vec<f64> = (0..SHADOW_FIR_LEN)
        .map(|i| {
            let src = (i + DESIGN_N - half) % DESIGN_N;
            impulse[src].re * win[i]
        })
        .collect();
    // Renormalize the DC response to the analytic value (windowing nudges
    // it slightly).
    let dc: f64 = taps.iter().sum();
    let want = shadow_magnitude(0.0, wrap_angle, kappa, f0);
    if dc.abs() > 1e-12 {
        let g = want / dc;
        for t in taps.iter_mut() {
            *t *= g;
        }
    }
    Some(taps)
}

/// Group delay of the generated FIR in samples.
pub const fn group_delay_samples() -> usize {
    SHADOW_FIR_LEN / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::fft::rfft;

    const SR: f64 = 48_000.0;

    #[test]
    fn magnitude_monotone_in_everything() {
        let m = |f: f64, w: f64| shadow_magnitude(f, w, 0.6, 4000.0);
        // Decreases with frequency.
        assert!(m(8000.0, 1.0) < m(1000.0, 1.0));
        // Decreases with wrap angle.
        assert!(m(1000.0, 2.0) < m(1000.0, 0.5));
        // No wrap → no attenuation.
        assert_eq!(m(10_000.0, 0.0), 1.0);
        // DC unaffected by wrap.
        assert_eq!(m(0.0, 3.0), 1.0);
    }

    #[test]
    fn fir_none_for_direct_path() {
        assert!(shadow_fir(0.0, 0.6, 4000.0, SR).is_none());
        assert!(shadow_fir(-1.0, 0.6, 4000.0, SR).is_none());
    }

    #[test]
    fn fir_matches_analytic_magnitude() {
        // A 33-tap windowed design smooths the analytic curve; check the
        // match where the curve is resolvable at this kernel length.
        let wrap = 1.2;
        let taps = shadow_fir(wrap, 0.6, 4000.0, SR).unwrap();
        assert_eq!(taps.len(), SHADOW_FIR_LEN);
        let spec = rfft(&taps); // padded to 64 bins
        let n = spec.len();
        // High-frequency plateau: the analytic curve is flat enough there
        // for the short kernel to track it.
        for &f in &[12_000.0, 18_000.0] {
            let bin = (f / SR * n as f64).round() as usize;
            let got = spec[bin].abs();
            let want = shadow_magnitude(bin as f64 * SR / n as f64, wrap, 0.6, 4000.0);
            assert!((got - want).abs() < 0.15, "f={f}: got {got}, want {want}");
        }
        // The steep low-frequency knee is necessarily smoothed by a 33-tap
        // kernel; require monotone decrease instead of a pointwise match.
        let mags: Vec<f64> = (0..=n / 2).map(|k| spec[k].abs()).collect();
        for w in mags.windows(2) {
            assert!(w[1] <= w[0] + 0.02, "response not monotone: {w:?}");
        }
        // And the filter must actually be a low-pass: treble well below DC.
        let hi = spec[n / 2 - 1].abs();
        let lo = spec[1].abs();
        assert!(hi < 0.6 * lo, "not a low-pass: lo={lo} hi={hi}");
    }

    #[test]
    fn fir_symmetric_linear_phase() {
        let taps = shadow_fir(0.7, 0.6, 4000.0, SR).unwrap();
        for k in 0..taps.len() / 2 {
            assert!(
                (taps[k] - taps[taps.len() - 1 - k]).abs() < 1e-9,
                "asymmetry at {k}"
            );
        }
    }

    #[test]
    fn heavier_wrap_attenuates_more_broadband() {
        let light = shadow_fir(0.3, 0.6, 4000.0, SR).unwrap();
        let heavy = shadow_fir(2.0, 0.6, 4000.0, SR).unwrap();
        let energy = |t: &[f64]| t.iter().map(|v| v * v).sum::<f64>();
        assert!(energy(&heavy) < energy(&light));
    }
}
