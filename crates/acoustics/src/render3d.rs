//! 3-D binaural rendering — forward model for the §7 "3D HRTF" extension.
//!
//! Mirrors [`crate::render`] one dimension up: wrap delays come from the
//! plane-section geodesics of `uniq_geometry::elevation`, and pinna
//! multipath gains its elevation dependence through
//! [`PinnaModel::response_3d`].

use crate::pinna::PinnaModel;
use crate::shadow::{group_delay_samples, shadow_fir};
use crate::types::{BinauralIr, RenderConfig};
use uniq_dsp::conv::convolve;
use uniq_dsp::delay::add_fractional_impulse;
use uniq_geometry::elevation::{path_to_ear_3d, Head3, Vec3};
use uniq_geometry::Ear;

/// A subject-specific 3-D renderer.
#[derive(Debug, Clone)]
pub struct Renderer3 {
    cfg: RenderConfig,
    head: Head3,
    pinna_left: PinnaModel,
    pinna_right: PinnaModel,
}

impl Renderer3 {
    /// Builds a 3-D renderer.
    ///
    /// # Panics
    /// Panics on an invalid configuration.
    pub fn new(
        head: Head3,
        pinna_left: PinnaModel,
        pinna_right: PinnaModel,
        cfg: RenderConfig,
    ) -> Self {
        cfg.validate();
        Renderer3 {
            cfg,
            head,
            pinna_left,
            pinna_right,
        }
    }

    /// The head model.
    pub fn head(&self) -> &Head3 {
        &self.head
    }

    /// The render configuration.
    pub fn config(&self) -> &RenderConfig {
        &self.cfg
    }

    /// Renders a point source at `src` (head frame, metres). Returns
    /// `None` when the source is inside the head.
    pub fn render_point(&self, src: Vec3) -> Option<BinauralIr> {
        let mut out = BinauralIr::zeros(self.cfg.ir_len);
        for ear in Ear::BOTH {
            let path = path_to_ear_3d(&self.head, src, ear)?;
            let gain = 1.0 / path.length.max(0.05);
            let ir = self.render_arrival(src, path.length, path.wrap_angle, gain, ear);
            match ear {
                Ear::Left => out.left = ir,
                Ear::Right => out.right = ir,
            }
        }
        Some(out)
    }

    /// Renders a far-field plane wave from `(azimuth, elevation)` degrees.
    pub fn render_plane(&self, theta_deg: f64, elevation_deg: f64) -> BinauralIr {
        const FAR: f64 = 100.0;
        let src = Vec3::from_angles(theta_deg, elevation_deg).scale(FAR);
        let mut out = BinauralIr::zeros(self.cfg.ir_len);
        for ear in Ear::BOTH {
            // uniq-analyzer: allow(panic-safety) — the source sits 100 m out; no head model approaches that radius
            let path = path_to_ear_3d(&self.head, src, ear).expect("far source outside the head");
            let excess = path.length - FAR;
            let ir = self.render_arrival(src, excess, path.wrap_angle, 1.0, ear);
            match ear {
                Ear::Left => out.left = ir,
                Ear::Right => out.right = ir,
            }
        }
        out
    }

    fn render_arrival(
        &self,
        src: Vec3,
        path_metres: f64,
        wrap_angle: f64,
        gain: f64,
        ear: Ear,
    ) -> Vec<f64> {
        let cfg = &self.cfg;
        let delay = cfg.metres_to_samples(path_metres);

        let mut tap = vec![0.0; cfg.ir_len];
        match shadow_fir(wrap_angle, cfg.shadow_kappa, cfg.shadow_f0, cfg.sample_rate) {
            None => add_fractional_impulse(&mut tap, delay, gain),
            Some(kernel) => {
                let pos = delay - group_delay_samples() as f64;
                let mut imp = vec![0.0; cfg.ir_len];
                add_fractional_impulse(&mut imp, pos.max(0.0), gain);
                let full = convolve(&imp, &kernel);
                tap.copy_from_slice(&full[..cfg.ir_len]);
            }
        }

        // Local arrival angles: the horizontal component reuses the 2-D
        // convention; elevation is the ray's angle above the horizon.
        let horiz = uniq_geometry::Vec2::new(src.x, src.y);
        let local_az = if horiz.norm() > 1e-9 {
            crate::render::local_arrival_angle(-horiz.normalized(), ear)
        } else {
            0.0
        };
        let elevation = src.z.atan2(horiz.norm());

        let pinna = match ear {
            Ear::Left => &self.pinna_left,
            Ear::Right => &self.pinna_right,
        };
        let pinna_ir = pinna.response_3d(
            local_az,
            elevation,
            cfg.sample_rate,
            pinna.required_len(cfg.sample_rate),
        );
        let full = convolve(&tap, &pinna_ir);
        full[..cfg.ir_len].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::peaks::first_tap;

    fn renderer() -> Renderer3 {
        Renderer3::new(
            Head3::average_adult(),
            PinnaModel::from_seed(901),
            PinnaModel::from_seed(902),
            RenderConfig::default(),
        )
    }

    #[test]
    fn horizontal_plane_matches_2d_first_taps() {
        // At zero elevation the 3-D renderer's interaural delay must match
        // the 2-D renderer's (same planar head).
        let r3 = renderer();
        let r2 = crate::render::Renderer::new(
            uniq_geometry::HeadBoundary::new(r3.head().planar, 2048),
            PinnaModel::from_seed(901),
            PinnaModel::from_seed(902),
            RenderConfig::default(),
        );
        for theta in [30.0, 70.0, 120.0] {
            let ir3 = r3.render_plane(theta, 0.0);
            let ir2 = r2.render_plane(theta);
            let tdoa = |ir: &BinauralIr| {
                first_tap(&ir.right, 0.3).unwrap().position
                    - first_tap(&ir.left, 0.3).unwrap().position
            };
            assert!(
                (tdoa(&ir3) - tdoa(&ir2)).abs() < 1.0,
                "θ={theta}: 3D TDoA {} vs 2D {}",
                tdoa(&ir3),
                tdoa(&ir2)
            );
        }
    }

    #[test]
    fn elevation_shrinks_tdoa() {
        let r = renderer();
        let tdoa = |el: f64| {
            let ir = r.render_plane(90.0, el);
            first_tap(&ir.right, 0.3).unwrap().position - first_tap(&ir.left, 0.3).unwrap().position
        };
        assert!(tdoa(45.0) < tdoa(0.0) - 3.0);
        assert!(tdoa(75.0) < tdoa(45.0));
    }

    #[test]
    fn elevation_changes_hrir_beyond_delay() {
        // Same azimuth, different elevations: the pinna structure must
        // differ (the cue that breaks the cone of confusion).
        let r = renderer();
        let a = r.render_plane(45.0, 0.0);
        let b = r.render_plane(45.0, 50.0);
        let (sim, _) = a.similarity(&b);
        assert!(sim < 0.995, "elevation invisible in HRIR: {sim}");
    }

    #[test]
    fn point_source_inside_rejected() {
        assert!(renderer()
            .render_point(Vec3::new(0.0, 0.02, 0.02))
            .is_none());
    }

    #[test]
    fn overhead_source_balanced() {
        let r = renderer();
        let ir = r.render_plane(0.0, 85.0);
        let tl = first_tap(&ir.left, 0.3).unwrap().position;
        let tr = first_tap(&ir.right, 0.3).unwrap().position;
        assert!((tl - tr).abs() < 1.0, "overhead TDoA {}", tl - tr);
    }

    #[test]
    fn near_point_source_renders() {
        let r = renderer();
        let ir = r
            .render_point(Vec3::new(-0.3, 0.1, 0.2))
            .expect("outside the head");
        let e: f64 = ir.left.iter().map(|v| v * v).sum();
        assert!(e.is_finite() && e > 0.0);
    }
}
