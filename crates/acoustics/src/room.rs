//! Image-source shoebox reverberation.
//!
//! Home users measure in echoic rooms (§4.6 of the paper). We model a
//! rectangular room around the listener with the classic image-source
//! method: each wall reflection is an *image* of the true source, mirrored
//! across the wall and attenuated by the wall reflectivity. Every image is
//! then rendered through the same diffraction renderer as the true source,
//! so room echoes acquire correct head geometry too.
//!
//! For a seated listener away from walls, every image path is longer than
//! any head/pinna path — exactly the property UNIQ's time-gating
//! pre-processing relies on.

use crate::render::Renderer;
use crate::types::BinauralIr;
use uniq_geometry::Vec2;

/// A rectangular room in the head frame (the head centre is the origin and
/// must be inside the room).
#[derive(Debug, Clone, Copy)]
pub struct Shoebox {
    /// Wall at `x = x_min` (metres, negative).
    pub x_min: f64,
    /// Wall at `x = x_max`.
    pub x_max: f64,
    /// Wall at `y = y_min`.
    pub y_min: f64,
    /// Wall at `y = y_max`.
    pub y_max: f64,
    /// Amplitude reflectivity per bounce, in `(0, 1)`.
    pub reflectivity: f64,
    /// Maximum reflection order (1 = first bounces only).
    pub max_order: usize,
}

impl Shoebox {
    /// A typical 4 m × 5 m living room with the listener slightly
    /// off-centre and moderately absorbing walls.
    pub fn typical_living_room() -> Self {
        Shoebox {
            x_min: -1.8,
            x_max: 2.2,
            y_min: -2.3,
            y_max: 2.7,
            reflectivity: 0.5,
            max_order: 2,
        }
    }

    /// Validates the geometry.
    ///
    /// # Panics
    /// Panics if the origin is not strictly inside, reflectivity is not in
    /// `(0, 1)`, or `max_order == 0`.
    pub fn validate(&self) {
        assert!(
            self.x_min < 0.0 && self.x_max > 0.0 && self.y_min < 0.0 && self.y_max > 0.0,
            "head (origin) must be inside the room"
        );
        assert!(
            self.reflectivity > 0.0 && self.reflectivity < 1.0,
            "reflectivity must be in (0, 1)"
        );
        assert!(self.max_order >= 1, "max_order must be at least 1");
    }

    /// Shortest distance from the origin (head) to any wall.
    pub fn min_wall_distance(&self) -> f64 {
        (-self.x_min)
            .min(self.x_max)
            .min(-self.y_min)
            .min(self.y_max)
    }

    /// Enumerates image sources for a true source at `src`, excluding the
    /// direct (order-0) source itself. Returns `(position, gain)` pairs.
    ///
    /// The standard 2-D image lattice: reflections are indexed by `(m, n)`;
    /// image `x` alternates between translated copies of `src.x` and its
    /// mirror, likewise in `y`; the bounce count is `|m| + |n|`.
    pub fn image_sources(&self, src: Vec2) -> Vec<(Vec2, f64)> {
        self.validate();
        let lx = self.x_max - self.x_min;
        let ly = self.y_max - self.y_min;
        let order = self.max_order as i64;
        let mut out = Vec::new();
        for m in -order..=order {
            for n in -order..=order {
                let bounces = (m.abs() + n.abs()) as usize;
                if bounces == 0 || bounces > self.max_order {
                    continue;
                }
                let ix = image_coord(src.x, self.x_min, lx, m);
                let iy = image_coord(src.y, self.y_min, ly, n);
                let gain = self.reflectivity.powi(bounces as i32);
                out.push((Vec2::new(ix, iy), gain));
            }
        }
        out
    }

    /// Renders the full echoic binaural response of a point source: direct
    /// sound plus all image sources, each passed through the diffraction
    /// renderer. Returns `None` if the true source is inside the head.
    ///
    /// `ir_len` may exceed the renderer's configured head-IR length to
    /// capture late echoes.
    pub fn render_echoic(
        &self,
        renderer: &Renderer,
        src: Vec2,
        ir_len: usize,
    ) -> Option<BinauralIr> {
        self.validate();
        let mut cfg = *renderer.config();
        cfg.ir_len = ir_len;
        let long = Renderer::new(
            renderer.boundary().clone(),
            renderer.pinna(uniq_geometry::Ear::Left).clone(),
            renderer.pinna(uniq_geometry::Ear::Right).clone(),
            cfg,
        );
        let mut total = long.render_point(src)?;
        for (img, gain) in self.image_sources(src) {
            if let Some(ir) = long.render_point(img) {
                total.add_assign(&ir.scaled(gain));
            }
        }
        Some(total)
    }
}

/// Image coordinate along one axis after `k` mirror translations.
///
/// `w` is the low wall coordinate, `l` the room length on that axis. Even
/// `k` translates the source; odd `k` translates its mirror across the low
/// wall.
fn image_coord(s: f64, w: f64, l: f64, k: i64) -> f64 {
    // Reflections generate positions: ..., 2w - s - 2l, s - 2l, 2w - s, s,
    // 2w - s + 2l, s + 2l, ... — i.e. for index k:
    //   k even: s + k·l
    //   k odd:  2w - s + (k+1)·l
    if k.rem_euclid(2) == 0 {
        s + k as f64 * l
    } else {
        2.0 * w - s + (k + 1) as f64 * l
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinna::PinnaModel;
    use crate::types::RenderConfig;
    use uniq_dsp::peaks::first_tap;
    use uniq_geometry::{HeadBoundary, HeadParams};

    fn room() -> Shoebox {
        Shoebox::typical_living_room()
    }

    fn renderer() -> Renderer {
        Renderer::new(
            HeadBoundary::new(HeadParams::average_adult(), 512),
            PinnaModel::from_seed(5),
            PinnaModel::from_seed(6),
            RenderConfig::default(),
        )
    }

    #[test]
    fn image_count_matches_orders() {
        // Order ≤ 2 in 2-D: 4 first-order + 8 second-order = 12 images.
        let imgs = room().image_sources(Vec2::new(0.3, 0.2));
        assert_eq!(imgs.len(), 12);
        let first: Vec<_> = imgs
            .iter()
            .filter(|(_, g)| (*g - 0.5).abs() < 1e-12)
            .collect();
        assert_eq!(first.len(), 4);
    }

    #[test]
    fn first_order_images_mirror_across_walls() {
        let r = room();
        let src = Vec2::new(0.3, 0.2);
        let imgs = r.image_sources(src);
        // Mirror across x_max: x → 2·x_max − x.
        let expect_x = 2.0 * r.x_max - src.x;
        assert!(
            imgs.iter()
                .any(|(p, _)| (p.x - expect_x).abs() < 1e-9 && (p.y - src.y).abs() < 1e-9),
            "missing east-wall image"
        );
        // Mirror across y_min: y → 2·y_min − y.
        let expect_y = 2.0 * r.y_min - src.y;
        assert!(
            imgs.iter()
                .any(|(p, _)| (p.y - expect_y).abs() < 1e-9 && (p.x - src.x).abs() < 1e-9),
            "missing south-wall image"
        );
    }

    #[test]
    fn images_farther_than_source() {
        let r = room();
        let src = Vec2::new(0.25, 0.3);
        // Every image is at least one mirror away: ≥ 2·(nearest wall) − |src|.
        let bound = 2.0 * r.min_wall_distance() - src.norm();
        for (img, _) in r.image_sources(src) {
            assert!(
                img.norm() >= bound - 1e-9,
                "image {img:?} closer than the geometric bound {bound}"
            );
        }
    }

    #[test]
    fn second_order_weaker_gain() {
        let imgs = room().image_sources(Vec2::new(0.1, 0.1));
        for (_, g) in imgs {
            assert!((g - 0.5).abs() < 1e-12 || (g - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn echoic_render_adds_late_energy() {
        let rend = renderer();
        let src = Vec2::new(-0.35, 0.1);
        let dry = rend.render_point(src).unwrap();
        let wet = room().render_echoic(&rend, src, 2048).unwrap();
        // Early part (head taps) similar; late part has extra energy.
        let late = |v: &[f64]| v[512..].iter().map(|x| x * x).sum::<f64>();
        assert!(late(&wet.left) > 0.0);
        let early_dry: f64 = dry.left.iter().map(|x| x * x).sum();
        assert!(early_dry > 0.0);
    }

    #[test]
    fn room_echoes_arrive_after_head_taps() {
        // The §4.6 time-gating premise: the first room echo must trail the
        // direct first tap by the extra bounce distance.
        let rend = renderer();
        let src = Vec2::new(-0.35, 0.1);
        let wet = room().render_echoic(&rend, src, 2048).unwrap();
        let dry = rend.render_point(src).unwrap();
        let t_direct = first_tap(&dry.left, 0.25).unwrap().position;
        // Energy in the window right after the direct tap should dominate
        // over the same-size window far later only if echoes are weaker.
        let cfg = rend.config();
        // Shortest echo path: src → nearest wall → head, at least
        // 2·(wall distance) − |src| longer than direct.
        let extra_m = 2.0 * room().min_wall_distance() - 2.0 * src.norm();
        let min_gap = extra_m / cfg.speed_of_sound * cfg.sample_rate;
        let gate = t_direct as usize + (min_gap * 0.8) as usize;
        // Dry and wet must agree before the gate (no early echoes).
        for k in 0..gate.min(dry.left.len()) {
            assert!(
                (dry.left[k] - wet.left[k]).abs() < 1e-9,
                "early echo contamination at sample {k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "inside the room")]
    fn head_outside_room_rejected() {
        let bad = Shoebox {
            x_min: 0.5,
            ..room()
        };
        bad.image_sources(Vec2::new(0.6, 0.0));
    }

    #[test]
    #[should_panic(expected = "reflectivity")]
    fn bad_reflectivity_rejected() {
        let bad = Shoebox {
            reflectivity: 1.5,
            ..room()
        };
        bad.image_sources(Vec2::ZERO);
    }
}
