//! The measurement channel: what the earphone actually records.
//!
//! Chains the full forward model: probe → speaker/mic system response →
//! head propagation (optionally through a reverberant room) → additive
//! microphone noise at a configurable SNR. This is the only place the UNIQ
//! pipeline "touches" the physical world, mirroring the paper's hardware
//! loop (phone speaker → air → in-ear microphone).

use crate::render::Renderer;
use crate::room::Shoebox;
use crate::system::SystemResponse;
use crate::types::BinauralIr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniq_dsp::conv::convolve;
use uniq_dsp::signal::rms;
use uniq_geometry::Vec2;

/// Measurement-chain configuration.
#[derive(Debug, Clone)]
pub struct MeasurementSetup {
    /// Hardware colouration applied to the probe before it leaves the
    /// speaker.
    pub system: SystemResponse,
    /// Optional room (None = anechoic).
    pub room: Option<Shoebox>,
    /// Microphone signal-to-noise ratio in dB (white noise).
    pub snr_db: f64,
    /// IR length used when the room is enabled (must cover the echoes).
    pub echoic_ir_len: usize,
}

impl MeasurementSetup {
    /// An anechoic, noisy chain with budget hardware.
    pub fn anechoic(sample_rate: f64, snr_db: f64) -> Self {
        MeasurementSetup {
            system: SystemResponse::budget_hardware(sample_rate),
            room: None,
            snr_db,
            echoic_ir_len: 4096,
        }
    }

    /// A typical living room with budget hardware.
    pub fn home(sample_rate: f64, snr_db: f64) -> Self {
        MeasurementSetup {
            room: Some(Shoebox::typical_living_room()),
            ..Self::anechoic(sample_rate, snr_db)
        }
    }
}

/// One binaural recording (left/right microphone streams).
#[derive(Debug, Clone)]
pub struct BinauralRecording {
    /// Left in-ear microphone.
    pub left: Vec<f64>,
    /// Right in-ear microphone.
    pub right: Vec<f64>,
}

/// Identifies one recording capture for fault injection: which stop of
/// the sweep is being recorded, which retry attempt this is, and the
/// sample rate of the stream (so injectors can convert seconds to
/// samples).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionSite {
    /// Scheduled stop index within the sweep.
    pub stop: usize,
    /// Retry attempt for this stop (0 = first capture).
    pub attempt: usize,
    /// Sample rate of the recorded streams, Hz.
    pub sample_rate: f64,
}

/// A fault injector operating at the recording boundary — the last point
/// where the real system would see corruption (a dropped chirp, clipped
/// samples, a noise burst) before channel estimation.
///
/// Implementations must be deterministic: the same site and the same
/// injector state must corrupt a given recording identically, because the
/// session layer replays captures across retries and thread counts.
pub trait RecordingInjector: std::fmt::Debug + Sync {
    /// Corrupts `rec` in place and returns the labels of the fault
    /// classes actually applied at this site (empty = untouched).
    fn corrupt_recording(
        &self,
        site: InjectionSite,
        rec: &mut BinauralRecording,
    ) -> Vec<&'static str>;
}

/// Like [`record_point_source`], but passes the capture through a
/// [`RecordingInjector`] before returning it. Returns the (possibly
/// corrupted) recording together with the fault-class labels the injector
/// applied. Returns `None` if `src` is inside the head.
pub fn record_point_source_injected(
    renderer: &Renderer,
    setup: &MeasurementSetup,
    src: Vec2,
    probe: &[f64],
    noise_seed: u64,
    site: InjectionSite,
    injector: &dyn RecordingInjector,
) -> Option<(BinauralRecording, Vec<&'static str>)> {
    let mut rec = record_point_source(renderer, setup, src, probe, noise_seed)?;
    let faults = injector.corrupt_recording(site, &mut rec);
    Some((rec, faults))
}

/// Records `probe` played from a point source at `src` through the full
/// measurement chain. Returns `None` if `src` is inside the head.
pub fn record_point_source(
    renderer: &Renderer,
    setup: &MeasurementSetup,
    src: Vec2,
    probe: &[f64],
    noise_seed: u64,
) -> Option<BinauralRecording> {
    let ir = propagation_ir(renderer, setup, src)?;
    Some(record_through(&ir, setup, probe, noise_seed))
}

/// Records `signal` arriving as a far-field plane wave from `theta_deg`
/// through the measurement chain (ambient-source scenario: no speaker
/// colouration is applied, since the source is not our hardware — only the
/// microphone noise is added).
pub fn record_plane_wave(
    renderer: &Renderer,
    setup: &MeasurementSetup,
    theta_deg: f64,
    signal: &[f64],
    noise_seed: u64,
) -> BinauralRecording {
    let ir = renderer.render_plane(theta_deg);
    let left = convolve(signal, &ir.left);
    let right = convolve(signal, &ir.right);
    let mut rec = BinauralRecording { left, right };
    add_noise(&mut rec, setup.snr_db, noise_seed);
    rec
}

/// The propagation impulse response for a point source, with or without
/// the room.
pub fn propagation_ir(
    renderer: &Renderer,
    setup: &MeasurementSetup,
    src: Vec2,
) -> Option<BinauralIr> {
    match &setup.room {
        None => renderer.render_point(src),
        Some(room) => room.render_echoic(renderer, src, setup.echoic_ir_len),
    }
}

fn record_through(
    ir: &BinauralIr,
    setup: &MeasurementSetup,
    probe: &[f64],
    noise_seed: u64,
) -> BinauralRecording {
    let emitted = setup.system.apply(probe);
    let mut rec = BinauralRecording {
        left: convolve(&emitted, &ir.left),
        right: convolve(&emitted, &ir.right),
    };
    add_noise(&mut rec, setup.snr_db, noise_seed);
    rec
}

fn add_noise(rec: &mut BinauralRecording, snr_db: f64, seed: u64) {
    let level = rms(&rec.left).max(rms(&rec.right));
    if level <= 0.0 {
        return;
    }
    let noise_rms = level / 10f64.powf(snr_db / 20.0);
    // Uniform noise has RMS = amplitude/√3.
    let amp = noise_rms * 3f64.sqrt();
    let mut rng = StdRng::seed_from_u64(seed);
    for v in rec.left.iter_mut().chain(rec.right.iter_mut()) {
        *v += rng.gen_range(-amp..amp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinna::PinnaModel;
    use crate::types::RenderConfig;
    use uniq_dsp::signal::linear_chirp;
    use uniq_geometry::{HeadBoundary, HeadParams};

    const SR: f64 = 48_000.0;

    fn renderer() -> Renderer {
        Renderer::new(
            HeadBoundary::new(HeadParams::average_adult(), 512),
            PinnaModel::from_seed(21),
            PinnaModel::from_seed(22),
            RenderConfig::default(),
        )
    }

    fn probe() -> Vec<f64> {
        linear_chirp(100.0, 20_000.0, 0.05, SR)
    }

    #[test]
    fn recording_reproducible_per_seed() {
        let r = renderer();
        let setup = MeasurementSetup::anechoic(SR, 30.0);
        let a = record_point_source(&r, &setup, Vec2::new(-0.4, 0.1), &probe(), 5).unwrap();
        let b = record_point_source(&r, &setup, Vec2::new(-0.4, 0.1), &probe(), 5).unwrap();
        assert_eq!(a.left, b.left);
        let c = record_point_source(&r, &setup, Vec2::new(-0.4, 0.1), &probe(), 6).unwrap();
        assert_ne!(a.left, c.left);
    }

    #[test]
    fn snr_controls_noise_floor() {
        let r = renderer();
        let src = Vec2::new(-0.4, 0.1);
        let clean_setup = MeasurementSetup::anechoic(SR, 80.0);
        let noisy_setup = MeasurementSetup::anechoic(SR, 10.0);
        let clean = record_point_source(&r, &clean_setup, src, &probe(), 1).unwrap();
        let noisy = record_point_source(&r, &noisy_setup, src, &probe(), 1).unwrap();
        // Difference energy between 80 dB and 10 dB versions ≈ the noise.
        let diff_energy: f64 = clean
            .left
            .iter()
            .zip(&noisy.left)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let clean_energy: f64 = clean.left.iter().map(|v| v * v).sum();
        let ratio = 10.0 * (clean_energy / diff_energy).log10();
        assert!((ratio - 10.0).abs() < 3.0, "effective SNR {ratio} dB");
    }

    #[test]
    fn room_lengthens_recording_energy_tail() {
        let r = renderer();
        let src = Vec2::new(-0.4, 0.1);
        let dry = record_point_source(&r, &MeasurementSetup::anechoic(SR, 80.0), src, &probe(), 1)
            .unwrap();
        let wet =
            record_point_source(&r, &MeasurementSetup::home(SR, 80.0), src, &probe(), 1).unwrap();
        assert!(wet.left.len() > dry.left.len());
    }

    #[test]
    fn plane_wave_recording_has_itd() {
        let r = renderer();
        let setup = MeasurementSetup::anechoic(SR, 60.0);
        let sig = linear_chirp(200.0, 8000.0, 0.02, SR);
        let rec = record_plane_wave(&r, &setup, 60.0, &sig, 3);
        let lag = uniq_dsp::xcorr::xcorr_peak_lag(&rec.left, &rec.right).0;
        // Source on the left → right is delayed → aligning lag positive.
        assert!(lag > 0, "lag {lag}");
    }

    #[derive(Debug)]
    struct HalveLeft;
    impl RecordingInjector for HalveLeft {
        fn corrupt_recording(
            &self,
            site: InjectionSite,
            rec: &mut BinauralRecording,
        ) -> Vec<&'static str> {
            if site.stop == 1 {
                for v in rec.left.iter_mut() {
                    *v *= 0.5;
                }
                vec!["halve-left"]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn injected_recording_matches_clean_capture_plus_corruption() {
        let r = renderer();
        let setup = MeasurementSetup::anechoic(SR, 30.0);
        let src = Vec2::new(-0.4, 0.1);
        let clean = record_point_source(&r, &setup, src, &probe(), 5).unwrap();
        let site = InjectionSite {
            stop: 1,
            attempt: 0,
            sample_rate: SR,
        };
        let (rec, faults) =
            record_point_source_injected(&r, &setup, src, &probe(), 5, site, &HalveLeft).unwrap();
        assert_eq!(faults, vec!["halve-left"]);
        let halved: Vec<f64> = clean.left.iter().map(|v| v * 0.5).collect();
        assert_eq!(rec.left, halved, "corruption must act on the clean capture");
        assert_eq!(rec.right, clean.right, "right ear untouched");

        // A site the injector ignores must leave the capture bit-identical.
        let miss = InjectionSite { stop: 0, ..site };
        let (rec, faults) =
            record_point_source_injected(&r, &setup, src, &probe(), 5, miss, &HalveLeft).unwrap();
        assert!(faults.is_empty());
        assert_eq!(rec.left, clean.left);
    }

    #[test]
    fn inside_head_rejected() {
        let r = renderer();
        let setup = MeasurementSetup::anechoic(SR, 40.0);
        assert!(record_point_source(&r, &setup, Vec2::ZERO, &probe(), 0).is_none());
    }
}
