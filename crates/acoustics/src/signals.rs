//! Stochastic test signals: the unknown-source categories of Fig 22.
//!
//! The AoA evaluation plays three kinds of "unknown" sources at the
//! listener: white noise (full band), music (harmonic-rich, broadband) and
//! speech (energy concentrated at low/base frequencies — which is exactly
//! why the paper finds speech the hardest category). All generators are
//! seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;
use uniq_dsp::filter::Biquad;
use uniq_dsp::signal::normalize_peak;

/// The unknown-source signal categories evaluated in Fig 22.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// Spectrally flat noise.
    WhiteNoise,
    /// Synthetic music: chords of harmonics with note changes.
    Music,
    /// Synthetic speech: pitched harmonics under moving formants plus
    /// unvoiced bursts, dominated by low frequencies.
    Speech,
}

impl SignalKind {
    /// All categories, in the paper's presentation order.
    pub const ALL: [SignalKind; 3] = [
        SignalKind::WhiteNoise,
        SignalKind::Music,
        SignalKind::Speech,
    ];

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SignalKind::WhiteNoise => "white noise",
            SignalKind::Music => "music",
            SignalKind::Speech => "speech",
        }
    }
}

/// Generates `duration` seconds of the given signal kind at `sample_rate`,
/// peak-normalized to 1.0.
pub fn generate(kind: SignalKind, duration: f64, sample_rate: f64, seed: u64) -> Vec<f64> {
    let n = (duration * sample_rate).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sig = match kind {
        SignalKind::WhiteNoise => white_noise(n, &mut rng),
        SignalKind::Music => music(n, sample_rate, &mut rng),
        SignalKind::Speech => speech(n, sample_rate, &mut rng),
    };
    normalize_peak(&mut sig, 1.0);
    sig
}

/// Uniform white noise in `(-1, 1)`.
pub fn white_noise(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Synthetic music: a progression of 3-note chords, each note a stack of
/// decaying harmonics with slight detuning, at ~2.5 notes per second.
fn music(n: usize, sample_rate: f64, rng: &mut StdRng) -> Vec<f64> {
    // Pentatonic-ish pitch set (hertz).
    const PITCHES: [f64; 8] = [220.0, 261.6, 293.7, 329.6, 392.0, 440.0, 523.3, 587.3];
    let note_len = (0.4 * sample_rate) as usize;
    let mut out = vec![0.0; n];
    let mut start = 0;
    while start < n {
        let end = (start + note_len).min(n);
        // A chord of three random pitches.
        let chord: Vec<f64> = (0..3)
            .map(|_| PITCHES[rng.gen_range(0..PITCHES.len())])
            .collect();
        let detune: Vec<f64> = chord.iter().map(|_| rng.gen_range(-2.0..2.0)).collect();
        for (k, out_s) in out[start..end].iter_mut().enumerate() {
            let t = k as f64 / sample_rate;
            // Attack/decay envelope within the note.
            let frac = k as f64 / note_len as f64;
            let env = (frac * 25.0).min(1.0) * (-2.5 * frac).exp();
            let mut v = 0.0;
            for (f0, dt) in chord.iter().zip(&detune) {
                // Bright timbre: many harmonics with slow (1/√h) rolloff so
                // the spectrum stays broadband (unlike speech).
                for h in 1..=12u32 {
                    let f = (f0 + dt) * h as f64;
                    if f < sample_rate / 2.0 {
                        v += (TAU * f * t).sin() / (h as f64).sqrt();
                    }
                }
            }
            *out_s += env * v;
        }
        start = end;
    }
    out
}

/// Synthetic speech: ~120 Hz pitch train shaped by two slowly moving
/// formants, interleaved with weak unvoiced (noise-burst) segments —
/// spectral energy concentrated below ~3 kHz.
fn speech(n: usize, sample_rate: f64, rng: &mut StdRng) -> Vec<f64> {
    let seg_len = (0.15 * sample_rate) as usize;
    let mut out = vec![0.0; n];
    let mut start = 0;
    while start < n {
        let end = (start + seg_len).min(n);
        let voiced = rng.gen_bool(0.75);
        if voiced {
            let pitch = rng.gen_range(100.0..160.0);
            let f1 = rng.gen_range(300.0..900.0);
            let f2 = rng.gen_range(900.0..2500.0);
            let raw: Vec<f64> = (0..end - start)
                .map(|k| {
                    let t = k as f64 / sample_rate;
                    let mut v = 0.0;
                    for h in 1..=20u32 {
                        let f = pitch * h as f64;
                        if f < sample_rate / 2.0 {
                            // Harmonic amplitudes shaped by distance to the
                            // two formants (crude source-filter model).
                            let w1 = 1.0 / (1.0 + ((f - f1) / 200.0).powi(2));
                            let w2 = 0.6 / (1.0 + ((f - f2) / 300.0).powi(2));
                            v += (w1 + w2) * (TAU * f * t).sin();
                        }
                    }
                    v
                })
                .collect();
            let env_len = end - start;
            for (k, (o, r)) in out[start..end].iter_mut().zip(&raw).enumerate() {
                let frac = k as f64 / env_len as f64;
                let env = (frac * 12.0).min(1.0) * (1.0 - frac).max(0.0).powf(0.3);
                *o = env * r;
            }
        } else {
            // Unvoiced burst: band-passed noise, quieter.
            let noise: Vec<f64> = (0..end - start).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let bp = Biquad::bandpass(2500.0, 1.0, sample_rate);
            let shaped = bp.filter(&noise);
            for (o, s) in out[start..end].iter_mut().zip(&shaped) {
                *o = 0.25 * s;
            }
        }
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniq_dsp::spectrum::magnitude_spectrum;

    const SR: f64 = 16_000.0;

    /// Fraction of one-sided spectral energy below `cutoff_hz`.
    fn low_fraction(sig: &[f64], cutoff_hz: f64) -> f64 {
        let (freqs, mags) = magnitude_spectrum(sig, SR);
        let total: f64 = mags.iter().map(|m| m * m).sum();
        let low: f64 = freqs
            .iter()
            .zip(&mags)
            .filter(|(f, _)| **f < cutoff_hz)
            .map(|(_, m)| m * m)
            .sum();
        low / total
    }

    #[test]
    fn deterministic_per_seed() {
        for kind in SignalKind::ALL {
            let a = generate(kind, 0.2, SR, 42);
            let b = generate(kind, 0.2, SR, 42);
            assert_eq!(a, b, "{kind:?} not reproducible");
            let c = generate(kind, 0.2, SR, 43);
            assert_ne!(a, c, "{kind:?} ignores seed");
        }
    }

    #[test]
    fn lengths_and_normalization() {
        for kind in SignalKind::ALL {
            let s = generate(kind, 0.25, SR, 7);
            assert_eq!(s.len(), 4000);
            let peak = s.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
            assert!((peak - 1.0).abs() < 1e-9, "{kind:?} peak {peak}");
        }
    }

    #[test]
    fn speech_is_low_frequency_dominated() {
        // The paper's explanation for Fig 22: speech concentrates energy at
        // base/harmonic frequencies, revealing less of the channel.
        let speech = generate(SignalKind::Speech, 1.0, SR, 1);
        let noise = generate(SignalKind::WhiteNoise, 1.0, SR, 1);
        let s_low = low_fraction(&speech, 3000.0);
        let n_low = low_fraction(&noise, 3000.0);
        assert!(s_low > 0.9, "speech low fraction {s_low}");
        assert!(n_low < 0.6, "noise low fraction {n_low}");
    }

    #[test]
    fn music_broader_than_speech() {
        let music = generate(SignalKind::Music, 1.0, SR, 2);
        let speech = generate(SignalKind::Speech, 1.0, SR, 2);
        assert!(
            low_fraction(&music, 2000.0) < low_fraction(&speech, 2000.0),
            "music {} vs speech {}",
            low_fraction(&music, 2000.0),
            low_fraction(&speech, 2000.0)
        );
    }

    #[test]
    fn white_noise_flat_ish() {
        let noise = generate(SignalKind::WhiteNoise, 2.0, SR, 3);
        // Energy in 0–4 kHz vs 4–8 kHz should be within 20 %.
        let lo = low_fraction(&noise, 4000.0);
        assert!((lo - 0.5).abs() < 0.1, "noise lopsided: {lo}");
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = SignalKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }
}
