//! # uniq-faults
//!
//! Deterministic fault injection for UNIQ measurement sessions.
//!
//! The paper's setting is at-home capture (§4.6, §7): chirps get dropped
//! or truncated by the playback stack, samples clip, SNR collapses in
//! bursts, the gyro drops out or saturates, timestamps jitter, and users
//! duplicate or reorder sweep stops. This crate turns that failure
//! envelope into a typed, seeded [`FaultPlan`] — a schedule of
//! [`FaultEvent`]s — that plugs into the pipeline at the exact signal
//! boundaries the real system would see:
//!
//! * recordings, via `uniq_acoustics::measure::RecordingInjector`;
//! * gyro rate streams, via `uniq_imu::gyro::RateInjector`;
//! * session structure (stop remapping, clock jitter), via
//!   `uniq_core::degrade::FaultHook`.
//!
//! Everything is a pure function of the plan (its seed and events) and
//! the injection site, so a faulted session is bit-identical across runs
//! and thread counts — the property `tests/parallel_determinism.rs` and
//! the conformance suite pin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniq_acoustics::measure::{BinauralRecording, InjectionSite, RecordingInjector};
use uniq_core::degrade::{FaultHook, StopSchedule};
use uniq_dsp::signal::rms;
use uniq_imu::gyro::RateInjector;

/// Canonical fault-class labels, as they appear in `DegradationReport`s,
/// CLI plan specs and the robustness experiment.
pub mod class {
    /// A probe chirp that never reached the microphones.
    pub const DROP: &str = "drop";
    /// A probe chirp cut off partway through playback.
    pub const TRUNCATE: &str = "truncate";
    /// Recording clipped at a fraction of its peak amplitude.
    pub const CLIP: &str = "clip";
    /// A burst of noise collapsing the recording's SNR.
    pub const SNR: &str = "snr-collapse";
    /// A window of missing gyro samples (read as zero rate).
    pub const GYRO_DROPOUT: &str = "gyro-dropout";
    /// Gyro rates clamped to a reduced full-scale range.
    pub const GYRO_SATURATION: &str = "gyro-saturation";
    /// Phone/earphone clock jitter on a stop's timestamp.
    pub const JITTER: &str = "timestamp-jitter";
    /// A stop recorded twice (the capture repeats the previous stop).
    pub const DUPLICATE: &str = "duplicate-stop";
    /// Two adjacent stops recorded in swapped order.
    pub const REORDER: &str = "reorder-stops";

    /// Every fault class, in presentation order.
    pub const ALL: &[&str] = &[
        DROP,
        TRUNCATE,
        CLIP,
        SNR,
        GYRO_DROPOUT,
        GYRO_SATURATION,
        JITTER,
        DUPLICATE,
        REORDER,
    ];
}

/// One typed fault with its intensity parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Zero the whole recording (the chirp never played).
    DropChirp,
    /// Keep only the leading `keep_fraction` of the recording, zero the
    /// rest.
    TruncateChirp {
        /// Fraction of the recording that survives, `(0, 1)`.
        keep_fraction: f64,
    },
    /// Clamp samples to `level × peak` (symmetric hard clipping).
    Clip {
        /// Clipping level as a fraction of the recording's peak, `(0, 1]`.
        level: f64,
    },
    /// Add noise until the recording's SNR collapses to `snr_db` relative
    /// to its RMS.
    SnrCollapse {
        /// Target SNR of the corrupted recording, dB (may be negative).
        snr_db: f64,
    },
    /// Zero the gyro stream over a window.
    GyroDropout {
        /// Window start as a fraction of the stream, `[0, 1)`.
        start: f64,
        /// Window length as a fraction of the stream, `(0, 1]`.
        length: f64,
    },
    /// Clamp gyro rates to `±max_dps`.
    GyroSaturation {
        /// Reduced full-scale range, °/s.
        max_dps: f64,
    },
    /// Jitter the stop's IMU timestamp by up to `±jitter_s`.
    TimestampJitter {
        /// Maximum clock offset, seconds.
        jitter_s: f64,
    },
    /// Capture this stop's recording at the previous sweep position.
    DuplicateStop,
    /// Swap this stop's capture with the next stop's.
    ReorderStops,
}

impl FaultKind {
    /// The class label this kind reports as.
    pub fn class(&self) -> &'static str {
        match self {
            FaultKind::DropChirp => class::DROP,
            FaultKind::TruncateChirp { .. } => class::TRUNCATE,
            FaultKind::Clip { .. } => class::CLIP,
            FaultKind::SnrCollapse { .. } => class::SNR,
            FaultKind::GyroDropout { .. } => class::GYRO_DROPOUT,
            FaultKind::GyroSaturation { .. } => class::GYRO_SATURATION,
            FaultKind::TimestampJitter { .. } => class::JITTER,
            FaultKind::DuplicateStop => class::DUPLICATE,
            FaultKind::ReorderStops => class::REORDER,
        }
    }
}

/// One scheduled fault: a kind, an optional target stop (`None` = every
/// stop) and whether it is transient (first capture attempt only, so a
/// retry heals it) or persistent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// What to inject.
    pub kind: FaultKind,
    /// Target stop, or `None` to hit every stop.
    pub stop: Option<usize>,
    /// Transient faults vanish on retry captures (attempt > 0).
    pub transient: bool,
}

impl FaultEvent {
    /// Whether this event fires at the given stop and capture attempt.
    fn applies(&self, stop: usize, attempt: usize) -> bool {
        (self.stop.is_none() || self.stop == Some(stop)) && (!self.transient || attempt == 0)
    }
}

/// A parse failure for a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultParseError {
    /// The entry's fault-class name is unknown.
    UnknownClass(String),
    /// A parameter is missing, malformed or out of range.
    BadParam(String),
    /// The `@stop` suffix is malformed, or a structural fault lacks one.
    BadStop(String),
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultParseError::UnknownClass(name) => {
                write!(f, "unknown fault class {name:?} (see `uniq faults --help`)")
            }
            FaultParseError::BadParam(what) => write!(f, "bad fault parameter: {what}"),
            FaultParseError::BadStop(what) => write!(f, "bad stop target: {what}"),
        }
    }
}

impl std::error::Error for FaultParseError {}

/// A seeded, deterministic schedule of faults over one session.
///
/// The same plan (seed + events) corrupts the same session identically at
/// any thread count; the empty plan is a guaranteed no-op (bit-identical
/// pipeline outputs).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the plan's own randomness (noise bursts, jitter draws) —
    /// independent of the session seed.
    pub seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults: guaranteed no-op.
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            events: Vec::new(),
        }
    }

    /// An empty plan with the given seed, ready for [`push`](Self::push).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Adds an event to the schedule.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Fault classes this plan schedules, sorted and deduplicated.
    pub fn classes(&self) -> Vec<&'static str> {
        let mut out: Vec<&'static str> = self.events.iter().map(|e| e.kind.class()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Parses a plan spec: comma-separated entries of the form
    /// `name[:param[:param]][@stop][~]`. A trailing `~` marks the entry
    /// transient (first capture attempt only). `none` or an empty spec is
    /// the empty plan.
    ///
    /// Names and parameters:
    ///
    /// | entry | parameters (defaults) |
    /// |---|---|
    /// | `drop` | — |
    /// | `truncate` | keep fraction (0.5) |
    /// | `clip` | level as fraction of peak (0.35) |
    /// | `snr` | target SNR dB (−12) |
    /// | `gyro-dropout` | start, length as stream fractions (0.45, 0.05) |
    /// | `gyro-sat` | max rate °/s (12) |
    /// | `jitter` | max offset s (0.05) |
    /// | `dup` | — (requires `@stop`) |
    /// | `reorder` | — (requires `@stop`) |
    ///
    /// Omitting `@stop` targets every stop (rejected for `dup`/`reorder`,
    /// which need a specific position).
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::new(seed);
        let trimmed = spec.trim();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(plan);
        }
        for raw_entry in trimmed.split(',') {
            let mut entry = raw_entry.trim();
            if entry.is_empty() {
                continue;
            }
            let transient = entry.ends_with('~');
            if transient {
                entry = entry[..entry.len() - 1].trim_end();
            }
            let (head, stop) = match entry.split_once('@') {
                None => (entry, None),
                Some((head, stop_str)) => {
                    let stop = stop_str.trim().parse::<usize>().map_err(|_| {
                        FaultParseError::BadStop(format!("{stop_str:?} in {raw_entry:?}"))
                    })?;
                    (head.trim_end(), Some(stop))
                }
            };
            let mut parts = head.split(':');
            let name = parts.next().unwrap_or("").trim();
            let params: Vec<&str> = parts.map(str::trim).collect();
            let param = |idx: usize, default: f64| -> Result<f64, FaultParseError> {
                match params.get(idx) {
                    None => Ok(default),
                    Some(p) => p
                        .parse::<f64>()
                        .map_err(|_| FaultParseError::BadParam(format!("{p:?} in {raw_entry:?}"))),
                }
            };
            let kind = match name {
                "drop" => FaultKind::DropChirp,
                "truncate" => {
                    let keep_fraction = param(0, 0.5)?;
                    if !(0.0..1.0).contains(&keep_fraction) || keep_fraction == 0.0 {
                        return Err(FaultParseError::BadParam(format!(
                            "truncate keep fraction {keep_fraction} outside (0, 1)"
                        )));
                    }
                    FaultKind::TruncateChirp { keep_fraction }
                }
                "clip" => {
                    let level = param(0, 0.35)?;
                    if !(0.0..=1.0).contains(&level) || level == 0.0 {
                        return Err(FaultParseError::BadParam(format!(
                            "clip level {level} outside (0, 1]"
                        )));
                    }
                    FaultKind::Clip { level }
                }
                "snr" | "snr-collapse" => FaultKind::SnrCollapse {
                    snr_db: param(0, -12.0)?,
                },
                "gyro-dropout" => {
                    let start = param(0, 0.45)?;
                    let length = param(1, 0.05)?;
                    if !(0.0..1.0).contains(&start) || !(0.0..=1.0).contains(&length) {
                        return Err(FaultParseError::BadParam(format!(
                            "gyro-dropout window {start}+{length} outside the stream"
                        )));
                    }
                    FaultKind::GyroDropout { start, length }
                }
                "gyro-sat" | "gyro-saturation" => {
                    let max_dps = param(0, 12.0)?;
                    if max_dps <= 0.0 {
                        return Err(FaultParseError::BadParam(format!(
                            "gyro saturation range {max_dps} must be positive"
                        )));
                    }
                    FaultKind::GyroSaturation { max_dps }
                }
                "jitter" | "timestamp-jitter" => {
                    let jitter_s = param(0, 0.05)?;
                    if jitter_s < 0.0 {
                        return Err(FaultParseError::BadParam(format!(
                            "jitter {jitter_s} must be non-negative"
                        )));
                    }
                    FaultKind::TimestampJitter { jitter_s }
                }
                "dup" | "duplicate" => FaultKind::DuplicateStop,
                "reorder" => FaultKind::ReorderStops,
                other => return Err(FaultParseError::UnknownClass(other.to_string())),
            };
            if matches!(kind, FaultKind::DuplicateStop | FaultKind::ReorderStops) && stop.is_none()
            {
                return Err(FaultParseError::BadStop(format!(
                    "{name} needs an explicit @stop target"
                )));
            }
            plan.push(FaultEvent {
                kind,
                stop,
                transient,
            });
        }
        Ok(plan)
    }

    /// The survivable default-intensity plan for one fault class (the
    /// intensities the conformance suite and the CI fault matrix run).
    /// Returns `None` for an unknown class label.
    pub fn preset(class_label: &str, seed: u64) -> Option<FaultPlan> {
        let spec = match class_label {
            class::DROP => "drop@2",
            class::TRUNCATE => "truncate:0.5@3",
            class::CLIP => "clip:0.35",
            class::SNR => "snr:-12@4",
            class::GYRO_DROPOUT => "gyro-dropout:0.45:0.05",
            class::GYRO_SATURATION => "gyro-sat:12",
            class::JITTER => "jitter:0.05",
            class::DUPLICATE => "dup@5",
            class::REORDER => "reorder@6",
            _ => return None,
        };
        FaultPlan::parse(spec, seed).ok()
    }

    /// Deterministic per-site RNG: a distinct, reproducible stream for
    /// every (plan seed, stop, attempt, event index) tuple.
    fn site_rng(&self, stop: usize, attempt: usize, event_idx: usize) -> StdRng {
        StdRng::seed_from_u64(mix(
            self.seed,
            &[stop as u64, attempt as u64, event_idx as u64],
        ))
    }
}

/// SplitMix64-style mixer: folds `words` into `seed` with full-avalanche
/// finalization, so neighbouring sites get unrelated streams.
fn mix(seed: u64, words: &[u64]) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        h = h.wrapping_add(w).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
    }
    h = (h ^ (h >> 31)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 30)
}

impl RecordingInjector for FaultPlan {
    fn corrupt_recording(
        &self,
        site: InjectionSite,
        rec: &mut BinauralRecording,
    ) -> Vec<&'static str> {
        let mut applied = Vec::new();
        for (k, event) in self.events.iter().enumerate() {
            if !event.applies(site.stop, site.attempt) {
                continue;
            }
            match event.kind {
                FaultKind::DropChirp => {
                    for v in rec.left.iter_mut().chain(rec.right.iter_mut()) {
                        *v = 0.0;
                    }
                }
                FaultKind::TruncateChirp { keep_fraction } => {
                    for ch in [&mut rec.left, &mut rec.right] {
                        let keep = ((ch.len() as f64) * keep_fraction) as usize;
                        for v in ch.iter_mut().skip(keep) {
                            *v = 0.0;
                        }
                    }
                }
                FaultKind::Clip { level } => {
                    let peak = rec
                        .left
                        .iter()
                        .chain(rec.right.iter())
                        .map(|v| v.abs())
                        .fold(0.0f64, f64::max);
                    let ceiling = level * peak;
                    if ceiling > 0.0 {
                        for v in rec.left.iter_mut().chain(rec.right.iter_mut()) {
                            *v = v.clamp(-ceiling, ceiling);
                        }
                    }
                }
                FaultKind::SnrCollapse { snr_db } => {
                    let level = rms(&rec.left).max(rms(&rec.right));
                    if level > 0.0 {
                        let noise_rms = level / 10f64.powf(snr_db / 20.0);
                        // Uniform noise has RMS = amplitude/√3.
                        let amp = noise_rms * 3f64.sqrt();
                        let mut rng = self.site_rng(site.stop, site.attempt, k);
                        for v in rec.left.iter_mut().chain(rec.right.iter_mut()) {
                            *v += rng.gen_range(-amp..amp);
                        }
                    }
                }
                // Gyro and structural faults act elsewhere.
                FaultKind::GyroDropout { .. }
                | FaultKind::GyroSaturation { .. }
                | FaultKind::TimestampJitter { .. }
                | FaultKind::DuplicateStop
                | FaultKind::ReorderStops => continue,
            }
            applied.push(event.kind.class());
        }
        applied
    }
}

impl RateInjector for FaultPlan {
    fn corrupt_rates(&self, rates_dps: &mut [f64], _dt: f64) -> Vec<&'static str> {
        let n = rates_dps.len();
        if n == 0 {
            return Vec::new();
        }
        let mut applied = Vec::new();
        for event in &self.events {
            match event.kind {
                FaultKind::GyroDropout { start, length } => {
                    let from = ((n as f64) * start) as usize;
                    let to = (((n as f64) * (start + length)) as usize).min(n);
                    for v in rates_dps[from.min(n)..to].iter_mut() {
                        *v = 0.0;
                    }
                }
                FaultKind::GyroSaturation { max_dps } => {
                    for v in rates_dps.iter_mut() {
                        *v = v.clamp(-max_dps, max_dps);
                    }
                }
                _ => continue,
            }
            applied.push(event.kind.class());
        }
        applied
    }
}

impl FaultHook for FaultPlan {
    fn stop_schedule(&self, stop: usize, stops: usize) -> StopSchedule {
        let mut sched = StopSchedule::identity(stop);
        for (k, event) in self.events.iter().enumerate() {
            match event.kind {
                FaultKind::DuplicateStop if event.stop == Some(stop) => {
                    // The user lingered: this stop re-captures the
                    // previous position (or the next, at the start).
                    sched.source = if stop > 0 { stop - 1 } else { 1.min(stops - 1) };
                    sched.faults.push(class::DUPLICATE);
                }
                FaultKind::ReorderStops => {
                    if let Some(i) = event.stop {
                        if i + 1 < stops {
                            if stop == i {
                                sched.source = i + 1;
                                sched.faults.push(class::REORDER);
                            } else if stop == i + 1 {
                                sched.source = i;
                                sched.faults.push(class::REORDER);
                            }
                        }
                    }
                }
                FaultKind::TimestampJitter { jitter_s }
                    if (event.stop.is_none() || event.stop == Some(stop)) && jitter_s > 0.0 =>
                {
                    let mut rng = self.site_rng(stop, 0, k);
                    sched.jitter_s += rng.gen_range(-jitter_s..jitter_s);
                    sched.faults.push(class::JITTER);
                }
                _ => {}
            }
        }
        sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording() -> BinauralRecording {
        let left: Vec<f64> = (0..512).map(|k| ((k as f64) * 0.1).sin()).collect();
        let right: Vec<f64> = (0..512).map(|k| ((k as f64) * 0.13).cos() * 0.8).collect();
        BinauralRecording { left, right }
    }

    fn site(stop: usize, attempt: usize) -> InjectionSite {
        InjectionSite {
            stop,
            attempt,
            sample_rate: 48_000.0,
        }
    }

    #[test]
    fn empty_plan_is_a_noop_everywhere() {
        let plan = FaultPlan::empty();
        let clean = recording();
        let mut rec = recording();
        assert!(plan.corrupt_recording(site(3, 0), &mut rec).is_empty());
        assert_eq!(rec.left, clean.left);
        assert_eq!(rec.right, clean.right);
        let mut rates = vec![1.0, 2.0, 3.0];
        assert!(plan.corrupt_rates(&mut rates, 0.01).is_empty());
        assert_eq!(rates, vec![1.0, 2.0, 3.0]);
        let sched = plan.stop_schedule(5, 10);
        assert_eq!(sched.source, 5);
        assert_eq!(sched.jitter_s, 0.0);
        assert!(sched.faults.is_empty());
    }

    #[test]
    fn drop_zeroes_only_the_target_stop() {
        let plan = FaultPlan::parse("drop@2", 7).unwrap();
        let mut hit = recording();
        assert_eq!(
            plan.corrupt_recording(site(2, 0), &mut hit),
            vec![class::DROP]
        );
        assert!(hit.left.iter().chain(hit.right.iter()).all(|&v| v == 0.0));
        let clean = recording();
        let mut miss = recording();
        assert!(plan.corrupt_recording(site(1, 0), &mut miss).is_empty());
        assert_eq!(miss.left, clean.left);
    }

    #[test]
    fn truncate_keeps_leading_fraction() {
        let plan = FaultPlan::parse("truncate:0.25", 7).unwrap();
        let clean = recording();
        let mut rec = recording();
        plan.corrupt_recording(site(0, 0), &mut rec);
        let keep = 512 / 4;
        assert_eq!(&rec.left[..keep], &clean.left[..keep]);
        assert!(rec.left[keep..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clip_bounds_amplitude() {
        let plan = FaultPlan::parse("clip:0.5", 7).unwrap();
        let mut rec = recording();
        let peak = rec
            .left
            .iter()
            .chain(rec.right.iter())
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        plan.corrupt_recording(site(0, 0), &mut rec);
        let new_peak = rec
            .left
            .iter()
            .chain(rec.right.iter())
            .map(|v| v.abs())
            .fold(0.0f64, f64::max);
        assert!(new_peak <= 0.5 * peak + 1e-12);
    }

    #[test]
    fn snr_collapse_is_deterministic_per_site() {
        let plan = FaultPlan::parse("snr:-6", 42).unwrap();
        let mut a = recording();
        let mut b = recording();
        plan.corrupt_recording(site(4, 0), &mut a);
        plan.corrupt_recording(site(4, 0), &mut b);
        assert_eq!(a.left, b.left, "same site must corrupt identically");
        let mut c = recording();
        plan.corrupt_recording(site(5, 0), &mut c);
        assert_ne!(a.left, c.left, "different stops draw different noise");
        let mut d = recording();
        let other = FaultPlan::parse("snr:-6", 43).unwrap();
        other.corrupt_recording(site(4, 0), &mut d);
        assert_ne!(a.left, d.left, "different plan seeds draw different noise");
    }

    #[test]
    fn transient_faults_heal_on_retry() {
        let plan = FaultPlan::parse("drop@2~", 7).unwrap();
        let mut first = recording();
        assert!(!plan.corrupt_recording(site(2, 0), &mut first).is_empty());
        let clean = recording();
        let mut retry = recording();
        assert!(plan.corrupt_recording(site(2, 1), &mut retry).is_empty());
        assert_eq!(retry.left, clean.left);
    }

    #[test]
    fn gyro_dropout_and_saturation_reshape_rates() {
        let plan = FaultPlan::parse("gyro-dropout:0.5:0.25,gyro-sat:2", 7).unwrap();
        let mut rates = vec![3.0; 100];
        let applied = plan.corrupt_rates(&mut rates, 0.01);
        assert_eq!(applied, vec![class::GYRO_DROPOUT, class::GYRO_SATURATION]);
        assert!(rates[50..75].iter().all(|&v| v == 0.0), "window zeroed");
        assert!(rates[..50].iter().all(|&v| v == 2.0), "head clamped");
    }

    #[test]
    fn duplicate_and_reorder_remap_sources() {
        let plan = FaultPlan::parse("dup@5,reorder@7", 7).unwrap();
        assert_eq!(plan.stop_schedule(5, 10).source, 4);
        assert_eq!(plan.stop_schedule(7, 10).source, 8);
        assert_eq!(plan.stop_schedule(8, 10).source, 7);
        assert_eq!(plan.stop_schedule(6, 10).source, 6);
        // Reorder at the sweep end has no partner: identity.
        let tail = FaultPlan::parse("reorder@9", 7).unwrap();
        assert_eq!(tail.stop_schedule(9, 10).source, 9);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let plan = FaultPlan::parse("jitter:0.08", 11).unwrap();
        for stop in 0..10 {
            let a = plan.stop_schedule(stop, 10);
            let b = plan.stop_schedule(stop, 10);
            assert_eq!(a.jitter_s, b.jitter_s);
            assert!(a.jitter_s.abs() <= 0.08);
            assert_eq!(a.faults, vec![class::JITTER]);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(matches!(
            FaultPlan::parse("warp@2", 0),
            Err(FaultParseError::UnknownClass(_))
        ));
        assert!(matches!(
            FaultPlan::parse("clip:2.0", 0),
            Err(FaultParseError::BadParam(_))
        ));
        assert!(matches!(
            FaultPlan::parse("drop@first", 0),
            Err(FaultParseError::BadStop(_))
        ));
        assert!(matches!(
            FaultPlan::parse("dup", 0),
            Err(FaultParseError::BadStop(_))
        ));
        assert!(FaultPlan::parse("none", 0).unwrap().is_empty());
        assert!(FaultPlan::parse("  ", 0).unwrap().is_empty());
    }

    #[test]
    fn parse_roundtrips_a_compound_plan() {
        let plan = FaultPlan::parse("drop@2, snr:-10@4~, clip:0.5, jitter", 3).unwrap();
        assert_eq!(plan.events().len(), 4);
        assert_eq!(
            plan.classes(),
            vec![class::CLIP, class::DROP, class::SNR, class::JITTER]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
        assert!(plan.events()[1].transient);
        assert_eq!(plan.events()[1].stop, Some(4));
        assert_eq!(plan.events()[3].stop, None);
    }

    #[test]
    fn every_class_has_a_preset() {
        for &label in class::ALL {
            let plan = FaultPlan::preset(label, 1).unwrap_or_else(|| {
                panic!("class {label} has no preset");
            });
            assert_eq!(plan.classes(), vec![label]);
        }
        assert!(FaultPlan::preset("warp", 1).is_none());
    }
}
