//! Property-based tests for the fault-injection layer.
//!
//! The contract under test is determinism: a `FaultPlan` is a pure
//! function of (plan seed, events, injection site), so the same plan
//! corrupts the same signal bit-identically no matter how often, in what
//! order, or on which thread the corruption runs.

use proptest::prelude::*;
use uniq_acoustics::measure::{BinauralRecording, InjectionSite, RecordingInjector};
use uniq_core::degrade::FaultHook;
use uniq_faults::{class, FaultEvent, FaultKind, FaultPlan};
use uniq_imu::gyro::RateInjector;

fn recording(len: usize, scale: f64) -> BinauralRecording {
    let left: Vec<f64> = (0..len)
        .map(|k| ((k as f64) * 0.07).sin() * scale)
        .collect();
    let right: Vec<f64> = (0..len)
        .map(|k| ((k as f64) * 0.11).cos() * scale * 0.9)
        .collect();
    BinauralRecording { left, right }
}

fn site(stop: usize, attempt: usize) -> InjectionSite {
    InjectionSite {
        stop,
        attempt,
        sample_rate: 48_000.0,
    }
}

/// Decodes one sampled `(kind, stop, transient, param)` tuple into an
/// event; covers every fault class as `kind` sweeps 0..9.
fn event_from(kind: u32, stop: usize, transient: u32, p: f64) -> FaultEvent {
    let kind = match kind {
        0 => FaultKind::DropChirp,
        1 => FaultKind::TruncateChirp { keep_fraction: p },
        2 => FaultKind::Clip { level: p },
        3 => FaultKind::SnrCollapse {
            snr_db: p * 40.0 - 20.0,
        },
        4 => FaultKind::GyroDropout {
            start: p * 0.8,
            length: 0.1,
        },
        5 => FaultKind::GyroSaturation { max_dps: p * 20.0 },
        6 => FaultKind::TimestampJitter { jitter_s: p * 0.1 },
        7 => FaultKind::DuplicateStop,
        _ => FaultKind::ReorderStops,
    };
    FaultEvent {
        kind,
        stop: Some(stop),
        transient: transient == 1,
    }
}

fn plan_from(seed: u64, raw: &[(u32, usize, u32, f64)]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    for &(kind, stop, transient, p) in raw {
        plan.push(event_from(kind, stop, transient, p));
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn same_plan_same_site_corrupts_bit_identically(
        seed in 0u64..u64::MAX,
        raw in prop::collection::vec((0u32..9, 0usize..10, 0u32..2, 0.05f64..0.95), 1..5),
        stop in 0usize..10,
        attempt in 0usize..3,
    ) {
        let plan = plan_from(seed, &raw);
        let mut a = recording(256, 0.8);
        let mut b = recording(256, 0.8);
        let fa = plan.corrupt_recording(site(stop, attempt), &mut a);
        let fb = plan.corrupt_recording(site(stop, attempt), &mut b);
        prop_assert_eq!(fa, fb);
        prop_assert_eq!(a.left, b.left);
        prop_assert_eq!(a.right, b.right);

        let mut ra = vec![4.0; 200];
        let mut rb = vec![4.0; 200];
        prop_assert_eq!(
            plan.corrupt_rates(&mut ra, 0.01),
            plan.corrupt_rates(&mut rb, 0.01)
        );
        prop_assert_eq!(ra, rb);

        let sa = plan.stop_schedule(stop, 10);
        let sb = plan.stop_schedule(stop, 10);
        prop_assert_eq!(sa.source, sb.source);
        prop_assert_eq!(sa.jitter_s, sb.jitter_s);
        prop_assert_eq!(sa.faults, sb.faults);
    }

    #[test]
    fn different_seeds_draw_different_noise(seed in 0u64..u64::MAX, stop in 0usize..10) {
        let event = FaultEvent {
            kind: FaultKind::SnrCollapse { snr_db: -6.0 },
            stop: None,
            transient: false,
        };
        let a_plan = FaultPlan::new(seed).with(event);
        let b_plan = FaultPlan::new(seed.wrapping_add(1)).with(event);
        let mut a = recording(256, 0.8);
        let mut b = recording(256, 0.8);
        a_plan.corrupt_recording(site(stop, 0), &mut a);
        b_plan.corrupt_recording(site(stop, 0), &mut b);
        prop_assert!(a.left != b.left, "different plan seeds must draw different noise");
    }

    #[test]
    fn clip_never_exceeds_its_ceiling(level in 0.05f64..1.0, scale in 0.1f64..10.0) {
        let plan = FaultPlan::new(1).with(FaultEvent {
            kind: FaultKind::Clip { level },
            stop: None,
            transient: false,
        });
        let mut rec = recording(256, scale);
        let peak = rec.left.iter().chain(&rec.right).fold(0.0f64, |m, v| m.max(v.abs()));
        plan.corrupt_recording(site(0, 0), &mut rec);
        let new_peak = rec.left.iter().chain(&rec.right).fold(0.0f64, |m, v| m.max(v.abs()));
        prop_assert!(new_peak <= level * peak + 1e-12);
    }

    #[test]
    fn truncate_preserves_head_zeroes_tail(keep in 0.05f64..0.95, len in 32usize..512) {
        let plan = FaultPlan::new(1).with(FaultEvent {
            kind: FaultKind::TruncateChirp { keep_fraction: keep },
            stop: None,
            transient: false,
        });
        let clean = recording(len, 1.0);
        let mut rec = recording(len, 1.0);
        plan.corrupt_recording(site(0, 0), &mut rec);
        let kept = ((len as f64) * keep) as usize;
        prop_assert_eq!(&rec.left[..kept], &clean.left[..kept]);
        prop_assert!(rec.left[kept..].iter().all(|&v| v == 0.0));
        prop_assert!(rec.right[kept..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn transient_events_never_fire_past_attempt_zero(
        raw in prop::collection::vec((0u32..9, 0usize..10, 0u32..2, 0.05f64..0.95), 1..5),
        stop in 0usize..10,
    ) {
        let transient_raw: Vec<(u32, usize, u32, f64)> =
            raw.into_iter().map(|(k, s, _, p)| (k, s, 1, p)).collect();
        let plan = plan_from(9, &transient_raw);
        let clean = recording(128, 1.0);
        let mut retry = recording(128, 1.0);
        let applied = plan.corrupt_recording(site(stop, 1), &mut retry);
        prop_assert!(applied.is_empty());
        prop_assert_eq!(retry.left, clean.left);
        prop_assert_eq!(retry.right, clean.right);
    }

    #[test]
    fn presets_cover_every_class_and_are_stable(seed in 0u64..u64::MAX) {
        for &label in class::ALL {
            let preset = FaultPlan::preset(label, seed).expect("preset exists");
            prop_assert_eq!(preset.classes(), vec![label]);
            prop_assert_eq!(&FaultPlan::preset(label, seed).expect("preset"), &preset);
        }
    }
}
