//! Spherical gesture trajectories — the motion half of the §7 "3D HRTF"
//! extension: *"the user would now need to move the phone on a sphere
//! around the head, and the motion tracking equations need to be extended
//! to 3D."*
//!
//! The gesture is a serpentine sweep: ring by ring, the user sweeps the
//! azimuth 0°→180°, raises the arm to the next elevation, sweeps back
//! 180°→0°, and so on. The phone IMU now reports two angular rates
//! (azimuth and elevation), each integrated separately.

use crate::trajectory::Imperfections;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;
use uniq_geometry::elevation::Vec3;

/// A spherical (multi-ring) gesture plan.
#[derive(Debug, Clone)]
pub struct SphericalPlan {
    /// Elevation of each ring, degrees (swept in order, serpentine).
    pub rings_deg: Vec<f64>,
    /// Azimuth sweep limits, degrees.
    pub theta_start_deg: f64,
    /// Azimuth sweep end, degrees.
    pub theta_end_deg: f64,
    /// Sweep duration per ring, seconds.
    pub ring_duration_s: f64,
    /// Arm-raise transition duration between rings, seconds.
    pub transition_s: f64,
    /// Nominal arm radius, metres.
    pub radius_m: f64,
    /// IMU sampling rate, hertz.
    pub imu_rate_hz: f64,
    /// Gesture imperfections (shared with the 2-D plan).
    pub imperfections: Imperfections,
}

impl SphericalPlan {
    /// A standard three-ring protocol: −20°, +15°, +45° elevation.
    pub fn standard(imperfections: Imperfections) -> Self {
        SphericalPlan {
            rings_deg: vec![-20.0, 15.0, 45.0],
            theta_start_deg: 0.0,
            theta_end_deg: 180.0,
            ring_duration_s: 15.0,
            transition_s: 2.0,
            radius_m: 0.45,
            imu_rate_hz: 100.0,
            imperfections,
        }
    }

    /// Validates the plan.
    ///
    /// # Panics
    /// Panics on degenerate geometry or rates.
    pub fn validate(&self) {
        assert!(!self.rings_deg.is_empty(), "need at least one ring");
        assert!(
            self.rings_deg.iter().all(|e| e.abs() < 85.0),
            "rings too close to the poles"
        );
        assert!(self.ring_duration_s > 0.0 && self.transition_s >= 0.0);
        assert!(self.radius_m > 0.15, "radius must clear the head");
        assert!(self.imu_rate_hz > 0.0);
        assert!(
            (self.theta_end_deg - self.theta_start_deg).abs() > 1.0,
            "azimuth sweep too small"
        );
    }

    /// Total gesture duration.
    pub fn duration_s(&self) -> f64 {
        self.rings_deg.len() as f64 * self.ring_duration_s
            + (self.rings_deg.len().saturating_sub(1)) as f64 * self.transition_s
    }
}

/// One ground-truth sample of the spherical gesture.
#[derive(Debug, Clone, Copy)]
pub struct TrajectorySample3 {
    /// Time since gesture start, seconds.
    pub t: f64,
    /// True phone position.
    pub pos: Vec3,
    /// True azimuth (paper convention), degrees.
    pub theta_deg: f64,
    /// True elevation above the horizontal plane, degrees.
    pub elevation_deg: f64,
    /// True polar radius, metres.
    pub radius_m: f64,
    /// Phone azimuth orientation (θ plus aim error), degrees.
    pub orientation_az_deg: f64,
    /// Phone elevation orientation, degrees.
    pub orientation_el_deg: f64,
    /// True azimuth angular rate, °/s.
    pub rate_az_dps: f64,
    /// True elevation angular rate, °/s.
    pub rate_el_dps: f64,
    /// Index of the ring this sample belongs to (transitions belong to the
    /// *next* ring).
    pub ring: usize,
}

/// Generates the serpentine spherical trajectory.
///
/// # Panics
/// Panics if the plan is invalid.
pub fn generate_spherical(plan: &SphericalPlan, seed: u64) -> Vec<TrajectorySample3> {
    plan.validate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3d3d_3d3d);
    let imp = plan.imperfections;
    let wobble_phase = rng.gen_range(0.0..TAU);
    let aim_phase_az = rng.gen_range(0.0..TAU);
    let aim_phase_el = rng.gen_range(0.0..TAU);
    let aim_bias_az = rng.gen_range(-0.4..0.4) * imp.aim_error_deg;
    let aim_bias_el = rng.gen_range(-0.4..0.4) * imp.aim_error_deg;

    let total = plan.duration_s();
    let n = (total * plan.imu_rate_hz).round() as usize + 1;
    let dt = 1.0 / plan.imu_rate_hz;
    let n_rings = plan.rings_deg.len();

    // State at absolute time t: (theta, elevation, ring index).
    let state = |t: f64| -> (f64, f64, usize) {
        let seg = plan.ring_duration_s + plan.transition_s;
        let ring = ((t / seg).floor() as usize).min(n_rings - 1);
        let t_in = t - ring as f64 * seg;
        let el_here = plan.rings_deg[ring];
        if t_in <= plan.ring_duration_s || ring + 1 >= n_rings {
            // Sweeping within the ring: serpentine direction.
            let x = (t_in / plan.ring_duration_s).clamp(0.0, 1.0);
            let (from, to) = if ring.is_multiple_of(2) {
                (plan.theta_start_deg, plan.theta_end_deg)
            } else {
                (plan.theta_end_deg, plan.theta_start_deg)
            };
            (from + (to - from) * x, el_here, ring)
        } else {
            // Transition: azimuth parked at the serpentine end, elevation
            // ramping to the next ring.
            let x = ((t_in - plan.ring_duration_s) / plan.transition_s).clamp(0.0, 1.0);
            let theta = if ring.is_multiple_of(2) {
                plan.theta_end_deg
            } else {
                plan.theta_start_deg
            };
            let el = el_here + (plan.rings_deg[ring + 1] - el_here) * x;
            (theta, el, ring + 1)
        }
    };

    (0..n)
        .map(|k| {
            let t = k as f64 * dt;
            let (theta, el, ring) = state(t);
            let x = t / total;
            let radius = plan.radius_m - imp.droop_m * x
                + imp.radius_wobble_m * (TAU * imp.radius_wobble_hz * t + wobble_phase).sin();
            let orientation_az = theta
                + aim_bias_az
                + imp.aim_error_deg * 0.6 * (TAU * 0.8 * x + aim_phase_az).sin();
            let orientation_el =
                el + aim_bias_el + imp.aim_error_deg * 0.4 * (TAU * 0.6 * x + aim_phase_el).sin();

            // Central-difference rates of the (noise-free) orientation.
            let h = dt / 2.0;
            let rate_of = |f: &dyn Fn(f64) -> f64| {
                let hi = (t + h).min(total);
                let lo = (t - h).max(0.0);
                if hi > lo {
                    (f(hi) - f(lo)) / (hi - lo)
                } else {
                    0.0
                }
            };
            let az_traj = |tt: f64| {
                let (th, _, _) = state(tt);
                let xx = tt / total;
                th + aim_bias_az + imp.aim_error_deg * 0.6 * (TAU * 0.8 * xx + aim_phase_az).sin()
            };
            let el_traj = |tt: f64| {
                let (_, e, _) = state(tt);
                let xx = tt / total;
                e + aim_bias_el + imp.aim_error_deg * 0.4 * (TAU * 0.6 * xx + aim_phase_el).sin()
            };

            TrajectorySample3 {
                t,
                pos: Vec3::from_angles(theta, el).scale(radius),
                theta_deg: theta,
                elevation_deg: el,
                radius_m: radius,
                orientation_az_deg: orientation_az,
                orientation_el_deg: orientation_el,
                rate_az_dps: rate_of(&az_traj),
                rate_el_dps: rate_of(&el_traj),
                ring,
            }
        })
        .collect()
}

/// Picks `per_ring` measurement stops inside each ring's sweep (excluding
/// transitions), evenly spread by azimuth.
///
/// # Panics
/// Panics if `per_ring < 2`.
pub fn spherical_stops(
    traj: &[TrajectorySample3],
    plan: &SphericalPlan,
    per_ring: usize,
) -> Vec<TrajectorySample3> {
    assert!(per_ring >= 2, "need at least two stops per ring");
    let mut out = Vec::new();
    for ring in 0..plan.rings_deg.len() {
        // Samples strictly inside this ring's sweep (matching elevation).
        let members: Vec<&TrajectorySample3> = traj
            .iter()
            .filter(|s| s.ring == ring && (s.elevation_deg - plan.rings_deg[ring]).abs() < 1e-9)
            .collect();
        if members.len() < per_ring {
            continue;
        }
        for k in 0..per_ring {
            out.push(*members[k * (members.len() - 1) / (per_ring - 1)]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SphericalPlan {
        SphericalPlan::standard(Imperfections::none())
    }

    #[test]
    fn duration_and_length() {
        let p = plan();
        assert!((p.duration_s() - (3.0 * 15.0 + 2.0 * 2.0)).abs() < 1e-12);
        let traj = generate_spherical(&p, 1);
        assert_eq!(traj.len(), (p.duration_s() * 100.0) as usize + 1);
    }

    #[test]
    fn rings_visit_planned_elevations() {
        let p = plan();
        let traj = generate_spherical(&p, 2);
        for (ring, &el) in p.rings_deg.iter().enumerate() {
            assert!(
                traj.iter()
                    .any(|s| s.ring == ring && (s.elevation_deg - el).abs() < 1e-9),
                "ring {ring} at {el}° never visited"
            );
        }
    }

    #[test]
    fn serpentine_reverses_direction() {
        let p = plan();
        let traj = generate_spherical(&p, 3);
        // Ring 0 sweeps 0→180; ring 1 sweeps 180→0.
        let ring0: Vec<&TrajectorySample3> = traj
            .iter()
            .filter(|s| s.ring == 0 && (s.elevation_deg - p.rings_deg[0]).abs() < 1e-9)
            .collect();
        let ring1: Vec<&TrajectorySample3> = traj
            .iter()
            .filter(|s| s.ring == 1 && (s.elevation_deg - p.rings_deg[1]).abs() < 1e-9)
            .collect();
        assert!(ring0.first().unwrap().theta_deg < ring0.last().unwrap().theta_deg);
        assert!(ring1.first().unwrap().theta_deg > ring1.last().unwrap().theta_deg);
    }

    #[test]
    fn perfect_gesture_aims_exactly() {
        let traj = generate_spherical(&plan(), 4);
        for s in traj.iter().step_by(137) {
            assert!((s.orientation_az_deg - s.theta_deg).abs() < 1e-9);
            assert!((s.orientation_el_deg - s.elevation_deg).abs() < 1e-9);
        }
    }

    #[test]
    fn rates_integrate_to_orientation() {
        let p = plan();
        let traj = generate_spherical(&p, 5);
        let dt = 0.01;
        let mut az = traj[0].orientation_az_deg;
        let mut el = traj[0].orientation_el_deg;
        for w in traj.windows(2) {
            az += 0.5 * (w[0].rate_az_dps + w[1].rate_az_dps) * dt;
            el += 0.5 * (w[0].rate_el_dps + w[1].rate_el_dps) * dt;
        }
        let last = traj.last().unwrap();
        assert!((az - last.orientation_az_deg).abs() < 1.0, "az {az}");
        assert!((el - last.orientation_el_deg).abs() < 1.0, "el {el}");
    }

    #[test]
    fn positions_match_angles() {
        let traj = generate_spherical(&plan(), 6);
        for s in traj.iter().step_by(211) {
            let recon = Vec3::from_angles(s.theta_deg, s.elevation_deg).scale(s.radius_m);
            assert!(recon.dist(s.pos) < 1e-12);
        }
    }

    #[test]
    fn stops_cover_all_rings() {
        let p = plan();
        let traj = generate_spherical(&p, 7);
        let stops = spherical_stops(&traj, &p, 7);
        assert_eq!(stops.len(), 21);
        for ring in 0..3 {
            assert_eq!(stops.iter().filter(|s| s.ring == ring).count(), 7);
        }
    }

    #[test]
    #[should_panic(expected = "poles")]
    fn polar_ring_rejected() {
        let mut p = plan();
        p.rings_deg = vec![88.0];
        generate_spherical(&p, 1);
    }
}
