//! # uniq-imu
//!
//! IMU sensor models and hand-gesture trajectory generation for the UNIQ
//! reproduction.
//!
//! The paper's measurement protocol asks a seated user to sweep their
//! smartphone around the head while facing its screen toward their eyes
//! (§4.1). The phone logs 100 Hz IMU data; UNIQ integrates the gyroscope to
//! get the phone's orientation `α`, which equals the polar angle `θ` up to
//! aiming error. This crate simulates all of that:
//!
//! * [`trajectory`] — the arm gesture: a polar sweep with configurable
//!   imperfections (radius wobble, arm droop, aiming error, uneven speed) —
//!   the exact failure modes the paper's gesture auto-correction targets
//!   (§4.6) and that degrade volunteers 4–5 in Fig 19.
//! * [`gyro`] — a consumer gyroscope model: constant bias, white noise and
//!   bias random walk, plus plain rate integration (the "double
//!   integration blows up, so use the gyro only" design point of §4.1).
//! * [`trajectory3d`] — serpentine spherical gestures for the §7 3-D
//!   extension (azimuth + elevation sweeps over multiple rings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gyro;
pub mod trajectory;
pub mod trajectory3d;

pub use gyro::GyroModel;
pub use trajectory::{GesturePlan, Imperfections, TrajectorySample};
