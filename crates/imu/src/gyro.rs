//! Consumer gyroscope model and rate integration.
//!
//! The paper uses only the gyroscope (not the accelerometer) for phone
//! orientation: double-integrating accelerometer noise is hopeless, while
//! single-integrating gyro rates drifts slowly (§4.1). This model captures
//! the three error terms that matter at gesture time scales: a constant
//! bias, white measurement noise and a slow bias random walk.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gyroscope error model (all in degrees/second units).
///
/// ```
/// use uniq_imu::gyro::{GyroModel, integrate_rates};
/// let truth = vec![9.0; 201];                           // 9 °/s for 2 s
/// let measured = GyroModel::consumer_phone().simulate(&truth, 0.01, 7);
/// let angle = integrate_rates(&measured, 0.01, 0.0);
/// // Drift stays within a few degrees over a short gesture.
/// assert!((angle.last().unwrap() - 18.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GyroModel {
    /// Constant rate bias, °/s.
    pub bias_dps: f64,
    /// White noise standard deviation per sample, °/s.
    pub noise_std_dps: f64,
    /// Bias random-walk intensity, °/s per √s.
    pub bias_walk_dps: f64,
}

impl GyroModel {
    /// An ideal, noiseless gyro.
    pub fn ideal() -> Self {
        GyroModel {
            bias_dps: 0.0,
            noise_std_dps: 0.0,
            bias_walk_dps: 0.0,
        }
    }

    /// A calibrated consumer phone gyroscope: ~0.1 °/s residual bias,
    /// moderate white noise, slow bias walk. Integrated over a 20 s
    /// gesture this drifts a few degrees — matching the paper's premise
    /// that the IMU alone is insufficient.
    pub fn consumer_phone() -> Self {
        GyroModel {
            bias_dps: 0.10,
            noise_std_dps: 0.25,
            bias_walk_dps: 0.03,
        }
    }

    /// A worn-out or uncalibrated sensor.
    pub fn poor() -> Self {
        GyroModel {
            bias_dps: 0.5,
            noise_std_dps: 0.8,
            bias_walk_dps: 0.12,
        }
    }

    /// Simulates gyro readings for a stream of true angular rates sampled
    /// every `dt` seconds. Deterministic per seed.
    ///
    /// # Panics
    /// Panics if `dt` is not positive.
    pub fn simulate(&self, true_rates_dps: &[f64], dt: f64, seed: u64) -> Vec<f64> {
        assert!(dt > 0.0, "dt must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut walk = 0.0;
        let walk_step = self.bias_walk_dps * dt.sqrt();
        true_rates_dps
            .iter()
            .map(|&w| {
                walk += walk_step * gaussian(&mut rng);
                w + self.bias_dps + walk + self.noise_std_dps * gaussian(&mut rng)
            })
            .collect()
    }
}

/// A fault injector operating at the rate-stream boundary — corruption is
/// applied to the *measured* gyro rates, after the sensor error model, the
/// way a real dropout or range saturation would present to the pipeline.
///
/// Implementations must be deterministic for a given stream: the session
/// layer integrates the corrupted stream once per run and expects
/// bit-identical angles across thread counts.
pub trait RateInjector: std::fmt::Debug + Sync {
    /// Corrupts `rates_dps` (sampled every `dt` seconds) in place and
    /// returns the labels of the fault classes actually applied (empty =
    /// untouched).
    fn corrupt_rates(&self, rates_dps: &mut [f64], dt: f64) -> Vec<&'static str>;
}

impl GyroModel {
    /// Like [`simulate`](GyroModel::simulate), but passes the measured
    /// stream through a [`RateInjector`] before returning it. Returns the
    /// (possibly corrupted) rates together with the fault-class labels the
    /// injector applied.
    ///
    /// # Panics
    /// Panics if `dt` is not positive.
    pub fn simulate_injected(
        &self,
        true_rates_dps: &[f64],
        dt: f64,
        seed: u64,
        injector: &dyn RateInjector,
    ) -> (Vec<f64>, Vec<&'static str>) {
        let mut rates = self.simulate(true_rates_dps, dt, seed);
        let faults = injector.corrupt_rates(&mut rates, dt);
        (rates, faults)
    }
}

/// Integrates angular rates (°/s, sampled every `dt` s) into orientation
/// (degrees), trapezoidal rule, starting at `initial_deg`.
///
/// Returns one orientation per input sample (the first equals
/// `initial_deg`).
///
/// # Panics
/// Panics if `dt` is not positive.
pub fn integrate_rates(rates_dps: &[f64], dt: f64, initial_deg: f64) -> Vec<f64> {
    assert!(dt > 0.0, "dt must be positive");
    let mut out = Vec::with_capacity(rates_dps.len());
    let mut angle = initial_deg;
    out.push(angle);
    for w in rates_dps.windows(2) {
        angle += 0.5 * (w[0] + w[1]) * dt;
        out.push(angle);
    }
    out
}

/// Standard normal sample via Box–Muller (rand 0.8 ships no normal
/// distribution without `rand_distr`).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trajectory::{generate_trajectory, GesturePlan, Imperfections};

    #[test]
    fn ideal_gyro_passthrough() {
        let rates = vec![1.0, 2.0, 3.0];
        let out = GyroModel::ideal().simulate(&rates, 0.01, 1);
        assert_eq!(out, rates);
    }

    #[test]
    fn bias_shifts_mean() {
        let rates = vec![0.0; 10_000];
        let model = GyroModel {
            bias_dps: 0.5,
            noise_std_dps: 0.2,
            bias_walk_dps: 0.0,
        };
        let out = model.simulate(&rates, 0.01, 2);
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn noise_std_calibrated() {
        let rates = vec![0.0; 20_000];
        let model = GyroModel {
            bias_dps: 0.0,
            noise_std_dps: 0.3,
            bias_walk_dps: 0.0,
        };
        let out = model.simulate(&rates, 0.01, 3);
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        let var: f64 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / out.len() as f64;
        assert!((var.sqrt() - 0.3).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn integration_of_constant_rate() {
        let rates = vec![10.0; 101]; // 10 °/s for 1 s at 100 Hz
        let angles = integrate_rates(&rates, 0.01, 5.0);
        assert_eq!(angles.len(), 101);
        assert!((angles[0] - 5.0).abs() < 1e-12);
        assert!((angles[100] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn drift_grows_with_time() {
        // Integrated bias error is linear in time.
        let rates = vec![0.0; 3001];
        let model = GyroModel {
            bias_dps: 0.2,
            noise_std_dps: 0.0,
            bias_walk_dps: 0.0,
        };
        let measured = model.simulate(&rates, 0.01, 4);
        let angles = integrate_rates(&measured, 0.01, 0.0);
        assert!((angles[1000] - 2.0).abs() < 1e-6); // 10 s × 0.2 °/s
        assert!((angles[3000] - 6.0).abs() < 1e-6); // 30 s × 0.2 °/s
    }

    #[test]
    fn end_to_end_gesture_drift_is_a_few_degrees() {
        // The paper's design point: consumer gyro over a 20 s gesture ends
        // within a few degrees — useful but not sufficient alone.
        let traj = generate_trajectory(&GesturePlan::standard(Imperfections::none()), 8);
        let rates: Vec<f64> = traj.iter().map(|s| s.angular_rate_dps).collect();
        let dt = 0.01;
        let measured = GyroModel::consumer_phone().simulate(&rates, dt, 8);
        let est = integrate_rates(&measured, dt, traj[0].orientation_deg);
        let err = (est.last().unwrap() - traj.last().unwrap().orientation_deg).abs();
        assert!(err > 0.2, "unrealistically clean gyro: {err}°");
        assert!(err < 15.0, "unrealistically bad gyro: {err}°");
    }

    #[test]
    fn deterministic_per_seed() {
        let rates = vec![1.0; 100];
        let m = GyroModel::consumer_phone();
        assert_eq!(m.simulate(&rates, 0.01, 9), m.simulate(&rates, 0.01, 9));
        assert_ne!(m.simulate(&rates, 0.01, 9), m.simulate(&rates, 0.01, 10));
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        integrate_rates(&[1.0], 0.0, 0.0);
    }

    #[derive(Debug)]
    struct ZeroTail;
    impl RateInjector for ZeroTail {
        fn corrupt_rates(&self, rates_dps: &mut [f64], _dt: f64) -> Vec<&'static str> {
            let n = rates_dps.len();
            for v in rates_dps[n / 2..].iter_mut() {
                *v = 0.0;
            }
            vec!["zero-tail"]
        }
    }

    #[test]
    fn injected_rates_match_clean_stream_plus_corruption() {
        let rates = vec![3.0; 200];
        let m = GyroModel::consumer_phone();
        let clean = m.simulate(&rates, 0.01, 9);
        let (corrupted, faults) = m.simulate_injected(&rates, 0.01, 9, &ZeroTail);
        assert_eq!(faults, vec!["zero-tail"]);
        assert_eq!(&corrupted[..100], &clean[..100], "head untouched");
        assert!(corrupted[100..].iter().all(|&v| v == 0.0), "tail zeroed");
    }
}
