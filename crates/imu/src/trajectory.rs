//! Hand-gesture trajectory generation.
//!
//! Models the "rotate the phone around your head" gesture: a polar sweep
//! at roughly constant radius, sampled at the IMU rate. Real users are
//! imperfect — the radius wobbles with hand tremor, the arm droops as it
//! tires, the phone is not aimed exactly at the eyes, and the sweep speed
//! varies. Each imperfection is explicitly parameterized so experiments
//! can dial gestures from laboratory-clean to volunteer-4-sloppy (Fig 19).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;
use uniq_geometry::vec2::unit_from_theta;
use uniq_geometry::Vec2;

/// Gesture imperfection magnitudes.
#[derive(Debug, Clone, Copy)]
pub struct Imperfections {
    /// Hand-tremor radius wobble amplitude, metres.
    pub radius_wobble_m: f64,
    /// Wobble rate, hertz.
    pub radius_wobble_hz: f64,
    /// Total inward arm droop accumulated by the end of the sweep, metres.
    pub droop_m: f64,
    /// Peak phone-aiming error (screen not exactly facing the eyes), degrees.
    pub aim_error_deg: f64,
    /// Relative angular-speed modulation in `[0, 1)`.
    pub speed_variation: f64,
}

impl Imperfections {
    /// A laboratory-perfect gesture.
    pub fn none() -> Self {
        Imperfections {
            radius_wobble_m: 0.0,
            radius_wobble_hz: 0.0,
            droop_m: 0.0,
            aim_error_deg: 0.0,
            speed_variation: 0.0,
        }
    }

    /// A careful but human gesture (volunteers 1–3 of Fig 19).
    pub fn typical() -> Self {
        Imperfections {
            radius_wobble_m: 0.01,
            radius_wobble_hz: 1.2,
            droop_m: 0.02,
            aim_error_deg: 5.0,
            speed_variation: 0.2,
        }
    }

    /// A tired/constrained arm (volunteers 4–5 of Fig 19: the phone drifts
    /// too close to the head near the end of the sweep).
    pub fn severe() -> Self {
        Imperfections {
            radius_wobble_m: 0.02,
            radius_wobble_hz: 1.8,
            droop_m: 0.08,
            aim_error_deg: 10.0,
            speed_variation: 0.4,
        }
    }
}

/// The planned gesture.
#[derive(Debug, Clone, Copy)]
pub struct GesturePlan {
    /// Sweep start, degrees (paper convention; 0 = front).
    pub theta_start_deg: f64,
    /// Sweep end, degrees.
    pub theta_end_deg: f64,
    /// Sweep duration, seconds.
    pub duration_s: f64,
    /// Nominal arm radius, metres.
    pub radius_m: f64,
    /// IMU sampling rate, hertz (the paper logs 100 Hz).
    pub imu_rate_hz: f64,
    /// Imperfection magnitudes.
    pub imperfections: Imperfections,
}

impl GesturePlan {
    /// The paper's default protocol: sweep the left hemisphere front to
    /// back (0°–180°) in 20 s at arm's length, logging 100 Hz IMU.
    pub fn standard(imperfections: Imperfections) -> Self {
        GesturePlan {
            theta_start_deg: 0.0,
            theta_end_deg: 180.0,
            duration_s: 20.0,
            radius_m: 0.45,
            imu_rate_hz: 100.0,
            imperfections,
        }
    }

    /// Validates the plan.
    ///
    /// # Panics
    /// Panics on non-positive duration/rate/radius or a degenerate sweep.
    pub fn validate(&self) {
        assert!(self.duration_s > 0.0, "duration must be positive");
        assert!(self.imu_rate_hz > 0.0, "IMU rate must be positive");
        assert!(self.radius_m > 0.1, "radius must clear the head");
        assert!(
            (self.theta_end_deg - self.theta_start_deg).abs() > 1.0,
            "sweep must cover more than 1 degree"
        );
    }
}

/// One ground-truth sample of the phone's state during the gesture.
#[derive(Debug, Clone, Copy)]
pub struct TrajectorySample {
    /// Time since gesture start, seconds.
    pub t: f64,
    /// True phone position (head frame, metres).
    pub pos: Vec2,
    /// True polar angle, degrees.
    pub theta_deg: f64,
    /// True polar radius, metres.
    pub radius_m: f64,
    /// Phone orientation (which way the screen normal points), degrees —
    /// equals `theta_deg` plus aiming error.
    pub orientation_deg: f64,
    /// True angular rate of the orientation, degrees/second (what a
    /// perfect gyro would read).
    pub angular_rate_dps: f64,
}

/// Generates the ground-truth trajectory for a gesture plan.
///
/// Deterministic per `(plan, seed)`: the seed drives the random phases of
/// the imperfection oscillations and the aiming-error bias.
///
/// # Panics
/// Panics if the plan is invalid.
pub fn generate_trajectory(plan: &GesturePlan, seed: u64) -> Vec<TrajectorySample> {
    plan.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let imp = plan.imperfections;
    let wobble_phase = rng.gen_range(0.0..TAU);
    let speed_phase = rng.gen_range(0.0..TAU);
    let aim_phase = rng.gen_range(0.0..TAU);
    let aim_bias = rng.gen_range(-0.4..0.4) * imp.aim_error_deg;

    let n = (plan.duration_s * plan.imu_rate_hz).round() as usize + 1;
    let dt = 1.0 / plan.imu_rate_hz;
    let span = plan.theta_end_deg - plan.theta_start_deg;

    // Angular progress: monotone base ramp plus bounded sinusoidal speed
    // modulation (kept below 1/(2π·k) in slope so progress never reverses).
    let k_speed = 2.0; // speed modulation cycles over the sweep
    let progress = |t: f64| -> f64 {
        let x = (t / plan.duration_s).clamp(0.0, 1.0);
        let mod_amp = imp.speed_variation / (TAU * k_speed);
        x + mod_amp * ((TAU * k_speed * x + speed_phase).sin() - speed_phase.sin())
    };

    let orientation_error = |t: f64| -> f64 {
        let x = t / plan.duration_s;
        aim_bias + imp.aim_error_deg * 0.6 * (TAU * 0.8 * x + aim_phase).sin()
    };

    let state_at = |t: f64| -> (f64, f64, f64) {
        let theta = plan.theta_start_deg + span * progress(t);
        let x = (t / plan.duration_s).clamp(0.0, 1.0);
        let radius = plan.radius_m - imp.droop_m * x
            + imp.radius_wobble_m * (TAU * imp.radius_wobble_hz * t + wobble_phase).sin();
        let orient = theta + orientation_error(t);
        (theta, radius, orient)
    };

    (0..n)
        .map(|k| {
            let t = k as f64 * dt;
            let (theta, radius, orient) = state_at(t);
            // Angular rate by central difference of the orientation.
            let h = dt / 2.0;
            let o_plus = state_at((t + h).min(plan.duration_s)).2;
            let o_minus = state_at((t - h).max(0.0)).2;
            let denom = (t + h).min(plan.duration_s) - (t - h).max(0.0);
            let rate = if denom > 0.0 {
                (o_plus - o_minus) / denom
            } else {
                0.0
            };
            TrajectorySample {
                t,
                pos: unit_from_theta(theta) * radius,
                theta_deg: theta,
                radius_m: radius,
                orientation_deg: orient,
                angular_rate_dps: rate,
            }
        })
        .collect()
}

/// Picks `m` measurement stops evenly spread along a trajectory (by index)
/// — the discrete positions where the phone plays its probe chirps.
///
/// # Panics
/// Panics if `m < 2` or the trajectory has fewer than `m` samples.
pub fn measurement_stops(traj: &[TrajectorySample], m: usize) -> Vec<TrajectorySample> {
    assert!(m >= 2, "need at least two measurement stops");
    assert!(traj.len() >= m, "trajectory shorter than stop count");
    (0..m)
        .map(|k| traj[k * (traj.len() - 1) / (m - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(imp: Imperfections) -> GesturePlan {
        GesturePlan::standard(imp)
    }

    #[test]
    fn perfect_gesture_is_exact() {
        let traj = generate_trajectory(&plan(Imperfections::none()), 1);
        assert_eq!(traj.len(), 2001);
        let first = &traj[0];
        let last = traj.last().unwrap();
        assert!((first.theta_deg - 0.0).abs() < 1e-9);
        assert!((last.theta_deg - 180.0).abs() < 1e-9);
        for s in &traj {
            assert!((s.radius_m - 0.45).abs() < 1e-12);
            assert!((s.orientation_deg - s.theta_deg).abs() < 1e-12);
        }
    }

    #[test]
    fn progress_is_monotone_even_with_speed_variation() {
        let traj = generate_trajectory(&plan(Imperfections::severe()), 7);
        for w in traj.windows(2) {
            assert!(
                w[1].theta_deg >= w[0].theta_deg - 1e-9,
                "theta reversed at t={}",
                w[1].t
            );
        }
    }

    #[test]
    fn droop_shrinks_radius_over_time() {
        let mut imp = Imperfections::none();
        imp.droop_m = 0.06;
        let traj = generate_trajectory(&plan(imp), 3);
        let early = traj[100].radius_m;
        let late = traj[1900].radius_m;
        assert!(late < early - 0.04, "droop missing: {early} -> {late}");
    }

    #[test]
    fn aim_error_bounded() {
        let traj = generate_trajectory(&plan(Imperfections::severe()), 11);
        for s in &traj {
            let err = (s.orientation_deg - s.theta_deg).abs();
            assert!(err <= 10.0 + 1e-9, "aim error {err} exceeds bound");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_trajectory(&plan(Imperfections::typical()), 5);
        let b = generate_trajectory(&plan(Imperfections::typical()), 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pos, y.pos);
        }
        let c = generate_trajectory(&plan(Imperfections::typical()), 6);
        assert!(a.iter().zip(&c).any(|(x, y)| x.pos != y.pos));
    }

    #[test]
    fn angular_rate_integrates_back_to_orientation() {
        let traj = generate_trajectory(&plan(Imperfections::typical()), 9);
        let dt = 0.01;
        let mut integral = traj[0].orientation_deg;
        for w in traj.windows(2) {
            // Trapezoidal integration of the reported rates.
            integral += 0.5 * (w[0].angular_rate_dps + w[1].angular_rate_dps) * dt;
        }
        let expect = traj.last().unwrap().orientation_deg;
        assert!(
            (integral - expect).abs() < 0.5,
            "integrated {integral} vs true {expect}"
        );
    }

    #[test]
    fn position_matches_polar_state() {
        let traj = generate_trajectory(&plan(Imperfections::typical()), 13);
        for s in traj.iter().step_by(200) {
            let recon = unit_from_theta(s.theta_deg) * s.radius_m;
            assert!((recon - s.pos).norm() < 1e-12);
        }
    }

    #[test]
    fn stops_cover_sweep() {
        let traj = generate_trajectory(&plan(Imperfections::none()), 1);
        let stops = measurement_stops(&traj, 19);
        assert_eq!(stops.len(), 19);
        assert_eq!(stops[0].t, 0.0);
        assert!((stops[18].theta_deg - 180.0).abs() < 1e-9);
        // Roughly every 10 degrees.
        for w in stops.windows(2) {
            let d = w[1].theta_deg - w[0].theta_deg;
            assert!(d > 5.0 && d < 15.0, "stop spacing {d}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_stop_rejected() {
        let traj = generate_trajectory(&plan(Imperfections::none()), 1);
        measurement_stops(&traj, 1);
    }

    #[test]
    #[should_panic(expected = "clear the head")]
    fn tiny_radius_rejected() {
        let mut p = plan(Imperfections::none());
        p.radius_m = 0.05;
        generate_trajectory(&p, 1);
    }
}
