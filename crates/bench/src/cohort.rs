//! Cohort runner: personalizes each of the five evaluation volunteers once
//! and caches the results for all downstream experiments (Figs 17–22).

use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize_with_retry, PersonalizationResult};
use uniq_subjects::{evaluation_cohort, Subject};

/// One volunteer's personalization run plus the subject itself.
#[derive(Debug)]
pub struct VolunteerRun {
    /// The synthetic volunteer.
    pub subject: Subject,
    /// The pipeline output.
    pub result: PersonalizationResult,
}

/// The evaluation configuration used by all figure experiments: the
/// paper's protocol — reverberant room, default SNR, 1° output grid.
pub fn eval_config() -> UniqConfig {
    UniqConfig {
        in_room: true,
        grid_step_deg: 1.0,
        ..UniqConfig::default()
    }
}

/// Personalizes the whole cohort (with the §4.6 retry loop) and returns
/// the cached runs. Deterministic.
pub fn run_cohort(cfg: &UniqConfig) -> Vec<VolunteerRun> {
    evaluation_cohort()
        .into_iter()
        .enumerate()
        .map(|(k, subject)| {
            let result = personalize_with_retry(&subject, cfg, 5000 + k as u64, 3)
                .unwrap_or_else(|e| panic!("volunteer {} failed to personalize: {e}", k + 1));
            VolunteerRun { subject, result }
        })
        .collect()
}
