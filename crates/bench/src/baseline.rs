//! Benchmark baselines: a pinned, deterministic workload matrix whose
//! performance *and* quality numbers are checked into the repo as
//! `BENCH_BASELINE.json`, plus the comparator that turns a fresh run
//! into a CI verdict.
//!
//! The contract (enforced by `scripts/ci.sh` via the `baseline` binary):
//!
//! - **Quality drift is a hard failure.** Localization medians, AoA
//!   error, HRIR similarity, and the batch output fingerprints are pure
//!   functions of the pinned seeds; any relative drift beyond
//!   [`DEFAULT_QUALITY_TOL`] (fingerprints: any drift at all) exits
//!   non-zero.
//! - **Performance drift is a warning** unless `--strict`: wall-clock
//!   numbers depend on the machine, so the default tolerance
//!   ([`DEFAULT_PERF_TOL`]) is generous and advisory.
//!
//! Refresh the checked-in file after an intentional change with
//! `cargo run --release -p uniq-bench --bin baseline -- bless`.

use std::sync::Arc;
use uniq_core::batch::{hrtf_fingerprint, personalize_batch, BatchOutcome};
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize_with_retry, PersonalizationResult};
use uniq_dsp::stats::median;
use uniq_geometry::vec2::angle_diff_deg;
use uniq_obs::sink::{json_escape, json_number};
use uniq_obs::Stopwatch;
use uniq_profile::json::Json;
use uniq_profile::ProfileSink;
use uniq_subjects::Subject;

/// Schema stamp on `BENCH_BASELINE.json` (bump on shape changes).
/// v2 added the `alloc` section (per-stage allocation gates); v3 the
/// `serve` section (server response-fingerprint and admission gates).
pub const BASELINE_SCHEMA_VERSION: u64 = 3;

/// Default relative tolerance for quality numbers: tight, because they
/// are deterministic functions of the seeds — the slack only absorbs
/// float-environment differences, not behavior changes.
pub const DEFAULT_QUALITY_TOL: f64 = 0.02;

/// Default relative tolerance for performance numbers: wall time varies
/// with the machine and its load, so only call out large swings.
pub const DEFAULT_PERF_TOL: f64 = 0.5;

/// The checked-in baseline file, relative to the workspace root.
pub const BASELINE_FILE: &str = "BENCH_BASELINE.json";

/// The pinned workload matrix. [`BaselineSpec::pinned`] is what CI and
/// the checked-in baseline use; tests shrink it.
#[derive(Debug, Clone)]
pub struct BaselineSpec {
    /// Seed of the single-subject personalization runs.
    pub seed: u64,
    /// Subjects (seeds `seed..seed+n`) in the batch runs.
    pub batch_subjects: u64,
    /// Pool sizes the batch and personalize runs are measured at.
    pub thread_counts: Vec<usize>,
    /// Output grid step, degrees (coarse: this is a regression gate, not
    /// an evaluation).
    pub grid_step_deg: f64,
    /// Simulated measurement SNR, dB.
    pub snr_db: f64,
    /// Source angles of the known-source AoA sweep, degrees.
    pub aoa_angles: Vec<f64>,
    /// Angles where personalized HRIRs are correlated against the
    /// subject's ground truth, degrees.
    pub sim_angles: Vec<f64>,
    /// Pool sizes the allocation profile is measured at; per-stage alloc
    /// count/bytes must be bit-identical across all of them (the hard
    /// memory gate). Only used when the `uniq-memprof` counting allocator
    /// is installed in the running binary.
    pub alloc_threads: Vec<usize>,
    /// Shard workers of the serve workload's in-process server.
    pub serve_shards: usize,
    /// Subjects the serve workload requests — each twice (repeat ratio
    /// 1.0), so cache hits are pinned to exactly this count.
    pub serve_subjects: u64,
}

impl BaselineSpec {
    /// The workload matrix behind the checked-in `BENCH_BASELINE.json`.
    pub fn pinned() -> Self {
        BaselineSpec {
            seed: 6,
            batch_subjects: 4,
            thread_counts: vec![1, 4],
            grid_step_deg: 15.0,
            snr_db: 45.0,
            aoa_angles: vec![20.0, 60.0, 100.0, 140.0],
            sim_angles: vec![0.0, 45.0, 90.0, 135.0, 180.0],
            alloc_threads: vec![1, 8],
            serve_shards: 2,
            serve_subjects: 2,
        }
    }

    /// A minimal matrix for unit tests (single thread count, one batch
    /// subject, short sweeps).
    pub fn quick() -> Self {
        BaselineSpec {
            seed: 6,
            batch_subjects: 1,
            thread_counts: vec![1],
            grid_step_deg: 15.0,
            snr_db: 45.0,
            aoa_angles: vec![60.0],
            sim_angles: vec![90.0],
            alloc_threads: vec![1, 2],
            serve_shards: 1,
            serve_subjects: 1,
        }
    }

    /// The pipeline configuration behind the pinned workload — public so
    /// golden tests can re-run the exact checked-in workload.
    pub fn config(&self, threads: usize) -> UniqConfig {
        UniqConfig {
            in_room: false,
            grid_step_deg: self.grid_step_deg,
            snr_db: self.snr_db,
            threads,
            ..UniqConfig::default()
        }
    }
}

/// Personalizes the spec's pinned subject (single-threaded, the
/// fingerprinted configuration) and persists the result into the
/// content-addressed store at `dir` — so the checked-in baseline's HRTF
/// exists as an on-disk `.uhrtf` artifact, and re-running on the same
/// code is a pure dedup hit.
pub fn persist_to_store(
    spec: &BaselineSpec,
    dir: &std::path::Path,
) -> Result<(uniq_store::PutOutcome, u64), String> {
    let cfg = spec.config(1);
    let subject = Subject::from_seed(spec.seed);
    let result = personalize_with_retry(&subject, &cfg, spec.seed, 3)
        .map_err(|e| format!("personalization failed: {e}"))?;
    let artifact =
        uniq_store::HrtfArtifact::from_result(spec.seed, &result, cfg.content_hash(), None);
    let store = uniq_store::Store::open(dir).map_err(|e| e.to_string())?;
    let outcome = store.put(&artifact).map_err(|e| e.to_string())?;
    Ok((outcome, artifact.subject_fingerprint))
}

/// Wraps a single personalization result so
/// [`uniq_core::batch::hrtf_fingerprint`] can digest it: every HRIR bit,
/// localization estimate, and the radius fold into one number.
fn result_fingerprint(seed: u64, result: &PersonalizationResult) -> u64 {
    hrtf_fingerprint(&[BatchOutcome {
        seed,
        result: Ok(result.clone()),
        seconds: 0.0,
    }])
}

fn median_localization_error(result: &PersonalizationResult) -> (f64, f64) {
    let errs: Vec<f64> = result
        .localization
        .iter()
        .map(|(t, e)| angle_diff_deg(*t, *e))
        .collect();
    (median(&errs), uniq_dsp::stats::percentile(&errs, 90.0))
}

/// Known-source AoA error sweep over the personalized table.
fn aoa_errors(result: &PersonalizationResult, spec: &BaselineSpec, cfg: &UniqConfig) -> Vec<f64> {
    let table = &result.hrtf;
    spec.aoa_angles
        .iter()
        .map(|&theta| {
            let sig = uniq_acoustics::signals::generate(
                uniq_acoustics::signals::SignalKind::WhiteNoise,
                0.4,
                table.sample_rate(),
                spec.seed,
            );
            let rendered = table.synthesize(&sig, theta, true);
            let rec = uniq_acoustics::measure::BinauralRecording {
                left: rendered.left,
                right: rendered.right,
            };
            let est = uniq_core::aoa::estimate_known_source(&rec, &sig, table.far(), cfg);
            angle_diff_deg(est, theta)
        })
        .collect()
}

/// Mean peak-normalized correlation between the personalized far-field
/// HRIRs and the subject's ground truth at the spec's angles (both ears
/// averaged).
fn hrir_similarity(
    subject: &Subject,
    result: &PersonalizationResult,
    spec: &BaselineSpec,
    cfg: &UniqConfig,
) -> f64 {
    let truth = subject.ground_truth(cfg.render, &spec.sim_angles);
    let mut sum = 0.0;
    for (k, &angle) in spec.sim_angles.iter().enumerate() {
        let est = result.hrtf.far().nearest(angle).0;
        let (l, r) = est.similarity(&truth.irs()[k]);
        sum += (l + r) / 2.0;
    }
    sum / spec.sim_angles.len() as f64
}

/// Measures the allocation profile of the spec's personalize workload at
/// `threads`: one unmeasured run first (prewarming the pool, lazy tables,
/// and span-name slots), then the measured run under a
/// [`uniq_memprof::StageTrackingSink`] so spans stay enabled for stage
/// attribution even without another sink. Meaningful only when the
/// `uniq-memprof` counting allocator is installed in the running binary
/// (the snapshot is empty otherwise). Counters are process-global — the
/// caller serializes gate-grade measurements.
pub fn alloc_profile(spec: &BaselineSpec, threads: usize) -> uniq_memprof::AllocSnapshot {
    let cfg = spec.config(threads);
    let subject = Subject::from_seed(spec.seed);
    let sink = Arc::new(uniq_memprof::StageTrackingSink);
    uniq_obs::with_sink(sink, || {
        personalize_with_retry(&subject, &cfg, spec.seed, 3).expect("baseline personalize failed");
        let (_, snap) = uniq_memprof::measure(|| {
            personalize_with_retry(&subject, &cfg, spec.seed, 3)
                .expect("baseline personalize failed")
        });
        snap
    })
}

/// Measures the allocation profile at each of `spec.alloc_threads` and
/// evaluates the thread-invariance predicate, with *steady-state
/// settlement*: if the first pass diverges, the whole matrix is measured
/// once more in the same process and the second pass is the verdict.
///
/// The settlement exists because process-lifetime lazy initialization —
/// a pool queue growing to its high-water mark, a thread-local stack's
/// first growth past its initial capacity — can allocate exactly once on
/// a scheduling-dependent path, and *which* measured run pays that
/// one-time cost is scheduler noise, not workload. A second pass cannot
/// pay it again, so the gate measures the steady state it documents; a
/// genuine regression (an allocation whose per-stage count varies with
/// the thread count) diverges on every pass and still fails hard.
pub fn alloc_profile_matrix(
    spec: &BaselineSpec,
) -> (Vec<(usize, uniq_memprof::AllocSnapshot)>, bool) {
    let measure = || -> Vec<(usize, uniq_memprof::AllocSnapshot)> {
        spec.alloc_threads
            .iter()
            .map(|&t| (t, alloc_profile(spec, t)))
            .collect()
    };
    let settled = |snaps: &[(usize, uniq_memprof::AllocSnapshot)]| {
        snaps.iter().all(|(_, s)| alloc_invariant(&snaps[0].1, s))
    };
    let mut snaps = measure();
    let mut invariant = settled(&snaps);
    if !invariant {
        snaps = measure();
        invariant = settled(&snaps);
    }
    (snaps, invariant)
}

/// Whether two snapshots agree bit-for-bit on the deterministic columns
/// (per-stage allocation count and bytes) — the thread-invariance
/// predicate behind the hard memory gate. Frees, peaks, and the
/// unattributed row are deliberately excluded (scheduling-dependent).
pub fn alloc_invariant(a: &uniq_memprof::AllocSnapshot, b: &uniq_memprof::AllocSnapshot) -> bool {
    a.stages.len() == b.stages.len()
        && a.stages
            .iter()
            .zip(&b.stages)
            .all(|((ka, sa), (kb, sb))| ka == kb && sa.allocs == sb.allocs && sa.bytes == sb.bytes)
}

/// Renders the baseline document's `alloc` section from the snapshots
/// measured at each of `spec.alloc_threads` (first snapshot provides the
/// recorded numbers; `thread_invariant` reports the in-run cross-thread
/// hard gate).
fn alloc_section_json(
    spec: &BaselineSpec,
    snaps: &[(usize, uniq_memprof::AllocSnapshot)],
    invariant: bool,
) -> String {
    let first = &snaps[0].1;
    let total = first.total();
    let stages = first
        .stages
        .iter()
        .map(|(name, s)| {
            format!(
                "{{\"name\": \"{}\", \"allocs\": {}, \"bytes\": {}, \"peak_live_bytes\": {}}}",
                json_escape(name),
                s.allocs,
                s.bytes,
                s.peak_live_bytes
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n    \"thread_counts\": [{}],\n    \"thread_invariant\": {},\n    \
         \"total_allocs\": {},\n    \"total_bytes\": {},\n    \"peak_live_bytes\": {},\n    \
         \"stages\": [{}]\n  }}",
        spec.alloc_threads
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        invariant,
        total.allocs,
        total.bytes,
        first.peak_live_bytes,
        stages,
    )
}

/// Runs the pinned serve workload — an in-process sharded server over a
/// scratch result store, driven by the deterministic closed-loop load
/// generator at repeat ratio 1.0 (every subject requested twice, so the
/// second hit of each is a store lookup) — and renders the document's
/// `serve` section. Fingerprint, request, cache-hit, and shed counts are
/// exact functions of the spec; throughput and latency are wall clock.
fn serve_section_json(spec: &BaselineSpec) -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    // Unique per call: the quick test runs two baselines in one process
    // and each must start from a cold store.
    static CALL: AtomicU64 = AtomicU64::new(0);
    let root = std::env::temp_dir().join(format!(
        "uniq_baseline_serve_{}_{}",
        std::process::id(),
        CALL.fetch_add(1, Ordering::Relaxed),
    ));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = uniq_serve::ServeConfig {
        shards: spec.serve_shards,
        base: spec.config(1),
        store_dir: Some(root.clone()),
        ..Default::default()
    };
    let server =
        uniq_serve::Server::start("127.0.0.1:0", cfg).expect("start baseline serve workload");
    let lg = uniq_serve::LoadgenConfig {
        addr: server.local_addr().to_string(),
        subjects: spec.serve_subjects,
        seed_base: spec.seed,
        clients: spec.serve_shards,
        repeat: 1.0,
        ..Default::default()
    };
    let report = uniq_serve::loadgen::run(&lg).expect("baseline loadgen failed");
    let drain = server.shutdown();
    let _ = std::fs::remove_dir_all(&root);

    assert_eq!(
        report.fingerprint_conflicts, 0,
        "baseline serve workload returned conflicting fingerprints"
    );
    let fingerprint = uniq_serve::fold_fingerprints(&drain.fingerprints);
    assert_eq!(
        fingerprint,
        uniq_serve::fold_fingerprints(&report.fingerprints),
        "server and load generator disagree on the population fingerprint"
    );
    format!(
        "{{\n    \"shards\": {},\n    \"subjects\": {},\n    \
         \"fingerprint\": \"{:#018x}\",\n    \"requests\": {},\n    \
         \"cache_hits\": {},\n    \"shed\": {},\n    \
         \"subjects_per_second\": {},\n    \"p50_ms\": {},\n    \"p99_ms\": {}\n  }}",
        spec.serve_shards,
        spec.serve_subjects,
        fingerprint,
        drain.stats.requests,
        drain.stats.cache_hits,
        drain.stats.shed,
        json_number(report.subjects_per_second),
        json_number(report.p50_ms),
        json_number(report.p99_ms),
    )
}

/// Runs the workload matrix and renders the baseline document. Quality
/// numbers are pure functions of the spec's seeds; perf numbers are
/// wall-clock measurements of this machine. The `alloc` section appears
/// only when the `uniq-memprof` counting allocator is installed (the
/// `baseline` and `uniq` binaries install it; in-process test harnesses
/// usually do not).
pub fn run_baseline(spec: &BaselineSpec) -> String {
    let mut quality: Vec<(String, String)> = Vec::new();
    let mut perf: Vec<(String, String)> = Vec::new();

    // --- personalize at each pool size, the first under the profiler.
    let subject = Subject::from_seed(spec.seed);
    let mut first_result: Option<PersonalizationResult> = None;
    let mut stages_json = String::from("[]");
    let mut fingerprints = Vec::new();
    for (i, &threads) in spec.thread_counts.iter().enumerate() {
        let cfg = spec.config(threads);
        let sw = Stopwatch::start();
        let result = if i == 0 {
            let profile = Arc::new(ProfileSink::new());
            let result = uniq_obs::with_sink(profile.clone(), || {
                personalize_with_retry(&subject, &cfg, spec.seed, 3)
            })
            .expect("baseline personalize failed");
            let report = profile.report();
            stages_json = format!(
                "[{}]",
                report
                    .stages
                    .iter()
                    .map(|s| format!(
                        "{{\"name\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                        json_escape(&s.name),
                        s.count,
                        s.p50_nanos,
                        s.p99_nanos
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            result
        } else {
            personalize_with_retry(&subject, &cfg, spec.seed, 3)
                .expect("baseline personalize failed")
        };
        perf.push((
            format!("personalize_seconds_t{threads}"),
            json_number(sw.elapsed_seconds()),
        ));
        fingerprints.push(result_fingerprint(spec.seed, &result));
        if first_result.is_none() {
            first_result = Some(result);
        }
    }
    // uniq-analyzer: allow(panic-safety) — thread_counts is never empty, so the loop above ran at least once
    let result = first_result.expect("at least one thread count");
    let deterministic = fingerprints.iter().all(|&f| f == fingerprints[0]);
    quality.push((
        "personalize_fingerprint".into(),
        format!("\"{:#018x}\"", fingerprints[0]),
    ));
    quality.push((
        "personalize_thread_invariant".into(),
        deterministic.to_string(),
    ));

    let (loc_median, loc_p90) = median_localization_error(&result);
    quality.push(("localization_median_deg".into(), json_number(loc_median)));
    quality.push(("localization_p90_deg".into(), json_number(loc_p90)));
    quality.push((
        "fusion_mean_residual_deg".into(),
        json_number(result.fusion.mean_residual_deg),
    ));
    quality.push(("radius_m".into(), json_number(result.radius_m)));
    quality.push(("attempts".into(), result.attempts.to_string()));

    let cfg_eval = spec.config(1);
    let aoa = aoa_errors(&result, spec, &cfg_eval);
    quality.push(("aoa_known_median_deg".into(), json_number(median(&aoa))));
    quality.push((
        "hrir_similarity_mean".into(),
        json_number(hrir_similarity(&subject, &result, spec, &cfg_eval)),
    ));

    // --- batch throughput and output fingerprint per pool size.
    let seeds: Vec<u64> = (0..spec.batch_subjects)
        .map(|i| spec.seed.wrapping_add(i))
        .collect();
    let batch_cfg = spec.config(1); // subject-level parallelism only
    for &threads in &spec.thread_counts {
        let sw = Stopwatch::start();
        let outcomes = personalize_batch(&seeds, &batch_cfg, threads, 3);
        let secs = sw.elapsed_seconds();
        perf.push((
            format!("batch_subjects_per_second_t{threads}"),
            json_number(outcomes.len() as f64 / secs.max(1e-12)),
        ));
        quality.push((
            format!("batch_fingerprint_t{threads}"),
            format!("\"{:#018x}\"", hrtf_fingerprint(&outcomes)),
        ));
    }

    // --- allocation profile, measured at each alloc thread count. Gated
    // on the counting allocator actually being installed: without it the
    // snapshots would be all-zero and the gate meaningless.
    let alloc_section = if uniq_memprof::installed() {
        let (snaps, invariant) = alloc_profile_matrix(spec);
        format!(
            ",\n  \"alloc\": {}",
            alloc_section_json(spec, &snaps, invariant)
        )
    } else {
        String::new()
    };

    // --- the serve workload: sharded server + closed-loop load over a
    // scratch store (see serve_section_json).
    let serve_section = serve_section_json(spec);

    let fields = |pairs: &[(String, String)]| {
        pairs
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    format!(
        "{{\n  \"schema_version\": {BASELINE_SCHEMA_VERSION},\n  \"meta\": {{\n    \
         \"seed\": {},\n    \"batch_subjects\": {},\n    \"thread_counts\": [{}],\n    \
         \"grid_step_deg\": {},\n    \"snr_db\": {},\n    \"build\": \"{}\"\n  }},\n  \
         \"quality\": {{\n{}\n  }},\n  \"perf\": {{\n{},\n    \"stages\": {}\n  }}{},\n  \
         \"serve\": {}\n}}\n",
        spec.seed,
        spec.batch_subjects,
        spec.thread_counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        json_number(spec.grid_step_deg),
        json_number(spec.snr_db),
        json_escape(&crate::build_id()),
        fields(&quality),
        fields(&perf),
        stages_json,
        alloc_section,
        serve_section,
    )
}

/// The comparator's verdict: hard failures (quality) and advisory
/// warnings (performance).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CompareReport {
    /// Quality regressions — any entry fails CI.
    pub quality_failures: Vec<String>,
    /// Performance swings — advisory unless `--strict`.
    pub perf_warnings: Vec<String>,
}

impl CompareReport {
    /// Whether the comparison passes at the given strictness.
    pub fn passes(&self, strict: bool) -> bool {
        self.quality_failures.is_empty() && (!strict || self.perf_warnings.is_empty())
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

/// Compares every `section` member of `fresh` against `baseline`:
/// numbers by relative difference against `tol`, everything else
/// (strings, booleans) exactly. Missing members are always findings.
fn compare_section(
    baseline: &Json,
    fresh: &Json,
    section: &str,
    tol: f64,
    findings: &mut Vec<String>,
) {
    let Some(members) = baseline.as_object() else {
        findings.push(format!("baseline {section} is not an object"));
        return;
    };
    for (key, expected) in members {
        if key == "stages" {
            continue; // handled by compare_stages
        }
        let Some(got) = fresh.get(key) else {
            findings.push(format!("{section}.{key}: missing from fresh run"));
            continue;
        };
        match (expected, got) {
            (Json::Num(e), Json::Num(g)) => {
                let d = rel_diff(*e, *g);
                if d > tol {
                    findings.push(format!(
                        "{section}.{key}: baseline {e} vs fresh {g} (relative diff {d:.3} > {tol})"
                    ));
                }
            }
            (e, g) if e == g => {}
            (e, g) => findings.push(format!("{section}.{key}: baseline {e:?} vs fresh {g:?}")),
        }
    }
}

fn compare_stages(baseline: &Json, fresh: &Json, tol: f64, report: &mut CompareReport) {
    let base_stages = baseline
        .get("stages")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let fresh_stages = fresh.get("stages").and_then(Json::as_array).unwrap_or(&[]);
    for stage in base_stages {
        let Some(name) = stage.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(other) = fresh_stages
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            // A stage that vanished is an instrumentation regression,
            // not a timing swing.
            report
                .quality_failures
                .push(format!("perf.stages.{name}: missing from fresh run"));
            continue;
        };
        for field in ["p50_ns", "p99_ns"] {
            let (Some(e), Some(g)) = (
                stage.get(field).and_then(Json::as_f64),
                other.get(field).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let d = rel_diff(e, g);
            if d > tol {
                report.perf_warnings.push(format!(
                    "perf.stages.{name}.{field}: baseline {e} vs fresh {g} \
                     (relative diff {d:.3} > {tol})"
                ));
            }
        }
    }
}

/// The two-tier memory gate over the documents' `alloc` sections:
///
/// - **Hard** (quality failures): per-stage and total alloc count/bytes
///   must match *bit-identically* — they are pure functions of the
///   workload — and `thread_invariant` must hold in the fresh run. A
///   baseline with an alloc section also demands one from the fresh run.
/// - **Warn** (perf warnings, promoted by `--strict`): peak-live growth
///   beyond `perf_tol` — peak overlap is scheduling-dependent, so only
///   growth is flagged and only as advisory.
///
/// A baseline without an alloc section skips the gate entirely (documents
/// produced without the counting allocator installed).
fn compare_alloc(baseline: &Json, fresh: &Json, perf_tol: f64, report: &mut CompareReport) {
    let Some(base) = baseline.get("alloc") else {
        return;
    };
    let Some(got) = fresh.get("alloc") else {
        report.quality_failures.push(
            "alloc: section missing from fresh run (counting allocator not installed?)".into(),
        );
        return;
    };
    if got.get("thread_invariant") != Some(&Json::Bool(true)) {
        report.quality_failures.push(
            "alloc.thread_invariant: fresh run's per-stage allocations vary with the thread count"
                .into(),
        );
    }
    for key in ["total_allocs", "total_bytes"] {
        let (e, g) = (
            base.get(key).and_then(Json::as_u64),
            got.get(key).and_then(Json::as_u64),
        );
        if e != g {
            report
                .quality_failures
                .push(format!("alloc.{key}: baseline {e:?} vs fresh {g:?}"));
        }
    }
    let base_stages = base.get("stages").and_then(Json::as_array).unwrap_or(&[]);
    let fresh_stages = got.get("stages").and_then(Json::as_array).unwrap_or(&[]);
    for stage in base_stages {
        let Some(name) = stage.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(other) = fresh_stages
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            report
                .quality_failures
                .push(format!("alloc.stages.{name}: missing from fresh run"));
            continue;
        };
        for field in ["allocs", "bytes"] {
            let (e, g) = (
                stage.get(field).and_then(Json::as_u64),
                other.get(field).and_then(Json::as_u64),
            );
            if e != g {
                report.quality_failures.push(format!(
                    "alloc.stages.{name}.{field}: baseline {e:?} vs fresh {g:?}"
                ));
            }
        }
    }
    if let (Some(e), Some(g)) = (
        base.get("peak_live_bytes").and_then(Json::as_f64),
        got.get("peak_live_bytes").and_then(Json::as_f64),
    ) {
        if e > 0.0 && g > e * (1.0 + perf_tol) {
            report.perf_warnings.push(format!(
                "alloc.peak_live_bytes: baseline {e} vs fresh {g} (growth beyond {perf_tol})"
            ));
        }
    }
}

/// The serve gate over the documents' `serve` sections:
///
/// - **Hard** (quality failures): the population fingerprint and the
///   request / cache-hit / shed counts must match *exactly* — they are
///   pure functions of the pinned workload, so any drift means the
///   server changed behavior (different results, a cache that stopped
///   hitting, spurious shedding).
/// - **Warn** (perf warnings, promoted by `--strict`): throughput and
///   latency drift beyond `perf_tol` — wall clock is machine-dependent.
///
/// A baseline without a serve section skips the gate (pre-v3 documents).
fn compare_serve(baseline: &Json, fresh: &Json, perf_tol: f64, report: &mut CompareReport) {
    let Some(base) = baseline.get("serve") else {
        return;
    };
    let Some(got) = fresh.get("serve") else {
        report
            .quality_failures
            .push("serve: section missing from fresh run".into());
        return;
    };
    for key in [
        "fingerprint",
        "shards",
        "subjects",
        "requests",
        "cache_hits",
        "shed",
    ] {
        let (e, g) = (base.get(key), got.get(key));
        if e != g {
            report
                .quality_failures
                .push(format!("serve.{key}: baseline {e:?} vs fresh {g:?}"));
        }
    }
    for key in ["subjects_per_second", "p50_ms", "p99_ms"] {
        let (Some(e), Some(g)) = (
            base.get(key).and_then(Json::as_f64),
            got.get(key).and_then(Json::as_f64),
        ) else {
            continue;
        };
        let d = rel_diff(e, g);
        if d > perf_tol {
            report.perf_warnings.push(format!(
                "serve.{key}: baseline {e} vs fresh {g} (relative diff {d:.3} > {perf_tol})"
            ));
        }
    }
}

/// Diffs a fresh baseline document against the checked-in one. Returns
/// `Err` only for structural problems (unparseable document, schema
/// mismatch) — those are hard failures too.
pub fn compare(
    baseline: &Json,
    fresh: &Json,
    quality_tol: f64,
    perf_tol: f64,
) -> Result<CompareReport, String> {
    let version = |doc: &Json, which: &str| {
        doc.get("schema_version")
            .and_then(Json::as_u64)
            .ok_or(format!("{which} document has no schema_version"))
    };
    let (b, f) = (version(baseline, "baseline")?, version(fresh, "fresh")?);
    if b != f {
        return Err(format!("schema mismatch: baseline v{b} vs fresh v{f}"));
    }
    let section = |doc: &Json, name: &str, which: &str| {
        doc.get(name)
            .cloned()
            .ok_or(format!("{which} document has no {name:?} section"))
    };
    let mut report = CompareReport::default();
    compare_section(
        &section(baseline, "quality", "baseline")?,
        &section(fresh, "quality", "fresh")?,
        "quality",
        quality_tol,
        &mut report.quality_failures,
    );
    let base_perf = section(baseline, "perf", "baseline")?;
    let fresh_perf = section(fresh, "perf", "fresh")?;
    compare_section(
        &base_perf,
        &fresh_perf,
        "perf",
        perf_tol,
        &mut report.perf_warnings,
    );
    compare_stages(&base_perf, &fresh_perf, perf_tol, &mut report);
    compare_alloc(baseline, fresh, perf_tol, &mut report);
    compare_serve(baseline, fresh, perf_tol, &mut report);
    Ok(report)
}

/// Whether two baseline documents carry bit-identical quality sections
/// (the CI determinism check: two runs of the pinned workload must agree
/// exactly). When either document has a `serve` section, its fingerprint
/// is part of the identity too — the served population must reproduce
/// bit-for-bit alongside the library-path numbers.
pub fn quality_identical(a: &Json, b: &Json) -> bool {
    let quality = match (a.get("quality"), b.get("quality")) {
        (Some(qa), Some(qb)) => qa == qb,
        _ => false,
    };
    let serve = match (a.get("serve"), b.get("serve")) {
        (Some(sa), Some(sb)) => sa.get("fingerprint") == sb.get("fingerprint"),
        (None, None) => true,
        _ => false,
    };
    quality && serve
}

/// Validates a `--profile-out` JSON document: parseable, schema-stamped,
/// and covering every pipeline stage. Returns the covered stage names.
pub fn verify_profile(text: &str) -> Result<Vec<String>, String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("profile has no schema_version")?;
    if version != uniq_profile::PROFILE_SCHEMA_VERSION {
        return Err(format!("unsupported profile schema v{version}"));
    }
    let stages: Vec<String> = doc
        .get("stages")
        .and_then(Json::as_array)
        .ok_or("profile has no stages array")?
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str).map(String::from))
        .collect();
    for required in uniq_obs::names::PIPELINE_STAGES {
        if !stages.iter().any(|s| s == required) {
            return Err(format!("pipeline stage {required:?} missing from profile"));
        }
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-shaped baseline document for comparator tests —
    /// no workload run needed.
    fn doc(loc_median: f64, fingerprint: &str, p50: u64, secs: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema_version": {BASELINE_SCHEMA_VERSION},
              "meta": {{"seed": 6}},
              "quality": {{
                "localization_median_deg": {loc_median},
                "attempts": 1,
                "personalize_thread_invariant": true,
                "batch_fingerprint_t1": "{fingerprint}"
              }},
              "perf": {{
                "personalize_seconds_t1": {secs},
                "stages": [{{"name": "personalize", "count": 1, "p50_ns": {p50}, "p99_ns": {p50}}}]
              }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_compare_clean() {
        let a = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let r = compare(&a, &a, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
        assert!(r.passes(true));
        assert!(quality_identical(&a, &a));
    }

    #[test]
    fn quality_drift_is_a_hard_failure() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let fresh = doc(6.0, "0xdeadbeef", 1_000_000, 1.0);
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r.quality_failures.len(), 1, "{r:?}");
        assert!(r.quality_failures[0].contains("localization_median_deg"));
        assert!(!r.passes(false));
        assert!(!quality_identical(&base, &fresh));
    }

    #[test]
    fn doctored_fingerprint_fails_despite_tolerance() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let fresh = doc(4.8, "0xdeadbeee", 1_000_000, 1.0);
        let r = compare(&base, &fresh, 1.0, 1.0).unwrap();
        assert!(
            r.quality_failures.iter().any(|f| f.contains("fingerprint")),
            "{r:?}"
        );
    }

    #[test]
    fn perf_drift_warns_but_passes_unless_strict() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let fresh = doc(4.8, "0xdeadbeef", 4_000_000, 4.0);
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(r.quality_failures.is_empty(), "{r:?}");
        assert_eq!(r.perf_warnings.len(), 3, "{r:?}"); // seconds + stage p50/p99
        assert!(r.passes(false));
        assert!(!r.passes(true));
        // Perf drift never breaks quality identity.
        assert!(quality_identical(&base, &fresh));
    }

    #[test]
    fn missing_quality_key_and_stage_fail() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let mut fresh = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        // Drop a quality member and empty the stage list.
        if let Json::Obj(members) = &mut fresh {
            for (k, v) in members.iter_mut() {
                if k == "quality" {
                    if let Json::Obj(q) = v {
                        q.retain(|(key, _)| key != "attempts");
                    }
                }
                if k == "perf" {
                    if let Json::Obj(p) = v {
                        for (pk, pv) in p.iter_mut() {
                            if pk == "stages" {
                                *pv = Json::Arr(Vec::new());
                            }
                        }
                    }
                }
            }
        }
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(
            r.quality_failures.iter().any(|f| f.contains("attempts")),
            "{r:?}"
        );
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("stages.personalize")),
            "vanished stage not flagged: {r:?}"
        );
    }

    /// A baseline document with an alloc section appended.
    fn doc_with_alloc(bytes: u64, peak: u64, invariant: bool) -> Json {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let alloc = Json::parse(&format!(
            r#"{{
              "thread_counts": [1, 8],
              "thread_invariant": {invariant},
              "total_allocs": 10,
              "total_bytes": {bytes},
              "peak_live_bytes": {peak},
              "stages": [{{"name": "personalize", "allocs": 10, "bytes": {bytes}, "peak_live_bytes": {peak}}}]
            }}"#
        ))
        .unwrap();
        let Json::Obj(mut members) = base else {
            unreachable!()
        };
        members.push(("alloc".into(), alloc));
        Json::Obj(members)
    }

    #[test]
    fn alloc_exact_match_compares_clean() {
        let a = doc_with_alloc(4096, 2048, true);
        let r = compare(&a, &a, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
        assert!(r.passes(true));
    }

    #[test]
    fn alloc_byte_drift_is_a_hard_failure() {
        // One byte of drift fails: the columns are bit-identical by contract.
        let base = doc_with_alloc(4096, 2048, true);
        let fresh = doc_with_alloc(4097, 2048, true);
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("alloc.total_bytes")),
            "{r:?}"
        );
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("alloc.stages.personalize.bytes")),
            "{r:?}"
        );
        assert!(!r.passes(false));
    }

    #[test]
    fn alloc_peak_growth_warns_and_strict_promotes() {
        let base = doc_with_alloc(4096, 2048, true);
        let fresh = doc_with_alloc(4096, 4000, true); // ~2× peak, same totals
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(r.quality_failures.is_empty(), "{r:?}");
        assert!(
            r.perf_warnings
                .iter()
                .any(|w| w.contains("alloc.peak_live_bytes")),
            "{r:?}"
        );
        assert!(r.passes(false));
        assert!(!r.passes(true), "--strict must promote the peak warning");
        // Shrinking peak is never flagged.
        let shrunk = doc_with_alloc(4096, 100, true);
        let r = compare(&base, &shrunk, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
    }

    #[test]
    fn alloc_thread_variance_and_missing_section_fail() {
        let base = doc_with_alloc(4096, 2048, true);
        let varying = doc_with_alloc(4096, 2048, false);
        let r = compare(&base, &varying, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("thread_invariant")),
            "{r:?}"
        );
        // Baseline gated, fresh not instrumented → hard failure.
        let bare = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let r = compare(&base, &bare, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("alloc: section missing")),
            "{r:?}"
        );
        // No alloc section in the baseline → gate skipped entirely.
        let r = compare(&bare, &base, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
    }

    /// A baseline document with a serve section appended.
    fn doc_with_serve(fingerprint: &str, cache_hits: u64, p50_ms: f64) -> Json {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let serve = Json::parse(&format!(
            r#"{{
              "shards": 2,
              "subjects": 2,
              "fingerprint": "{fingerprint}",
              "requests": 4,
              "cache_hits": {cache_hits},
              "shed": 0,
              "subjects_per_second": 3.0,
              "p50_ms": {p50_ms},
              "p99_ms": {p50_ms}
            }}"#
        ))
        .unwrap();
        let Json::Obj(mut members) = base else {
            unreachable!()
        };
        members.push(("serve".into(), serve));
        Json::Obj(members)
    }

    #[test]
    fn serve_exact_match_compares_clean() {
        let a = doc_with_serve("0xfeedface", 2, 100.0);
        let r = compare(&a, &a, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
        assert!(quality_identical(&a, &a));
    }

    #[test]
    fn serve_fingerprint_and_admission_drift_fail_hard() {
        let base = doc_with_serve("0xfeedface", 2, 100.0);
        // Fingerprint drift: even with maximal tolerance, hard failure.
        let fresh = doc_with_serve("0xfeedfacf", 2, 100.0);
        let r = compare(&base, &fresh, 1.0, 1.0).unwrap();
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("serve.fingerprint")),
            "{r:?}"
        );
        assert!(!quality_identical(&base, &fresh));
        // A cache that stopped hitting is behavior drift, not a perf swing.
        let cold = doc_with_serve("0xfeedface", 0, 100.0);
        let r = compare(&base, &cold, 1.0, 1.0).unwrap();
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("serve.cache_hits")),
            "{r:?}"
        );
        // But cache_hits drift alone leaves the fingerprint identity intact.
        assert!(quality_identical(&base, &cold));
    }

    #[test]
    fn serve_latency_drift_warns_and_section_gates() {
        let base = doc_with_serve("0xfeedface", 2, 100.0);
        let slow = doc_with_serve("0xfeedface", 2, 400.0);
        let r = compare(&base, &slow, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(r.quality_failures.is_empty(), "{r:?}");
        assert!(
            r.perf_warnings
                .iter()
                .any(|w| w.contains("serve.p50_ms") || w.contains("serve.p99_ms")),
            "{r:?}"
        );
        assert!(r.passes(false));
        assert!(!r.passes(true));
        // Baseline gated, fresh without a serve section → hard failure.
        let bare = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let r = compare(&base, &bare, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("serve: section missing")),
            "{r:?}"
        );
        assert!(!quality_identical(&base, &bare));
        // Pre-v3 baseline without a serve section → gate skipped.
        let r = compare(&bare, &base, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
    }

    #[test]
    fn schema_mismatch_is_structural_error() {
        let a = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let b = Json::parse(r#"{"schema_version": 99, "quality": {}, "perf": {}}"#).unwrap();
        assert!(compare(&a, &b, 1.0, 1.0).is_err());
    }

    #[test]
    fn verify_profile_requires_stage_coverage() {
        let ok = format!(
            r#"{{"schema_version": 1, "stages": [{}]}}"#,
            uniq_obs::names::PIPELINE_STAGES
                .iter()
                .map(|s| format!(r#"{{"name": "{s}"}}"#))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(verify_profile(&ok).is_ok());

        let missing = r#"{"schema_version": 1, "stages": [{"name": "personalize"}]}"#;
        let err = verify_profile(missing).unwrap_err();
        assert!(err.contains("missing from profile"), "{err}");
        assert!(verify_profile("{}").is_err());
        assert!(verify_profile("not json").is_err());
    }

    #[test]
    fn quick_workload_emits_complete_and_deterministic_quality() {
        // The real thing, smallest possible: document parses, carries
        // every advertised section, and its quality half is bit-identical
        // across two runs in the same process.
        let spec = BaselineSpec::quick();
        let a = Json::parse(&run_baseline(&spec)).expect("baseline emits valid JSON");
        let b = Json::parse(&run_baseline(&spec)).unwrap();
        assert!(quality_identical(&a, &b), "quality not deterministic");

        let quality = a.get("quality").unwrap();
        for key in [
            "localization_median_deg",
            "aoa_known_median_deg",
            "hrir_similarity_mean",
            "personalize_fingerprint",
            "batch_fingerprint_t1",
        ] {
            assert!(quality.get(key).is_some(), "quality missing {key}");
        }
        assert_eq!(
            quality.get("personalize_thread_invariant").unwrap(),
            &Json::Bool(true)
        );
        // Stage profile covers the pipeline (subset check: quick() runs
        // the full personalize pipeline).
        let stages: Vec<&str> = a
            .get("perf")
            .unwrap()
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        for required in uniq_obs::names::PIPELINE_STAGES {
            assert!(stages.contains(required), "stage {required} missing");
        }
        // And compare() agrees the two runs match.
        let r = compare(&a, &b, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(r.quality_failures.is_empty(), "{r:?}");
    }
}
