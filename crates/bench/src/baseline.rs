//! Benchmark baselines: a pinned, deterministic workload matrix whose
//! performance *and* quality numbers are checked into the repo as
//! `BENCH_BASELINE.json`, plus the comparator that turns a fresh run
//! into a CI verdict.
//!
//! The contract (enforced by `scripts/ci.sh` via the `baseline` binary):
//!
//! - **Quality drift is a hard failure.** Localization medians, AoA
//!   error, HRIR similarity, and the batch output fingerprints are pure
//!   functions of the pinned seeds; any relative drift beyond
//!   [`DEFAULT_QUALITY_TOL`] (fingerprints: any drift at all) exits
//!   non-zero.
//! - **Performance drift is a warning** unless `--strict`: wall-clock
//!   numbers depend on the machine, so the default tolerance
//!   ([`DEFAULT_PERF_TOL`]) is generous and advisory.
//!
//! Refresh the checked-in file after an intentional change with
//! `cargo run --release -p uniq-bench --bin baseline -- bless`.

use std::sync::Arc;
use uniq_core::batch::{hrtf_fingerprint, personalize_batch, BatchOutcome};
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::{personalize_with_retry, PersonalizationResult};
use uniq_dsp::stats::median;
use uniq_geometry::vec2::angle_diff_deg;
use uniq_obs::sink::{json_escape, json_number};
use uniq_obs::Stopwatch;
use uniq_profile::json::Json;
use uniq_profile::ProfileSink;
use uniq_subjects::Subject;

/// Schema stamp on `BENCH_BASELINE.json` (bump on shape changes).
pub const BASELINE_SCHEMA_VERSION: u64 = 1;

/// Default relative tolerance for quality numbers: tight, because they
/// are deterministic functions of the seeds — the slack only absorbs
/// float-environment differences, not behavior changes.
pub const DEFAULT_QUALITY_TOL: f64 = 0.02;

/// Default relative tolerance for performance numbers: wall time varies
/// with the machine and its load, so only call out large swings.
pub const DEFAULT_PERF_TOL: f64 = 0.5;

/// The checked-in baseline file, relative to the workspace root.
pub const BASELINE_FILE: &str = "BENCH_BASELINE.json";

/// The pinned workload matrix. [`BaselineSpec::pinned`] is what CI and
/// the checked-in baseline use; tests shrink it.
#[derive(Debug, Clone)]
pub struct BaselineSpec {
    /// Seed of the single-subject personalization runs.
    pub seed: u64,
    /// Subjects (seeds `seed..seed+n`) in the batch runs.
    pub batch_subjects: u64,
    /// Pool sizes the batch and personalize runs are measured at.
    pub thread_counts: Vec<usize>,
    /// Output grid step, degrees (coarse: this is a regression gate, not
    /// an evaluation).
    pub grid_step_deg: f64,
    /// Simulated measurement SNR, dB.
    pub snr_db: f64,
    /// Source angles of the known-source AoA sweep, degrees.
    pub aoa_angles: Vec<f64>,
    /// Angles where personalized HRIRs are correlated against the
    /// subject's ground truth, degrees.
    pub sim_angles: Vec<f64>,
}

impl BaselineSpec {
    /// The workload matrix behind the checked-in `BENCH_BASELINE.json`.
    pub fn pinned() -> Self {
        BaselineSpec {
            seed: 6,
            batch_subjects: 4,
            thread_counts: vec![1, 4],
            grid_step_deg: 15.0,
            snr_db: 45.0,
            aoa_angles: vec![20.0, 60.0, 100.0, 140.0],
            sim_angles: vec![0.0, 45.0, 90.0, 135.0, 180.0],
        }
    }

    /// A minimal matrix for unit tests (single thread count, one batch
    /// subject, short sweeps).
    pub fn quick() -> Self {
        BaselineSpec {
            seed: 6,
            batch_subjects: 1,
            thread_counts: vec![1],
            grid_step_deg: 15.0,
            snr_db: 45.0,
            aoa_angles: vec![60.0],
            sim_angles: vec![90.0],
        }
    }

    /// The pipeline configuration behind the pinned workload — public so
    /// golden tests can re-run the exact checked-in workload.
    pub fn config(&self, threads: usize) -> UniqConfig {
        UniqConfig {
            in_room: false,
            grid_step_deg: self.grid_step_deg,
            snr_db: self.snr_db,
            threads,
            ..UniqConfig::default()
        }
    }
}

/// Personalizes the spec's pinned subject (single-threaded, the
/// fingerprinted configuration) and persists the result into the
/// content-addressed store at `dir` — so the checked-in baseline's HRTF
/// exists as an on-disk `.uhrtf` artifact, and re-running on the same
/// code is a pure dedup hit.
pub fn persist_to_store(
    spec: &BaselineSpec,
    dir: &std::path::Path,
) -> Result<(uniq_store::PutOutcome, u64), String> {
    let cfg = spec.config(1);
    let subject = Subject::from_seed(spec.seed);
    let result = personalize_with_retry(&subject, &cfg, spec.seed, 3)
        .map_err(|e| format!("personalization failed: {e}"))?;
    let artifact =
        uniq_store::HrtfArtifact::from_result(spec.seed, &result, cfg.content_hash(), None);
    let store = uniq_store::Store::open(dir).map_err(|e| e.to_string())?;
    let outcome = store.put(&artifact).map_err(|e| e.to_string())?;
    Ok((outcome, artifact.subject_fingerprint))
}

/// Wraps a single personalization result so
/// [`uniq_core::batch::hrtf_fingerprint`] can digest it: every HRIR bit,
/// localization estimate, and the radius fold into one number.
fn result_fingerprint(seed: u64, result: &PersonalizationResult) -> u64 {
    hrtf_fingerprint(&[BatchOutcome {
        seed,
        result: Ok(result.clone()),
        seconds: 0.0,
    }])
}

fn median_localization_error(result: &PersonalizationResult) -> (f64, f64) {
    let errs: Vec<f64> = result
        .localization
        .iter()
        .map(|(t, e)| angle_diff_deg(*t, *e))
        .collect();
    (median(&errs), uniq_dsp::stats::percentile(&errs, 90.0))
}

/// Known-source AoA error sweep over the personalized table.
fn aoa_errors(result: &PersonalizationResult, spec: &BaselineSpec, cfg: &UniqConfig) -> Vec<f64> {
    let table = &result.hrtf;
    spec.aoa_angles
        .iter()
        .map(|&theta| {
            let sig = uniq_acoustics::signals::generate(
                uniq_acoustics::signals::SignalKind::WhiteNoise,
                0.4,
                table.sample_rate(),
                spec.seed,
            );
            let rendered = table.synthesize(&sig, theta, true);
            let rec = uniq_acoustics::measure::BinauralRecording {
                left: rendered.left,
                right: rendered.right,
            };
            let est = uniq_core::aoa::estimate_known_source(&rec, &sig, table.far(), cfg);
            angle_diff_deg(est, theta)
        })
        .collect()
}

/// Mean peak-normalized correlation between the personalized far-field
/// HRIRs and the subject's ground truth at the spec's angles (both ears
/// averaged).
fn hrir_similarity(
    subject: &Subject,
    result: &PersonalizationResult,
    spec: &BaselineSpec,
    cfg: &UniqConfig,
) -> f64 {
    let truth = subject.ground_truth(cfg.render, &spec.sim_angles);
    let mut sum = 0.0;
    for (k, &angle) in spec.sim_angles.iter().enumerate() {
        let est = result.hrtf.far().nearest(angle).0;
        let (l, r) = est.similarity(&truth.irs()[k]);
        sum += (l + r) / 2.0;
    }
    sum / spec.sim_angles.len() as f64
}

/// Runs the workload matrix and renders the baseline document. Quality
/// numbers are pure functions of the spec's seeds; perf numbers are
/// wall-clock measurements of this machine.
pub fn run_baseline(spec: &BaselineSpec) -> String {
    let mut quality: Vec<(String, String)> = Vec::new();
    let mut perf: Vec<(String, String)> = Vec::new();

    // --- personalize at each pool size, the first under the profiler.
    let subject = Subject::from_seed(spec.seed);
    let mut first_result: Option<PersonalizationResult> = None;
    let mut stages_json = String::from("[]");
    let mut fingerprints = Vec::new();
    for (i, &threads) in spec.thread_counts.iter().enumerate() {
        let cfg = spec.config(threads);
        let sw = Stopwatch::start();
        let result = if i == 0 {
            let profile = Arc::new(ProfileSink::new());
            let result = uniq_obs::with_sink(profile.clone(), || {
                personalize_with_retry(&subject, &cfg, spec.seed, 3)
            })
            .expect("baseline personalize failed");
            let report = profile.report();
            stages_json = format!(
                "[{}]",
                report
                    .stages
                    .iter()
                    .map(|s| format!(
                        "{{\"name\": \"{}\", \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                        json_escape(&s.name),
                        s.count,
                        s.p50_nanos,
                        s.p99_nanos
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            result
        } else {
            personalize_with_retry(&subject, &cfg, spec.seed, 3)
                .expect("baseline personalize failed")
        };
        perf.push((
            format!("personalize_seconds_t{threads}"),
            json_number(sw.elapsed_seconds()),
        ));
        fingerprints.push(result_fingerprint(spec.seed, &result));
        if first_result.is_none() {
            first_result = Some(result);
        }
    }
    // uniq-analyzer: allow(panic-safety) — thread_counts is never empty, so the loop above ran at least once
    let result = first_result.expect("at least one thread count");
    let deterministic = fingerprints.iter().all(|&f| f == fingerprints[0]);
    quality.push((
        "personalize_fingerprint".into(),
        format!("\"{:#018x}\"", fingerprints[0]),
    ));
    quality.push((
        "personalize_thread_invariant".into(),
        deterministic.to_string(),
    ));

    let (loc_median, loc_p90) = median_localization_error(&result);
    quality.push(("localization_median_deg".into(), json_number(loc_median)));
    quality.push(("localization_p90_deg".into(), json_number(loc_p90)));
    quality.push((
        "fusion_mean_residual_deg".into(),
        json_number(result.fusion.mean_residual_deg),
    ));
    quality.push(("radius_m".into(), json_number(result.radius_m)));
    quality.push(("attempts".into(), result.attempts.to_string()));

    let cfg_eval = spec.config(1);
    let aoa = aoa_errors(&result, spec, &cfg_eval);
    quality.push(("aoa_known_median_deg".into(), json_number(median(&aoa))));
    quality.push((
        "hrir_similarity_mean".into(),
        json_number(hrir_similarity(&subject, &result, spec, &cfg_eval)),
    ));

    // --- batch throughput and output fingerprint per pool size.
    let seeds: Vec<u64> = (0..spec.batch_subjects)
        .map(|i| spec.seed.wrapping_add(i))
        .collect();
    let batch_cfg = spec.config(1); // subject-level parallelism only
    for &threads in &spec.thread_counts {
        let sw = Stopwatch::start();
        let outcomes = personalize_batch(&seeds, &batch_cfg, threads, 3);
        let secs = sw.elapsed_seconds();
        perf.push((
            format!("batch_subjects_per_second_t{threads}"),
            json_number(outcomes.len() as f64 / secs.max(1e-12)),
        ));
        quality.push((
            format!("batch_fingerprint_t{threads}"),
            format!("\"{:#018x}\"", hrtf_fingerprint(&outcomes)),
        ));
    }

    let fields = |pairs: &[(String, String)]| {
        pairs
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", json_escape(k), v))
            .collect::<Vec<_>>()
            .join(",\n")
    };
    format!(
        "{{\n  \"schema_version\": {BASELINE_SCHEMA_VERSION},\n  \"meta\": {{\n    \
         \"seed\": {},\n    \"batch_subjects\": {},\n    \"thread_counts\": [{}],\n    \
         \"grid_step_deg\": {},\n    \"snr_db\": {},\n    \"build\": \"{}\"\n  }},\n  \
         \"quality\": {{\n{}\n  }},\n  \"perf\": {{\n{},\n    \"stages\": {}\n  }}\n}}\n",
        spec.seed,
        spec.batch_subjects,
        spec.thread_counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        json_number(spec.grid_step_deg),
        json_number(spec.snr_db),
        json_escape(&crate::build_id()),
        fields(&quality),
        fields(&perf),
        stages_json,
    )
}

/// The comparator's verdict: hard failures (quality) and advisory
/// warnings (performance).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CompareReport {
    /// Quality regressions — any entry fails CI.
    pub quality_failures: Vec<String>,
    /// Performance swings — advisory unless `--strict`.
    pub perf_warnings: Vec<String>,
}

impl CompareReport {
    /// Whether the comparison passes at the given strictness.
    pub fn passes(&self, strict: bool) -> bool {
        self.quality_failures.is_empty() && (!strict || self.perf_warnings.is_empty())
    }
}

fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

/// Compares every `section` member of `fresh` against `baseline`:
/// numbers by relative difference against `tol`, everything else
/// (strings, booleans) exactly. Missing members are always findings.
fn compare_section(
    baseline: &Json,
    fresh: &Json,
    section: &str,
    tol: f64,
    findings: &mut Vec<String>,
) {
    let Some(members) = baseline.as_object() else {
        findings.push(format!("baseline {section} is not an object"));
        return;
    };
    for (key, expected) in members {
        if key == "stages" {
            continue; // handled by compare_stages
        }
        let Some(got) = fresh.get(key) else {
            findings.push(format!("{section}.{key}: missing from fresh run"));
            continue;
        };
        match (expected, got) {
            (Json::Num(e), Json::Num(g)) => {
                let d = rel_diff(*e, *g);
                if d > tol {
                    findings.push(format!(
                        "{section}.{key}: baseline {e} vs fresh {g} (relative diff {d:.3} > {tol})"
                    ));
                }
            }
            (e, g) if e == g => {}
            (e, g) => findings.push(format!("{section}.{key}: baseline {e:?} vs fresh {g:?}")),
        }
    }
}

fn compare_stages(baseline: &Json, fresh: &Json, tol: f64, report: &mut CompareReport) {
    let base_stages = baseline
        .get("stages")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let fresh_stages = fresh.get("stages").and_then(Json::as_array).unwrap_or(&[]);
    for stage in base_stages {
        let Some(name) = stage.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(other) = fresh_stages
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            // A stage that vanished is an instrumentation regression,
            // not a timing swing.
            report
                .quality_failures
                .push(format!("perf.stages.{name}: missing from fresh run"));
            continue;
        };
        for field in ["p50_ns", "p99_ns"] {
            let (Some(e), Some(g)) = (
                stage.get(field).and_then(Json::as_f64),
                other.get(field).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let d = rel_diff(e, g);
            if d > tol {
                report.perf_warnings.push(format!(
                    "perf.stages.{name}.{field}: baseline {e} vs fresh {g} \
                     (relative diff {d:.3} > {tol})"
                ));
            }
        }
    }
}

/// Diffs a fresh baseline document against the checked-in one. Returns
/// `Err` only for structural problems (unparseable document, schema
/// mismatch) — those are hard failures too.
pub fn compare(
    baseline: &Json,
    fresh: &Json,
    quality_tol: f64,
    perf_tol: f64,
) -> Result<CompareReport, String> {
    let version = |doc: &Json, which: &str| {
        doc.get("schema_version")
            .and_then(Json::as_u64)
            .ok_or(format!("{which} document has no schema_version"))
    };
    let (b, f) = (version(baseline, "baseline")?, version(fresh, "fresh")?);
    if b != f {
        return Err(format!("schema mismatch: baseline v{b} vs fresh v{f}"));
    }
    let section = |doc: &Json, name: &str, which: &str| {
        doc.get(name)
            .cloned()
            .ok_or(format!("{which} document has no {name:?} section"))
    };
    let mut report = CompareReport::default();
    compare_section(
        &section(baseline, "quality", "baseline")?,
        &section(fresh, "quality", "fresh")?,
        "quality",
        quality_tol,
        &mut report.quality_failures,
    );
    let base_perf = section(baseline, "perf", "baseline")?;
    let fresh_perf = section(fresh, "perf", "fresh")?;
    compare_section(
        &base_perf,
        &fresh_perf,
        "perf",
        perf_tol,
        &mut report.perf_warnings,
    );
    compare_stages(&base_perf, &fresh_perf, perf_tol, &mut report);
    Ok(report)
}

/// Whether two baseline documents carry bit-identical quality sections
/// (the CI determinism check: two runs of the pinned workload must
/// agree exactly).
pub fn quality_identical(a: &Json, b: &Json) -> bool {
    match (a.get("quality"), b.get("quality")) {
        (Some(qa), Some(qb)) => qa == qb,
        _ => false,
    }
}

/// Validates a `--profile-out` JSON document: parseable, schema-stamped,
/// and covering every pipeline stage. Returns the covered stage names.
pub fn verify_profile(text: &str) -> Result<Vec<String>, String> {
    let doc = Json::parse(text)?;
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("profile has no schema_version")?;
    if version != uniq_profile::PROFILE_SCHEMA_VERSION {
        return Err(format!("unsupported profile schema v{version}"));
    }
    let stages: Vec<String> = doc
        .get("stages")
        .and_then(Json::as_array)
        .ok_or("profile has no stages array")?
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str).map(String::from))
        .collect();
    for required in uniq_obs::names::PIPELINE_STAGES {
        if !stages.iter().any(|s| s == required) {
            return Err(format!("pipeline stage {required:?} missing from profile"));
        }
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small but fully-shaped baseline document for comparator tests —
    /// no workload run needed.
    fn doc(loc_median: f64, fingerprint: &str, p50: u64, secs: f64) -> Json {
        Json::parse(&format!(
            r#"{{
              "schema_version": {BASELINE_SCHEMA_VERSION},
              "meta": {{"seed": 6}},
              "quality": {{
                "localization_median_deg": {loc_median},
                "attempts": 1,
                "personalize_thread_invariant": true,
                "batch_fingerprint_t1": "{fingerprint}"
              }},
              "perf": {{
                "personalize_seconds_t1": {secs},
                "stages": [{{"name": "personalize", "count": 1, "p50_ns": {p50}, "p99_ns": {p50}}}]
              }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_compare_clean() {
        let a = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let r = compare(&a, &a, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r, CompareReport::default());
        assert!(r.passes(true));
        assert!(quality_identical(&a, &a));
    }

    #[test]
    fn quality_drift_is_a_hard_failure() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let fresh = doc(6.0, "0xdeadbeef", 1_000_000, 1.0);
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert_eq!(r.quality_failures.len(), 1, "{r:?}");
        assert!(r.quality_failures[0].contains("localization_median_deg"));
        assert!(!r.passes(false));
        assert!(!quality_identical(&base, &fresh));
    }

    #[test]
    fn doctored_fingerprint_fails_despite_tolerance() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let fresh = doc(4.8, "0xdeadbeee", 1_000_000, 1.0);
        let r = compare(&base, &fresh, 1.0, 1.0).unwrap();
        assert!(
            r.quality_failures.iter().any(|f| f.contains("fingerprint")),
            "{r:?}"
        );
    }

    #[test]
    fn perf_drift_warns_but_passes_unless_strict() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let fresh = doc(4.8, "0xdeadbeef", 4_000_000, 4.0);
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(r.quality_failures.is_empty(), "{r:?}");
        assert_eq!(r.perf_warnings.len(), 3, "{r:?}"); // seconds + stage p50/p99
        assert!(r.passes(false));
        assert!(!r.passes(true));
        // Perf drift never breaks quality identity.
        assert!(quality_identical(&base, &fresh));
    }

    #[test]
    fn missing_quality_key_and_stage_fail() {
        let base = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let mut fresh = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        // Drop a quality member and empty the stage list.
        if let Json::Obj(members) = &mut fresh {
            for (k, v) in members.iter_mut() {
                if k == "quality" {
                    if let Json::Obj(q) = v {
                        q.retain(|(key, _)| key != "attempts");
                    }
                }
                if k == "perf" {
                    if let Json::Obj(p) = v {
                        for (pk, pv) in p.iter_mut() {
                            if pk == "stages" {
                                *pv = Json::Arr(Vec::new());
                            }
                        }
                    }
                }
            }
        }
        let r = compare(&base, &fresh, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(
            r.quality_failures.iter().any(|f| f.contains("attempts")),
            "{r:?}"
        );
        assert!(
            r.quality_failures
                .iter()
                .any(|f| f.contains("stages.personalize")),
            "vanished stage not flagged: {r:?}"
        );
    }

    #[test]
    fn schema_mismatch_is_structural_error() {
        let a = doc(4.8, "0xdeadbeef", 1_000_000, 1.0);
        let b = Json::parse(r#"{"schema_version": 99, "quality": {}, "perf": {}}"#).unwrap();
        assert!(compare(&a, &b, 1.0, 1.0).is_err());
    }

    #[test]
    fn verify_profile_requires_stage_coverage() {
        let ok = format!(
            r#"{{"schema_version": 1, "stages": [{}]}}"#,
            uniq_obs::names::PIPELINE_STAGES
                .iter()
                .map(|s| format!(r#"{{"name": "{s}"}}"#))
                .collect::<Vec<_>>()
                .join(", ")
        );
        assert!(verify_profile(&ok).is_ok());

        let missing = r#"{"schema_version": 1, "stages": [{"name": "personalize"}]}"#;
        let err = verify_profile(missing).unwrap_err();
        assert!(err.contains("missing from profile"), "{err}");
        assert!(verify_profile("{}").is_err());
        assert!(verify_profile("not json").is_err());
    }

    #[test]
    fn quick_workload_emits_complete_and_deterministic_quality() {
        // The real thing, smallest possible: document parses, carries
        // every advertised section, and its quality half is bit-identical
        // across two runs in the same process.
        let spec = BaselineSpec::quick();
        let a = Json::parse(&run_baseline(&spec)).expect("baseline emits valid JSON");
        let b = Json::parse(&run_baseline(&spec)).unwrap();
        assert!(quality_identical(&a, &b), "quality not deterministic");

        let quality = a.get("quality").unwrap();
        for key in [
            "localization_median_deg",
            "aoa_known_median_deg",
            "hrir_similarity_mean",
            "personalize_fingerprint",
            "batch_fingerprint_t1",
        ] {
            assert!(quality.get(key).is_some(), "quality missing {key}");
        }
        assert_eq!(
            quality.get("personalize_thread_invariant").unwrap(),
            &Json::Bool(true)
        );
        // Stage profile covers the pipeline (subset check: quick() runs
        // the full personalize pipeline).
        let stages: Vec<&str> = a
            .get("perf")
            .unwrap()
            .get("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        for required in uniq_obs::names::PIPELINE_STAGES {
            assert!(stages.contains(required), "stage {required} missing");
        }
        // And compare() agrees the two runs match.
        let r = compare(&a, &b, DEFAULT_QUALITY_TOL, DEFAULT_PERF_TOL).unwrap();
        assert!(r.quality_failures.is_empty(), "{r:?}");
    }
}
