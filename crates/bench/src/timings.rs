//! Wall-clock timing of experiment targets, written as
//! `bench_results/timings.json` (no external dependency).
//!
//! Since schema version 2 the file is an object carrying run metadata
//! (seed base, thread count, build id) around the timing entries; the
//! original bare-array shape is still accepted by [`parse_timings`] so
//! existing checked-in results stay readable.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::time::Instant;
use uniq_profile::json::Json;

/// Schema stamp written into `timings.json` (bump on shape changes).
pub const TIMINGS_SCHEMA_VERSION: u64 = 2;

/// Run metadata attached to a timing log: everything needed to judge
/// whether two timing files are comparable.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingMeta {
    /// File schema version ([`TIMINGS_SCHEMA_VERSION`] when written by
    /// this build).
    pub schema_version: u64,
    /// Base seed of the run's synthetic subjects.
    pub seed: u64,
    /// Worker threads the run used.
    pub threads: usize,
    /// Build identifier (crate version + debug/release) — derived from
    /// the binary itself, no git invocation needed.
    pub build: String,
}

impl TimingMeta {
    /// Metadata describing the current process: crate version,
    /// release/debug flavor, and the process-default thread count.
    pub fn current(seed: u64) -> Self {
        TimingMeta {
            schema_version: TIMINGS_SCHEMA_VERSION,
            seed,
            threads: uniq_par::default_threads(),
            build: crate::build_id(),
        }
    }
}

/// Collects `(target, seconds)` entries and writes them as JSON.
#[derive(Debug, Default)]
pub struct TimingLog {
    entries: Vec<(String, f64)>,
    meta: Option<TimingMeta>,
}

impl TimingLog {
    /// An empty log.
    pub fn new() -> Self {
        TimingLog::default()
    }

    /// Attaches run metadata; the log then serializes as a schema-2
    /// object instead of the legacy bare array.
    pub fn set_meta(&mut self, meta: TimingMeta) {
        self.meta = Some(meta);
    }

    /// Runs `f`, recording its wall time under `name`. Returns `f`'s
    /// result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.entries
            .push((name.to_string(), start.elapsed().as_secs_f64()));
        out
    }

    /// The recorded entries, in run order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    fn entries_json(&self, indent: &str) -> String {
        let mut out = String::from("[\n");
        for (i, (name, secs)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "{indent}  {{\"target\": \"{}\", \"seconds\": {}}}{}\n",
                uniq_obs::sink::json_escape(name),
                uniq_obs::sink::json_number(*secs),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push_str(indent);
        out.push(']');
        out
    }

    /// Renders the log: a schema-2 object when metadata is attached
    /// (see [`TimingLog::set_meta`]), the legacy bare array otherwise.
    pub fn to_json(&self) -> String {
        match &self.meta {
            None => self.entries_json(""),
            Some(meta) => format!(
                "{{\n  \"schema_version\": {},\n  \"seed\": {},\n  \"threads\": {},\n  \
                 \"build\": \"{}\",\n  \"timings\": {}\n}}",
                meta.schema_version,
                meta.seed,
                meta.threads,
                uniq_obs::sink::json_escape(&meta.build),
                self.entries_json("  "),
            ),
        }
    }

    /// Writes `bench_results/timings.json`, creating the directory if
    /// needed.
    ///
    /// # Panics
    /// Panics on I/O errors (experiments are developer tooling).
    pub fn write(&self) {
        let dir = Path::new(crate::RESULTS_DIR);
        fs::create_dir_all(dir).expect("create bench_results dir");
        let path = dir.join("timings.json");
        let mut file = fs::File::create(&path).expect("create timings.json");
        writeln!(file, "{}", self.to_json()).expect("write timings.json");
        println!("  → wrote {}", path.display());
    }
}

/// Parsed `timings.json`: run metadata (absent for the legacy bare-array
/// shape) plus the `(target, seconds)` entries in file order.
pub type ParsedTimings = (Option<TimingMeta>, Vec<(String, f64)>);

/// Reads a `timings.json` document in either shape: the legacy bare
/// array (`[{"target", "seconds"}, …]` → no metadata) or the schema-2
/// object. Returns `(metadata, entries)`.
pub fn parse_timings(text: &str) -> Result<ParsedTimings, String> {
    let doc = Json::parse(text)?;
    let (meta, entries) = match &doc {
        Json::Arr(_) => (None, &doc),
        Json::Obj(_) => {
            let field = |name: &str| {
                doc.get(name)
                    .ok_or_else(|| format!("timings object missing {name:?}"))
            };
            let meta = TimingMeta {
                schema_version: field("schema_version")?
                    .as_u64()
                    .ok_or("schema_version is not an integer")?,
                seed: field("seed")?.as_u64().ok_or("seed is not an integer")?,
                threads: field("threads")?
                    .as_u64()
                    .ok_or("threads is not an integer")? as usize,
                build: field("build")?
                    .as_str()
                    .ok_or("build is not a string")?
                    .to_string(),
            };
            (Some(meta), field("timings")?)
        }
        _ => return Err("timings.json is neither an array nor an object".into()),
    };
    let items = entries.as_array().ok_or("timings is not an array")?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let target = item
            .get("target")
            .and_then(Json::as_str)
            .ok_or("timing entry missing target")?;
        let seconds = item
            .get("seconds")
            .and_then(Json::as_f64)
            .ok_or("timing entry missing seconds")?;
        out.push((target.to_string(), seconds));
    }
    Ok((meta, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes() {
        let mut log = TimingLog::new();
        let v = log.time("fig2", || 41 + 1);
        assert_eq!(v, 42);
        log.time("ablations", || ());
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].0, "fig2");
        assert!(log.entries()[0].1 >= 0.0);

        let json = log.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"target\": \"fig2\""));
        assert!(json.contains("\"target\": \"ablations\""));
        // One comma: two entries.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn empty_log_is_valid_json_array() {
        assert_eq!(TimingLog::new().to_json(), "[\n]");
    }

    #[test]
    fn meta_switches_to_object_shape_and_round_trips() {
        let mut log = TimingLog::new();
        log.time("fig2", || ());
        log.set_meta(TimingMeta::current(5000));
        let json = log.to_json();
        assert!(json.starts_with('{'), "not an object: {json}");

        let (meta, entries) = parse_timings(&json).unwrap();
        let meta = meta.expect("metadata lost");
        assert_eq!(meta.schema_version, TIMINGS_SCHEMA_VERSION);
        assert_eq!(meta.seed, 5000);
        assert_eq!(meta.threads, uniq_par::default_threads());
        assert_eq!(meta.build, crate::build_id());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, "fig2");
    }

    #[test]
    fn legacy_array_shape_still_parses() {
        let legacy = r#"[
  {"target": "fig2", "seconds": 1.25},
  {"target": "ablations", "seconds": 0.5}
]"#;
        let (meta, entries) = parse_timings(legacy).unwrap();
        assert!(meta.is_none());
        assert_eq!(
            entries,
            vec![("fig2".to_string(), 1.25), ("ablations".to_string(), 0.5)]
        );
    }

    #[test]
    fn malformed_timings_rejected() {
        assert!(parse_timings("42").is_err());
        assert!(parse_timings("{\"schema_version\": 2}").is_err());
        assert!(parse_timings("[{\"target\": \"x\"}]").is_err());
    }
}
