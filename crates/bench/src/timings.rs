//! Wall-clock timing of experiment targets, written as
//! `bench_results/timings.json` (no external dependency).

use std::fs;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// Collects `(target, seconds)` entries and writes them as a JSON array.
#[derive(Debug, Default)]
pub struct TimingLog {
    entries: Vec<(String, f64)>,
}

impl TimingLog {
    /// An empty log.
    pub fn new() -> Self {
        TimingLog::default()
    }

    /// Runs `f`, recording its wall time under `name`. Returns `f`'s
    /// result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.entries
            .push((name.to_string(), start.elapsed().as_secs_f64()));
        out
    }

    /// The recorded entries, in run order.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// Renders the log as a JSON array of `{"target", "seconds"}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, (name, secs)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"target\": \"{}\", \"seconds\": {}}}{}\n",
                uniq_obs::sink::json_escape(name),
                uniq_obs::sink::json_number(*secs),
                if i + 1 < self.entries.len() { "," } else { "" }
            ));
        }
        out.push(']');
        out
    }

    /// Writes `bench_results/timings.json`, creating the directory if
    /// needed.
    ///
    /// # Panics
    /// Panics on I/O errors (experiments are developer tooling).
    pub fn write(&self) {
        let dir = Path::new(crate::RESULTS_DIR);
        fs::create_dir_all(dir).expect("create bench_results dir");
        let path = dir.join("timings.json");
        let mut file = fs::File::create(&path).expect("create timings.json");
        writeln!(file, "{}", self.to_json()).expect("write timings.json");
        println!("  → wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes() {
        let mut log = TimingLog::new();
        let v = log.time("fig2", || 41 + 1);
        assert_eq!(v, 42);
        log.time("ablations", || ());
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.entries()[0].0, "fig2");
        assert!(log.entries()[0].1 >= 0.0);

        let json = log.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"target\": \"fig2\""));
        assert!(json.contains("\"target\": \"ablations\""));
        // One comma: two entries.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn empty_log_is_valid_json_array() {
        assert_eq!(TimingLog::new().to_json(), "[\n]");
    }
}
