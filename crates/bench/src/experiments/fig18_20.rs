//! Figs 18–20 — personalized HRTF quality against ground truth.
//!
//! * Fig 18: per-angle correlation of UNIQ's far-field HRIR, the global
//!   template, and a second ground-truth measurement (upper bound), for
//!   both ears (paper: UNIQ ≈ 0.74/0.71, global ≈ 0.41).
//! * Fig 19: the same aggregated per volunteer.
//! * Fig 20: raw best / average / worst case HRIR waveforms.

use crate::csv::write_csv;
use uniq_acoustics::types::HrirBank;
use uniq_dsp::stats::mean;
use uniq_subjects::global_template;

/// Per-(volunteer, angle) similarity record.
#[derive(Debug, Clone, Copy)]
pub struct SimRecord {
    /// Volunteer index (0-based).
    pub volunteer: usize,
    /// Angle, degrees.
    pub angle: f64,
    /// UNIQ similarity, left/right ear.
    pub uniq: (f64, f64),
    /// Global-template similarity, left/right ear.
    pub global: (f64, f64),
    /// Ground-truth remeasurement similarity, left/right ear.
    pub remeasure: (f64, f64),
}

/// Summary statistics returned for assertions.
#[derive(Debug)]
pub struct Summary {
    /// Mean UNIQ similarity (left, right).
    pub uniq: (f64, f64),
    /// Mean global similarity (left, right).
    pub global: (f64, f64),
    /// Mean remeasurement similarity (left, right).
    pub remeasure: (f64, f64),
    /// All raw records.
    pub records: Vec<SimRecord>,
}

/// A second, noisy "measurement" of the ground truth: the paper measures
/// the chamber rig twice to get the correlation upper bound. We re-render
/// and add measurement noise at the chamber's SNR.
fn remeasure(bank: &HrirBank, seed: u64) -> HrirBank {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let pairs = bank
        .angles()
        .iter()
        .zip(bank.irs())
        .map(|(&a, ir)| {
            let peak = ir
                .left
                .iter()
                .chain(&ir.right)
                .fold(0.0_f64, |m, &v| m.max(v.abs()));
            let amp = peak * 0.03; // ≈ 30 dB chamber SNR
            let noisy = |v: &[f64], rng: &mut StdRng| -> Vec<f64> {
                v.iter().map(|x| x + rng.gen_range(-amp..amp)).collect()
            };
            let l = noisy(&ir.left, &mut rng);
            let r = noisy(&ir.right, &mut rng);
            (a, uniq_acoustics::types::BinauralIr::new(l, r))
        })
        .collect();
    HrirBank::new(pairs, bank.sample_rate())
}

/// Runs Figs 18–20 and returns the summary.
pub fn run() -> Summary {
    println!("\n== Figs 18–20: personalized HRIR vs ground truth ==");
    let cohort = super::cohort();
    let cfg = crate::cohort::eval_config();

    // Evaluate on a 10° grid (the paper's measurement resolution).
    let angles: Vec<f64> = (0..=18).map(|k| k as f64 * 10.0).collect();
    let global = global_template(cfg.render, &angles);

    let mut records = Vec::new();
    for (v, run) in cohort.iter().enumerate() {
        let truth = run.subject.ground_truth(cfg.render, &angles);
        let truth2 = remeasure(&truth, 8000 + v as u64);
        for (k, &angle) in angles.iter().enumerate() {
            let est = run.result.hrtf.far().nearest(angle).0;
            let gt = &truth.irs()[k];
            records.push(SimRecord {
                volunteer: v,
                angle,
                uniq: est.similarity(gt),
                global: global.irs()[k].similarity(gt),
                remeasure: truth2.irs()[k].similarity(gt),
            });
        }
    }

    // ---- Fig 18: per-angle means across volunteers.
    let mut fig18_rows = Vec::new();
    println!("  angle   UNIQ(L)  global(L)  remeasure(L) |  UNIQ(R)  global(R)");
    for &angle in &angles {
        let at: Vec<&SimRecord> = records.iter().filter(|r| r.angle == angle).collect();
        let m =
            |f: &dyn Fn(&SimRecord) -> f64| at.iter().map(|r| f(r)).sum::<f64>() / at.len() as f64;
        let row = [
            angle,
            m(&|r| r.uniq.0),
            m(&|r| r.global.0),
            m(&|r| r.remeasure.0),
            m(&|r| r.uniq.1),
            m(&|r| r.global.1),
            m(&|r| r.remeasure.1),
        ];
        if (angle as usize).is_multiple_of(30) {
            println!(
                "  {:>5.0}   {:>6.3}   {:>7.3}   {:>10.3} |  {:>6.3}   {:>7.3}",
                row[0], row[1], row[2], row[3], row[4], row[5]
            );
        }
        fig18_rows.push(row.to_vec());
    }
    write_csv(
        "fig18_hrir_correlation_by_angle",
        &[
            "angle_deg",
            "uniq_left",
            "global_left",
            "remeasure_left",
            "uniq_right",
            "global_right",
            "remeasure_right",
        ],
        &fig18_rows,
    );

    // ---- Fig 19: per-volunteer means.
    let mut fig19_rows = Vec::new();
    println!("\n  volunteer   UNIQ(L)  global(L) |  UNIQ(R)  global(R)");
    for v in 0..cohort.len() {
        let of: Vec<&SimRecord> = records.iter().filter(|r| r.volunteer == v).collect();
        let m =
            |f: &dyn Fn(&SimRecord) -> f64| of.iter().map(|r| f(r)).sum::<f64>() / of.len() as f64;
        let row = [
            v as f64 + 1.0,
            m(&|r| r.uniq.0),
            m(&|r| r.global.0),
            m(&|r| r.uniq.1),
            m(&|r| r.global.1),
        ];
        println!(
            "  {:>9.0}   {:>6.3}   {:>7.3} |  {:>6.3}   {:>7.3}",
            row[0], row[1], row[2], row[3], row[4]
        );
        fig19_rows.push(row.to_vec());
    }
    write_csv(
        "fig19_per_volunteer",
        &[
            "volunteer",
            "uniq_left",
            "global_left",
            "uniq_right",
            "global_right",
        ],
        &fig19_rows,
    );

    // ---- Fig 20: best / average / worst raw HRIRs by UNIQ left-ear sim.
    let mut by_sim: Vec<&SimRecord> = records.iter().collect();
    by_sim.sort_by(|a, b| a.uniq.0.partial_cmp(&b.uniq.0).unwrap());
    let picks = [
        ("worst", by_sim[0]),
        ("average", by_sim[by_sim.len() / 2]),
        ("best", by_sim[by_sim.len() - 1]),
    ];
    for (label, rec) in picks {
        let run = &cohort[rec.volunteer];
        let truth = run.subject.ground_truth(cfg.render, &[rec.angle]);
        let est = run.result.hrtf.far().nearest(rec.angle).0;
        let glob = global.nearest(rec.angle).0;
        println!(
            "  fig20 {label}: volunteer {} at {:.0}° (corr {:.2})",
            rec.volunteer + 1,
            rec.angle,
            rec.uniq.0
        );
        let window = 160;
        let rows: Vec<Vec<f64>> = (0..window)
            .map(|k| vec![k as f64, est.left[k], truth.irs()[0].left[k], glob.left[k]])
            .collect();
        write_csv(
            &format!("fig20_hrir_{label}"),
            &["sample", "uniq", "groundtruth", "global"],
            &rows,
        );
    }

    let overall =
        |f: &dyn Fn(&SimRecord) -> f64| mean(&records.iter().map(f).collect::<Vec<f64>>());
    let summary = Summary {
        uniq: (overall(&|r| r.uniq.0), overall(&|r| r.uniq.1)),
        global: (overall(&|r| r.global.0), overall(&|r| r.global.1)),
        remeasure: (overall(&|r| r.remeasure.0), overall(&|r| r.remeasure.1)),
        records,
    };
    println!(
        "\n  overall: UNIQ {:.3}/{:.3}  global {:.3}/{:.3}  remeasure {:.3}/{:.3}",
        summary.uniq.0,
        summary.uniq.1,
        summary.global.0,
        summary.global.1,
        summary.remeasure.0,
        summary.remeasure.1
    );
    println!(
        "  personalization gain: {:.2}x (L), {:.2}x (R)  (paper: ~1.75x)",
        summary.uniq.0 / summary.global.0,
        summary.uniq.1 / summary.global.1
    );
    summary
}
