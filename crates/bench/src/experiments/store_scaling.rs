//! Store scale: put/get/scan throughput of the content-addressed
//! artifact store at 100k entries.
//!
//! Each entry is a tiny synthetic `.uhrtf` artifact (2 angles × 4 taps,
//! unique per index), so the measurement isolates the store's own cost —
//! hashing, blob I/O, index append — rather than HRTF synthesis. Writes
//! `bench_results/store_scaling.{json,csv}` and appends a
//! `"store-scaling"` ledger record whose `store` section summarizes the
//! run.

use crate::csv::write_csv;
use std::path::Path;
use std::time::Instant;
use uniq_store::{Grid, HrtfArtifact, Store};

/// Entries written by the headline run.
pub const ENTRIES: usize = 100_000;

/// Entries re-put (dedup) and fetched back in the secondary phases.
pub const SAMPLE: usize = 10_000;

/// Config-hash stamp for synthetic scaling artifacts (not a real config).
const SYNTHETIC_CONFIG_HASH: u64 = 0x5354_4f52_4553_434c; // "STORESCL"

/// One measured operation.
#[derive(Debug, Clone)]
pub struct StorePoint {
    /// Operation name (`put`, `dedup_put`, `get`, `scan`).
    pub op: &'static str,
    /// Operations performed.
    pub ops: usize,
    /// Wall-clock seconds for the whole phase.
    pub seconds: f64,
    /// Throughput, operations per second.
    pub ops_per_second: f64,
}

/// The full scaling report, returned for assertions in tests.
#[derive(Debug, Clone)]
pub struct StoreScalingReport {
    /// Distinct artifacts written.
    pub entries: usize,
    /// Total blob bytes written.
    pub total_bytes: u64,
    /// Dedup hits counted by the store.
    pub dedup_hits: u64,
    /// Per-operation throughput.
    pub points: Vec<StorePoint>,
    /// The store's order-independent fingerprint after the run.
    pub fingerprint: u64,
}

/// A tiny artifact whose every sample is a pure function of `i`, so all
/// `ENTRIES` artifacts are distinct, deterministic, and cheap.
pub fn synthetic_artifact(i: u64) -> HrtfArtifact {
    let sample = |j: u64| {
        // Cheap integer mix → a fraction in [0, 1); pure and distinct
        // per (i, j) without any RNG state.
        let mixed = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(j << 7) >> 11;
        (mixed & 0xFFFF) as f64 / 65536.0
    };
    let grid = |base: u64| Grid {
        angles_deg: vec![0.0, 90.0],
        ir_len: 4,
        irs: (0..2)
            .map(|a| {
                let left = (0..4).map(|j| sample(base + a * 8 + j)).collect();
                let right = (0..4).map(|j| sample(base + a * 8 + j + 4)).collect();
                (left, right)
            })
            .collect(),
    };
    let mut artifact = HrtfArtifact {
        seed: i,
        subject_fingerprint: 0,
        config_hash: SYNTHETIC_CONFIG_HASH,
        sample_rate: 48_000.0,
        head: [0.07 + sample(1) * 0.02, 0.09, 0.08],
        radius_m: 0.3 + sample(2) * 0.2,
        attempts: 1,
        localization: vec![(30.0, 30.0 + sample(3)), (120.0, 120.0 - sample(4))],
        near: grid(100),
        far: grid(200),
        degradation_json: None,
    };
    artifact.subject_fingerprint = artifact.fingerprint();
    artifact
}

/// Runs the scale measurement with `entries` artifacts in a scratch
/// store at `root` (removed afterwards).
pub fn run_at(root: &Path, entries: usize, sample: usize) -> StoreScalingReport {
    let _ = std::fs::remove_dir_all(root);
    let store = Store::open(root).expect("open scratch store");

    let start = Instant::now();
    let mut keys = Vec::with_capacity(entries);
    let mut total_bytes = 0u64;
    for i in 0..entries {
        let outcome = store
            .put(&synthetic_artifact(i as u64))
            .expect("put synthetic artifact");
        assert!(!outcome.deduped, "synthetic artifacts must be distinct");
        total_bytes += outcome.bytes;
        keys.push(outcome.key);
    }
    let put_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for i in 0..sample.min(entries) {
        let outcome = store
            .put(&synthetic_artifact(i as u64))
            .expect("re-put synthetic artifact");
        assert!(outcome.deduped, "re-put of identical content must dedup");
    }
    let dedup_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let stride = (entries / sample.min(entries)).max(1);
    let mut gets = 0usize;
    for key in keys.iter().step_by(stride) {
        let artifact = store.get(key).expect("get stored artifact");
        assert_eq!(artifact.fingerprint(), artifact.subject_fingerprint);
        gets += 1;
    }
    let get_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let scans = 10usize;
    for _ in 0..scans {
        assert_eq!(store.scan().len(), entries);
    }
    let scan_seconds = start.elapsed().as_secs_f64();

    let point = |op: &'static str, ops: usize, seconds: f64| StorePoint {
        op,
        ops,
        seconds,
        ops_per_second: ops as f64 / seconds.max(1e-12),
    };
    let report = StoreScalingReport {
        entries: store.len(),
        total_bytes,
        dedup_hits: store.dedup_hits(),
        points: vec![
            point("put", entries, put_seconds),
            point("dedup_put", sample.min(entries), dedup_seconds),
            point("get", gets, get_seconds),
            point("scan", scans, scan_seconds),
        ],
        fingerprint: store.fingerprint(),
    };
    drop(store);
    let _ = std::fs::remove_dir_all(root);
    report
}

/// The headline experiment: 100k entries in a temp-dir store, results
/// into `bench_results/store_scaling.{json,csv}` plus a ledger record.
pub fn run() -> StoreScalingReport {
    println!("\n== Store scaling: content-addressed put/get/scan throughput ==");
    let root = std::env::temp_dir().join(format!("uniq_store_scaling_{}", std::process::id()));
    let report = run_at(&root, ENTRIES, SAMPLE);

    for p in &report.points {
        println!(
            "  {:<10} {:>7} ops  {:>8.3}s  {:>12.0} ops/s",
            p.op, p.ops, p.seconds, p.ops_per_second,
        );
    }
    println!(
        "  {} entries, {:.1} MiB of blobs, {} dedup hits, store fingerprint {:#018x}",
        report.entries,
        report.total_bytes as f64 / (1024.0 * 1024.0),
        report.dedup_hits,
        report.fingerprint,
    );

    let json = {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"entries\": {},\n", report.entries));
        out.push_str(&format!("  \"total_bytes\": {},\n", report.total_bytes));
        out.push_str(&format!("  \"dedup_hits\": {},\n", report.dedup_hits));
        out.push_str(&format!(
            "  \"store_fingerprint\": \"{:#018x}\",\n",
            report.fingerprint
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in report.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{}\", \"ops\": {}, \"seconds\": {:.6}, \"ops_per_second\": {:.3}}}{}\n",
                p.op,
                p.ops,
                p.seconds,
                p.ops_per_second,
                if i + 1 < report.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    };
    std::fs::create_dir_all(crate::RESULTS_DIR).expect("create bench_results");
    let json_path = Path::new(crate::RESULTS_DIR).join("store_scaling.json");
    std::fs::write(&json_path, json).expect("write store_scaling.json");
    println!("  → wrote {}", json_path.display());

    let rows: Vec<Vec<f64>> = report
        .points
        .iter()
        .enumerate()
        .map(|(i, p)| vec![i as f64, p.ops as f64, p.seconds, p.ops_per_second])
        .collect();
    write_csv(
        "store_scaling",
        &["op_index", "ops", "seconds", "ops_per_second"],
        &rows,
    );

    let mut record = uniq_telemetry::ledger::LedgerRecord::new("store-scaling");
    record.wall_seconds = report.points.iter().map(|p| p.seconds).sum();
    record.fingerprint = format!("{:#018x}", report.fingerprint);
    for p in &report.points {
        record
            .quality
            .insert(format!("{}_ops_per_second", p.op), p.ops_per_second);
    }
    record.store = Some(format!(
        "{} entries, {} bytes, {} dedup hits",
        report.entries, report.total_bytes, report.dedup_hits
    ));
    let history = Path::new(crate::RESULTS_DIR).join("history.jsonl");
    uniq_telemetry::ledger::append(&history, &record).expect("append store-scaling ledger record");
    println!("  → ledger record appended to {}", history.display());

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_artifacts_are_distinct_and_valid() {
        let a = synthetic_artifact(0);
        let b = synthetic_artifact(1);
        assert_ne!(a, b);
        let bytes_a = uniq_store::encode(&a).unwrap();
        let bytes_b = uniq_store::encode(&b).unwrap();
        assert_ne!(
            uniq_store::content_key(&bytes_a),
            uniq_store::content_key(&bytes_b)
        );
        assert_eq!(uniq_store::decode(&bytes_a).unwrap(), a);
    }

    #[test]
    fn scaled_down_run_measures_all_phases() {
        let root =
            std::env::temp_dir().join(format!("uniq_store_scaling_test_{}", std::process::id()));
        let report = run_at(&root, 200, 50);
        assert_eq!(report.entries, 200);
        assert_eq!(report.dedup_hits, 50);
        assert_eq!(report.points.len(), 4);
        assert!(report.points.iter().all(|p| p.ops > 0));
        assert!(!root.exists(), "scratch store must be cleaned up");
    }
}
