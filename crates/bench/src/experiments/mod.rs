//! One module per paper figure, plus the ablations.
//!
//! Every `run_*` function is self-contained: it synthesizes its workload,
//! prints the paper-shaped result table, and writes CSV artifacts.

pub mod ablations;
pub mod alloc_profile;
pub mod batch_scaling;
pub mod extensions;
pub mod fig16;
pub mod fig17;
pub mod fig18_20;
pub mod fig2;
pub mod fig21;
pub mod fig22;
pub mod fig5;
pub mod fig9;
pub mod robustness;
pub mod serve_scaling;
pub mod store_scaling;

use crate::cohort::{eval_config, run_cohort, VolunteerRun};
use std::sync::OnceLock;

/// Cohort cache shared by Figs 17–22 (personalization is the expensive
/// step; run it once).
pub fn cohort() -> &'static [VolunteerRun] {
    static COHORT: OnceLock<Vec<VolunteerRun>> = OnceLock::new();
    COHORT.get_or_init(|| {
        println!("(personalizing the 5-volunteer cohort — cached for all figures)");
        run_cohort(&eval_config())
    })
}
