//! Fig 17 — phone localization accuracy: estimated vs ground-truth polar
//! angle and the error CDF (paper: median 4.8°, rare tails to ~15–20°).

use crate::csv::write_csv;
use uniq_dsp::stats::{max, median, Ecdf};
use uniq_geometry::vec2::angle_diff_deg;

/// Runs the experiment; returns all angular errors (degrees).
pub fn run() -> Vec<f64> {
    println!("\n== Fig 17: phone localization accuracy ==");
    let cohort = super::cohort();

    let mut scatter_rows = Vec::new();
    let mut errors = Vec::new();
    for (v, run) in cohort.iter().enumerate() {
        for (truth, est) in &run.result.localization {
            scatter_rows.push(vec![v as f64 + 1.0, *truth, *est]);
            errors.push(angle_diff_deg(*truth, *est));
        }
    }
    write_csv(
        "fig17a_localization_scatter",
        &["volunteer", "truth_deg", "estimated_deg"],
        &scatter_rows,
    );

    let ecdf = Ecdf::new(&errors);
    let cdf_rows: Vec<Vec<f64>> = ecdf.curve().iter().map(|(x, p)| vec![*x, *p]).collect();
    write_csv("fig17b_localization_cdf", &["error_deg", "cdf"], &cdf_rows);

    println!(
        "  {} measurements: median {:.1}°, 90th pct {:.1}°, max {:.1}° (paper: median 4.8°)",
        errors.len(),
        median(&errors),
        uniq_dsp::stats::percentile(&errors, 90.0),
        max(&errors)
    );
    errors
}
