//! Fig 2 — groundwork: pinna responses are angle-sensitive (a) and
//! subject-specific (b).
//!
//! 18 source angles in 10° steps; the left-ear far-field HRIR plays the
//! role of the paper's in-ear chirp recordings (speaker on the left side,
//! so head shadow does not interfere). Matrix (a) correlates one subject
//! against itself across angles; matrix (b) correlates subject 1 against
//! subject 2.

use crate::csv::write_csv;
use uniq_dsp::xcorr::peak_normalized_xcorr;
use uniq_subjects::Subject;

/// Runs the experiment and returns `(same_user_matrix, cross_user_matrix)`
/// for the assertions in tests; each matrix is 18×18 over 0°..=170°.
pub fn run() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    println!("\n== Fig 2: pinna angle sensitivity and cross-user mismatch ==");
    let cfg = crate::cohort::eval_config();
    let angles: Vec<f64> = (0..18).map(|k| k as f64 * 10.0).collect();

    let alice = Subject::from_seed(1000).ground_truth(cfg.render, &angles);
    let bob = Subject::from_seed(1001).ground_truth(cfg.render, &angles);

    let matrix = |a: &uniq_acoustics::types::HrirBank, b: &uniq_acoustics::types::HrirBank| {
        a.irs()
            .iter()
            .map(|ia| {
                b.irs()
                    .iter()
                    .map(|ib| peak_normalized_xcorr(&ia.left, &ib.left))
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<Vec<f64>>>()
    };

    let same = matrix(&alice, &alice);
    let cross = matrix(&alice, &bob);

    let diag_mean = |m: &[Vec<f64>]| (0..m.len()).map(|k| m[k][k]).sum::<f64>() / m.len() as f64;
    let off_mean = |m: &[Vec<f64>]| {
        let mut sum = 0.0;
        let mut n = 0;
        for (i, row) in m.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                if i != j {
                    sum += v;
                    n += 1;
                }
            }
        }
        sum / n as f64
    };

    println!(
        "  same user:  diagonal mean {:.3}, off-diagonal mean {:.3} (strongly diagonal)",
        diag_mean(&same),
        off_mean(&same)
    );
    println!(
        "  cross user: diagonal mean {:.3}, off-diagonal mean {:.3} (no diagonal structure)",
        diag_mean(&cross),
        off_mean(&cross)
    );

    let dump = |name: &str, m: &[Vec<f64>]| {
        let rows: Vec<Vec<f64>> = m
            .iter()
            .enumerate()
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .map(move |(j, v)| vec![i as f64 * 10.0, j as f64 * 10.0, *v])
                    .collect::<Vec<_>>()
            })
            .collect();
        write_csv(name, &["angle1_deg", "angle2_deg", "correlation"], &rows);
    };
    dump("fig2a_same_user", &same);
    dump("fig2b_cross_user", &cross);
    (same, cross)
}
