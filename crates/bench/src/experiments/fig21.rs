//! Fig 21 — far-field AoA with a known source: personalized vs global
//! HRTF (paper: medians 7.8° vs 45.3°; global suffers front-back
//! confusion in 29% of trials).

use crate::csv::write_csv;
use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
use uniq_core::aoa::{estimate_known_source, is_front};
use uniq_dsp::stats::{median, Ecdf};
use uniq_geometry::vec2::angle_diff_deg;

/// Result summary for assertions.
#[derive(Debug)]
pub struct Fig21Summary {
    /// Personalized-template errors, degrees.
    pub personal_errors: Vec<f64>,
    /// Global-template errors, degrees.
    pub global_errors: Vec<f64>,
    /// Fraction of global trials with a front-back flip.
    pub global_front_back_confusion: f64,
}

/// Runs the experiment.
pub fn run() -> Fig21Summary {
    println!("\n== Fig 21: known-source AoA, personalized vs global HRTF ==");
    let cohort = super::cohort();
    let cfg = crate::cohort::eval_config();
    let global = uniq_subjects::global_template(cfg.render, &cfg.output_grid());
    let setup = MeasurementSetup::anechoic(cfg.render.sample_rate, 35.0);
    let probe = cfg.probe();

    let mut personal_errors = Vec::new();
    let mut global_errors = Vec::new();
    let mut global_fb_flips = 0usize;
    let mut trials = 0usize;
    for (v, run) in cohort.iter().enumerate() {
        let renderer = run
            .subject
            .renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
        for k in 0..12 {
            let truth = 7.5 + k as f64 * 15.0; // 7.5°..172.5°
            let rec = record_plane_wave(
                &renderer,
                &setup,
                truth,
                &probe,
                9000 + (v * 100 + k) as u64,
            );
            let p = estimate_known_source(&rec, &probe, run.result.hrtf.far(), &cfg);
            let g = estimate_known_source(&rec, &probe, &global, &cfg);
            personal_errors.push(angle_diff_deg(p, truth));
            global_errors.push(angle_diff_deg(g, truth));
            if is_front(g) != is_front(truth) {
                global_fb_flips += 1;
            }
            trials += 1;
        }
    }

    let dump = |name: &str, errs: &[f64]| {
        let rows: Vec<Vec<f64>> = Ecdf::new(errs)
            .curve()
            .iter()
            .map(|(x, p)| vec![*x, *p])
            .collect();
        write_csv(name, &["error_deg", "cdf"], &rows);
    };
    dump("fig21_aoa_cdf_personal", &personal_errors);
    dump("fig21_aoa_cdf_global", &global_errors);

    let confusion = global_fb_flips as f64 / trials as f64;
    println!(
        "  personalized: median {:.1}°, max {:.1}°   (paper: 7.8°, max 60°)",
        median(&personal_errors),
        uniq_dsp::stats::max(&personal_errors)
    );
    println!(
        "  global:       median {:.1}°, max {:.1}°   (paper: 45.3°, max >150°)",
        median(&global_errors),
        uniq_dsp::stats::max(&global_errors)
    );
    println!(
        "  global front-back confusion: {:.0}% (paper: 29%)",
        confusion * 100.0
    );

    Fig21Summary {
        personal_errors,
        global_errors,
        global_front_back_confusion: confusion,
    }
}
