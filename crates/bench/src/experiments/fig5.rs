//! Fig 5 — groundwork: signals diffract along the face; the TDoA-derived
//! path difference matches the diffracted geodesic, not the Euclidean
//! line.
//!
//! A speaker on the user's right plays a chirp; a reference microphone
//! sits at the right ear and a test microphone is moved across six
//! positions on the left half of the face. Both microphone signals are
//! synthesized sample-accurately from the wrap-path model; the TDoA is
//! then *measured* from the signals by deconvolution + first-tap picking,
//! exactly as the hardware experiment would.

use crate::csv::write_csv;
use uniq_dsp::conv::convolve;
use uniq_dsp::deconv::wiener_deconvolve;
use uniq_dsp::delay::add_fractional_impulse;
use uniq_dsp::peaks::first_tap;
use uniq_geometry::diffraction::path_to_vertex;
use uniq_geometry::{HeadBoundary, HeadParams, Vec2};

/// Row of the Fig 5 table.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Horizontal mic position along the face, cm from the nose tip.
    pub mic_x_cm: f64,
    /// Acoustically measured Δt·v, cm.
    pub measured_cm: f64,
    /// Geodesic (diffracted) prediction, cm.
    pub diffracted_cm: f64,
    /// Straight-line (Euclidean) prediction, cm.
    pub euclidean_cm: f64,
}

/// Runs the experiment and returns the table rows.
pub fn run() -> Vec<Fig5Row> {
    println!("\n== Fig 5: diffraction on the curvature of the face ==");
    let cfg = crate::cohort::eval_config();
    let sr = cfg.render.sample_rate;
    let c = cfg.render.speed_of_sound;
    let head = HeadParams::average_adult();
    let boundary = HeadBoundary::new(head, 4096);
    let n = boundary.len();

    // Speaker on the right of the head; reference mic = right ear.
    let speaker = Vec2::new(0.5, 0.05);
    let ref_idx = boundary.ear_index(uniq_geometry::Ear::Right);
    let ref_path = path_to_vertex(&boundary, speaker, ref_idx).unwrap();

    // Test mic positions: nose tip (n/4, the +y apex) toward the left ear
    // (n/2), six evenly spaced stops.
    let nose = n / 4;
    let left_ear = n / 2;
    let probe = cfg.probe();
    let mut rows = Vec::new();
    for k in 0..6 {
        let idx = nose + k * (left_ear - nose) / 6;
        let test_path = path_to_vertex(&boundary, speaker, idx).unwrap();
        let mic = boundary.vertices()[idx];

        // Synthesize both microphone signals and measure the TDoA the way
        // the paper does (wired-synchronized mics).
        let mut ir_ref = vec![0.0; 1024];
        let mut ir_test = vec![0.0; 1024];
        add_fractional_impulse(
            &mut ir_ref,
            cfg.render.metres_to_samples(ref_path.length),
            1.0,
        );
        add_fractional_impulse(
            &mut ir_test,
            cfg.render.metres_to_samples(test_path.length),
            0.8,
        );
        let rec_ref = convolve(&probe, &ir_ref);
        let rec_test = convolve(&probe, &ir_test);
        let ch_ref = wiener_deconvolve(&rec_ref, &probe, 1e-6, 1024);
        let ch_test = wiener_deconvolve(&rec_test, &probe, 1e-6, 1024);
        let t_ref = first_tap(&ch_ref, 0.35).unwrap().position;
        let t_test = first_tap(&ch_test, 0.35).unwrap().position;
        let measured_m = (t_test - t_ref) / sr * c;

        // The paper's two geometric hypotheses.
        let diffracted_m = test_path.length - ref_path.length;
        let euclidean_m = speaker.dist(mic) - ref_path.length;

        rows.push(Fig5Row {
            mic_x_cm: (mic.x.abs()) * 100.0,
            measured_cm: measured_m * 100.0,
            diffracted_cm: diffracted_m * 100.0,
            euclidean_cm: euclidean_m * 100.0,
        });
    }

    println!("  mic x (cm)   Δt·v (cm)   d_diff (cm)   d_euc (cm)");
    for r in &rows {
        println!(
            "  {:>9.1}   {:>9.2}   {:>11.2}   {:>9.2}",
            r.mic_x_cm, r.measured_cm, r.diffracted_cm, r.euclidean_cm
        );
    }
    let err = |f: fn(&Fig5Row) -> f64| {
        rows.iter()
            .map(|r| (r.measured_cm - f(r)).abs())
            .sum::<f64>()
            / rows.len() as f64
    };
    println!(
        "  mean |measured − diffracted| = {:.2} cm; |measured − euclidean| = {:.2} cm",
        err(|r| r.diffracted_cm),
        err(|r| r.euclidean_cm)
    );

    write_csv(
        "fig5_diffraction",
        &["mic_x_cm", "measured_cm", "diffracted_cm", "euclidean_cm"],
        &rows
            .iter()
            .map(|r| vec![r.mic_x_cm, r.measured_cm, r.diffracted_cm, r.euclidean_cm])
            .collect::<Vec<_>>(),
    );
    rows
}
