//! Allocation profile of the pinned personalize workload: per-stage
//! allocation counts/bytes at each thread count of the baseline matrix,
//! with the thread-invariance verdict.
//!
//! Writes `bench_results/alloc_profile.json` (one snapshot per thread
//! count plus the invariance flag) and `bench_results/alloc_profile.csv`
//! (the t=1 snapshot in the `AllocSnapshot::to_csv` column layout).
//!
//! Requires the counting allocator — the `experiments` binary installs
//! it; when absent (another embedder) the experiment reports that and
//! writes nothing rather than publishing all-zero numbers.

use crate::baseline::{alloc_profile_matrix, BaselineSpec};
use std::path::Path;

/// Runs the profile sweep; returns the invariance verdict (`None` when
/// the counting allocator is not installed).
pub fn run() -> Option<bool> {
    println!("\n== Allocation profile: per-stage heap traffic, personalize ==");
    if !uniq_memprof::installed() {
        println!("  counting allocator not installed in this binary — skipped");
        return None;
    }
    let spec = BaselineSpec::pinned();
    println!("  measuring at {:?} thread(s)…", spec.alloc_threads);
    let (snaps, invariant) = alloc_profile_matrix(&spec);
    let (_, first) = &snaps[0];
    let total = first.total();
    println!(
        "  t={}: {} allocs, {} bytes, peak live {} bytes",
        snaps[0].0, total.allocs, total.bytes, first.peak_live_bytes
    );
    println!(
        "  per-stage counts bit-identical across thread counts {:?}: {}",
        spec.alloc_threads,
        if invariant { "yes" } else { "NO" }
    );

    let json = {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {},\n", spec.seed));
        out.push_str(&format!("  \"thread_invariant\": {invariant},\n"));
        out.push_str("  \"runs\": [\n");
        for (i, (threads, snap)) in snaps.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {threads}, \"snapshot\": {}}}{}\n",
                snap.to_json().trim_end(),
                if i + 1 < snaps.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    };
    std::fs::create_dir_all(crate::RESULTS_DIR).expect("create bench_results");
    let json_path = Path::new(crate::RESULTS_DIR).join("alloc_profile.json");
    std::fs::write(&json_path, json).expect("write alloc_profile.json");
    println!("  → wrote {}", json_path.display());

    // The CSV column layout is the snapshot's own; write the t=1 run (the
    // invariance check just proved the deterministic columns equal).
    let csv_path = Path::new(crate::RESULTS_DIR).join("alloc_profile.csv");
    std::fs::write(&csv_path, first.to_csv()).expect("write alloc_profile.csv");
    println!("  → wrote {}", csv_path.display());
    Some(invariant)
}
