//! Experiments for the §7 extensions built beyond the paper's prototype.

use crate::csv::write_csv;
use uniq_dsp::stats::median;
use uniq_geometry::elevation::{plane_itd_3d, Head3};
use uniq_geometry::vec2::angle_diff_deg;

/// Elevation sweep: far-field ITD (in samples at 48 kHz) over a grid of
/// (azimuth, elevation) — the data a 3-D fusion would invert, showing the
/// cone-of-confusion flattening with elevation.
pub fn elevation_itd() -> Vec<Vec<f64>> {
    println!("\n== extension: 3-D elevation ITD map (§7 \"3D HRTF\") ==");
    let head = Head3::average_adult();
    let sr = 48_000.0;
    let c = uniq_dsp::SPEED_OF_SOUND;
    let mut rows = Vec::new();
    println!("  azimuth   el=0°    el=30°   el=60°  (ITD in samples)");
    for az in (0..=180).step_by(30) {
        let mut row = vec![az as f64];
        for el in [0.0, 30.0, 60.0] {
            let itd = plane_itd_3d(&head, az as f64, el) / c * sr;
            row.push(itd);
        }
        println!(
            "  {:>7}   {:>6.1}   {:>6.1}   {:>6.1}",
            az, row[1], row[2], row[3]
        );
        rows.push(row);
    }
    write_csv(
        "extension_elevation_itd",
        &["azimuth_deg", "itd_el0", "itd_el30", "itd_el60"],
        &rows,
    );
    rows
}

/// 3-D spherical-gesture localization (§7): serpentine gesture over three
/// elevation rings → two-axis IMU + acoustic fusion → azimuth/elevation
/// accuracy and the fitted four-parameter head. Returns
/// `(azimuth_median_deg, elevation_median_deg)`.
pub fn spherical_localization() -> (f64, f64) {
    println!("\n== extension: 3-D spherical-gesture fusion (§7) ==");
    use uniq_core::fusion3d::{fuse_3d, run_session_3d, FusionInput3};
    let cfg = uniq_core::config::UniqConfig {
        in_room: false,
        ..crate::cohort::eval_config()
    };

    let mut az_err = Vec::new();
    let mut el_err = Vec::new();
    let mut rows = Vec::new();
    for v in 0..3u64 {
        let subject = uniq_subjects::Subject::from_seed(1000 + v);
        let stops = run_session_3d(&subject, &cfg, 6, 40_000 + v).expect("session");
        let inputs: Vec<FusionInput3> = stops.iter().map(|s| s.input).collect();
        let fusion = fuse_3d(&inputs).expect("3-D fusion");
        for (stop, loc) in stops.iter().zip(&fusion.stops) {
            if !loc.radius_m.is_finite() {
                continue;
            }
            let ae = angle_diff_deg(loc.theta_deg, stop.truth_theta_deg);
            let ee = (loc.elevation_deg - stop.truth_elevation_deg).abs();
            az_err.push(ae);
            el_err.push(ee);
            rows.push(vec![
                v as f64 + 1.0,
                stop.truth_theta_deg,
                stop.truth_elevation_deg,
                loc.theta_deg,
                loc.elevation_deg,
            ]);
        }
    }
    let (am, em) = (median(&az_err), median(&el_err));
    println!(
        "  {} stops: azimuth median {am:.2}°, elevation median {em:.2}° (90th pct {:.1}° / {:.1}°)",
        az_err.len(),
        uniq_dsp::stats::percentile(&az_err, 90.0),
        uniq_dsp::stats::percentile(&el_err, 90.0)
    );
    write_csv(
        "extension_3d_localization",
        &["volunteer", "truth_az", "truth_el", "est_az", "est_el"],
        &rows,
    );
    (am, em)
}

/// Externalization proxies across the cohort (§7): rendered-vs-real ear
/// signals compared for the personalized table and the global template.
/// Returns `(personal_mean, global_mean)` proxy scores.
pub fn externalization_proxy() -> (f64, f64) {
    println!("\n== extension: externalization proxy (§7) ==");
    let cohort = super::cohort();
    let cfg = crate::cohort::eval_config();
    let global_bank = uniq_subjects::global_template(cfg.render, &cfg.output_grid());
    let sig = uniq_dsp::signal::linear_chirp(200.0, 14_000.0, 0.1, cfg.render.sample_rate);

    let mut personal = Vec::new();
    let mut global = Vec::new();
    for run in cohort {
        let renderer = run
            .subject
            .renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
        for theta in [30.0, 75.0, 120.0, 160.0] {
            // What a real far source would produce at the eardrums.
            let truth_ir = renderer.render_plane(theta);
            let reference = uniq_core::hrtf::BinauralSignal {
                left: uniq_dsp::conv::convolve(&sig, &truth_ir.left),
                right: uniq_dsp::conv::convolve(&sig, &truth_ir.right),
            };
            let rendered_p = run.result.hrtf.synthesize(&sig, theta, true);
            let rendered_g = {
                let (ir, _) = global_bank.nearest(theta);
                uniq_core::hrtf::BinauralSignal {
                    left: uniq_dsp::conv::convolve(&sig, &ir.left),
                    right: uniq_dsp::conv::convolve(&sig, &ir.right),
                }
            };
            personal.push(
                uniq_render::metrics::compare(&rendered_p, &reference, cfg.render.sample_rate)
                    .externalization_proxy(),
            );
            global.push(
                uniq_render::metrics::compare(&rendered_g, &reference, cfg.render.sample_rate)
                    .externalization_proxy(),
            );
        }
    }
    let p = uniq_dsp::stats::mean(&personal);
    let g = uniq_dsp::stats::mean(&global);
    println!("  mean externalization proxy: personalized {p:.3} vs global {g:.3}");
    write_csv(
        "extension_externalization",
        &["personal_mean", "global_mean"],
        &[vec![p, g]],
    );
    (p, g)
}
