//! Fig 9 — the measured binaural channel impulse response: the first taps
//! are the diffraction paths, later taps are face/pinna multipath.

use crate::csv::write_csv;
use uniq_acoustics::measure::{record_point_source, MeasurementSetup};
use uniq_core::channel::estimate_channel;
use uniq_geometry::Vec2;
use uniq_subjects::Subject;

/// Runs the experiment; returns the sub-sample first-tap positions
/// `(left, right)` for assertions.
pub fn run() -> (f64, f64) {
    println!("\n== Fig 9: channel impulse response (phone left of head) ==");
    let cfg = crate::cohort::eval_config();
    let subject = Subject::from_seed(1000);
    let renderer = subject.renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
    let setup = MeasurementSetup::home(cfg.render.sample_rate, cfg.snr_db);
    let probe = cfg.probe();
    let system_ir = setup.system.calibrate(&probe, 256);

    let src = Vec2::new(-0.42, 0.08); // phone on the left, slightly front
    let rec = record_point_source(&renderer, &setup, src, &probe, 4242).unwrap();
    let est = estimate_channel(&rec, &probe, &system_ir, &cfg).unwrap();

    println!(
        "  first tap: left {:.2} samples, right {:.2} samples (Δ {:.2} samples = {:.1} cm)",
        est.tap_left,
        est.tap_right,
        est.relative_delay(),
        est.relative_delay() / cfg.render.sample_rate * cfg.render.speed_of_sound * 100.0
    );

    let window = 160;
    let rows: Vec<Vec<f64>> = (0..window)
        .map(|k| vec![k as f64, est.ir.left[k], est.ir.right[k]])
        .collect();
    write_csv("fig9_channel_ir", &["sample", "left", "right"], &rows);
    (est.tap_left, est.tap_right)
}
