//! Robustness: personalization quality vs. fault intensity.
//!
//! Sweeps each injectable fault class from mild to severe through
//! `personalize_faulted` and measures what graceful degradation salvages:
//! how many stops survive, the mean stop quality, and how close the
//! degraded HRTF stays to the clean run (mean far-field HRIR similarity).
//!
//! Writes `bench_results/robustness.csv` and
//! `bench_results/robustness.json`.

use crate::csv::write_csv;
use std::path::Path;
use uniq_core::degrade::DegradationPolicy;
use uniq_core::pipeline::personalize_faulted;
use uniq_core::UniqConfig;
use uniq_faults::FaultPlan;
use uniq_subjects::Subject;

/// One sweep point: a fault plan spec with an intensity knob.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Fault class swept.
    pub class: &'static str,
    /// The intensity value on the class's natural axis (dB, level,
    /// stop count, stream fraction).
    pub intensity: f64,
    /// The plan spec run at this point.
    pub spec: String,
}

/// One measured row of the sweep.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// The swept point.
    pub point: SweepPoint,
    /// Whether personalization completed.
    pub ok: bool,
    /// Stops surviving degradation.
    pub stops_used: usize,
    /// Stops dropped after retries.
    pub stops_dropped: usize,
    /// Retry captures spent.
    pub retries: usize,
    /// Mean quality over surviving stops.
    pub mean_quality: f64,
    /// Mean far-field HRIR similarity to the clean (no-fault) run.
    pub sim_to_clean: f64,
}

/// The swept intensities, mild to severe, per class.
pub fn sweep_points() -> Vec<SweepPoint> {
    let mut pts = Vec::new();
    for snr in [6.0, 0.0, -6.0, -12.0] {
        pts.push(SweepPoint {
            class: uniq_faults::class::SNR,
            intensity: snr,
            spec: format!("snr:{snr}@4"),
        });
    }
    for level in [0.8, 0.6, 0.45, 0.35] {
        pts.push(SweepPoint {
            class: uniq_faults::class::CLIP,
            intensity: level,
            spec: format!("clip:{level}"),
        });
    }
    for dropped in [1usize, 2, 3] {
        let spec = ["drop@2", "drop@5", "drop@7"][..dropped].join(",");
        pts.push(SweepPoint {
            class: uniq_faults::class::DROP,
            intensity: dropped as f64,
            spec,
        });
    }
    for length in [0.02, 0.05, 0.1, 0.2] {
        pts.push(SweepPoint {
            class: uniq_faults::class::GYRO_DROPOUT,
            intensity: length,
            spec: format!("gyro-dropout:0.45:{length}"),
        });
    }
    pts
}

/// Runs the sweep and returns the rows for assertions in tests.
pub fn run() -> Vec<RobustnessRow> {
    println!("\n== robustness: personalization quality vs fault intensity ==");
    let cfg = UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        ..UniqConfig::fast_test()
    };
    let seed = 6u64;
    let subject = Subject::from_seed(seed);
    let policy = DegradationPolicy::default();

    // The clean run is the reference every degraded HRTF is compared to.
    let clean = personalize_faulted(&subject, &cfg, seed, &FaultPlan::empty(), &policy)
        .expect("clean reference run");
    let clean_far = clean.result.hrtf.far();

    let mut rows = Vec::new();
    for point in sweep_points() {
        let plan = FaultPlan::parse(&point.spec, seed).expect("sweep spec parses");
        let row = match personalize_faulted(&subject, &cfg, seed, &plan, &policy) {
            Ok(f) => {
                let sims: Vec<f64> = f
                    .result
                    .hrtf
                    .far()
                    .irs()
                    .iter()
                    .zip(clean_far.irs())
                    .map(|(est, reference)| {
                        let (l, r) = est.similarity(reference);
                        (l + r) / 2.0
                    })
                    .collect();
                let sim = sims.iter().sum::<f64>() / sims.len().max(1) as f64;
                RobustnessRow {
                    point: point.clone(),
                    ok: true,
                    stops_used: f.degradation.stops_used,
                    stops_dropped: f.degradation.stops_dropped,
                    retries: f.degradation.retries,
                    mean_quality: f.degradation.mean_quality,
                    sim_to_clean: sim,
                }
            }
            Err(e) => {
                println!("    {:<22} FAILED: {e}", point.spec);
                RobustnessRow {
                    point: point.clone(),
                    ok: false,
                    stops_used: 0,
                    stops_dropped: 0,
                    retries: 0,
                    mean_quality: 0.0,
                    sim_to_clean: f64::NAN,
                }
            }
        };
        println!(
            "  {:<14} intensity {:>6.2}  {}  stops {}/{}  quality {:.3}  sim {:.4}",
            row.point.class,
            row.point.intensity,
            if row.ok { "ok  " } else { "FAIL" },
            row.stops_used,
            row.stops_used + row.stops_dropped,
            row.mean_quality,
            row.sim_to_clean,
        );
        rows.push(row);
    }

    let classes: Vec<&'static str> = {
        let mut seen = Vec::new();
        for r in &rows {
            if !seen.contains(&r.point.class) {
                seen.push(r.point.class);
            }
        }
        seen
    };
    let csv_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                classes.iter().position(|c| *c == r.point.class).unwrap() as f64,
                r.point.intensity,
                if r.ok { 1.0 } else { 0.0 },
                r.stops_used as f64,
                r.stops_dropped as f64,
                r.retries as f64,
                r.mean_quality,
                r.sim_to_clean,
            ]
        })
        .collect();
    write_csv(
        "robustness",
        &[
            "class_id",
            "intensity",
            "ok",
            "stops_used",
            "stops_dropped",
            "retries",
            "mean_quality",
            "sim_to_clean",
        ],
        &csv_rows,
    );

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"class\": \"{}\", \"intensity\": {}, \"spec\": \"{}\", \"ok\": {}, \
             \"stops_used\": {}, \"stops_dropped\": {}, \"retries\": {}, \
             \"mean_quality\": {:.6}, \"sim_to_clean\": {:.6}}}{}\n",
            r.point.class,
            r.point.intensity,
            r.point.spec,
            r.ok,
            r.stops_used,
            r.stops_dropped,
            r.retries,
            r.mean_quality,
            r.sim_to_clean,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all(crate::RESULTS_DIR).expect("create bench_results");
    let json_path = Path::new(crate::RESULTS_DIR).join("robustness.json");
    std::fs::write(&json_path, json).expect("write robustness.json");
    println!("  → wrote {}", json_path.display());

    rows
}
