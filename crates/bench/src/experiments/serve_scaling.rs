//! Serve scaling: throughput and tail latency of the sharded
//! personalization server as the shard count grows.
//!
//! Each point starts an in-process [`uniq_serve::Server`] on an
//! ephemeral port with a scratch result store, drives it with the
//! deterministic closed-loop load generator (same seeded population at
//! every shard count), and records throughput, p50/p99 request latency,
//! and the population fingerprint. The fingerprint must be identical at
//! every shard count — sharding is a performance axis, never a results
//! axis. Writes `bench_results/serve_scaling.{json,csv}` and appends a
//! `"serve-scaling"` ledger record.

use crate::csv::write_csv;
use std::path::Path;
use uniq_core::config::UniqConfig;
use uniq_serve::{LoadgenConfig, ServeConfig, Server};

/// Shard counts the headline run measures.
pub const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Subjects in the headline population.
pub const SUBJECTS: u64 = 8;

/// First subject seed (matches the CLI default population).
pub const SEED_BASE: u64 = 42;

/// One measured shard count.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// Shard workers.
    pub shards: usize,
    /// Requests completed (first pass + cache-exercising repeats).
    pub requests: u64,
    /// Responses served from the result store.
    pub cache_hits: u64,
    /// Requests shed by full queues (zero at these depths).
    pub shed: u64,
    /// Wall-clock seconds of the whole run.
    pub seconds: f64,
    /// Unique subjects personalized per second.
    pub subjects_per_second: f64,
    /// Requests completed per second.
    pub requests_per_second: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Fold of the per-subject response fingerprints.
    pub fingerprint: u64,
}

/// The full scaling report, returned for assertions in tests.
#[derive(Debug, Clone)]
pub struct ServeScalingReport {
    /// Population size.
    pub subjects: u64,
    /// Whether every shard count produced the same population
    /// fingerprint (the determinism gate).
    pub deterministic: bool,
    /// One point per shard count.
    pub points: Vec<ServePoint>,
}

/// The pipeline configuration behind the scaling workload: the fast test
/// preset, anechoic, coarse grid — the measurement targets the server's
/// sharding and queueing, not HRTF synthesis depth.
pub fn workload_config() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        threads: 1,
        ..UniqConfig::fast_test()
    }
}

/// Measures one shard count: fresh server, fresh scratch store, the same
/// seeded load at `clients = 2 × shards`.
pub fn run_point(shards: usize, subjects: u64, store_root: &Path) -> ServePoint {
    let _ = std::fs::remove_dir_all(store_root);
    let cfg = ServeConfig {
        shards,
        base: workload_config(),
        store_dir: Some(store_root.to_path_buf()),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("start scaling server");
    let lg = LoadgenConfig {
        addr: server.local_addr().to_string(),
        subjects,
        seed_base: SEED_BASE,
        clients: shards * 2,
        repeat: 0.25,
        ..LoadgenConfig::default()
    };
    let report = uniq_serve::loadgen::run(&lg).expect("scaling loadgen failed");
    let drain = server.shutdown();
    let _ = std::fs::remove_dir_all(store_root);

    assert_eq!(report.fingerprint_conflicts, 0, "non-deterministic server");
    let fingerprint = uniq_serve::fold_fingerprints(&report.fingerprints);
    assert_eq!(
        fingerprint,
        uniq_serve::fold_fingerprints(&drain.fingerprints),
        "server and load generator disagree on the population fingerprint"
    );
    ServePoint {
        shards,
        requests: report.requests,
        cache_hits: report.cache_hits,
        shed: drain.stats.shed,
        seconds: report.wall_seconds,
        subjects_per_second: report.subjects_per_second,
        requests_per_second: report.requests_per_second,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        fingerprint,
    }
}

/// Runs the sweep over `shard_counts` with `subjects` subjects.
pub fn run_sweep(shard_counts: &[usize], subjects: u64) -> ServeScalingReport {
    let points: Vec<ServePoint> = shard_counts
        .iter()
        .map(|&shards| {
            let root = std::env::temp_dir().join(format!(
                "uniq_serve_scaling_{}_{shards}",
                std::process::id()
            ));
            run_point(shards, subjects, &root)
        })
        .collect();
    let deterministic = points
        .iter()
        .all(|p| p.fingerprint == points[0].fingerprint);
    ServeScalingReport {
        subjects,
        deterministic,
        points,
    }
}

/// The headline experiment: the shard sweep into
/// `bench_results/serve_scaling.{json,csv}` plus a ledger record.
pub fn run() -> ServeScalingReport {
    println!("\n== Serve scaling: sharded server throughput and tail latency ==");
    let report = run_sweep(&SHARD_COUNTS, SUBJECTS);

    for p in &report.points {
        println!(
            "  {} shard(s)  {:>3} req  {:>7.3}s  {:>6.2} subj/s  {:>6.2} req/s  \
             p50 {:>7.1}ms  p99 {:>7.1}ms  {} cached",
            p.shards,
            p.requests,
            p.seconds,
            p.subjects_per_second,
            p.requests_per_second,
            p.p50_ms,
            p.p99_ms,
            p.cache_hits,
        );
    }
    println!(
        "  {} subjects, deterministic across shard counts: {} (fingerprint {:#018x})",
        report.subjects, report.deterministic, report.points[0].fingerprint,
    );
    assert!(
        report.deterministic,
        "population fingerprint drifted across shard counts"
    );

    let json = {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"subjects\": {},\n", report.subjects));
        out.push_str(&format!("  \"seed_base\": {SEED_BASE},\n"));
        out.push_str(&format!("  \"deterministic\": {},\n", report.deterministic));
        out.push_str(&format!(
            "  \"fingerprint\": \"{:#018x}\",\n",
            report.points[0].fingerprint
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in report.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"shards\": {}, \"requests\": {}, \"cache_hits\": {}, \"shed\": {}, \
                 \"seconds\": {:.6}, \"subjects_per_second\": {:.6}, \
                 \"requests_per_second\": {:.6}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
                p.shards,
                p.requests,
                p.cache_hits,
                p.shed,
                p.seconds,
                p.subjects_per_second,
                p.requests_per_second,
                p.p50_ms,
                p.p99_ms,
                if i + 1 < report.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    };
    std::fs::create_dir_all(crate::RESULTS_DIR).expect("create bench_results");
    let json_path = Path::new(crate::RESULTS_DIR).join("serve_scaling.json");
    std::fs::write(&json_path, json).expect("write serve_scaling.json");
    println!("  → wrote {}", json_path.display());

    let rows: Vec<Vec<f64>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.shards as f64,
                p.requests as f64,
                p.cache_hits as f64,
                p.seconds,
                p.subjects_per_second,
                p.requests_per_second,
                p.p50_ms,
                p.p99_ms,
            ]
        })
        .collect();
    write_csv(
        "serve_scaling",
        &[
            "shards",
            "requests",
            "cache_hits",
            "seconds",
            "subjects_per_second",
            "requests_per_second",
            "p50_ms",
            "p99_ms",
        ],
        &rows,
    );

    let mut record = uniq_telemetry::ledger::LedgerRecord::new("serve-scaling");
    record.seed = SEED_BASE;
    record.wall_seconds = report.points.iter().map(|p| p.seconds).sum();
    record.fingerprint = format!("{:#018x}", report.points[0].fingerprint);
    for p in &report.points {
        record.quality.insert(
            format!("subjects_per_second_s{}", p.shards),
            p.subjects_per_second,
        );
        record
            .quality
            .insert(format!("p99_ms_s{}", p.shards), p.p99_ms);
    }
    let history = Path::new(crate::RESULTS_DIR).join("history.jsonl");
    uniq_telemetry::ledger::append(&history, &record).expect("append serve-scaling ledger record");
    println!("  → ledger record appended to {}", history.display());

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_point_sweep_is_deterministic_and_cached() {
        let report = run_sweep(&[1, 2], 4);
        assert!(report.deterministic, "{report:?}");
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            // 4 subjects + ceil-per-client repeats at 0.25; every repeat
            // must come back from the store.
            assert!(p.requests > 4, "{p:?}");
            assert_eq!(p.cache_hits, p.requests - 4, "{p:?}");
            assert_eq!(p.shed, 0, "{p:?}");
        }
    }
}
