//! Fig 16 — the speaker–microphone frequency response: unstable below
//! 50 Hz, usable over 100 Hz–10 kHz.

use crate::csv::write_csv;
use uniq_acoustics::system::SystemResponse;

/// Runs the experiment; returns `(freqs_hz, response_db)`.
pub fn run() -> (Vec<f64>, Vec<f64>) {
    println!("\n== Fig 16: speaker–microphone frequency response ==");
    let cfg = crate::cohort::eval_config();
    let sys = SystemResponse::budget_hardware(cfg.render.sample_rate);

    // Log-spaced sweep 20 Hz – 22 kHz.
    let n = 120;
    let (f0, f1) = (20.0_f64, 22_000.0_f64);
    let freqs: Vec<f64> = (0..n)
        .map(|k| f0 * (f1 / f0).powf(k as f64 / (n - 1) as f64))
        .collect();
    let db: Vec<f64> = freqs.iter().map(|&f| sys.magnitude_db(f)).collect();

    for (f, d) in [
        (30.0, None),
        (100.0, None),
        (1000.0, None),
        (10_000.0, None),
    ]
    .iter()
    .map(|(f, _): &(f64, Option<()>)| (*f, sys.magnitude_db(*f)))
    {
        println!("  {f:>8.0} Hz: {d:>7.1} dB");
    }

    let rows: Vec<Vec<f64>> = freqs.iter().zip(&db).map(|(f, d)| vec![*f, *d]).collect();
    write_csv("fig16_system_response", &["freq_hz", "magnitude_db"], &rows);
    (freqs, db)
}
