//! Fig 22 — unknown-source AoA across signal categories (white noise,
//! music, speech) plus front-back identification accuracy.
//!
//! Paper: 80th-percentile error within 20° for noise/music; front-back
//! accuracy 82.8% avg for UNIQ (87.2% noise, 72.8% speech) vs 59.8%
//! global.

use crate::csv::write_csv;
use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
use uniq_acoustics::signals::{generate, SignalKind};
use uniq_core::aoa::{estimate_unknown_source, front_back_accuracy};
use uniq_dsp::stats::{median, percentile, Ecdf};
use uniq_geometry::vec2::angle_diff_deg;

/// Per-category result.
#[derive(Debug)]
pub struct CategoryResult {
    /// Which signal category.
    pub kind: SignalKind,
    /// Personalized errors, degrees.
    pub personal_errors: Vec<f64>,
    /// Global errors, degrees.
    pub global_errors: Vec<f64>,
    /// Front-back accuracy with the personalized template.
    pub personal_fb: f64,
    /// Front-back accuracy with the global template.
    pub global_fb: f64,
}

/// Runs the experiment; one entry per signal kind.
pub fn run() -> Vec<CategoryResult> {
    println!("\n== Fig 22: unknown-source AoA by signal category ==");
    let cohort = super::cohort();
    let cfg = crate::cohort::eval_config();
    let global = uniq_subjects::global_template(cfg.render, &cfg.output_grid());
    let setup = MeasurementSetup::anechoic(cfg.render.sample_rate, 35.0);

    let mut out = Vec::new();
    for kind in SignalKind::ALL {
        let mut personal_errors = Vec::new();
        let mut global_errors = Vec::new();
        let mut p_pairs = Vec::new();
        let mut g_pairs = Vec::new();
        for (v, run) in cohort.iter().enumerate() {
            let renderer = run
                .subject
                .renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
            for k in 0..8 {
                let truth = 11.25 + k as f64 * 22.5;
                let seed = 20_000 + (v * 1000 + k) as u64;
                let sig = generate(kind, 0.4, cfg.render.sample_rate, seed);
                let rec = record_plane_wave(&renderer, &setup, truth, &sig, seed + 1);
                let p = estimate_unknown_source(&rec, run.result.hrtf.far(), &cfg);
                let g = estimate_unknown_source(&rec, &global, &cfg);
                personal_errors.push(angle_diff_deg(p, truth));
                global_errors.push(angle_diff_deg(g, truth));
                p_pairs.push((p, truth));
                g_pairs.push((g, truth));
            }
        }

        let tag = match kind {
            SignalKind::WhiteNoise => "noise",
            SignalKind::Music => "music",
            SignalKind::Speech => "speech",
        };
        for (name, errs) in [
            (format!("fig22_{tag}_personal"), &personal_errors),
            (format!("fig22_{tag}_global"), &global_errors),
        ] {
            let rows: Vec<Vec<f64>> = Ecdf::new(errs)
                .curve()
                .iter()
                .map(|(x, p)| vec![*x, *p])
                .collect();
            write_csv(&name, &["error_deg", "cdf"], &rows);
        }

        let result = CategoryResult {
            kind,
            personal_fb: front_back_accuracy(&p_pairs),
            global_fb: front_back_accuracy(&g_pairs),
            personal_errors,
            global_errors,
        };
        println!(
            "  {:<11}: personal median {:>5.1}° (80th {:>5.1}°) fb {:>4.0}% | global median {:>5.1}° fb {:>4.0}%",
            kind.label(),
            median(&result.personal_errors),
            percentile(&result.personal_errors, 80.0),
            result.personal_fb * 100.0,
            median(&result.global_errors),
            result.global_fb * 100.0,
        );
        out.push(result);
    }

    let avg_fb: f64 = out.iter().map(|r| r.personal_fb).sum::<f64>() / out.len() as f64;
    let avg_fb_g: f64 = out.iter().map(|r| r.global_fb).sum::<f64>() / out.len() as f64;
    println!(
        "  front-back accuracy average: UNIQ {:.1}% vs global {:.1}% (paper: 82.8% vs 59.8%)",
        avg_fb * 100.0,
        avg_fb_g * 100.0
    );
    write_csv(
        "fig22d_front_back",
        &["category", "uniq_fb", "global_fb"],
        &out.iter()
            .enumerate()
            .map(|(i, r)| vec![i as f64, r.personal_fb, r.global_fb])
            .collect::<Vec<_>>(),
    );
    out
}
