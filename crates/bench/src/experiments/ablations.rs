//! Ablations for the design choices called out in DESIGN.md.

use crate::cohort::eval_config;
use crate::csv::write_csv;
use uniq_core::config::UniqConfig;
use uniq_core::fusion::{fuse, localize_phone, session_to_inputs};
use uniq_core::pipeline::personalize;
use uniq_core::session::run_session;
use uniq_dsp::stats::{mean, median};
use uniq_geometry::vec2::angle_diff_deg;
use uniq_geometry::{HeadBoundary, HeadParams};
use uniq_subjects::Subject;

/// Sensor-fusion ablation: fused vs IMU-only vs acoustic-only phone
/// angles, on careful and on sloppy gestures. Returns the medians for the
/// sloppy (severe-gesture) regime as `(fused, imu_only, acoustic_only)` —
/// the regime that motivates fusion.
///
/// "Acoustic-only" removes both things fusion provides: the per-user head
/// fit (an average head is assumed) and the IMU front/back hint (a nominal
/// uniform-sweep schedule stands in). With careful gestures the nominal
/// schedule is accurate, so acoustics alone look strong; sloppy gestures
/// (uneven speed, drooping arm) break the schedule and acoustic-only
/// degrades with front/back flips, while fusion stays put.
pub fn fusion_ablation() -> (f64, f64, f64) {
    println!("\n== ablation: is joint (IMU + acoustic) fusion needed? ==");
    let cfg = eval_config();
    let mut out = (0.0, 0.0, 0.0);

    for (label, gesture) in [
        (
            "careful gesture",
            uniq_imu::trajectory::Imperfections::typical(),
        ),
        (
            "sloppy gesture",
            uniq_imu::trajectory::Imperfections::severe(),
        ),
    ] {
        let mut fused_err = Vec::new();
        let mut imu_err = Vec::new();
        let mut acoustic_err = Vec::new();

        for v in 0..3u64 {
            let mut subject = Subject::from_seed(1000 + v);
            subject.gesture = gesture;
            let session = run_session(&subject, &cfg, 31_000 + v).expect("session");
            let inputs = session_to_inputs(&session, &cfg);
            let fusion = fuse(&inputs, &cfg).expect("fusion");

            // Acoustic-only: average-adult head (no per-user fit) and NO
            // orientation information. Without the IMU, the two iso-delay
            // intersections (front/back mirror, Fig 10b) cannot be told
            // apart; the baseline must commit to a fixed policy — here
            // "assume the front solution" (hint 45°), the paper's
            // ambiguity made concrete.
            let avg_boundary =
                HeadBoundary::new(HeadParams::average_adult(), cfg.inverse_resolution);
            for (k, (stop, inp)) in session.stops.iter().zip(&inputs).enumerate() {
                let truth = stop.truth_theta_deg;
                fused_err.push(angle_diff_deg(fusion.final_thetas_deg[k], truth));
                imu_err.push(angle_diff_deg(stop.alpha_deg, truth));
                let acoustic = localize_phone(&avg_boundary, inp.d_left_m, inp.d_right_m, 45.0)
                    .map(|l| l.theta_deg)
                    .unwrap_or(45.0);
                acoustic_err.push(angle_diff_deg(acoustic, truth));
            }
        }

        let (f, i, a) = (median(&fused_err), median(&imu_err), median(&acoustic_err));
        let (f90, i90, a90) = (
            uniq_dsp::stats::percentile(&fused_err, 90.0),
            uniq_dsp::stats::percentile(&imu_err, 90.0),
            uniq_dsp::stats::percentile(&acoustic_err, 90.0),
        );
        println!(
            "  {label}: median fused {f:.2}° / IMU {i:.2}° / acoustic {a:.2}°   (90th pct {f90:.1}° / {i90:.1}° / {a90:.1}°)"
        );
        write_csv(
            &format!(
                "ablation_fusion_{}",
                label.split_whitespace().next().unwrap()
            ),
            &[
                "fused_med_deg",
                "imu_med_deg",
                "acoustic_med_deg",
                "fused_p90_deg",
                "imu_p90_deg",
                "acoustic_p90_deg",
            ],
            &[vec![f, i, a, f90, i90, a90]],
        );
        out = (f, i, a);
    }
    out
}

/// Head-model ablation: spherical (1-parameter) vs the paper's
/// two-half-ellipse (3-parameter) model. Returns `(ellipse, sphere)`
/// median localization errors.
pub fn head_model_ablation() -> (f64, f64) {
    println!("\n== ablation: spherical vs two-half-ellipse head model ==");
    let cfg = eval_config();
    let mut ellipse_err = Vec::new();
    let mut sphere_err = Vec::new();

    for v in 0..3u64 {
        let subject = Subject::from_seed(1000 + v);
        let session = run_session(&subject, &cfg, 32_000 + v).expect("session");
        let inputs = session_to_inputs(&session, &cfg);

        let fusion = fuse(&inputs, &cfg).expect("ellipse fusion");
        for (k, stop) in session.stops.iter().enumerate() {
            ellipse_err.push(angle_diff_deg(
                fusion.final_thetas_deg[k],
                stop.truth_theta_deg,
            ));
        }

        // Sphere: optimize a single radius r with E = (r, r, r).
        let objective = |r: f64| -> f64 {
            if !(0.05..=0.14).contains(&r) {
                return 1e9;
            }
            let b = HeadBoundary::new(HeadParams::new(r, r, r), cfg.inverse_resolution);
            inputs
                .iter()
                .map(|inp| {
                    localize_phone(&b, inp.d_left_m, inp.d_right_m, inp.alpha_deg)
                        .map(|l| angle_diff_deg(inp.alpha_deg, l.theta_deg).powi(2))
                        .unwrap_or(900.0)
                })
                .sum()
        };
        let (r_opt, _) = uniq_optim::golden_section(objective, 0.06, 0.13, 1e-4);
        let b = HeadBoundary::new(HeadParams::new(r_opt, r_opt, r_opt), cfg.inverse_resolution);
        for (stop, inp) in session.stops.iter().zip(&inputs) {
            let est = localize_phone(&b, inp.d_left_m, inp.d_right_m, inp.alpha_deg)
                .map(|l| uniq_core::fusion::circular_blend(inp.alpha_deg, l.theta_deg, 0.5))
                .unwrap_or(inp.alpha_deg);
            sphere_err.push(angle_diff_deg(est, stop.truth_theta_deg));
        }
    }

    let (e, s) = (median(&ellipse_err), median(&sphere_err));
    println!("  median localization error: ellipse {e:.2}° vs sphere {s:.2}°");
    write_csv(
        "ablation_head_model",
        &["ellipse_med_deg", "sphere_med_deg"],
        &[vec![e, s]],
    );
    (e, s)
}

/// Room-gating ablation (§4.6): far-field HRIR quality with the echo gate
/// on vs off, measuring in a reverberant room. Returns `(gated, ungated)`
/// mean similarities.
pub fn room_gating_ablation() -> (f64, f64) {
    println!("\n== ablation: room-echo time gating ==");
    let base = UniqConfig {
        in_room: true,
        grid_step_deg: 10.0,
        ..eval_config()
    };
    // "Off": the gate window exceeds the estimated channel length, so
    // nothing is truncated and room taps leak into the HRTF.
    let ungated_cfg = UniqConfig {
        room_gate_s: 10.0,
        channel_len: 2048,
        ..base.clone()
    };

    let mut gated_sims = Vec::new();
    let mut ungated_sims = Vec::new();
    for v in 0..2u64 {
        let subject = Subject::from_seed(1000 + v);
        let truth = subject.ground_truth(base.render, &base.output_grid());
        for (cfg, sims) in [(&base, &mut gated_sims), (&ungated_cfg, &mut ungated_sims)] {
            if let Ok(result) = personalize(&subject, cfg, 33_000 + v) {
                for (est, gt) in result.hrtf.far().irs().iter().zip(truth.irs()) {
                    let (l, r) = est.similarity(gt);
                    sims.push((l + r) / 2.0);
                }
            }
        }
    }

    let (g, u) = (mean(&gated_sims), mean(&ungated_sims));
    println!("  mean far-field HRIR similarity: gated {g:.3} vs ungated {u:.3}");
    write_csv(
        "ablation_room_gating",
        &["gated_mean_sim", "ungated_mean_sim"],
        &[vec![g, u]],
    );
    (g, u)
}

/// Interpolation ablation (§4.2): first-tap-aligned interpolation vs a
/// naive sample-wise blend. Returns `(aligned, naive)` mean similarities
/// at unmeasured angles.
pub fn interpolation_ablation() -> (f64, f64) {
    println!("\n== ablation: first-tap alignment in near-field interpolation ==");
    let cfg = UniqConfig {
        grid_step_deg: 10.0,
        ..eval_config()
    };
    let subject = Subject::from_seed(1002);
    let renderer = subject.renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);

    // Measure every 20°, query the 10°-offset midpoints.
    let measured: Vec<f64> = (0..=9).map(|k| k as f64 * 20.0).collect();
    let bank = renderer
        .near_field_bank(&measured, 0.45)
        .expect("0.45 m clears the head");
    let queries: Vec<f64> = (0..9).map(|k| 10.0 + k as f64 * 20.0).collect();
    let truth = renderer
        .near_field_bank(&queries, 0.45)
        .expect("0.45 m clears the head");

    let fusion = uniq_core::fusion::FusionResult {
        head: subject.head,
        stops: vec![],
        final_thetas_deg: vec![],
        mean_residual_deg: 0.0,
        objective: 0.0,
    };
    let interp = uniq_core::nearfield::interpolate(&bank, &fusion, &cfg, 0.45);

    let mut aligned_sims = Vec::new();
    let mut naive_sims = Vec::new();
    for (q, gt) in queries.iter().zip(truth.irs()) {
        let est = interp.nearest(*q).0;
        let (l, r) = est.similarity(gt);
        aligned_sims.push((l + r) / 2.0);

        // Naive: plain sample-wise average of the bracketing measurements
        // (no alignment) — the "spurious echoes" failure mode.
        let lo = bank.nearest(q - 10.0).0;
        let hi = bank.nearest(q + 10.0).0;
        let naive = uniq_acoustics::types::BinauralIr::new(
            uniq_dsp::interp::lerp_vec(&lo.left, &hi.left, 0.5),
            uniq_dsp::interp::lerp_vec(&lo.right, &hi.right, 0.5),
        );
        let (l, r) = naive.similarity(gt);
        naive_sims.push((l + r) / 2.0);
    }

    let (a, n) = (mean(&aligned_sims), mean(&naive_sims));
    println!("  mean similarity at unmeasured angles: aligned {a:.3} vs naive {n:.3}");
    write_csv(
        "ablation_interpolation",
        &["aligned_mean_sim", "naive_mean_sim"],
        &[vec![a, n]],
    );
    (a, n)
}

/// Near-far ablation (§4.3): converted far-field bank vs using the
/// near-field HRIR directly for far sources. Returns `(converted, raw)`
/// mean similarities.
pub fn nearfar_ablation() -> (f64, f64) {
    println!("\n== ablation: near-far conversion vs raw near-field HRTF ==");
    let cfg = UniqConfig {
        grid_step_deg: 10.0,
        ..eval_config()
    };
    let subject = Subject::from_seed(1003);
    let renderer = subject.renderer(cfg.render, uniq_subjects::FORWARD_RESOLUTION);
    let grid = cfg.output_grid();
    let near = renderer
        .near_field_bank(&grid, 0.45)
        .expect("0.45 m clears the head");
    let truth = renderer.ground_truth_bank(&grid);

    let fusion = uniq_core::fusion::FusionResult {
        head: subject.head,
        stops: vec![],
        final_thetas_deg: vec![],
        mean_residual_deg: 0.0,
        objective: 0.0,
    };
    let far = uniq_core::nearfar::convert(&near, &fusion, &cfg, 0.45);

    let mut conv_sims = Vec::new();
    let mut raw_sims = Vec::new();
    for ((est, raw), gt) in far.irs().iter().zip(near.irs()).zip(truth.irs()) {
        let (cl, cr) = est.similarity(gt);
        conv_sims.push((cl + cr) / 2.0);
        let (rl, rr) = raw.similarity(gt);
        raw_sims.push((rl + rr) / 2.0);
    }
    let (c, r) = (mean(&conv_sims), mean(&raw_sims));
    println!("  mean far-field similarity: converted {c:.3} vs raw near-field {r:.3}");
    write_csv(
        "ablation_nearfar",
        &["converted_mean_sim", "raw_near_mean_sim"],
        &[vec![c, r]],
    );
    (c, r)
}

/// Measurement-count sweep (Eq. 2 convergence): head-parameter error and
/// localization error vs the number of stops N. Returns rows of
/// `(n, head_err_m, loc_med_deg)`.
pub fn stops_sweep() -> Vec<(usize, f64, f64)> {
    println!("\n== ablation: measurement count N (Eq. 2 convergence) ==");
    let mut rows = Vec::new();
    for &n in &[5usize, 9, 19, 37] {
        let cfg = UniqConfig {
            stops: n,
            ..eval_config()
        };
        let subject = Subject::from_seed(1004);
        let session = run_session(&subject, &cfg, 34_000 + n as u64).expect("session");
        let inputs = session_to_inputs(&session, &cfg);
        let fusion = fuse(&inputs, &cfg).expect("fusion");
        let head_err = ((fusion.head.a - subject.head.a).powi(2)
            + (fusion.head.b - subject.head.b).powi(2)
            + (fusion.head.c - subject.head.c).powi(2))
        .sqrt();
        let errs: Vec<f64> = session
            .stops
            .iter()
            .zip(&fusion.final_thetas_deg)
            .map(|(s, &e)| angle_diff_deg(s.truth_theta_deg, e))
            .collect();
        let med = median(&errs);
        println!(
            "  N = {n:>3}: head error {:.1} mm, localization median {med:.2}°",
            head_err * 1000.0
        );
        rows.push((n, head_err, med));
    }
    write_csv(
        "ablation_stops_sweep",
        &["n_stops", "head_err_m", "loc_median_deg"],
        &rows
            .iter()
            .map(|(n, h, m)| vec![*n as f64, *h, *m])
            .collect::<Vec<_>>(),
    );
    rows
}

/// One SNR-sweep row: `(snr_db, loc_median_deg, hrir_mean_sim)`.
pub type SnrRow = (f64, f64, f64);
/// One gyro-sweep row: `(grade, loc_median_deg, hrir_mean_sim)`.
pub type GyroRow = (usize, f64, f64);

/// Robustness sweep: localization and HRIR quality vs microphone SNR and
/// gyroscope grade. Returns `(snr_rows, gyro_rows)`.
pub fn robustness_sweep() -> (Vec<SnrRow>, Vec<GyroRow>) {
    println!("\n== robustness: SNR and gyroscope-grade sweeps ==");
    let subject = Subject::from_seed(1005);
    let grid_cfg = UniqConfig {
        grid_step_deg: 10.0,
        ..eval_config()
    };
    let truth_bank = subject.ground_truth(grid_cfg.render, &grid_cfg.output_grid());

    let score = |cfg: &UniqConfig, seed: u64| -> Option<(f64, f64)> {
        let result = personalize(&subject, cfg, seed).ok()?;
        let errs: Vec<f64> = result
            .localization
            .iter()
            .map(|(t, e)| angle_diff_deg(*t, *e))
            .collect();
        let sims: Vec<f64> = result
            .hrtf
            .far()
            .irs()
            .iter()
            .zip(truth_bank.irs())
            .map(|(est, gt)| {
                let (l, r) = est.similarity(gt);
                (l + r) / 2.0
            })
            .collect();
        Some((median(&errs), mean(&sims)))
    };

    let mut snr_rows = Vec::new();
    println!("  SNR sweep (consumer gyro):");
    for &snr in &[5.0, 15.0, 25.0, 35.0] {
        let cfg = UniqConfig {
            snr_db: snr,
            ..grid_cfg.clone()
        };
        match score(&cfg, 35_000) {
            Some((loc, sim)) => {
                println!("    {snr:>4.0} dB: localization median {loc:.2}°, HRIR sim {sim:.3}");
                snr_rows.push((snr, loc, sim));
            }
            None => {
                println!("    {snr:>4.0} dB: pipeline failed (gesture rejected / fusion failed)");
                snr_rows.push((snr, f64::NAN, f64::NAN));
            }
        }
    }
    write_csv(
        "robustness_snr",
        &["snr_db", "loc_median_deg", "hrir_mean_sim"],
        &snr_rows
            .iter()
            .map(|(a, b, c)| vec![*a, *b, *c])
            .collect::<Vec<_>>(),
    );

    let mut gyro_rows = Vec::new();
    println!("  gyroscope-grade sweep (35 dB SNR):");
    let grades = [
        ("ideal", uniq_imu::GyroModel::ideal()),
        ("consumer", uniq_imu::GyroModel::consumer_phone()),
        ("poor", uniq_imu::GyroModel::poor()),
    ];
    for (k, (label, gyro)) in grades.iter().enumerate() {
        let cfg = UniqConfig {
            gyro: *gyro,
            ..grid_cfg.clone()
        };
        match score(&cfg, 36_000) {
            Some((loc, sim)) => {
                println!("    {label:<9}: localization median {loc:.2}°, HRIR sim {sim:.3}");
                gyro_rows.push((k, loc, sim));
            }
            None => {
                println!("    {label:<9}: pipeline failed");
                gyro_rows.push((k, f64::NAN, f64::NAN));
            }
        }
    }
    write_csv(
        "robustness_gyro",
        &["grade", "loc_median_deg", "hrir_mean_sim"],
        &gyro_rows
            .iter()
            .map(|(a, b, c)| vec![*a as f64, *b, *c])
            .collect::<Vec<_>>(),
    );
    (snr_rows, gyro_rows)
}

/// Beamforming attempt analysis (§4.3, Attempt 1): condition numbers of
/// the Eq. 6 system for the phone's 2 speakers vs hypothetical arrays.
pub fn beamforming_analysis() {
    println!("\n== analysis: Attempt 1 (speaker beamforming) conditioning ==");
    use uniq_core::nearfar::attempts::beamforming_condition;
    let mut rows = Vec::new();
    for &(elements, label) in &[
        (2usize, "phone (2 speakers)"),
        (4, "4-element"),
        (8, "8-element"),
    ] {
        let cond = beamforming_condition(19, 38, elements, 0.07, 2000.0);
        println!("  {label:<20} condition number {cond:.1e}");
        rows.push(vec![elements as f64, cond]);
    }
    write_csv("ablation_beamforming", &["elements", "condition"], &rows);
    println!(
        "  blind decoupling ambiguity (Attempt 2): observation gap {:.2e} (identical observations)",
        uniq_core::nearfar::attempts::blind_decoupling_ambiguity()
    );
}
