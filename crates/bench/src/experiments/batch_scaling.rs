//! Batch thread-scaling: throughput of concurrent multi-subject
//! personalization at pool sizes 1/2/4/8, with the bit-identity check.
//!
//! Writes `bench_results/batch_scaling.json` (the same format the
//! `uniq batch --scaling` CLI command emits) plus a CSV for plotting.

use crate::csv::write_csv;
use std::path::Path;
use uniq_core::batch::{scaling_sweep, ScalingReport};
use uniq_core::UniqConfig;

/// Pool sizes measured by the sweep.
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the sweep and returns the report for assertions in tests.
pub fn run() -> ScalingReport {
    println!("\n== Batch scaling: concurrent personalization throughput ==");
    let cfg = UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        threads: 1,
        ..UniqConfig::fast_test()
    };
    let seeds: Vec<u64> = (0..8).map(|i| 42 + i).collect();
    let report = scaling_sweep(&seeds, &cfg, &THREAD_COUNTS, 3);

    let baseline = report.points[0].seconds;
    for p in &report.points {
        println!(
            "  threads {:>2}: {:>7.2}s  {:.2} subj/s  speedup {:.2}x",
            p.threads,
            p.seconds,
            p.subjects_per_second,
            baseline / p.seconds.max(1e-12),
        );
    }
    println!(
        "  outputs bit-identical across pool sizes: {}",
        if report.deterministic { "yes" } else { "NO" }
    );

    let json = {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"subjects\": {},\n", report.subjects));
        out.push_str("  \"seed_base\": 42,\n");
        out.push_str(&format!("  \"deterministic\": {},\n", report.deterministic));
        out.push_str("  \"points\": [\n");
        for (i, p) in report.points.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"threads\": {}, \"seconds\": {:.6}, \"subjects_per_second\": {:.6}, \"fingerprint\": \"{:#018x}\"}}{}\n",
                p.threads,
                p.seconds,
                p.subjects_per_second,
                p.fingerprint,
                if i + 1 < report.points.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    };
    std::fs::create_dir_all(crate::RESULTS_DIR).expect("create bench_results");
    let json_path = Path::new(crate::RESULTS_DIR).join("batch_scaling.json");
    std::fs::write(&json_path, json).expect("write batch_scaling.json");
    println!("  → wrote {}", json_path.display());

    let rows: Vec<Vec<f64>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.threads as f64,
                p.seconds,
                p.subjects_per_second,
                baseline / p.seconds.max(1e-12),
            ]
        })
        .collect();
    write_csv(
        "batch_scaling",
        &["threads", "seconds", "subjects_per_second", "speedup"],
        &rows,
    );
    report
}
