//! Minimal CSV output (no external dependency).

use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes rows of `f64` cells with a header line to
/// `bench_results/<name>.csv`, creating the directory if needed.
///
/// # Panics
/// Panics on I/O errors (experiments are developer tooling) or if a row's
/// width disagrees with the header.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) {
    let dir = Path::new(crate::RESULTS_DIR);
    fs::create_dir_all(dir).expect("create bench_results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut file = fs::File::create(&path).expect("create csv file");
    writeln!(file, "{}", header.join(",")).expect("write header");
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch in {name}");
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{}", line.join(",")).expect("write row");
    }
    println!("  → wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_shapes() {
        write_csv(
            "unit_test_artifact",
            &["a", "b"],
            &[vec![1.0, 2.0], vec![3.0, 4.0]],
        );
        let content = std::fs::read_to_string("bench_results/unit_test_artifact.csv").unwrap();
        assert!(content.starts_with("a,b\n1,2\n3,4\n"));
        std::fs::remove_file("bench_results/unit_test_artifact.csv").ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        write_csv("unit_test_bad", &["a", "b"], &[vec![1.0]]);
    }
}
