//! # uniq-bench
//!
//! Experiment harness for the UNIQ reproduction: regenerates every figure
//! of the paper's evaluation (Figs 2, 5, 9, 16–22) plus the ablations
//! called out in DESIGN.md.
//!
//! Run everything:
//!
//! ```sh
//! cargo run -p uniq-bench --release --bin experiments -- all
//! ```
//!
//! Each experiment prints the paper-shaped table/series to stdout and
//! writes CSV into `bench_results/`. Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cohort;
pub mod csv;
pub mod experiments;
pub mod timings;

/// Output directory for CSV artifacts (relative to the workspace root).
pub const RESULTS_DIR: &str = "bench_results";

/// Build identifier stamped into result files: crate version plus the
/// debug/release flavor. Derived entirely from the binary — no git
/// invocation — so results generated from a tarball carry it too.
pub fn build_id() -> String {
    format!(
        "{}-{}",
        env!("CARGO_PKG_VERSION"),
        if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        }
    )
}
