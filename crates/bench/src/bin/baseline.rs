//! The benchmark-baseline CLI: runs the pinned workload matrix, blesses
//! `BENCH_BASELINE.json`, and compares fresh runs against it (the CI
//! regression gate — see `uniq_bench::baseline` for the contract).
//!
//! ```sh
//! baseline run --out fresh.json        # run the matrix, write the doc
//! baseline bless                       # refresh BENCH_BASELINE.json
//! baseline compare --baseline BENCH_BASELINE.json [--fresh F]
//!          [--quality-tol X] [--perf-tol X] [--strict]
//! baseline verify-profile PROFILE.json # stage coverage of a --profile-out file
//! baseline quality-identical A B       # bit-identical quality sections?
//! ```
//!
//! Exit codes: 0 clean (perf warnings allowed unless `--strict`),
//! 1 regression, 2 usage error.

use uniq_bench::baseline::{
    compare, persist_to_store, quality_identical, run_baseline, verify_profile, BaselineSpec,
    BASELINE_FILE, DEFAULT_PERF_TOL, DEFAULT_QUALITY_TOL,
};
use uniq_profile::json::Json;
use uniq_telemetry::ledger::{self, LedgerRecord};

/// The counting allocator: always installed in this binary (recording is
/// off until a measurement starts, so non-alloc commands pay only a
/// relaxed atomic load per allocation), which is what lets `run`/`bless`
/// emit the baseline document's `alloc` section.
#[global_allocator]
static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();

fn usage() -> String {
    "baseline — pinned-workload benchmark baselines and the CI regression gate\n\
     \n\
     commands:\n\
     \x20 run --out FILE                 run the workload matrix, write the document\n\
     \x20 bless                          run the matrix and refresh BENCH_BASELINE.json\n\
     \x20 compare --baseline FILE [--fresh FILE] [--quality-tol X] [--perf-tol X] [--strict]\n\
     \x20                                diff a fresh run (or --fresh file) against the\n\
     \x20                                baseline; quality drift fails, perf drift warns\n\
     \x20 verify-profile FILE            check a uniq --profile-out file parses and covers\n\
     \x20                                every pipeline stage\n\
     \x20 quality-identical A B          exit 0 iff both documents carry bit-identical\n\
     \x20                                quality sections\n\
     \n\
     ledger (run / bless / compare-with-fresh-run):\n\
     \x20 --history PATH                 append a run record to PATH instead of the\n\
     \x20                                default bench_results/history.jsonl\n\
     \x20 --no-history                   skip the ledger append\n\
     \n\
     persistence (run / bless):\n\
     \x20 --store DIR                    also personalize the pinned seed single-threaded\n\
     \x20                                and persist the HRTF artifact into the\n\
     \x20                                content-addressed store at DIR\n"
        .to_string()
}

/// Handles `--store DIR` on `run` / `bless`: personalizes the pinned
/// subject and puts the artifact into the store, printing the content
/// key. Re-running unchanged code is a dedup hit, not a new blob.
fn persist_if_requested(opts: &Opts) {
    let Some(dir) = opts.get("store") else {
        return;
    };
    match persist_to_store(&BaselineSpec::pinned(), std::path::Path::new(dir)) {
        Ok((outcome, fingerprint)) => println!(
            "stored baseline HRTF: key {} ({} bytes, {}), fingerprint {:#018x}",
            outcome.key,
            outcome.bytes,
            if outcome.deduped { "deduped" } else { "new" },
            fingerprint,
        ),
        Err(e) => {
            eprintln!("error: cannot persist baseline HRTF to {dir}: {e}");
            std::process::exit(1);
        }
    }
}

/// Appends the run's ledger record to the cross-run history file
/// (`uniq history trend` consumes it), unless `--no-history` was given.
fn append_ledger(doc: &Json, opts: &Opts) {
    if opts.switch("no-history") {
        return;
    }
    let path = opts.get("history").unwrap_or(ledger::DEFAULT_HISTORY_FILE);
    let record = match LedgerRecord::from_baseline_doc(doc, "baseline") {
        Ok(r) => r,
        Err(e) => {
            eprintln!("warning: ledger record not appended: {e}");
            return;
        }
    };
    match ledger::append(std::path::Path::new(path), &record) {
        Ok(()) => println!("ledger record appended to {path}"),
        Err(e) => eprintln!("warning: cannot append to {path}: {e}"),
    }
}

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage());
    std::process::exit(2);
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} is not valid JSON: {e}");
        std::process::exit(1);
    })
}

/// `--key value` / `--switch` parser over the tail of the argv.
struct Opts {
    pairs: Vec<(String, Option<String>)>,
    positional: Vec<String>,
}

impl Opts {
    fn parse(args: &[String], switches: &[&str]) -> Opts {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if switches.contains(&key) {
                    pairs.push((key.to_string(), None));
                } else {
                    let value = it
                        .next()
                        .unwrap_or_else(|| fail_usage(&format!("--{key} needs a value")));
                    pairs.push((key.to_string(), Some(value.clone())));
                }
            } else {
                positional.push(arg.clone());
            }
        }
        Opts { pairs, positional }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key).map_or(default, |v| {
            v.parse()
                .unwrap_or_else(|_| fail_usage(&format!("--{key} {v:?} is not a number")))
        })
    }

    fn switch(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, v)| k == key && v.is_none())
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        fail_usage("no command");
    };
    match command.as_str() {
        "run" => {
            let opts = Opts::parse(&args[1..], &["no-history"]);
            let out = opts
                .get("out")
                .unwrap_or_else(|| fail_usage("run needs --out FILE"));
            let doc = run_baseline(&BaselineSpec::pinned());
            std::fs::write(out, &doc).unwrap_or_else(|e| {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(1);
            });
            println!("baseline written to {out}");
            append_ledger(
                // uniq-analyzer: allow(panic-safety) — run_baseline emits its own JSON; a parse failure is a bug worth a crash
                &Json::parse(&doc).expect("self-emitted baseline JSON"),
                &opts,
            );
            persist_if_requested(&opts);
        }
        "bless" => {
            let opts = Opts::parse(&args[1..], &["no-history"]);
            let doc = run_baseline(&BaselineSpec::pinned());
            std::fs::write(BASELINE_FILE, &doc).unwrap_or_else(|e| {
                eprintln!("error: cannot write {BASELINE_FILE}: {e}");
                std::process::exit(1);
            });
            println!("blessed {BASELINE_FILE} — review the diff before committing");
            append_ledger(
                // uniq-analyzer: allow(panic-safety) — run_baseline emits its own JSON; a parse failure is a bug worth a crash
                &Json::parse(&doc).expect("self-emitted baseline JSON"),
                &opts,
            );
            persist_if_requested(&opts);
        }
        "compare" => {
            let opts = Opts::parse(&args[1..], &["strict", "no-history"]);
            let baseline_path = opts
                .get("baseline")
                .unwrap_or_else(|| fail_usage("compare needs --baseline FILE"));
            let baseline = read_json(baseline_path);
            let fresh = match opts.get("fresh") {
                Some(path) => read_json(path),
                None => {
                    println!("running the pinned workload matrix…");
                    let doc = run_baseline(&BaselineSpec::pinned());
                    // uniq-analyzer: allow(panic-safety) — run_baseline emits its own JSON; a parse failure is a bug worth a crash
                    let parsed = Json::parse(&doc).expect("self-emitted baseline JSON");
                    append_ledger(&parsed, &opts);
                    parsed
                }
            };
            let strict = opts.switch("strict");
            let report = compare(
                &baseline,
                &fresh,
                opts.get_f64("quality-tol", DEFAULT_QUALITY_TOL),
                opts.get_f64("perf-tol", DEFAULT_PERF_TOL),
            )
            .unwrap_or_else(|e| {
                eprintln!("baseline compare failed: {e}");
                std::process::exit(1);
            });
            for warning in &report.perf_warnings {
                println!("perf warning: {warning}");
            }
            for failure in &report.quality_failures {
                println!("QUALITY REGRESSION: {failure}");
            }
            if report.passes(strict) {
                println!(
                    "baseline ok ({} perf warning(s), 0 quality regressions)",
                    report.perf_warnings.len()
                );
            } else {
                println!("baseline comparison FAILED against {baseline_path}");
                std::process::exit(1);
            }
        }
        "verify-profile" => {
            let opts = Opts::parse(&args[1..], &[]);
            let Some(path) = opts.positional.first() else {
                fail_usage("verify-profile needs a profile JSON file");
            };
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            match verify_profile(&text) {
                Ok(stages) => println!("profile ok: {} stage(s) covered", stages.len()),
                Err(e) => {
                    eprintln!("profile verification failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "quality-identical" => {
            let opts = Opts::parse(&args[1..], &[]);
            let [a, b] = opts.positional.as_slice() else {
                fail_usage("quality-identical needs two document paths");
            };
            if quality_identical(&read_json(a), &read_json(b)) {
                println!("quality sections are bit-identical");
            } else {
                eprintln!("quality sections DIFFER between {a} and {b}");
                std::process::exit(1);
            }
        }
        "help" | "--help" => println!("{}", usage()),
        other => fail_usage(&format!("unknown command {other:?}")),
    }
}
