//! Regenerates every figure of the paper's evaluation plus the ablations.
//!
//! ```sh
//! cargo run -p uniq-bench --release --bin experiments -- all
//! cargo run -p uniq-bench --release --bin experiments -- fig17 fig18
//! ```

use uniq_bench::experiments::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig2", "fig5", "fig9", "fig16", "fig17", "fig18", "fig21", "fig22",
            "ablations", "extensions",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!("UNIQ evaluation reproduction — results land in bench_results/");
    for t in targets {
        match t {
            "fig2" => {
                fig2::run();
            }
            "fig5" => {
                fig5::run();
            }
            "fig9" => {
                fig9::run();
            }
            "fig16" => {
                fig16::run();
            }
            "fig17" => {
                fig17::run();
            }
            // Figs 18, 19 and 20 share one computation.
            "fig18" | "fig19" | "fig20" => {
                fig18_20::run();
            }
            "fig21" => {
                fig21::run();
            }
            "fig22" => {
                fig22::run();
            }
            "extensions" => {
                extensions::elevation_itd();
                extensions::spherical_localization();
                extensions::externalization_proxy();
            }
            "ablations" => {
                ablations::fusion_ablation();
                ablations::head_model_ablation();
                ablations::room_gating_ablation();
                ablations::interpolation_ablation();
                ablations::nearfar_ablation();
                ablations::stops_sweep();
                ablations::robustness_sweep();
                ablations::beamforming_analysis();
            }
            other => eprintln!("unknown experiment '{other}' — see DESIGN.md for the list"),
        }
    }
    println!("\ndone.");
}
