//! Regenerates every figure of the paper's evaluation plus the ablations.
//!
//! ```sh
//! cargo run -p uniq-bench --release --bin experiments -- all
//! cargo run -p uniq-bench --release --bin experiments -- fig17 fig18
//! ```
//!
//! Each run also writes `bench_results/timings.json` with the wall time of
//! every executed target.

use uniq_bench::experiments::*;
use uniq_bench::timings::{TimingLog, TimingMeta};

/// Installed so the `alloc-profile` experiment can attribute allocations;
/// recording stays off for every other target.
#[global_allocator]
static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig2",
            "fig5",
            "fig9",
            "fig16",
            "fig17",
            "fig18",
            "fig21",
            "fig22",
            "ablations",
            "extensions",
            "batch",
            "robustness",
            "alloc-profile",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!("UNIQ evaluation reproduction — results land in bench_results/");
    let mut timings = TimingLog::new();
    // Cohort seeds start at 5000 (see cohort::run_cohort).
    timings.set_meta(TimingMeta::current(5000));
    for t in targets {
        match t {
            "fig2" => {
                timings.time("fig2", fig2::run);
            }
            "fig5" => {
                timings.time("fig5", fig5::run);
            }
            "fig9" => {
                timings.time("fig9", fig9::run);
            }
            "fig16" => {
                timings.time("fig16", fig16::run);
            }
            "fig17" => {
                timings.time("fig17", fig17::run);
            }
            // Figs 18, 19 and 20 share one computation.
            "fig18" | "fig19" | "fig20" => {
                timings.time(t, fig18_20::run);
            }
            "fig21" => {
                timings.time("fig21", fig21::run);
            }
            "fig22" => {
                timings.time("fig22", fig22::run);
            }
            "batch" => {
                timings.time("batch", batch_scaling::run);
            }
            "alloc-profile" => {
                timings.time("alloc-profile", || {
                    alloc_profile::run();
                });
            }
            "store" => {
                timings.time("store", store_scaling::run);
            }
            "serve" => {
                timings.time("serve", || {
                    serve_scaling::run();
                });
            }
            "robustness" => {
                timings.time("robustness", || {
                    robustness::run();
                });
            }
            "extensions" => {
                timings.time("extensions", || {
                    extensions::elevation_itd();
                    extensions::spherical_localization();
                    extensions::externalization_proxy();
                });
            }
            "ablations" => {
                timings.time("ablations", || {
                    ablations::fusion_ablation();
                    ablations::head_model_ablation();
                    ablations::room_gating_ablation();
                    ablations::interpolation_ablation();
                    ablations::nearfar_ablation();
                    ablations::stops_sweep();
                    ablations::robustness_sweep();
                    ablations::beamforming_analysis();
                });
            }
            other => eprintln!("unknown experiment '{other}' — see DESIGN.md for the list"),
        }
    }
    timings.write();

    println!("\ntimings:");
    for (name, secs) in timings.entries() {
        println!("  {name:<12} {secs:.2}s");
    }
    println!("\ndone.");
}
