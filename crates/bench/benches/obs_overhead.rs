//! Measures the cost of the uniq-obs instrumentation on the full
//! `personalize` pipeline: no sink installed (the fast `enabled()` check
//! short-circuits every probe), an explicit `NoopSink` (events are built
//! and dispatched but dropped), and a `MemorySink` (events are retained).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use uniq_core::config::UniqConfig;
use uniq_core::pipeline::personalize;
use uniq_obs::sink::{MemorySink, NoopSink};
use uniq_subjects::Subject;

fn cfg() -> UniqConfig {
    UniqConfig {
        in_room: false,
        snr_db: 45.0,
        grid_step_deg: 15.0,
        ..UniqConfig::fast_test()
    }
}

fn bench_obs_overhead(c: &mut Criterion) {
    let cfg = cfg();
    let subject = Subject::from_seed(70);

    let mut group = c.benchmark_group("personalize_obs");
    group.bench_function("no_sink", |b| {
        b.iter(|| personalize(std::hint::black_box(&subject), &cfg, 42).unwrap())
    });
    group.bench_function("noop_sink", |b| {
        b.iter(|| {
            uniq_obs::with_sink(Arc::new(NoopSink), || {
                personalize(std::hint::black_box(&subject), &cfg, 42).unwrap()
            })
        })
    });
    group.bench_function("memory_sink", |b| {
        b.iter(|| {
            uniq_obs::with_sink(Arc::new(MemorySink::new()), || {
                personalize(std::hint::black_box(&subject), &cfg, 42).unwrap()
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
