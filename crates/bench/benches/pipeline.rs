//! Criterion benchmarks for the UNIQ pipeline stages: localization, HRIR
//! rendering, channel estimation and AoA matching.

use criterion::{criterion_group, criterion_main, Criterion};
use uniq_acoustics::measure::{record_plane_wave, MeasurementSetup};
use uniq_acoustics::pinna::PinnaModel;
use uniq_acoustics::render::Renderer;
use uniq_core::aoa::estimate_known_source;
use uniq_core::config::UniqConfig;
use uniq_core::fusion::localize_phone;
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::vec2::unit_from_theta;
use uniq_geometry::{Ear, HeadBoundary, HeadParams};

fn bench_localize(c: &mut Criterion) {
    let boundary = HeadBoundary::new(HeadParams::average_adult(), 1024);
    let pos = unit_from_theta(55.0) * 0.42;
    let dl = path_to_ear(&boundary, pos, Ear::Left).unwrap().length;
    let dr = path_to_ear(&boundary, pos, Ear::Right).unwrap().length;
    c.bench_function("localize_phone", |b| {
        b.iter(|| localize_phone(std::hint::black_box(&boundary), dl, dr, 58.0))
    });
}

fn bench_render(c: &mut Criterion) {
    let cfg = uniq_acoustics::types::RenderConfig::default();
    let renderer = Renderer::new(
        HeadBoundary::new(HeadParams::average_adult(), 1024),
        PinnaModel::from_seed(1),
        PinnaModel::from_seed(2),
        cfg,
    );
    c.bench_function("render_point_source", |b| {
        let src = unit_from_theta(70.0) * 0.4;
        b.iter(|| renderer.render_point(std::hint::black_box(src)))
    });
    c.bench_function("render_plane_wave", |b| {
        b.iter(|| renderer.render_plane(std::hint::black_box(70.0)))
    });
}

fn bench_aoa(c: &mut Criterion) {
    let cfg = UniqConfig {
        grid_step_deg: 5.0,
        ..UniqConfig::fast_test()
    };
    let renderer = Renderer::new(
        HeadBoundary::new(HeadParams::average_adult(), 1024),
        PinnaModel::from_seed(3),
        PinnaModel::from_seed(4),
        cfg.render,
    );
    let bank = renderer.ground_truth_bank(&cfg.output_grid());
    let setup = MeasurementSetup::anechoic(cfg.render.sample_rate, 40.0);
    let probe = cfg.probe();
    let rec = record_plane_wave(&renderer, &setup, 65.0, &probe, 1);
    c.bench_function("aoa_known_source_37_templates", |b| {
        b.iter(|| {
            estimate_known_source(
                std::hint::black_box(&rec),
                std::hint::black_box(&probe),
                &bank,
                &cfg,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_localize, bench_render, bench_aoa
}
criterion_main!(benches);
