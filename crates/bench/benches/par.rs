//! Criterion micro-benchmarks for the uniq-par pool: scheduling overhead
//! of `par_map` against a plain sequential map, across pool sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn workload(x: &f64) -> f64 {
    let mut acc = *x;
    for _ in 0..64 {
        acc = acc.sin().mul_add(1.0001, 0.0001);
    }
    acc
}

fn bench_par_map(c: &mut Criterion) {
    let items: Vec<f64> = (0..4096).map(|k| k as f64 * 0.001).collect();
    let mut group = c.benchmark_group("par_map_4096");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            std::hint::black_box(&items)
                .iter()
                .map(workload)
                .collect::<Vec<f64>>()
        })
    });
    for threads in [1usize, 2, 4, 8] {
        let pool = uniq_par::pool(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &items, |b, items| {
            b.iter(|| pool.par_map(std::hint::black_box(items), workload))
        });
    }
    group.finish();
}

fn bench_scope_spawn(c: &mut Criterion) {
    let pool = uniq_par::pool(4);
    c.bench_function("scope_64_spawns", |b| {
        b.iter(|| {
            pool.scope(|scope| {
                for _ in 0..64 {
                    scope.spawn(|| {
                        std::hint::black_box(3.0f64.sqrt());
                    });
                }
            })
        })
    });
}

criterion_group!(benches, bench_par_map, bench_scope_spawn);
criterion_main!(benches);
