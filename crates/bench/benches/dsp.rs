//! Criterion micro-benchmarks for the DSP substrate: the inner loops the
//! whole pipeline stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniq_dsp::complex::Complex;
use uniq_dsp::conv::{convolve_direct, convolve_fft};
use uniq_dsp::deconv::wiener_deconvolve;
use uniq_dsp::fft::fft;
use uniq_dsp::signal::linear_chirp;
use uniq_dsp::xcorr::peak_normalized_xcorr;

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096, 16384] {
        let input: Vec<Complex> = (0..n)
            .map(|k| Complex::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| fft(std::hint::black_box(input)))
        });
    }
    group.finish();
}

fn bench_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("convolve");
    let signal = linear_chirp(100.0, 20_000.0, 0.05, 48_000.0);
    let ir: Vec<f64> = (0..512).map(|k| ((k * k) as f64 * 0.01).sin()).collect();
    group.bench_function("direct_2400x64", |b| {
        let short_ir = &ir[..64];
        b.iter(|| {
            convolve_direct(
                std::hint::black_box(&signal),
                std::hint::black_box(short_ir),
            )
        })
    });
    group.bench_function("fft_2400x512", |b| {
        b.iter(|| convolve_fft(std::hint::black_box(&signal), std::hint::black_box(&ir)))
    });
    group.finish();
}

fn bench_deconvolution(c: &mut Criterion) {
    let probe = linear_chirp(100.0, 20_000.0, 0.05, 48_000.0);
    let rx = convolve_fft(&probe, &{
        let mut h = vec![0.0; 512];
        h[60] = 1.0;
        h[90] = -0.4;
        h
    });
    c.bench_function("wiener_deconvolve_512", |b| {
        b.iter(|| {
            wiener_deconvolve(
                std::hint::black_box(&rx),
                std::hint::black_box(&probe),
                1e-3,
                512,
            )
        })
    });
}

fn bench_similarity(c: &mut Criterion) {
    let a = linear_chirp(100.0, 8_000.0, 0.01, 48_000.0);
    let b_sig = linear_chirp(120.0, 8_000.0, 0.01, 48_000.0);
    c.bench_function("peak_normalized_xcorr_480", |b| {
        b.iter(|| peak_normalized_xcorr(std::hint::black_box(&a), std::hint::black_box(&b_sig)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_convolution, bench_deconvolution, bench_similarity
}
criterion_main!(benches);
