//! Criterion micro-benchmarks for the geometry substrate: wrap paths are
//! the hottest call in sensor fusion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use uniq_geometry::critical::critical_angles;
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::planewave::plane_path_to_ear;
use uniq_geometry::vec2::unit_from_theta;
use uniq_geometry::{Ear, HeadBoundary, HeadParams};

fn bench_boundary_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("boundary_new");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| HeadBoundary::new(std::hint::black_box(HeadParams::average_adult()), n))
        });
    }
    group.finish();
}

fn bench_wrap_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_to_ear");
    for &n in &[256usize, 1024, 4096] {
        let boundary = HeadBoundary::new(HeadParams::average_adult(), n);
        let src = unit_from_theta(40.0) * 0.45;
        group.bench_with_input(BenchmarkId::new("shadowed", n), &boundary, |b, boundary| {
            b.iter(|| path_to_ear(std::hint::black_box(boundary), src, Ear::Right))
        });
        group.bench_with_input(BenchmarkId::new("lit", n), &boundary, |b, boundary| {
            b.iter(|| path_to_ear(std::hint::black_box(boundary), src, Ear::Left))
        });
    }
    group.finish();
}

fn bench_plane_wave(c: &mut Criterion) {
    let boundary = HeadBoundary::new(HeadParams::average_adult(), 1024);
    c.bench_function("plane_path_to_ear_1024", |b| {
        b.iter(|| plane_path_to_ear(std::hint::black_box(&boundary), 60.0, Ear::Right))
    });
}

fn bench_critical_angles(c: &mut Criterion) {
    let boundary = HeadBoundary::new(HeadParams::average_adult(), 1024);
    c.bench_function("critical_angles_1024", |b| {
        b.iter(|| critical_angles(std::hint::black_box(&boundary), 45.0, 0.45))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_boundary_construction, bench_wrap_path, bench_plane_wave, bench_critical_angles
}
criterion_main!(benches);
