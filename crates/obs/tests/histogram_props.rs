//! Property tests for the percentile math in `uniq_obs::report`: the
//! order-preserving [`Histogram`] and the log-bucketed [`LogHistogram`]
//! behind the profiling layer.

use proptest::prelude::*;
use uniq_obs::report::{Histogram, LogHistogram};

fn exact(values: &[f64]) -> Histogram {
    Histogram {
        name: "h".into(),
        unit: String::new(),
        values: values.to_vec(),
    }
}

fn log_hist(samples: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn exact_histogram_percentiles_are_monotone(
        values in prop::collection::vec(-1e9..1e9f64, 1..200),
    ) {
        let h = exact(&values);
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        prop_assert!(p50 <= p90, "p50 {p50} > p90 {p90}");
        prop_assert!(p90 <= p99, "p90 {p90} > p99 {p99}");
        prop_assert!(p99 <= h.max(), "p99 {p99} > max {}", h.max());
        prop_assert!(h.min() <= p50, "min {} > p50 {p50}", h.min());
        prop_assert_eq!(h.percentile(0.0), h.min());
        prop_assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn exact_histogram_percentile_brackets_sorted_ranks(
        values in prop::collection::vec(0.0..1e6f64, 2..150),
        p in 0.0..100.0f64,
    ) {
        // Linear interpolation must land between the two bracketing order
        // statistics.
        let h = exact(&values);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (p / 100.0) * (sorted.len() - 1) as f64;
        let lo = sorted[rank.floor() as usize];
        let hi = sorted[rank.ceil() as usize];
        let got = h.percentile(p);
        prop_assert!(got >= lo - 1e-9 && got <= hi + 1e-9, "p{p}: {got} outside [{lo}, {hi}]");
    }

    #[test]
    fn log_histogram_percentiles_are_monotone(
        samples in prop::collection::vec(0u64..50_000_000_000, 1..300),
    ) {
        let h = log_hist(&samples);
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        prop_assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max(),
            "disordered: p50 {p50} p90 {p90} p99 {p99} max {}", h.max());
        prop_assert!(h.min() <= p50);
        prop_assert_eq!(h.percentile(0.0), h.min());
        prop_assert_eq!(h.percentile(100.0), h.max());
    }

    #[test]
    fn log_histogram_bucket_relative_error_bounded(
        v in 1u64..u64::MAX / 2,
    ) {
        let q = LogHistogram::quantize(v);
        let err = (q as f64 - v as f64).abs() / v as f64;
        prop_assert!(
            err <= LogHistogram::REL_ERROR_BOUND,
            "quantize({v}) = {q}: relative error {err} exceeds bound {}",
            LogHistogram::REL_ERROR_BOUND
        );
    }

    #[test]
    fn log_histogram_percentile_within_bound_of_true_rank(
        samples in prop::collection::vec(1u64..10_000_000_000, 1..200),
        p in 0.0..100.0f64,
    ) {
        // The log-bucketed percentile must sit within the bucket error
        // bound of the exact nearest-rank percentile.
        let h = log_hist(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = (((p / 100.0) * sorted.len() as f64).ceil() as usize).max(1) - 1;
        let truth = sorted[rank] as f64;
        let got = h.percentile(p) as f64;
        prop_assert!(
            (got - truth).abs() / truth <= LogHistogram::REL_ERROR_BOUND,
            "p{p}: bucketed {got} vs exact {truth}"
        );
    }

    #[test]
    fn merging_per_thread_histograms_equals_single_thread(
        samples in prop::collection::vec(0u64..50_000_000_000, 0..300),
        parts in 1usize..8,
    ) {
        // A per-thread profile merged at the end must equal the profile a
        // single thread would have recorded over all the samples.
        let whole = log_hist(&samples);
        let mut merged = LogHistogram::new();
        let chunk = samples.len() / parts + 1;
        for part in samples.chunks(chunk.max(1)) {
            merged.merge(&log_hist(part));
        }
        prop_assert_eq!(&merged, &whole);
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), whole.percentile(p));
        }
    }
}
