//! # uniq-obs
//!
//! Structured tracing and metrics for the UNIQ personalization pipeline:
//! spans (scoped stage timers), counters, and numeric metrics, delivered
//! to a pluggable [`Sink`]. Zero external dependencies.
//!
//! Design goals, in order:
//!
//! 1. **Disabled is free.** With no sink installed, every instrumentation
//!    point is one relaxed atomic load and a branch. The pipeline's numeric
//!    output is identical with or without a sink — instrumentation only
//!    observes, never steers.
//! 2. **Scoped, not global-only.** Tests and concurrent callers install a
//!    sink for one closure on one thread ([`with_sink`]); long-lived
//!    processes (the CLI) may install a process-wide default
//!    ([`set_global_sink`]). The thread-local scope wins when both exist.
//! 3. **Pluggable output.** Four sinks ship: [`sink::NoopSink`],
//!    [`sink::StderrSink`] (indented live span tree), [`sink::JsonLinesSink`]
//!    (machine-readable events), and [`sink::MemorySink`] (in-process
//!    collector for assertions and end-of-run summaries). [`sink::MultiSink`]
//!    fans out to several.
//!
//! ```
//! use std::sync::Arc;
//! use uniq_obs::sink::MemorySink;
//!
//! let sink = Arc::new(MemorySink::new());
//! uniq_obs::with_sink(sink.clone(), || {
//!     let _span = uniq_obs::span("stage");
//!     uniq_obs::metric("stage.quality", 0.93, "corr");
//!     uniq_obs::counter("stage.retries", 1);
//! });
//! assert_eq!(sink.span_tree(), vec![("stage".to_string(), 0)]);
//! assert_eq!(sink.metric_values("stage.quality"), vec![0.93]);
//! assert_eq!(sink.counter_total("stage.retries"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod names;
pub mod report;
pub mod sink;

use sink::Sink;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Deterministic causal identifiers attached to span events.
///
/// Ids are pure functions of *tree position* — the enclosing trace, the
/// chain of ancestor spans (with explicit lane forks at
/// [`ObsContext::run_indexed`] boundaries), the span name, and the
/// sibling sequence number — never of scheduling, arrival order, or
/// process history. The same seeded workload therefore emits bit-identical
/// `(trace, span, parent)` triples at every thread count, and a JSONL
/// trace file reconstructs into the same tree however the run was
/// scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanIds {
    /// Per-run trace id (0 when no [`trace`] context is active).
    pub trace: u64,
    /// This span's id (unique within its trace; never 0).
    pub span: u64,
    /// The parent span's id (0 for trace roots).
    pub parent: u64,
}

/// One observability event, as delivered to sinks.
///
/// Span names are `&'static str` by design: instrumentation points are
/// compile-time sites, and static names keep the disabled path allocation
/// free.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened. `depth` is the nesting level on the emitting thread
    /// (0 = root).
    SpanStart {
        /// Span name (static instrumentation site).
        name: &'static str,
        /// Nesting depth at open time.
        depth: usize,
        /// Causal identity of this span.
        ids: SpanIds,
    },
    /// A span closed.
    SpanEnd {
        /// Span name (matches the corresponding start).
        name: &'static str,
        /// Nesting depth the span was opened at.
        depth: usize,
        /// Wall-clock duration, nanoseconds.
        nanos: u128,
        /// Causal identity of this span (matches the start event).
        ids: SpanIds,
    },
    /// A monotonically accumulating count.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment (always added, never replaced).
        delta: u64,
    },
    /// A numeric observation (one histogram sample).
    Metric {
        /// Metric name.
        name: &'static str,
        /// Observed value.
        value: f64,
        /// Unit label (e.g. `"deg"`, `"m"`, `"dB"`); purely descriptive.
        unit: &'static str,
    },
}

/// Count of installed sinks anywhere in the process (global + all scoped).
/// The fast-path "is anything listening?" check.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default sink (used when no thread-local scope is active).
static GLOBAL_SINK: OnceLock<Arc<dyn Sink>> = OnceLock::new();

thread_local! {
    /// Stack of scoped sinks on this thread; the innermost wins.
    static SCOPED: RefCell<Vec<Arc<dyn Sink>>> = const { RefCell::new(Vec::new()) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Active trace id on this thread (0 = none).
    static TRACE: Cell<u64> = const { Cell::new(0) };
    /// Open id-derivation frames on this thread (trace root, open spans,
    /// and lane forks installed by [`ObsContext::run`]/`run_indexed`).
    static ID_STACK: RefCell<Vec<IdFrame>> = const { RefCell::new(Vec::new()) };
    /// Innermost open span name on this thread — the *stage* a memory
    /// profiler attributes allocations to. A plain `Cell` of a `'static`
    /// pointer so reading it from inside a global allocator hook is
    /// allocation-free and re-entrancy-safe.
    static STAGE: Cell<Option<&'static str>> = const { Cell::new(None) };
    /// Non-zero while allocation attribution is suspended on this thread
    /// (sink dispatch, pool bookkeeping): see [`suspend_alloc_stage`].
    static STAGE_SUSPENDED: Cell<usize> = const { Cell::new(0) };
}

/// One frame of the id-derivation stack. `span` is the id reported as
/// parent by child spans; `key` seeds their id derivation (equal to `span`
/// for ordinary spans, forked per lane for cross-thread contexts so
/// parallel items mint disjoint ids while still naming the true parent).
#[derive(Debug, Clone, Copy)]
struct IdFrame {
    span: u64,
    key: u64,
    next_child: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Domain separators so trace ids, lane keys and span ids drawn from the
/// same seed never collide structurally.
const TRACE_SALT: u64 = 0x7261_6365_2d69_6431; // "race-id1"
const LANE_SALT: u64 = 0x6c61_6e65_2d69_6431; // "lane-id1"

fn fnv1a(name: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Fibonacci/SplitMix finalizer: a cheap, well-mixed 64-bit permutation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn mix(key: u64, salt: u64) -> u64 {
    splitmix64(key ^ splitmix64(salt))
}

fn nonzero(id: u64) -> u64 {
    if id == 0 {
        1
    } else {
        id
    }
}

fn derive_trace_id(key: u64) -> u64 {
    nonzero(mix(key, TRACE_SALT))
}

fn derive_lane_key(parent_key: u64, lane: u64) -> u64 {
    mix(parent_key, lane ^ LANE_SALT)
}

fn derive_span_id(parent_key: u64, name: &str, seq: u64) -> u64 {
    nonzero(mix(
        parent_key,
        fnv1a(name).wrapping_add(seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    ))
}

/// Derives this thread's next span identity for `name` and pushes its
/// frame. With no enclosing frame, the span roots directly under the
/// active trace (or trace 0 when none is active).
fn push_span_frame(name: &str) -> SpanIds {
    let trace = TRACE.with(|t| t.get());
    // The id stack grows lazily per thread; how deep any one thread
    // nests depends on which jobs it happened to run, so its growth is
    // infrastructure, not workload.
    let _quiet = suspend_alloc_stage();
    ID_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let (parent_span, parent_key, seq) = match stack.last_mut() {
            Some(frame) => {
                let seq = frame.next_child;
                frame.next_child += 1;
                (frame.span, frame.key, seq)
            }
            None => (0, trace, 0),
        };
        let span = derive_span_id(parent_key, name, seq);
        stack.push(IdFrame {
            span,
            key: span,
            next_child: 0,
        });
        SpanIds {
            trace,
            span,
            parent: parent_span,
        }
    })
}

fn pop_span_frame(ids: SpanIds) {
    ID_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        // Tolerate imbalance (a sink scope torn down mid-span): only pop
        // the frame this span actually pushed.
        if stack.last().map(|f| f.span) == Some(ids.span) {
            stack.pop();
        }
    });
}

/// Begins a deterministic trace on this thread: all spans opened until the
/// returned guard drops share one `trace_id` derived from `key` (a seed,
/// typically), and root spans get `parent_id = 0`. Nested calls are no-ops
/// — the outermost trace wins — so a pipeline entry point can install its
/// per-attempt trace unconditionally even when a batch driver already did.
/// Inert (and free) when no sink is installed.
#[must_use = "the trace ends when the guard drops — bind it with `let _trace = ...`"]
pub fn trace(key: u64) -> TraceGuard {
    if !enabled() || TRACE.with(|t| t.get()) != 0 {
        return TraceGuard { owned: None };
    }
    let id = derive_trace_id(key);
    TRACE.with(|t| t.set(id));
    let _quiet = suspend_alloc_stage();
    ID_STACK.with(|s| {
        s.borrow_mut().push(IdFrame {
            span: 0,
            key: id,
            next_child: 0,
        })
    });
    TraceGuard { owned: Some(id) }
}

/// RAII guard for an active trace context (see [`trace`]).
#[derive(Debug)]
pub struct TraceGuard {
    owned: Option<u64>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some(id) = self.owned.take() {
            ID_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                if let Some(top) = stack.last() {
                    if top.span == 0 && top.key == id {
                        stack.pop();
                    }
                }
            });
            TRACE.with(|t| t.set(0));
        }
    }
}

/// Whether any sink could currently receive events. This is the cheap
/// enabled-check instrumentation sites use before doing *any* other work;
/// when it returns `false` the cost is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SINKS.load(Ordering::Relaxed) != 0 && current_sink().is_some()
}

/// Current span nesting depth on this thread (0 when no span is open).
/// Used by display sinks to indent metric/counter lines under the
/// enclosing span.
pub fn current_depth() -> usize {
    DEPTH.with(|d| d.get())
}

/// The stage a memory profiler should attribute an allocation made *right
/// now, on this thread* to: the innermost open span's name, or `None`
/// when no span is open or attribution is suspended (see
/// [`suspend_alloc_stage`]). Allocation-free and re-entrancy-safe by
/// construction — `uniq-memprof` calls this from inside its
/// `#[global_allocator]` hook.
#[inline]
pub fn alloc_stage() -> Option<&'static str> {
    if STAGE_SUSPENDED.with(|s| s.get()) != 0 {
        return None;
    }
    STAGE.with(|s| s.get())
}

/// The innermost open span name regardless of suspension — the value a
/// work-submission point (e.g. `uniq-par`'s `Scope::spawn`) captures and
/// hands to the worker thread via [`with_alloc_stage`], so allocations a
/// parallel closure makes are attributed to the same stage they would be
/// attributed to when the closure runs inline. This is what makes
/// per-stage allocation totals bit-identical across thread counts.
#[inline]
pub fn alloc_stage_handoff() -> Option<&'static str> {
    STAGE.with(|s| s.get())
}

/// Suspends allocation attribution on this thread until the guard drops:
/// [`alloc_stage`] returns `None` inside. Used around allocations that
/// belong to *observability or scheduling infrastructure* — sink dispatch,
/// pool queues, chunk buckets — whose shape legitimately varies with
/// thread count or event arrival order. Excluding them keeps the
/// per-stage allocation profile a pure function of the workload.
#[must_use = "attribution resumes when the guard drops — bind it with `let _quiet = ...`"]
pub fn suspend_alloc_stage() -> AllocStageSuspendGuard {
    STAGE_SUSPENDED.with(|s| s.set(s.get() + 1));
    AllocStageSuspendGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// RAII guard for suspended allocation attribution (see
/// [`suspend_alloc_stage`]).
#[derive(Debug)]
pub struct AllocStageSuspendGuard {
    /// Suspension is a thread-local count; the guard must drop on the
    /// thread that created it.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AllocStageSuspendGuard {
    fn drop(&mut self) {
        STAGE_SUSPENDED.with(|s| s.set(s.get().saturating_sub(1)));
    }
}

/// Runs `f` with `stage` installed as this thread's allocation-attribution
/// stage, restoring the previous value afterwards (exception safe). Worker
/// pools call this with the value captured by [`alloc_stage_handoff`] at
/// submission time; spans `f` opens override it as usual.
pub fn with_alloc_stage<T>(stage: Option<&'static str>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<&'static str>);
    impl Drop for Restore {
        fn drop(&mut self) {
            STAGE.with(|s| s.set(self.0));
        }
    }
    let prev = STAGE.with(|s| s.replace(stage));
    let _restore = Restore(prev);
    f()
}

fn current_sink() -> Option<Arc<dyn Sink>> {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    scoped.or_else(|| GLOBAL_SINK.get().cloned())
}

/// The sink events on this thread currently land in — the innermost
/// [`with_sink`] scope, else the global sink; `None` when nothing is
/// installed. Lets a caller *compose* with the ambient sink (fan out to
/// it and a private sink through [`sink::MultiSink`]) instead of a nested
/// [`with_sink`] scope silently shadowing it — `uniq loadgen` uses this
/// to feed its latency profiler without stealing events from `--trace`
/// or `--metrics-out`.
pub fn ambient_sink() -> Option<Arc<dyn Sink>> {
    current_sink()
}

/// Installs `sink` as the process-wide default. Returns `false` if a global
/// sink was already installed (the first installation wins, as with a
/// logger). Scoped sinks from [`with_sink`] still take precedence on their
/// thread.
pub fn set_global_sink(sink: Arc<dyn Sink>) -> bool {
    let installed = GLOBAL_SINK.set(sink).is_ok();
    if installed {
        ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    }
    installed
}

/// Flushes the process-wide sink, if one is installed. A global sink
/// lives in a `OnceLock` and is never dropped, so buffered sinks (e.g.
/// [`sink::JsonLinesSink`]) would otherwise lose their tail at process
/// exit; long-lived entry points call this on their way out.
pub fn flush_global_sink() {
    if let Some(sink) = GLOBAL_SINK.get() {
        sink.flush();
    }
}

/// Runs `f` with `sink` receiving this thread's events, restoring the
/// previous state afterwards (exception safe). Scopes nest; the innermost
/// sink receives the events.
pub fn with_sink<T>(sink: Arc<dyn Sink>, f: impl FnOnce() -> T) -> T {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SCOPED.with(|s| s.borrow_mut().pop());
            ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    {
        // The scoped-sink stack grows lazily per thread; which worker
        // first nests deep enough to trigger a growth is scheduling
        // noise, so keep it out of the per-stage memory profile.
        let _quiet = suspend_alloc_stage();
        SCOPED.with(|s| s.borrow_mut().push(sink));
    }
    ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard;
    f()
}

/// A snapshot of this thread's observability state — the active sink (if
/// any) and the current span depth — that can be carried to another
/// thread and reinstalled there with [`ObsContext::run`].
///
/// Worker-pool code uses this so events emitted on pool threads land in
/// the *caller's* sink at the caller's nesting depth, exactly as if the
/// work had run inline. Without it, scoped sinks (which are thread-local)
/// would silently drop everything produced on workers.
///
/// ```
/// use std::sync::Arc;
/// use uniq_obs::sink::MemorySink;
///
/// let sink = Arc::new(MemorySink::new());
/// uniq_obs::with_sink(sink.clone(), || {
///     let _outer = uniq_obs::span("outer");
///     let ctx = uniq_obs::capture();
///     std::thread::scope(|s| {
///         s.spawn(|| ctx.run(|| uniq_obs::metric("from.worker", 1.0, "")));
///     });
/// });
/// assert_eq!(sink.metric_values("from.worker"), vec![1.0]);
/// ```
#[derive(Clone)]
pub struct ObsContext {
    sink: Option<Arc<dyn Sink>>,
    depth: usize,
    trace: u64,
    parent_span: u64,
    parent_key: u64,
    stage: Option<&'static str>,
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("has_sink", &self.sink.is_some())
            .field("depth", &self.depth)
            .field("trace", &self.trace)
            .field("parent_span", &self.parent_span)
            .finish()
    }
}

/// Captures the calling thread's current sink, span depth, and causal
/// position (trace id + innermost open span). Cheap when no sink is
/// installed.
pub fn capture() -> ObsContext {
    let active = ACTIVE_SINKS.load(Ordering::Relaxed) != 0;
    let trace = if active { TRACE.with(|t| t.get()) } else { 0 };
    let (parent_span, parent_key) = if active {
        ID_STACK.with(|s| {
            s.borrow()
                .last()
                .map(|f| (f.span, f.key))
                .unwrap_or((0, trace))
        })
    } else {
        (0, 0)
    };
    ObsContext {
        sink: if active { current_sink() } else { None },
        depth: current_depth(),
        trace,
        parent_span,
        parent_key,
        stage: alloc_stage_handoff(),
    }
}

impl ObsContext {
    /// Runs `f` with this context's sink, span depth and causal position
    /// installed on the current thread, restoring the previous state
    /// afterwards (exception safe). With no captured sink, `f` runs
    /// unmodified.
    ///
    /// Spans `f` opens derive their ids from the captured position
    /// directly; in a parallel fan-out where several items run under one
    /// captured context, use [`ObsContext::run_indexed`] instead so each
    /// item mints disjoint span ids.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        self.run_with_key(self.parent_key, f)
    }

    /// Like [`ObsContext::run`], but forks the id-derivation key by
    /// `lane` — a deterministic per-item number (item index, seed, …) that
    /// does not depend on scheduling. Every lane derives a disjoint span-id
    /// sequence while spans still report the captured span as parent, so
    /// per-item subtrees stay unique *and* bit-identical across thread
    /// counts.
    pub fn run_indexed<T>(&self, lane: u64, f: impl FnOnce() -> T) -> T {
        self.run_with_key(derive_lane_key(self.parent_key, lane), f)
    }

    fn run_with_key<T>(&self, key: u64, f: impl FnOnce() -> T) -> T {
        let Some(sink) = self.sink.clone() else {
            return f();
        };
        let depth = self.depth;
        let trace = self.trace;
        let parent_span = self.parent_span;
        with_sink(sink, || {
            struct DepthGuard(usize);
            impl Drop for DepthGuard {
                fn drop(&mut self) {
                    DEPTH.with(|d| d.set(self.0));
                }
            }
            struct IdGuard {
                prev_trace: u64,
                prev_len: usize,
            }
            impl Drop for IdGuard {
                fn drop(&mut self) {
                    ID_STACK.with(|s| s.borrow_mut().truncate(self.prev_len));
                    TRACE.with(|t| t.set(self.prev_trace));
                }
            }
            let prev = DEPTH.with(|d| {
                let v = d.get();
                d.set(depth);
                v
            });
            let _restore = DepthGuard(prev);
            let prev_trace = TRACE.with(|t| {
                let v = t.get();
                t.set(trace);
                v
            });
            let prev_len = ID_STACK.with(|s| {
                let _quiet = suspend_alloc_stage();
                let mut stack = s.borrow_mut();
                let len = stack.len();
                stack.push(IdFrame {
                    span: parent_span,
                    key,
                    next_child: 0,
                });
                len
            });
            let _ids = IdGuard {
                prev_trace,
                prev_len,
            };
            with_alloc_stage(self.stage, f)
        })
    }
}

fn dispatch(event: &Event) {
    if let Some(sink) = current_sink() {
        // Sink internals (aggregation maps, buffers, labels) allocate in
        // event-arrival order, which is scheduling noise — keep those
        // allocations out of the per-stage memory profile.
        let _quiet = suspend_alloc_stage();
        sink.on_event(event);
    }
}

/// Opens a span: emits [`Event::SpanStart`] now and [`Event::SpanEnd`] with
/// the elapsed wall time when the returned guard drops. When no sink is
/// installed the guard is inert and nothing is measured.
#[must_use = "the span closes when the guard drops — bind it with `let _span = ...`"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let ids = push_span_frame(name);
    let prev_stage = STAGE.with(|s| s.replace(Some(name)));
    dispatch(&Event::SpanStart { name, depth, ids });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            depth,
            ids,
            prev_stage,
            start: Instant::now(),
        }),
    }
}

struct LiveSpan {
    name: &'static str,
    depth: usize,
    ids: SpanIds,
    prev_stage: Option<&'static str>,
    start: Instant,
}

/// RAII guard for an open span (see [`span`]).
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.live.as_ref().map(|l| l.name))
            .finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            STAGE.with(|s| s.set(live.prev_stage));
            pop_span_frame(live.ids);
            dispatch(&Event::SpanEnd {
                name: live.name,
                depth: live.depth,
                nanos: live.start.elapsed().as_nanos(),
                ids: live.ids,
            });
        }
    }
}

/// A wall-clock stopwatch for timing that feeds observability.
///
/// Result-producing crates are barred from `std::time` by
/// `uniq-analyzer`'s `wall-clock` rule: a time read in a compute path
/// can silently steer results. Timing that only *describes* a run —
/// per-subject seconds, throughput sweeps — goes through this type
/// instead, which keeps the clock access inside `uniq-obs` where the
/// rule (and a reviewer) can see that no timestamp flows back into
/// numerics.
///
/// ```
/// let sw = uniq_obs::Stopwatch::start();
/// let secs = sw.elapsed_seconds();
/// assert!(secs >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Records a numeric observation (one histogram sample).
#[inline]
pub fn metric(name: &'static str, value: f64, unit: &'static str) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Metric { name, value, unit });
}

/// Increments a counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Counter { name, delta });
}

#[cfg(test)]
mod tests {
    use super::sink::MemorySink;
    use super::*;

    #[test]
    fn disabled_by_default_and_inert() {
        // No scoped sink on this thread → span/metric/counter are no-ops.
        let g = span("nobody-listens");
        metric("m", 1.0, "");
        counter("c", 1);
        drop(g);
    }

    #[test]
    fn span_nesting_depths_recorded() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        });
        assert_eq!(
            sink.span_tree(),
            vec![
                ("outer".to_string(), 0),
                ("inner".to_string(), 1),
                ("sibling".to_string(), 1),
            ]
        );
        // Every start has a matching end with plausible timing.
        let ends: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::SpanEnd { .. }))
            .collect();
        assert_eq!(ends.len(), 3);
    }

    #[test]
    fn scoped_sink_restored_after_panic_free_exit() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _s = span("in-scope");
        });
        let _after = span("out-of-scope");
        assert_eq!(sink.span_tree().len(), 1);
    }

    #[test]
    fn nested_scopes_innermost_wins() {
        let outer = Arc::new(MemorySink::new());
        let inner = Arc::new(MemorySink::new());
        with_sink(outer.clone(), || {
            metric("seen.outer", 1.0, "");
            with_sink(inner.clone(), || metric("seen.inner", 2.0, ""));
            metric("seen.outer", 3.0, "");
        });
        assert_eq!(outer.metric_values("seen.outer"), vec![1.0, 3.0]);
        assert_eq!(outer.metric_values("seen.inner"), Vec::<f64>::new());
        assert_eq!(inner.metric_values("seen.inner"), vec![2.0]);
    }

    #[test]
    fn context_carries_sink_and_depth_across_threads() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _outer = span("outer");
            let ctx = capture();
            std::thread::scope(|s| {
                s.spawn(|| {
                    ctx.run(|| {
                        let _inner = span("worker-span");
                        counter("worker.events", 1);
                    });
                });
            });
        });
        // The worker's span nests under "outer" exactly as inline code would.
        assert_eq!(
            sink.span_tree(),
            vec![("outer".to_string(), 0), ("worker-span".to_string(), 1)]
        );
        assert_eq!(sink.counter_total("worker.events"), 1);
    }

    #[test]
    fn context_without_sink_is_transparent() {
        let ctx = capture();
        assert_eq!(ctx.run(|| 41 + 1), 42);
    }

    #[test]
    fn counters_accumulate() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            counter("retries", 1);
            counter("retries", 2);
        });
        assert_eq!(sink.counter_total("retries"), 3);
    }

    fn start_ids(events: &[Event]) -> Vec<(&'static str, SpanIds)> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, ids, .. } => Some((*name, *ids)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn span_ids_deterministic_unique_and_linked() {
        let record = || {
            let sink = Arc::new(MemorySink::new());
            with_sink(sink.clone(), || {
                let _trace = trace(42);
                let _root = span("root");
                {
                    let _a = span("a");
                }
                {
                    let _a = span("a");
                }
                let _b = span("b");
            });
            start_ids(&sink.events())
        };
        let first = record();
        let second = record();
        assert_eq!(first, second, "ids depend on something besides position");

        let ids: Vec<SpanIds> = first.iter().map(|(_, i)| *i).collect();
        assert!(ids.iter().all(|i| i.trace == ids[0].trace && i.trace != 0));
        for (k, i) in ids.iter().enumerate() {
            assert!(i.span != 0);
            assert!(
                !ids[..k].iter().any(|j| j.span == i.span),
                "duplicate span id at position {k}"
            );
        }
        // Both `a` siblings and `b` parent to `root`; `root` is the trace root.
        assert_eq!(ids[0].parent, 0);
        for child in &ids[1..] {
            assert_eq!(child.parent, ids[0].span);
        }
    }

    #[test]
    fn sibling_spans_same_name_get_distinct_ids() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _trace = trace(7);
            let _root = span("root");
            for _ in 0..3 {
                let _leaf = span("leaf");
            }
        });
        let ids = start_ids(&sink.events());
        let leaves: Vec<u64> = ids
            .iter()
            .filter(|(n, _)| *n == "leaf")
            .map(|(_, i)| i.span)
            .collect();
        assert_eq!(leaves.len(), 3);
        assert!(leaves[0] != leaves[1] && leaves[1] != leaves[2] && leaves[0] != leaves[2]);
    }

    #[test]
    fn nested_trace_is_a_noop_and_outer_wins() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _outer = trace(1);
            let outer_id = TRACE.with(|t| t.get());
            {
                let _inner = trace(2);
                assert_eq!(TRACE.with(|t| t.get()), outer_id, "inner trace took over");
                let _s = span("inside");
            }
            assert_eq!(
                TRACE.with(|t| t.get()),
                outer_id,
                "inner drop cleared trace"
            );
        });
        assert_eq!(TRACE.with(|t| t.get()), 0, "trace leaked past its guard");
        let ids = start_ids(&sink.events());
        assert_eq!(ids[0].1.trace, derive_trace_id(1));
    }

    #[test]
    fn run_indexed_forks_lanes_deterministically() {
        let record = |lanes: &[u64]| {
            let sink = Arc::new(MemorySink::new());
            let mut out = Vec::new();
            with_sink(sink.clone(), || {
                let _trace = trace(9);
                let _root = span("root");
                let ctx = capture();
                for &lane in lanes {
                    ctx.run_indexed(lane, || {
                        let _item = span("item");
                    });
                }
            });
            out.extend(start_ids(&sink.events()));
            out
        };
        let inline = record(&[0, 1, 2]);
        // The same lanes visited in a different order (as a racing pool
        // would) mint the same per-lane ids.
        let shuffled = record(&[2, 0, 1]);
        let key = |v: &[(&str, SpanIds)]| {
            let mut items: Vec<SpanIds> = v
                .iter()
                .filter(|(n, _)| *n == "item")
                .map(|(_, i)| *i)
                .collect();
            items.sort_by_key(|i| i.span);
            items
        };
        assert_eq!(key(&inline), key(&shuffled));
        let items = key(&inline);
        assert_eq!(items.len(), 3);
        let root = inline[0].1;
        for item in &items {
            assert_eq!(item.parent, root.span, "lane child lost its true parent");
            assert_eq!(item.trace, root.trace);
        }
    }

    #[test]
    fn alloc_stage_tracks_innermost_open_span() {
        assert_eq!(alloc_stage(), None);
        let sink = Arc::new(MemorySink::new());
        with_sink(sink, || {
            assert_eq!(alloc_stage(), None);
            let _outer = span("outer");
            assert_eq!(alloc_stage(), Some("outer"));
            {
                let _inner = span("inner");
                assert_eq!(alloc_stage(), Some("inner"));
            }
            assert_eq!(alloc_stage(), Some("outer"));
        });
        assert_eq!(alloc_stage(), None);
    }

    #[test]
    fn alloc_stage_suspension_nests_and_restores() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink, || {
            let _s = span("stage");
            {
                let _quiet = suspend_alloc_stage();
                assert_eq!(alloc_stage(), None);
                // The raw handoff value still sees the span.
                assert_eq!(alloc_stage_handoff(), Some("stage"));
                {
                    let _deeper = suspend_alloc_stage();
                    assert_eq!(alloc_stage(), None);
                }
                assert_eq!(alloc_stage(), None, "inner drop ended outer suspension");
            }
            assert_eq!(alloc_stage(), Some("stage"));
        });
    }

    #[test]
    fn with_alloc_stage_installs_and_restores() {
        assert_eq!(alloc_stage(), None);
        with_alloc_stage(Some("carried"), || {
            assert_eq!(alloc_stage(), Some("carried"));
        });
        assert_eq!(alloc_stage(), None);
    }

    #[test]
    fn context_carries_stage_to_workers() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink, || {
            let _outer = span("outer");
            let ctx = capture();
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert_eq!(alloc_stage(), None);
                    ctx.run(|| assert_eq!(alloc_stage(), Some("outer")));
                    assert_eq!(alloc_stage(), None);
                });
            });
        });
    }

    #[test]
    fn run_indexed_across_threads_matches_inline() {
        let run = |parallel: bool| {
            let sink = Arc::new(MemorySink::new());
            with_sink(sink.clone(), || {
                let _trace = trace(11);
                let _root = span("root");
                let ctx = capture();
                if parallel {
                    std::thread::scope(|s| {
                        for lane in 0..4u64 {
                            let ctx = ctx.clone();
                            s.spawn(move || {
                                ctx.run_indexed(lane, || {
                                    let _w = span("work");
                                })
                            });
                        }
                    });
                } else {
                    for lane in 0..4u64 {
                        ctx.run_indexed(lane, || {
                            let _w = span("work");
                        });
                    }
                }
            });
            let mut ids = start_ids(&sink.events());
            ids.sort_by_key(|(_, i)| i.span);
            ids
        };
        assert_eq!(run(false), run(true));
    }
}
