//! # uniq-obs
//!
//! Structured tracing and metrics for the UNIQ personalization pipeline:
//! spans (scoped stage timers), counters, and numeric metrics, delivered
//! to a pluggable [`Sink`]. Zero external dependencies.
//!
//! Design goals, in order:
//!
//! 1. **Disabled is free.** With no sink installed, every instrumentation
//!    point is one relaxed atomic load and a branch. The pipeline's numeric
//!    output is identical with or without a sink — instrumentation only
//!    observes, never steers.
//! 2. **Scoped, not global-only.** Tests and concurrent callers install a
//!    sink for one closure on one thread ([`with_sink`]); long-lived
//!    processes (the CLI) may install a process-wide default
//!    ([`set_global_sink`]). The thread-local scope wins when both exist.
//! 3. **Pluggable output.** Four sinks ship: [`sink::NoopSink`],
//!    [`sink::StderrSink`] (indented live span tree), [`sink::JsonLinesSink`]
//!    (machine-readable events), and [`sink::MemorySink`] (in-process
//!    collector for assertions and end-of-run summaries). [`sink::MultiSink`]
//!    fans out to several.
//!
//! ```
//! use std::sync::Arc;
//! use uniq_obs::sink::MemorySink;
//!
//! let sink = Arc::new(MemorySink::new());
//! uniq_obs::with_sink(sink.clone(), || {
//!     let _span = uniq_obs::span("stage");
//!     uniq_obs::metric("stage.quality", 0.93, "corr");
//!     uniq_obs::counter("stage.retries", 1);
//! });
//! assert_eq!(sink.span_tree(), vec![("stage".to_string(), 0)]);
//! assert_eq!(sink.metric_values("stage.quality"), vec![0.93]);
//! assert_eq!(sink.counter_total("stage.retries"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod names;
pub mod report;
pub mod sink;

use sink::Sink;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One observability event, as delivered to sinks.
///
/// Span names are `&'static str` by design: instrumentation points are
/// compile-time sites, and static names keep the disabled path allocation
/// free.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opened. `depth` is the nesting level on the emitting thread
    /// (0 = root).
    SpanStart {
        /// Span name (static instrumentation site).
        name: &'static str,
        /// Nesting depth at open time.
        depth: usize,
    },
    /// A span closed.
    SpanEnd {
        /// Span name (matches the corresponding start).
        name: &'static str,
        /// Nesting depth the span was opened at.
        depth: usize,
        /// Wall-clock duration, nanoseconds.
        nanos: u128,
    },
    /// A monotonically accumulating count.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment (always added, never replaced).
        delta: u64,
    },
    /// A numeric observation (one histogram sample).
    Metric {
        /// Metric name.
        name: &'static str,
        /// Observed value.
        value: f64,
        /// Unit label (e.g. `"deg"`, `"m"`, `"dB"`); purely descriptive.
        unit: &'static str,
    },
}

/// Count of installed sinks anywhere in the process (global + all scoped).
/// The fast-path "is anything listening?" check.
static ACTIVE_SINKS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide default sink (used when no thread-local scope is active).
static GLOBAL_SINK: OnceLock<Arc<dyn Sink>> = OnceLock::new();

thread_local! {
    /// Stack of scoped sinks on this thread; the innermost wins.
    static SCOPED: RefCell<Vec<Arc<dyn Sink>>> = const { RefCell::new(Vec::new()) };
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Whether any sink could currently receive events. This is the cheap
/// enabled-check instrumentation sites use before doing *any* other work;
/// when it returns `false` the cost is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SINKS.load(Ordering::Relaxed) != 0 && current_sink().is_some()
}

/// Current span nesting depth on this thread (0 when no span is open).
/// Used by display sinks to indent metric/counter lines under the
/// enclosing span.
pub fn current_depth() -> usize {
    DEPTH.with(|d| d.get())
}

fn current_sink() -> Option<Arc<dyn Sink>> {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    scoped.or_else(|| GLOBAL_SINK.get().cloned())
}

/// Installs `sink` as the process-wide default. Returns `false` if a global
/// sink was already installed (the first installation wins, as with a
/// logger). Scoped sinks from [`with_sink`] still take precedence on their
/// thread.
pub fn set_global_sink(sink: Arc<dyn Sink>) -> bool {
    let installed = GLOBAL_SINK.set(sink).is_ok();
    if installed {
        ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    }
    installed
}

/// Flushes the process-wide sink, if one is installed. A global sink
/// lives in a `OnceLock` and is never dropped, so buffered sinks (e.g.
/// [`sink::JsonLinesSink`]) would otherwise lose their tail at process
/// exit; long-lived entry points call this on their way out.
pub fn flush_global_sink() {
    if let Some(sink) = GLOBAL_SINK.get() {
        sink.flush();
    }
}

/// Runs `f` with `sink` receiving this thread's events, restoring the
/// previous state afterwards (exception safe). Scopes nest; the innermost
/// sink receives the events.
pub fn with_sink<T>(sink: Arc<dyn Sink>, f: impl FnOnce() -> T) -> T {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            SCOPED.with(|s| s.borrow_mut().pop());
            ACTIVE_SINKS.fetch_sub(1, Ordering::Relaxed);
        }
    }
    SCOPED.with(|s| s.borrow_mut().push(sink));
    ACTIVE_SINKS.fetch_add(1, Ordering::Relaxed);
    let _guard = Guard;
    f()
}

/// A snapshot of this thread's observability state — the active sink (if
/// any) and the current span depth — that can be carried to another
/// thread and reinstalled there with [`ObsContext::run`].
///
/// Worker-pool code uses this so events emitted on pool threads land in
/// the *caller's* sink at the caller's nesting depth, exactly as if the
/// work had run inline. Without it, scoped sinks (which are thread-local)
/// would silently drop everything produced on workers.
///
/// ```
/// use std::sync::Arc;
/// use uniq_obs::sink::MemorySink;
///
/// let sink = Arc::new(MemorySink::new());
/// uniq_obs::with_sink(sink.clone(), || {
///     let _outer = uniq_obs::span("outer");
///     let ctx = uniq_obs::capture();
///     std::thread::scope(|s| {
///         s.spawn(|| ctx.run(|| uniq_obs::metric("from.worker", 1.0, "")));
///     });
/// });
/// assert_eq!(sink.metric_values("from.worker"), vec![1.0]);
/// ```
#[derive(Clone)]
pub struct ObsContext {
    sink: Option<Arc<dyn Sink>>,
    depth: usize,
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("has_sink", &self.sink.is_some())
            .field("depth", &self.depth)
            .finish()
    }
}

/// Captures the calling thread's current sink and span depth. Cheap when
/// no sink is installed.
pub fn capture() -> ObsContext {
    ObsContext {
        sink: if ACTIVE_SINKS.load(Ordering::Relaxed) != 0 {
            current_sink()
        } else {
            None
        },
        depth: current_depth(),
    }
}

impl ObsContext {
    /// Runs `f` with this context's sink and span depth installed on the
    /// current thread, restoring the previous state afterwards (exception
    /// safe). With no captured sink, `f` runs unmodified.
    pub fn run<T>(&self, f: impl FnOnce() -> T) -> T {
        let Some(sink) = self.sink.clone() else {
            return f();
        };
        let depth = self.depth;
        with_sink(sink, || {
            struct DepthGuard(usize);
            impl Drop for DepthGuard {
                fn drop(&mut self) {
                    DEPTH.with(|d| d.set(self.0));
                }
            }
            let prev = DEPTH.with(|d| {
                let v = d.get();
                d.set(depth);
                v
            });
            let _restore = DepthGuard(prev);
            f()
        })
    }
}

fn dispatch(event: &Event) {
    if let Some(sink) = current_sink() {
        sink.on_event(event);
    }
}

/// Opens a span: emits [`Event::SpanStart`] now and [`Event::SpanEnd`] with
/// the elapsed wall time when the returned guard drops. When no sink is
/// installed the guard is inert and nothing is measured.
#[must_use = "the span closes when the guard drops — bind it with `let _span = ...`"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    dispatch(&Event::SpanStart { name, depth });
    SpanGuard {
        live: Some(LiveSpan {
            name,
            depth,
            start: Instant::now(),
        }),
    }
}

struct LiveSpan {
    name: &'static str,
    depth: usize,
    start: Instant,
}

/// RAII guard for an open span (see [`span`]).
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("name", &self.live.as_ref().map(|l| l.name))
            .finish()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            dispatch(&Event::SpanEnd {
                name: live.name,
                depth: live.depth,
                nanos: live.start.elapsed().as_nanos(),
            });
        }
    }
}

/// A wall-clock stopwatch for timing that feeds observability.
///
/// Result-producing crates are barred from `std::time` by
/// `uniq-analyzer`'s `wall-clock` rule: a time read in a compute path
/// can silently steer results. Timing that only *describes* a run —
/// per-subject seconds, throughput sweeps — goes through this type
/// instead, which keeps the clock access inside `uniq-obs` where the
/// rule (and a reviewer) can see that no timestamp flows back into
/// numerics.
///
/// ```
/// let sw = uniq_obs::Stopwatch::start();
/// let secs = sw.elapsed_seconds();
/// assert!(secs >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Records a numeric observation (one histogram sample).
#[inline]
pub fn metric(name: &'static str, value: f64, unit: &'static str) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Metric { name, value, unit });
}

/// Increments a counter.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Counter { name, delta });
}

#[cfg(test)]
mod tests {
    use super::sink::MemorySink;
    use super::*;

    #[test]
    fn disabled_by_default_and_inert() {
        // No scoped sink on this thread → span/metric/counter are no-ops.
        let g = span("nobody-listens");
        metric("m", 1.0, "");
        counter("c", 1);
        drop(g);
    }

    #[test]
    fn span_nesting_depths_recorded() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            let _sibling = span("sibling");
        });
        assert_eq!(
            sink.span_tree(),
            vec![
                ("outer".to_string(), 0),
                ("inner".to_string(), 1),
                ("sibling".to_string(), 1),
            ]
        );
        // Every start has a matching end with plausible timing.
        let ends: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| matches!(e, Event::SpanEnd { .. }))
            .collect();
        assert_eq!(ends.len(), 3);
    }

    #[test]
    fn scoped_sink_restored_after_panic_free_exit() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _s = span("in-scope");
        });
        let _after = span("out-of-scope");
        assert_eq!(sink.span_tree().len(), 1);
    }

    #[test]
    fn nested_scopes_innermost_wins() {
        let outer = Arc::new(MemorySink::new());
        let inner = Arc::new(MemorySink::new());
        with_sink(outer.clone(), || {
            metric("seen.outer", 1.0, "");
            with_sink(inner.clone(), || metric("seen.inner", 2.0, ""));
            metric("seen.outer", 3.0, "");
        });
        assert_eq!(outer.metric_values("seen.outer"), vec![1.0, 3.0]);
        assert_eq!(outer.metric_values("seen.inner"), Vec::<f64>::new());
        assert_eq!(inner.metric_values("seen.inner"), vec![2.0]);
    }

    #[test]
    fn context_carries_sink_and_depth_across_threads() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            let _outer = span("outer");
            let ctx = capture();
            std::thread::scope(|s| {
                s.spawn(|| {
                    ctx.run(|| {
                        let _inner = span("worker-span");
                        counter("worker.events", 1);
                    });
                });
            });
        });
        // The worker's span nests under "outer" exactly as inline code would.
        assert_eq!(
            sink.span_tree(),
            vec![("outer".to_string(), 0), ("worker-span".to_string(), 1)]
        );
        assert_eq!(sink.counter_total("worker.events"), 1);
    }

    #[test]
    fn context_without_sink_is_transparent() {
        let ctx = capture();
        assert_eq!(ctx.run(|| 41 + 1), 42);
    }

    #[test]
    fn counters_accumulate() {
        let sink = Arc::new(MemorySink::new());
        with_sink(sink.clone(), || {
            counter("retries", 1);
            counter("retries", 2);
        });
        assert_eq!(sink.counter_total("retries"), 3);
    }
}
