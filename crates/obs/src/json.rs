//! A minimal JSON reader shared by the observability stack.
//!
//! The workspace has no serde (no crates.io access), but several layers
//! need to *read* JSON the workspace itself wrote: the baseline comparator
//! (`BENCH_BASELINE.json` vs a fresh run), the CI smoke that validates
//! `--profile-out` files, and the telemetry layer's trace-tree and
//! run-ledger readers. It lives in `uniq-obs` — the root of the
//! observability dependency chain — so those consumers share one parser
//! instead of growing parallel ad-hoc ones (`uniq-profile` re-exports it
//! as `uniq_profile::json` for compatibility). This is a small
//! recursive-descent parser covering the full JSON grammar — objects,
//! arrays, strings with escapes (including `\uXXXX` surrogate pairs),
//! numbers, literals — with positions in error messages. It does not aim
//! to be fast; the documents involved are kilobytes.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers map to `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, duplicate keys kept as-is.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos;
        let slice = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| format!("truncated \\u escape at byte {start}"))?;
        let text = std::str::from_utf8(slice)
            .map_err(|_| format!("invalid \\u escape at byte {start}"))?;
        let code = u32::from_str_radix(text, 16)
            .map_err(|_| format!("invalid \\u escape {text:?} at byte {start}"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (non-escape, non-quote) bytes at once
            // so multi-byte UTF-8 passes through untouched.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("truncated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!("unpaired surrogate at byte {}", self.pos));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or_else(|| {
                                format!("invalid codepoint at byte {}", self.pos)
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape \\{} at byte {}",
                                other as char, self.pos
                            ))
                        }
                    }
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "x"}, null], "c": {"d": true}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x")
        );
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\u0041""#).unwrap(),
            Json::Str("a\"b\\c\ndA".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"µs\"").unwrap(), Json::Str("µs".into()));
    }

    #[test]
    fn u64_accessor_is_exact_only() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"unterminated",
            "\"\\ud83d\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(vec![]));
        assert_eq!(Json::parse("[ ]").unwrap(), Json::Arr(vec![]));
    }
}
