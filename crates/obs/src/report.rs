//! End-of-run aggregation: turns a flat event stream into per-span timing
//! totals and per-metric histograms, with a human-readable renderer used
//! by `uniq personalize --trace`.

use crate::Event;
use std::collections::BTreeMap;

/// Aggregated wall time for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Depth of the first occurrence (for indentation).
    pub depth: usize,
    /// Number of times the span ran.
    pub count: u64,
    /// Total nanoseconds across runs.
    pub total_nanos: u128,
}

/// Order-preserving histogram of one metric's observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Metric name.
    pub name: String,
    /// Unit label from the first observation.
    pub unit: String,
    /// All observed values, in arrival order.
    pub values: Vec<f64>,
}

impl Histogram {
    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Smallest observation (NaN-free inputs assumed; NaNs sort last).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Linear-interpolation percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (p / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// The aggregated view of one run's event stream.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Spans in first-seen order.
    pub spans: Vec<SpanStats>,
    /// Metrics in first-seen order.
    pub metrics: Vec<Histogram>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<String, u64>,
}

impl Report {
    /// Aggregates a flat event stream (e.g. [`crate::sink::MemorySink::events`]).
    pub fn from_events(events: &[Event]) -> Self {
        let mut report = Report::default();
        for event in events {
            match event {
                Event::SpanStart { .. } => {}
                Event::SpanEnd { name, depth, nanos } => {
                    match report.spans.iter_mut().find(|s| s.name == *name) {
                        Some(s) => {
                            s.count += 1;
                            s.total_nanos += nanos;
                        }
                        None => report.spans.push(SpanStats {
                            name: name.to_string(),
                            depth: *depth,
                            count: 1,
                            total_nanos: *nanos,
                        }),
                    }
                }
                Event::Counter { name, delta } => {
                    *report.counters.entry(name.to_string()).or_insert(0) += delta;
                }
                Event::Metric { name, value, unit } => {
                    match report.metrics.iter_mut().find(|m| m.name == *name) {
                        Some(m) => m.values.push(*value),
                        None => report.metrics.push(Histogram {
                            name: name.to_string(),
                            unit: unit.to_string(),
                            values: vec![*value],
                        }),
                    }
                }
            }
        }
        report
    }

    /// Looks up a metric histogram by name.
    pub fn metric(&self, name: &str) -> Option<&Histogram> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "stage timings:")?;
        for s in &self.spans {
            let indent = "  ".repeat(s.depth);
            let runs = if s.count > 1 {
                format!(" ({}×)", s.count)
            } else {
                String::new()
            };
            writeln!(
                f,
                "  {indent}{:<28} {:>10}{runs}",
                s.name,
                crate::sink::human_duration(s.total_nanos)
            )?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "metrics:")?;
            for m in &self.metrics {
                if m.count() == 1 {
                    writeln!(f, "  {:<30} {:.4} {}", m.name, m.values[0], m.unit)?;
                } else {
                    writeln!(
                        f,
                        "  {:<30} n={} mean {:.4} min {:.4} p90 {:.4} max {:.4} {}",
                        m.name,
                        m.count(),
                        m.mean(),
                        m.min(),
                        m.percentile(90.0),
                        m.max(),
                        m.unit
                    )?;
                }
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, total) in &self.counters {
                writeln!(f, "  {name:<30} {total}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::SpanStart {
                name: "root",
                depth: 0,
            },
            Event::SpanStart {
                name: "stage",
                depth: 1,
            },
            Event::SpanEnd {
                name: "stage",
                depth: 1,
                nanos: 500,
            },
            Event::SpanStart {
                name: "stage",
                depth: 1,
            },
            Event::SpanEnd {
                name: "stage",
                depth: 1,
                nanos: 700,
            },
            Event::Metric {
                name: "residual",
                value: 2.0,
                unit: "deg",
            },
            Event::Metric {
                name: "residual",
                value: 4.0,
                unit: "deg",
            },
            Event::Counter {
                name: "retries",
                delta: 1,
            },
            Event::SpanEnd {
                name: "root",
                depth: 0,
                nanos: 2000,
            },
        ]
    }

    #[test]
    fn aggregates_spans_metrics_counters() {
        let r = Report::from_events(&sample_events());
        assert_eq!(r.spans.len(), 2);
        let stage = r.spans.iter().find(|s| s.name == "stage").unwrap();
        assert_eq!(stage.count, 2);
        assert_eq!(stage.total_nanos, 1200);
        assert_eq!(stage.depth, 1);

        let m = r.metric("residual").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 4.0);
        assert_eq!(r.counters["retries"], 1);
    }

    #[test]
    fn percentiles_interpolate() {
        let h = Histogram {
            name: "h".into(),
            unit: String::new(),
            values: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 4.0);
        assert!((h.percentile(50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_renders_sections() {
        let text = Report::from_events(&sample_events()).to_string();
        assert!(text.contains("stage timings:"));
        assert!(text.contains("metrics:"));
        assert!(text.contains("counters:"));
        assert!(text.contains("residual"));
        assert!(text.contains("(2×)"));
    }

    #[test]
    fn empty_report_is_quiet() {
        let r = Report::from_events(&[]);
        let text = r.to_string();
        assert!(text.contains("stage timings:"));
        assert!(!text.contains("metrics:"));
    }
}
