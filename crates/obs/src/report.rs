//! End-of-run aggregation: turns a flat event stream into per-span timing
//! totals and per-metric histograms, with a human-readable renderer used
//! by `uniq personalize --trace`.

use crate::Event;
use std::collections::BTreeMap;

/// Aggregated wall time for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: String,
    /// Depth of the first occurrence (for indentation).
    pub depth: usize,
    /// Number of times the span ran.
    pub count: u64,
    /// Total nanoseconds across runs.
    pub total_nanos: u128,
}

/// Order-preserving histogram of one metric's observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Metric name.
    pub name: String,
    /// Unit label from the first observation.
    pub unit: String,
    /// All observed values, in arrival order.
    pub values: Vec<f64>,
}

impl Histogram {
    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Smallest observation (NaN-free inputs assumed; NaNs sort last).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Linear-interpolation percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = (p / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let t = rank - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// A log-bucketed (HDR-style) histogram over non-negative integer
/// samples — typically span durations in nanoseconds.
///
/// Values below `2^PRECISION_BITS` are counted exactly (one bucket per
/// value); above that, each power-of-two octave is split into
/// `2^PRECISION_BITS` linear sub-buckets, so the value a bucket reports
/// back differs from any sample it absorbed by at most
/// [`LogHistogram::REL_ERROR_BOUND`] relatively. Memory grows with the
/// *magnitude* of the largest sample (≈ 60 buckets per octave decade),
/// never with the sample count, so recording is O(1) and a histogram can
/// absorb millions of span events.
///
/// Two histograms recorded on different threads [`merge`](Self::merge)
/// into exactly the histogram a single thread would have produced over
/// the concatenated samples — bucket counts are position-wise sums — so
/// per-thread recording loses nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogHistogram {
    /// Bucket occupancy, indexed by [`Self::bucket_index`]; grown lazily.
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Sub-bucket resolution: `2^7 = 128` linear sub-buckets per octave.
const PRECISION_BITS: u32 = 7;

impl LogHistogram {
    /// Worst-case relative error between a recorded sample and the value
    /// its bucket reports: half a sub-bucket width over the bucket's
    /// lower bound, `1 / 2^(PRECISION_BITS + 1)`.
    pub const REL_ERROR_BOUND: f64 = 1.0 / (1u64 << (PRECISION_BITS + 1)) as f64;

    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    fn bucket_index(v: u64) -> usize {
        let p = PRECISION_BITS;
        if v < (1 << p) {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - p;
        let sub = (v >> shift) as usize; // in [2^p, 2^(p+1))
        ((shift as usize) << p) + sub
    }

    /// The value reported for any sample that lands in `v`'s bucket: the
    /// bucket midpoint (exact for small values). Guaranteed within
    /// [`Self::REL_ERROR_BOUND`] of `v`, relatively.
    pub fn quantize(v: u64) -> u64 {
        Self::bucket_value(Self::bucket_index(v))
    }

    /// Midpoint of bucket `idx` (inverse of [`Self::bucket_index`]).
    fn bucket_value(idx: usize) -> u64 {
        let p = PRECISION_BITS as usize;
        if idx < (1 << p) {
            return idx as u64;
        }
        let shift = ((idx >> p) - 1) as u32;
        let sub = (idx - ((shift as usize) << p)) as u64; // in [2^p, 2^(p+1))
        let lo = sub << shift;
        let hi = ((sub + 1) << shift) - 1;
        lo + (hi - lo) / 2
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample (exact; 0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (exact; 0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (`p` in `[0, 100]`): the bucket value at the
    /// target rank, clamped to the exact observed `[min, max]` so
    /// `percentile(0) == min()` and `percentile(100) == max()` hold
    /// exactly and percentiles are monotone in `p`. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 100.0) / 100.0) * self.count as f64).ceil() as u64;
        let target = target.max(1);
        // The extreme ranks are known exactly; bucket midpoints may fall
        // short of max (or overshoot min), so answer those directly.
        if target >= self.count {
            return self.max;
        }
        if target == 1 {
            return self.min;
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Equivalent to having recorded both
    /// histograms' samples into one: bucket counts add position-wise, so
    /// percentiles of the merge equal percentiles of the union.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The aggregated view of one run's event stream.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Spans in first-seen order.
    pub spans: Vec<SpanStats>,
    /// Metrics in first-seen order.
    pub metrics: Vec<Histogram>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<String, u64>,
}

impl Report {
    /// Aggregates a flat event stream (e.g. [`crate::sink::MemorySink::events`]).
    pub fn from_events(events: &[Event]) -> Self {
        let mut report = Report::default();
        for event in events {
            match event {
                Event::SpanStart { .. } => {}
                Event::SpanEnd {
                    name, depth, nanos, ..
                } => match report.spans.iter_mut().find(|s| s.name == *name) {
                    Some(s) => {
                        s.count += 1;
                        s.total_nanos += nanos;
                    }
                    None => report.spans.push(SpanStats {
                        name: name.to_string(),
                        depth: *depth,
                        count: 1,
                        total_nanos: *nanos,
                    }),
                },
                Event::Counter { name, delta } => {
                    *report.counters.entry(name.to_string()).or_insert(0) += delta;
                }
                Event::Metric { name, value, unit } => {
                    match report.metrics.iter_mut().find(|m| m.name == *name) {
                        Some(m) => m.values.push(*value),
                        None => report.metrics.push(Histogram {
                            name: name.to_string(),
                            unit: unit.to_string(),
                            values: vec![*value],
                        }),
                    }
                }
            }
        }
        report
    }

    /// Looks up a metric histogram by name.
    pub fn metric(&self, name: &str) -> Option<&Histogram> {
        self.metrics.iter().find(|m| m.name == name)
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "stage timings:")?;
        for s in &self.spans {
            let indent = "  ".repeat(s.depth);
            let runs = if s.count > 1 {
                format!(" ({}×)", s.count)
            } else {
                String::new()
            };
            writeln!(
                f,
                "  {indent}{:<28} {:>10}{runs}",
                s.name,
                crate::sink::human_duration(s.total_nanos)
            )?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "metrics:")?;
            for m in &self.metrics {
                if m.count() == 1 {
                    writeln!(f, "  {:<30} {:.4} {}", m.name, m.values[0], m.unit)?;
                } else {
                    writeln!(
                        f,
                        "  {:<30} n={} mean {:.4} min {:.4} p90 {:.4} max {:.4} {}",
                        m.name,
                        m.count(),
                        m.mean(),
                        m.min(),
                        m.percentile(90.0),
                        m.max(),
                        m.unit
                    )?;
                }
            }
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters:")?;
            for (name, total) in &self.counters {
                writeln!(f, "  {name:<30} {total}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let ids = crate::SpanIds::default();
        vec![
            Event::SpanStart {
                name: "root",
                depth: 0,
                ids,
            },
            Event::SpanStart {
                name: "stage",
                depth: 1,
                ids,
            },
            Event::SpanEnd {
                name: "stage",
                depth: 1,
                nanos: 500,
                ids,
            },
            Event::SpanStart {
                name: "stage",
                depth: 1,
                ids,
            },
            Event::SpanEnd {
                name: "stage",
                depth: 1,
                nanos: 700,
                ids,
            },
            Event::Metric {
                name: "residual",
                value: 2.0,
                unit: "deg",
            },
            Event::Metric {
                name: "residual",
                value: 4.0,
                unit: "deg",
            },
            Event::Counter {
                name: "retries",
                delta: 1,
            },
            Event::SpanEnd {
                name: "root",
                depth: 0,
                nanos: 2000,
                ids,
            },
        ]
    }

    #[test]
    fn aggregates_spans_metrics_counters() {
        let r = Report::from_events(&sample_events());
        assert_eq!(r.spans.len(), 2);
        let stage = r.spans.iter().find(|s| s.name == "stage").unwrap();
        assert_eq!(stage.count, 2);
        assert_eq!(stage.total_nanos, 1200);
        assert_eq!(stage.depth, 1);

        let m = r.metric("residual").unwrap();
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 4.0);
        assert_eq!(r.counters["retries"], 1);
    }

    #[test]
    fn percentiles_interpolate() {
        let h = Histogram {
            name: "h".into(),
            unit: String::new(),
            values: vec![1.0, 2.0, 3.0, 4.0],
        };
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 4.0);
        assert!((h.percentile(50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn display_renders_sections() {
        let text = Report::from_events(&sample_events()).to_string();
        assert!(text.contains("stage timings:"));
        assert!(text.contains("metrics:"));
        assert!(text.contains("counters:"));
        assert!(text.contains("residual"));
        assert!(text.contains("(2×)"));
    }

    #[test]
    fn empty_report_is_quiet() {
        let r = Report::from_events(&[]);
        let text = r.to_string();
        assert!(text.contains("stage timings:"));
        assert!(!text.contains("metrics:"));
    }

    #[test]
    fn log_histogram_small_values_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 17, 127] {
            h.record(v);
            assert_eq!(LogHistogram::quantize(v), v, "small value {v} not exact");
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 127);
    }

    #[test]
    fn log_histogram_relative_error_bounded() {
        for v in [
            128u64,
            129,
            1_000,
            123_456,
            987_654_321,
            41_000_000_000,
            u64::MAX / 3,
        ] {
            let q = LogHistogram::quantize(v);
            let err = (q as f64 - v as f64).abs() / v as f64;
            assert!(
                err <= LogHistogram::REL_ERROR_BOUND,
                "v={v} q={q} err={err}"
            );
        }
    }

    #[test]
    fn log_histogram_percentiles_ordered_and_clamped() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        assert!(h.min() <= p50);
        // Within the bucket error bound of the exact rank values.
        let tol = LogHistogram::REL_ERROR_BOUND;
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 <= tol + 1e-3);
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 <= tol + 1e-3);
    }

    #[test]
    fn log_histogram_merge_equals_single() {
        let samples: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(2_654_435_761) >> 20)
            .collect();
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let mut merged = LogHistogram::new();
        for part in samples.chunks(123) {
            let mut h = LogHistogram::new();
            for &s in part {
                h.record(s);
            }
            merged.merge(&h);
        }
        assert_eq!(merged, whole);
    }
}
