//! Canonical metric and counter names.
//!
//! Every metric or counter the pipeline emits is named here, once.
//! Producers (`uniq-core` and friends) and consumers (reports,
//! experiments, CI assertions) both reference these constants, so a
//! renamed metric is a compile error on both sides instead of a silent
//! dashboard gap. `uniq-analyzer`'s `obs-metric-name` rule enforces the
//! discipline: an inline string literal passed to
//! [`metric`](crate::metric)/[`counter`](crate::counter) outside this
//! crate is a diagnostic.
//!
//! Naming scheme: `<stage>.<quantity>[_<unit>]`, dot-separated, all
//! lowercase — matching the span names of the stages that emit them.

/// Wall-clock seconds one subject's personalization took (histogram).
pub const BATCH_SUBJECT_SECONDS: &str = "batch.subject_seconds";
/// Subjects submitted to a batch run (counter).
pub const BATCH_SUBJECTS: &str = "batch.subjects";
/// Subjects whose personalization failed after retries (counter).
pub const BATCH_FAILURES: &str = "batch.failures";

/// SNR of the detected first tap during channel estimation, dB.
pub const CHANNEL_FIRST_TAP_SNR_DB: &str = "channel.first_tap_snr_db";

/// Per-stop localization residual against ground truth, degrees.
pub const FUSION_STOP_RESIDUAL_DEG: &str = "fusion.stop_residual_deg";
/// Number of stops the fusion localized (out of the sweep).
pub const FUSION_LOCALIZED_STOPS: &str = "fusion.localized_stops";
/// Mean localization residual over localized stops, degrees.
pub const FUSION_MEAN_RESIDUAL_DEG: &str = "fusion.mean_residual_deg";
/// Final fusion objective value, squared degrees.
pub const FUSION_OBJECTIVE: &str = "fusion.objective";

/// Estimated gesture radius, metres.
pub const PERSONALIZE_RADIUS_M: &str = "personalize.radius_m";
/// Personalization attempts consumed (1 = first try succeeded).
pub const PERSONALIZE_ATTEMPTS: &str = "personalize.attempts";

/// Gestures rejected by the radius sanity gate (counter).
pub const GESTURE_REJECTED: &str = "gesture.rejected";
/// Gesture retries after a rejected attempt (counter).
pub const GESTURE_RETRY: &str = "gesture.retry";

/// Mean absolute first-tap deviation of interpolated HRIRs, samples.
pub const NEARFIELD_INTERP_TAP_DEV_MEAN: &str = "nearfield.interp_tap_dev_mean";
/// Max absolute first-tap deviation of interpolated HRIRs, samples.
pub const NEARFIELD_INTERP_TAP_DEV_MAX: &str = "nearfield.interp_tap_dev_max";

/// Measurement stops accepted into a session.
pub const SESSION_STOPS: &str = "session.stops";
/// Quality score of one surviving stop's channel estimate, `[0, 1]`
/// (faulted sessions only).
pub const SESSION_STOP_QUALITY: &str = "session.stop_quality";
/// Stops dropped by the degradation policy (faulted sessions only).
pub const SESSION_STOPS_DROPPED: &str = "session.stops_dropped";
/// Stop captures retried by the degradation policy (faulted sessions
/// only).
pub const SESSION_STOPS_RETRIED: &str = "session.stops_retried";

/// Individual faults injected into a session (counter; faulted sessions
/// only).
pub const FAULTS_INJECTED: &str = "faults.injected";
/// Mean quality over the stops a degraded run kept.
pub const DEGRADATION_MEAN_QUALITY: &str = "degradation.mean_quality";

/// Point sources mixed by the binaural render engine (counter).
pub const RENDER_SOURCES: &str = "render.sources";
/// Signal blocks rendered by the motion renderer (counter).
pub const RENDER_BLOCKS: &str = "render.blocks";
/// Samples crossfaded at one block boundary of a motion render.
pub const RENDER_CROSSFADE_SAMPLES: &str = "render.crossfade_samples";
/// Externalization proxy score of a rendered/reference comparison, `[0, 1]`.
pub const RENDER_EXTERNALIZATION_PROXY: &str = "render.externalization_proxy";

/// Nanoseconds the telemetry registry spent recording its own events —
/// observability cost, itself observed (emitted at snapshot time by
/// `uniq-telemetry`).
pub const OBS_TELEMETRY_OVERHEAD_NS: &str = "obs.telemetry_overhead_ns";

// Allocation-profile names (`uniq-memprof`). The counters are sums over
// *attributed* stages only, so their totals are a pure function of the
// workload — bit-identical across runs and thread counts — and safe to
// fold into the telemetry determinism key. The peak/unattributed metrics
// are scheduling-dependent (see DESIGN.md §15) and are listed in
// `uniq-telemetry`'s `TIMING_METRICS` so only their counts are keyed.

/// Heap allocations attributed to pipeline stages during a profiled run
/// (counter; deterministic).
pub const ALLOC_TOTAL_COUNT: &str = "alloc.total_count";
/// Bytes requested by stage-attributed allocations (counter;
/// deterministic).
pub const ALLOC_TOTAL_BYTES: &str = "alloc.total_bytes";
/// Frees attributed to pipeline stages (counter).
pub const ALLOC_TOTAL_FREES: &str = "alloc.total_frees";
/// Process-wide peak of live (allocated minus freed) heap bytes while the
/// profiler was enabled. Scheduling-dependent: warn-tier only.
pub const ALLOC_PEAK_LIVE_BYTES: &str = "alloc.peak_live_bytes";
/// Largest single stage-attributed allocation, bytes.
pub const ALLOC_LARGEST_SINGLE_BYTES: &str = "alloc.largest_single_bytes";
/// Bytes allocated with no stage attribution (no open span, or inside an
/// attribution-suspended region). Harness and infrastructure noise:
/// excluded from every determinism gate.
pub const ALLOC_UNATTRIBUTED_BYTES: &str = "alloc.unattributed_bytes";

// Personalization-server names (`uniq-serve`). The counters are pure
// functions of the request stream (how many arrived, hit the cache, were
// shed, failed), so the serve baseline section and the backpressure test
// gate on them exactly; the request-seconds metric is wall clock and
// lives in `uniq-telemetry`'s `TIMING_METRICS` (counts keyed, values
// not).

/// Personalize requests accepted off the wire (counter; excludes
/// ping/stats/shutdown control frames).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Requests shed with an `overloaded` response because the target
/// shard's bounded queue was full (counter).
pub const SERVE_SHED: &str = "serve.shed";
/// Requests answered from the content-addressed result cache — a store
/// lookup instead of a pipeline run (counter).
pub const SERVE_CACHE_HITS: &str = "serve.cache_hits";
/// Requests that produced a typed error response: malformed frames,
/// bad fields, or a failed personalization (counter).
pub const SERVE_ERRORS: &str = "serve.errors";
/// Wall-clock seconds one served request spent in its shard worker
/// (cache lookup or pipeline run; queue wait excluded).
pub const SERVE_REQUEST_SECONDS: &str = "serve.request_seconds";

/// Bytes written for one non-deduplicated artifact put.
pub const STORE_PUT_BYTES: &str = "store.put_bytes";
/// Puts answered by an existing blob (counter).
pub const STORE_DEDUP_HITS: &str = "store.dedup_hits";
/// Distinct artifacts in the store after an operation.
pub const STORE_ENTRIES: &str = "store.entries";

/// Every metric/counter name the workspace may emit. The workspace-level
/// `every_emitted_name_is_registered` test runs a full pipeline under a
/// `MemorySink` and asserts the emitted set is a subset of this list, so
/// a new metric cannot silently bypass the registry (and with it the
/// analyzer's `obs-metric-name` rule, which only sees *literal* names).
pub const ALL_METRICS: &[&str] = &[
    BATCH_SUBJECT_SECONDS,
    BATCH_SUBJECTS,
    BATCH_FAILURES,
    CHANNEL_FIRST_TAP_SNR_DB,
    FUSION_STOP_RESIDUAL_DEG,
    FUSION_LOCALIZED_STOPS,
    FUSION_MEAN_RESIDUAL_DEG,
    FUSION_OBJECTIVE,
    PERSONALIZE_RADIUS_M,
    PERSONALIZE_ATTEMPTS,
    GESTURE_REJECTED,
    GESTURE_RETRY,
    NEARFIELD_INTERP_TAP_DEV_MEAN,
    NEARFIELD_INTERP_TAP_DEV_MAX,
    SESSION_STOPS,
    SESSION_STOP_QUALITY,
    SESSION_STOPS_DROPPED,
    SESSION_STOPS_RETRIED,
    FAULTS_INJECTED,
    DEGRADATION_MEAN_QUALITY,
    RENDER_SOURCES,
    RENDER_BLOCKS,
    RENDER_CROSSFADE_SAMPLES,
    RENDER_EXTERNALIZATION_PROXY,
    OBS_TELEMETRY_OVERHEAD_NS,
    ALLOC_TOTAL_COUNT,
    ALLOC_TOTAL_BYTES,
    ALLOC_TOTAL_FREES,
    ALLOC_PEAK_LIVE_BYTES,
    ALLOC_LARGEST_SINGLE_BYTES,
    ALLOC_UNATTRIBUTED_BYTES,
    SERVE_REQUESTS,
    SERVE_SHED,
    SERVE_CACHE_HITS,
    SERVE_ERRORS,
    SERVE_REQUEST_SECONDS,
    STORE_PUT_BYTES,
    STORE_DEDUP_HITS,
    STORE_ENTRIES,
];

// Span names. Spans are the unit the profiling layer (`uniq-profile`)
// aggregates over, so their names are registered here exactly like
// metric names: the baseline comparator and the `verify-profile` CI
// smoke both key on them, and a renamed stage must be a compile error
// on both sides.

/// Root span of one personalization attempt.
pub const SPAN_PERSONALIZE: &str = "personalize";
/// The measurement session (gesture + IMU + per-stop recordings).
pub const SPAN_SESSION: &str = "session";
/// One stop's channel estimation (runs once per stop, inside `session`).
pub const SPAN_CHANNEL_ESTIMATE: &str = "channel.estimate";
/// Joint geometry/trajectory sensor fusion.
pub const SPAN_FUSION: &str = "fusion";
/// Assembly of the discrete near-field measurements.
pub const SPAN_NEARFIELD_ASSEMBLE: &str = "nearfield.assemble";
/// Near-field HRIR interpolation onto the output grid.
pub const SPAN_NEARFIELD_INTERPOLATE: &str = "nearfield.interpolate";
/// Near-to-far-field conversion.
pub const SPAN_NEARFAR_CONVERT: &str = "nearfar.convert";
/// Known-source angle-of-arrival estimation.
pub const SPAN_AOA_KNOWN: &str = "aoa.known";
/// Unknown-source angle-of-arrival estimation.
pub const SPAN_AOA_UNKNOWN: &str = "aoa.unknown";
/// A batch personalization run (fans subjects across the pool).
pub const SPAN_BATCH: &str = "batch";
/// A fault-injected measurement session (wraps `session` when a
/// `FaultPlan` is active; never opened on the clean path).
pub const SPAN_FAULTS: &str = "faults";
/// One binaural engine mix (all sources at one pose).
pub const SPAN_RENDER_ENGINE: &str = "render.engine";
/// A block-based motion render (pose sampling + crossfade + overlap-add).
pub const SPAN_RENDER_MOTION: &str = "render.motion";
/// Binaural quality-metric computation (LSD / ITD / ILD comparison).
pub const SPAN_RENDER_METRICS: &str = "render.metrics";
/// One artifact put into the content-addressed store.
pub const SPAN_STORE_PUT: &str = "store.put";
/// One artifact load (key check + decode) from the store.
pub const SPAN_STORE_GET: &str = "store.get";
/// A full deep-verification sweep over the store.
pub const SPAN_STORE_VERIFY: &str = "store.verify";
/// Snapshot + summary emission of the allocation profiler (`uniq memprof`
/// wrapper, after the wrapped command returns).
pub const SPAN_ALLOC_SNAPSHOT: &str = "alloc.snapshot";
/// One request processed by a personalization-server shard worker
/// (cache lookup or full pipeline run; wraps `personalize` on a miss).
pub const SPAN_SERVE_REQUEST: &str = "serve.request";
/// One closed-loop load-generator request, client side: serialize, send,
/// and wait for the response line. The latency histogram `uniq loadgen`
/// reports p50/p99 from aggregates over this span.
pub const SPAN_LOADGEN_REQUEST: &str = "loadgen.request";

/// Every span name the workspace may open (see [`ALL_METRICS`] for the
/// covering test).
pub const ALL_SPANS: &[&str] = &[
    SPAN_PERSONALIZE,
    SPAN_SESSION,
    SPAN_CHANNEL_ESTIMATE,
    SPAN_FUSION,
    SPAN_NEARFIELD_ASSEMBLE,
    SPAN_NEARFIELD_INTERPOLATE,
    SPAN_NEARFAR_CONVERT,
    SPAN_AOA_KNOWN,
    SPAN_AOA_UNKNOWN,
    SPAN_BATCH,
    SPAN_FAULTS,
    SPAN_RENDER_ENGINE,
    SPAN_RENDER_MOTION,
    SPAN_RENDER_METRICS,
    SPAN_STORE_PUT,
    SPAN_STORE_GET,
    SPAN_STORE_VERIFY,
    SPAN_ALLOC_SNAPSHOT,
    SPAN_SERVE_REQUEST,
    SPAN_LOADGEN_REQUEST,
];

/// The spans whose enclosing code is a *hot path*: per-iteration work
/// dominating wall time (fusion is ~97% of seed-6 profile; channel
/// estimation runs once per stop inside it). `uniq-analyzer`'s
/// `hot-path-alloc` rule seeds on span sites naming these constants and
/// forbids per-call allocation in everything they transitively reach —
/// the scratch-arena discipline the upcoming SIMD/planned-FFT rewrite
/// will be held to. The analyzer reads this list textually from this
/// file, so extending it retunes the gate without touching the analyzer.
pub const HOT_PATH_SPANS: &[&str] = &[SPAN_FUSION, SPAN_CHANNEL_ESTIMATE];

/// The spans every successful `personalize` run must traverse — the
/// stage-coverage contract the `verify-profile` CI smoke asserts on a
/// profiled run's JSON output.
pub const PIPELINE_STAGES: &[&str] = &[
    SPAN_PERSONALIZE,
    SPAN_SESSION,
    SPAN_CHANNEL_ESTIMATE,
    SPAN_FUSION,
    SPAN_NEARFIELD_ASSEMBLE,
    SPAN_NEARFIELD_INTERPOLATE,
    SPAN_NEARFAR_CONVERT,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_unique_and_well_formed() {
        for list in [ALL_METRICS, ALL_SPANS] {
            for (i, name) in list.iter().enumerate() {
                assert!(
                    !name.is_empty()
                        && name.chars().all(|c| c.is_ascii_lowercase()
                            || c.is_ascii_digit()
                            || "._".contains(c)),
                    "bad name {name:?}"
                );
                assert!(
                    !list[..i].contains(name),
                    "duplicate registry entry {name:?}"
                );
            }
        }
    }

    #[test]
    fn pipeline_stages_are_registered_spans() {
        for stage in PIPELINE_STAGES {
            assert!(ALL_SPANS.contains(stage), "{stage} missing from ALL_SPANS");
        }
    }
}
