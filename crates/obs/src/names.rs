//! Canonical metric and counter names.
//!
//! Every metric or counter the pipeline emits is named here, once.
//! Producers (`uniq-core` and friends) and consumers (reports,
//! experiments, CI assertions) both reference these constants, so a
//! renamed metric is a compile error on both sides instead of a silent
//! dashboard gap. `uniq-analyzer`'s `obs-metric-name` rule enforces the
//! discipline: an inline string literal passed to
//! [`metric`](crate::metric)/[`counter`](crate::counter) outside this
//! crate is a diagnostic.
//!
//! Naming scheme: `<stage>.<quantity>[_<unit>]`, dot-separated, all
//! lowercase — matching the span names of the stages that emit them.

/// Wall-clock seconds one subject's personalization took (histogram).
pub const BATCH_SUBJECT_SECONDS: &str = "batch.subject_seconds";
/// Subjects submitted to a batch run (counter).
pub const BATCH_SUBJECTS: &str = "batch.subjects";
/// Subjects whose personalization failed after retries (counter).
pub const BATCH_FAILURES: &str = "batch.failures";

/// SNR of the detected first tap during channel estimation, dB.
pub const CHANNEL_FIRST_TAP_SNR_DB: &str = "channel.first_tap_snr_db";

/// Per-stop localization residual against ground truth, degrees.
pub const FUSION_STOP_RESIDUAL_DEG: &str = "fusion.stop_residual_deg";
/// Number of stops the fusion localized (out of the sweep).
pub const FUSION_LOCALIZED_STOPS: &str = "fusion.localized_stops";
/// Mean localization residual over localized stops, degrees.
pub const FUSION_MEAN_RESIDUAL_DEG: &str = "fusion.mean_residual_deg";
/// Final fusion objective value, squared degrees.
pub const FUSION_OBJECTIVE: &str = "fusion.objective";

/// Estimated gesture radius, metres.
pub const PERSONALIZE_RADIUS_M: &str = "personalize.radius_m";
/// Personalization attempts consumed (1 = first try succeeded).
pub const PERSONALIZE_ATTEMPTS: &str = "personalize.attempts";

/// Gestures rejected by the radius sanity gate (counter).
pub const GESTURE_REJECTED: &str = "gesture.rejected";
/// Gesture retries after a rejected attempt (counter).
pub const GESTURE_RETRY: &str = "gesture.retry";

/// Mean absolute first-tap deviation of interpolated HRIRs, samples.
pub const NEARFIELD_INTERP_TAP_DEV_MEAN: &str = "nearfield.interp_tap_dev_mean";
/// Max absolute first-tap deviation of interpolated HRIRs, samples.
pub const NEARFIELD_INTERP_TAP_DEV_MAX: &str = "nearfield.interp_tap_dev_max";

/// Measurement stops accepted into a session.
pub const SESSION_STOPS: &str = "session.stops";
