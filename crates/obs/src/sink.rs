//! The [`Sink`] trait and its four shipped implementations, plus
//! [`MultiSink`] for fan-out.

use crate::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives observability events.
///
/// Sinks must be cheap and side-effect free with respect to the observed
/// computation: the pipeline's numeric results must not depend on which
/// sink (if any) is installed.
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn on_event(&self, event: &Event);

    /// Pushes any buffered output to its destination. Called by the CLI
    /// after a run completes (successfully or not) and by
    /// [`crate::flush_global_sink`] at process teardown; sinks that write
    /// eagerly need not override the default no-op.
    fn flush(&self) {}
}

/// Discards everything. Installing it is equivalent to (and no cheaper
/// than) installing nothing; it exists so call sites can be explicit and
/// so overhead benches have a named baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn on_event(&self, _event: &Event) {}
}

/// Human-readable live span tree on stderr, two spaces per nesting level:
///
/// ```text
/// > personalize
///   > session
///   < session 812.4ms
///   fusion.residual_deg = 3.42 deg
/// < personalize 2.31s
/// ```
#[derive(Debug, Default)]
pub struct StderrSink;

impl StderrSink {
    /// Creates the sink.
    pub fn new() -> Self {
        StderrSink
    }
}

/// `1_234_567_890ns` → `"1.23s"`, `"12.3ms"`, …
pub fn human_duration(nanos: u128) -> String {
    let secs = nanos as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.1}µs", secs * 1e6)
    } else {
        format!("{nanos}ns")
    }
}

impl Sink for StderrSink {
    fn on_event(&self, event: &Event) {
        // Metric/counter events sit one level inside their enclosing span,
        // which on this sink's thread is the current depth.
        let pad = |depth: usize| "  ".repeat(depth);
        match event {
            Event::SpanStart { name, depth, .. } => eprintln!("{}> {name}", pad(*depth)),
            Event::SpanEnd {
                name, depth, nanos, ..
            } => {
                eprintln!("{}< {name} {}", pad(*depth), human_duration(*nanos))
            }
            Event::Counter { name, delta } => {
                eprintln!("{}{name} += {delta}", pad(crate::current_depth()))
            }
            Event::Metric { name, value, unit } => {
                let unit = if unit.is_empty() {
                    String::new()
                } else {
                    format!(" {unit}")
                };
                eprintln!("{}{name} = {value:.4}{unit}", pad(crate::current_depth()))
            }
        }
    }
}

/// Machine-readable JSON-lines events, one object per line, preceded by a
/// one-line schema header:
///
/// ```json
/// {"event":"header","schema":1,"format":"uniq-obs-jsonl"}
/// {"event":"span_end","name":"fusion","depth":1,"nanos":41233000,"trace":"4be9…","span":"91c2…","parent":"07aa…"}
/// {"event":"metric","name":"fusion.residual_deg","value":3.42,"unit":"deg"}
/// ```
///
/// Span ids are fixed-width lowercase hex strings (not JSON numbers: a
/// 64-bit id does not survive an f64 round-trip). Readers — the telemetry
/// trace reporter — accept files with and without the header line, so
/// pre-schema trace files stay parseable.
///
/// Writes are buffered (a per-event flush would syscall on every span of
/// a hot pipeline) and pushed to disk on [`Sink::flush`] and on drop, so
/// a `--metrics-out` file is complete — whole lines only, no truncated
/// tail — even when the observed run ends in an error.
#[derive(Debug)]
pub struct JsonLinesSink {
    out: Mutex<BufWriter<File>>,
}

/// Schema stamp on the [`JsonLinesSink`] header line; bump on any
/// incompatible line-shape change so readers can refuse early.
pub const JSONL_SCHEMA_VERSION: u64 = 1;

impl JsonLinesSink {
    /// Creates (truncating) the output file and buffers the schema header
    /// line.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let mut out = BufWriter::new(File::create(path)?);
        writeln!(
            out,
            "{{\"event\":\"header\",\"schema\":{JSONL_SCHEMA_VERSION},\"format\":\"uniq-obs-jsonl\"}}"
        )?;
        Ok(JsonLinesSink {
            out: Mutex::new(out),
        })
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        // Last-chance durability: deliver whatever is still buffered.
        // I/O errors on a diagnostics channel are still non-fatal.
        if let Ok(mut out) = self.out.lock() {
            // uniq-analyzer: allow(lock-order) — `out` is the guard itself; this is io::Write::flush on the writer, not Sink::flush, so no re-entry
            let _ = out.flush();
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal. Span names are
/// static identifiers today, but the writer stays correct for any input.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/∞ — encode as null).
pub fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Sink for JsonLinesSink {
    fn on_event(&self, event: &Event) {
        let line = match event {
            Event::SpanStart { name, depth, ids } => format!(
                "{{\"event\":\"span_start\",\"name\":\"{}\",\"depth\":{depth},\
                 \"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}",
                json_escape(name),
                ids.trace,
                ids.span,
                ids.parent
            ),
            Event::SpanEnd {
                name,
                depth,
                nanos,
                ids,
            } => format!(
                "{{\"event\":\"span_end\",\"name\":\"{}\",\"depth\":{depth},\"nanos\":{nanos},\
                 \"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}",
                json_escape(name),
                ids.trace,
                ids.span,
                ids.parent
            ),
            Event::Counter { name, delta } => format!(
                "{{\"event\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}",
                json_escape(name)
            ),
            Event::Metric { name, value, unit } => format!(
                "{{\"event\":\"metric\",\"name\":\"{}\",\"value\":{},\"unit\":\"{}\"}}",
                json_escape(name),
                json_number(*value),
                json_escape(unit)
            ),
        };
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        // I/O errors on a diagnostics channel must not kill the pipeline.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        let _ = out.flush();
    }
}

/// In-process collector for tests and end-of-run summaries.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// All events, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// `(name, depth)` of every [`Event::SpanStart`], in order — the span
    /// hierarchy as a preorder walk.
    pub fn span_tree(&self) -> Vec<(String, usize)> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::SpanStart { name, depth, .. } => Some((name.to_string(), depth)),
                _ => None,
            })
            .collect()
    }

    /// Every recorded value of the named metric, in order.
    pub fn metric_values(&self, name: &str) -> Vec<f64> {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Metric { name: n, value, .. } if n == name => Some(value),
                _ => None,
            })
            .collect()
    }

    /// Sum of deltas of the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta } if n == name => Some(delta),
                _ => None,
            })
            .sum()
    }

    /// Total nanoseconds spent in the named span (summed over entries).
    pub fn span_nanos(&self, name: &str) -> u128 {
        self.events()
            .into_iter()
            .filter_map(|e| match e {
                Event::SpanEnd { name: n, nanos, .. } if n == name => Some(nanos),
                _ => None,
            })
            .sum()
    }
}

impl Sink for MemorySink {
    fn on_event(&self, event: &Event) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(event.clone());
    }
}

/// Fans every event out to several sinks, in order.
pub struct MultiSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl std::fmt::Debug for MultiSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl MultiSink {
    /// Combines `sinks` (empty is allowed and acts like [`NoopSink`]).
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> Self {
        MultiSink { sinks }
    }
}

impl Sink for MultiSink {
    fn on_event(&self, event: &Event) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanIds;
    use std::sync::Arc;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
    }

    #[test]
    fn human_durations() {
        assert_eq!(human_duration(2_340_000_000), "2.34s");
        assert_eq!(human_duration(12_300_000), "12.3ms");
        assert_eq!(human_duration(45_600), "45.6µs");
        assert_eq!(human_duration(320), "320ns");
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let dir = std::env::temp_dir().join("uniq_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        {
            let sink = JsonLinesSink::create(&path).unwrap();
            sink.on_event(&Event::SpanStart {
                name: "s",
                depth: 0,
                ids: SpanIds {
                    trace: 0xabc,
                    span: 0x1,
                    parent: 0,
                },
            });
            sink.on_event(&Event::Metric {
                name: "m",
                value: 2.5,
                unit: "deg",
            });
            sink.on_event(&Event::SpanEnd {
                name: "s",
                depth: 0,
                nanos: 1000,
                ids: SpanIds {
                    trace: 0xabc,
                    span: 0x1,
                    parent: 0,
                },
            });
        }
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[0],
            "{\"event\":\"header\",\"schema\":1,\"format\":\"uniq-obs-jsonl\"}"
        );
        assert_eq!(
            lines[1],
            "{\"event\":\"span_start\",\"name\":\"s\",\"depth\":0,\
             \"trace\":\"0000000000000abc\",\"span\":\"0000000000000001\",\
             \"parent\":\"0000000000000000\"}"
        );
        assert!(lines[2].contains("\"value\":2.5"));
        assert!(lines[3].contains("\"nanos\":1000"));
        // Every line parses back through the shared JSON reader.
        for line in lines {
            crate::json::Json::parse(line).expect("self-emitted JSONL line parses");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_sink_buffers_until_flush() {
        let dir = std::env::temp_dir().join("uniq_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buffered.jsonl");
        let sink = JsonLinesSink::create(&path).unwrap();
        sink.on_event(&Event::Counter {
            name: "c",
            delta: 1,
        });
        // Still buffered: nothing on disk yet (BufWriter default capacity
        // far exceeds one short line).
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");
        sink.flush();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(
            content.ends_with("}\n"),
            "flushed line truncated: {content:?}"
        );
        drop(sink);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let multi = MultiSink::new(vec![a.clone(), b.clone()]);
        multi.on_event(&Event::Counter {
            name: "c",
            delta: 2,
        });
        assert_eq!(a.counter_total("c"), 2);
        assert_eq!(b.counter_total("c"), 2);
    }

    #[test]
    fn memory_sink_span_accounting() {
        let m = MemorySink::new();
        m.on_event(&Event::SpanEnd {
            name: "s",
            depth: 0,
            nanos: 10,
            ids: SpanIds::default(),
        });
        m.on_event(&Event::SpanEnd {
            name: "s",
            depth: 0,
            nanos: 32,
            ids: SpanIds::default(),
        });
        assert_eq!(m.span_nanos("s"), 42);
        assert_eq!(m.span_nanos("other"), 0);
    }
}
