//! Property tests for the shard-merge algebra.
//!
//! [`snapshot`](uniq_memprof::snapshot) folds the per-shard counters with
//! [`StageAlloc::merged`]; the result is only well defined (independent of
//! shard order and grouping) if that operation is a commutative monoid.
//! These tests pin the algebra directly so a future field added to
//! `StageAlloc` without a proper merge rule fails here, not as a flaky
//! thread-invariance failure downstream.

use proptest::prelude::*;
use uniq_memprof::StageAlloc;

/// Field bound chosen so that summing a handful of values cannot overflow
/// — the real counters hold byte/event counts far below this.
const M: u64 = u64::MAX / 16;

/// Assembles a `StageAlloc` from two sampled tuples (the vendored
/// proptest stand-in caps tuple strategies at four elements).
fn stage(flow: (u64, u64, u64, u64), peaks: (i64, u64)) -> StageAlloc {
    StageAlloc {
        allocs: flow.0,
        bytes: flow.1,
        frees: flow.2,
        freed_bytes: flow.3,
        peak_live_bytes: peaks.0,
        largest_bytes: peaks.1,
    }
}

/// The strategy pair behind [`stage`], bundled so every test samples the
/// same domain.
fn flow() -> (
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
    std::ops::Range<u64>,
) {
    (0..M, 0..M, 0..M, 0..M)
}

fn peaks() -> (std::ops::Range<i64>, std::ops::Range<u64>) {
    (i64::MIN / 16..i64::MAX / 16, 0..M)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_associative(
        fa in flow(), pa in peaks(),
        fb in flow(), pb in peaks(),
        fc in flow(), pc in peaks(),
    ) {
        let (a, b, c) = (stage(fa, pa), stage(fb, pb), stage(fc, pc));
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn merge_is_commutative(fa in flow(), pa in peaks(), fb in flow(), pb in peaks()) {
        let (a, b) = (stage(fa, pa), stage(fb, pb));
        prop_assert_eq!(a.merged(&b), b.merged(&a));
    }

    #[test]
    fn default_is_the_identity(fa in flow(), pa in peaks()) {
        // `peak_live_bytes` merges by max, so the identity only holds on
        // the non-negative domain the live counters actually occupy.
        let mut a = stage(fa, pa);
        a.peak_live_bytes = a.peak_live_bytes.abs();
        prop_assert_eq!(a.merged(&StageAlloc::default()), a);
        prop_assert_eq!(StageAlloc::default().merged(&a), a);
    }

    #[test]
    fn merge_never_loses_flow_counts(fa in flow(), pa in peaks(), fb in flow(), pb in peaks()) {
        let (a, b) = (stage(fa, pa), stage(fb, pb));
        let m = a.merged(&b);
        prop_assert_eq!(m.allocs, a.allocs + b.allocs);
        prop_assert_eq!(m.bytes, a.bytes + b.bytes);
        prop_assert_eq!(m.frees, a.frees + b.frees);
        prop_assert_eq!(m.freed_bytes, a.freed_bytes + b.freed_bytes);
        prop_assert!(m.largest_bytes >= a.largest_bytes.max(b.largest_bytes));
    }

    /// Folding the shard list from either end gives the same totals — the
    /// exact shape `snapshot` relies on when the shard count changes.
    #[test]
    fn fold_order_is_irrelevant(
        flows in prop::collection::vec((0..M, 0..M, 0..M, 0..M), 1..8),
        peak_list in prop::collection::vec((i64::MIN / 16..i64::MAX / 16, 0..M), 8),
    ) {
        let shards: Vec<StageAlloc> = flows
            .into_iter()
            .zip(peak_list)
            .map(|(f, p)| stage(f, p))
            .collect();
        let left = shards.iter().fold(StageAlloc::default(), |acc, s| acc.merged(s));
        let right = shards
            .iter()
            .rev()
            .fold(StageAlloc::default(), |acc, s| s.merged(&acc));
        prop_assert_eq!(left, right);
    }
}
