//! # uniq-memprof
//!
//! Span-attributed allocation profiling for the UNIQ pipeline: a
//! `std`-only counting wrapper around the system allocator that
//! attributes every heap allocation to the active `uniq-obs` span, so
//! each `SPAN_*` stage gets a memory profile alongside its latency
//! profile. Zero external dependencies.
//!
//! ## Install + measure
//!
//! The wrapper is installed per binary with `#[global_allocator]` and is
//! inert (one relaxed atomic load per allocation) until [`start`] flips
//! it on:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();
//!
//! uniq_memprof::reset();
//! uniq_memprof::start();
//! run_workload();
//! uniq_memprof::stop();
//! let snapshot = uniq_memprof::snapshot();
//! ```
//!
//! ## Attribution and determinism model
//!
//! The hook reads [`uniq_obs::alloc_stage`] — the innermost open span on
//! the allocating thread, carried across `uniq-par` worker boundaries by
//! the pool itself — and charges the allocation to that stage's slot.
//! Counters are sharded per `uniq-par` worker (shard 0 for non-pool
//! threads) in fixed static atomics; a snapshot merges shards in index
//! order, so per-stage **allocation count and bytes are a pure function
//! of the workload**: bit-identical across repeated runs and across
//! thread counts. That is the hard baseline gate.
//!
//! Peak-live bytes are *not* deterministic — the process-wide live
//! maximum depends on which stages overlap in time, i.e. on scheduling —
//! and per-stage frees can migrate between stages when an object is
//! allocated in one stage and dropped in another. Those columns are
//! warn-tier evidence only (see DESIGN.md §15).
//!
//! Infrastructure allocations (sink dispatch, pool queues and buckets)
//! run under [`uniq_obs::suspend_alloc_stage`] and land in the
//! `unattributed` row, which no gate compares.
//!
//! ## Hook safety
//!
//! A global allocator must never allocate, so the hook path touches only
//! `const`-initialized thread-locals (`Cell`s), fixed static atomic
//! arrays, and the byte content of `'static` span names. A per-thread
//! re-entrancy latch makes the hook a plain pass-through if anything in
//! it ever allocates, instead of recursing.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

use uniq_obs::sink::{json_escape, Sink};

/// Schema stamp on [`AllocSnapshot::to_json`] output; bump on any
/// incompatible shape change so downstream readers can refuse early.
pub const ALLOC_SCHEMA_VERSION: u64 = 1;

/// Fixed capacity of the stage-name table. The workspace registers ~20
/// span names; overflow beyond this lands in a dedicated overflow row
/// rather than being dropped.
pub const STAGE_SLOTS: usize = 64;

/// Counter shards: shard 0 for non-pool threads, workers at
/// `1 + index % (SHARDS - 1)` — the same mapping `uniq-telemetry` uses,
/// so contention behavior is familiar and merge order is fixed.
pub const SHARDS: usize = 17;

/// Row index for allocations with no stage attribution.
const UNATTRIBUTED: usize = STAGE_SLOTS;
/// Row index for allocations whose stage could not be slotted (table
/// full or a claim race that did not settle within the probe budget).
const OVERFLOW: usize = STAGE_SLOTS + 1;
/// Total rows: named stages plus the two synthetic rows.
const TRACKS: usize = STAGE_SLOTS + 2;

/// Whether the hook records anything (one relaxed load per allocation
/// when off).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Set by the first allocation that passes through the counting wrapper;
/// lets CLI code detect a binary built without `#[global_allocator]`.
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// One claimed stage name: pointer + length of a `'static` span name.
/// `ptr` is null while free and `CLAIMING` while a writer publishes
/// `len`; readers spin briefly on `CLAIMING` (first occurrence of a name
/// only) and fall back to the overflow row.
struct NameSlot {
    ptr: AtomicPtr<u8>,
    len: AtomicUsize,
}

/// Sentinel marking a slot mid-claim (never a valid `&'static str` ptr:
/// address 1, the canonical dangling `u8` pointer).
const CLAIMING: *mut u8 = std::ptr::dangling_mut::<u8>();

static NAMES: [NameSlot; STAGE_SLOTS] = [const {
    NameSlot {
        ptr: AtomicPtr::new(std::ptr::null_mut()),
        len: AtomicUsize::new(0),
    }
}; STAGE_SLOTS];

/// Per-shard deterministic counters (the hard-gate columns).
struct ShardCounters {
    allocs: [AtomicU64; TRACKS],
    bytes: [AtomicU64; TRACKS],
    frees: [AtomicU64; TRACKS],
    freed_bytes: [AtomicU64; TRACKS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

static SHARD_COUNTERS: [ShardCounters; SHARDS] = [const {
    ShardCounters {
        allocs: [ZERO_U64; TRACKS],
        bytes: [ZERO_U64; TRACKS],
        frees: [ZERO_U64; TRACKS],
        freed_bytes: [ZERO_U64; TRACKS],
    }
}; SHARDS];

/// Per-stage live/peak/largest (warn-tier columns, global atomics: the
/// peak of a sum cannot be reconstructed from per-shard peaks).
static LIVE: [AtomicI64; TRACKS] = [const { AtomicI64::new(0) }; TRACKS];
static PEAK: [AtomicI64; TRACKS] = [const { AtomicI64::new(0) }; TRACKS];
static LARGEST: [AtomicU64; TRACKS] = [const { AtomicU64::new(0) }; TRACKS];

/// Process-wide live/peak across all stages (the headline peak-live).
static GLOBAL_LIVE: AtomicI64 = AtomicI64::new(0);
static GLOBAL_PEAK: AtomicI64 = AtomicI64::new(0);

thread_local! {
    /// Re-entrancy latch: true while this thread is inside the recording
    /// path. Nothing in that path allocates, but if that ever regresses
    /// the latch degrades the hook to a pass-through instead of a stack
    /// overflow.
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(name: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Maps the calling thread to its counter shard (uniq-par worker aware).
#[inline]
fn shard_index() -> usize {
    match uniq_par::current_worker() {
        Some((_pool, worker)) => 1 + worker % (SHARDS - 1),
        None => 0,
    }
}

/// Finds (or claims) the row for `name`. Open addressing over the fixed
/// table, keyed by content (names from different crates may be distinct
/// statics with equal text). Returns [`OVERFLOW`] when the table is full
/// or a racing claim does not settle within the spin budget.
fn track_for(name: &'static str) -> usize {
    let start = (fnv1a(name) % STAGE_SLOTS as u64) as usize;
    for probe in 0..STAGE_SLOTS {
        let idx = (start + probe) % STAGE_SLOTS;
        let slot = &NAMES[idx];
        let mut spins = 0;
        loop {
            let ptr = slot.ptr.load(Ordering::Acquire);
            if ptr.is_null() {
                // Claim: mark the slot, publish the length, then the
                // pointer (Release) so any reader that sees the pointer
                // also sees the matching length.
                if slot
                    .ptr
                    .compare_exchange(
                        std::ptr::null_mut(),
                        CLAIMING,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    slot.len.store(name.len(), Ordering::Relaxed);
                    slot.ptr.store(name.as_ptr() as *mut u8, Ordering::Release);
                    return idx;
                }
                // Lost the race; re-read and compare against the winner.
                continue;
            }
            if std::ptr::eq(ptr, CLAIMING) {
                // A writer is mid-claim (first occurrence of some name —
                // at most once per name per process). Bounded wait, then
                // give up on attribution rather than stall an allocator.
                spins += 1;
                if spins > 1000 {
                    return OVERFLOW;
                }
                std::hint::spin_loop();
                continue;
            }
            let len = slot.len.load(Ordering::Relaxed);
            // SAFETY: `ptr`/`len` were published (Release) from a live
            // `&'static str`'s pointer and length by the claim above, so
            // they denote `len` initialized, immutable, 'static bytes.
            let existing = unsafe { std::slice::from_raw_parts(ptr, len) };
            if existing == name.as_bytes() {
                return idx;
            }
            break; // different name: probe the next slot
        }
    }
    OVERFLOW
}

#[inline]
fn current_track() -> usize {
    match uniq_obs::alloc_stage() {
        Some(name) => track_for(name),
        None => UNATTRIBUTED,
    }
}

fn record_alloc(size: usize) {
    let done = IN_HOOK.with(|latch| {
        if latch.get() {
            return true;
        }
        latch.set(true);
        false
    });
    if done {
        return;
    }
    let track = current_track();
    let shard = &SHARD_COUNTERS[shard_index()];
    shard.allocs[track].fetch_add(1, Ordering::Relaxed);
    shard.bytes[track].fetch_add(size as u64, Ordering::Relaxed);
    LARGEST[track].fetch_max(size as u64, Ordering::Relaxed);
    let live = LIVE[track].fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    PEAK[track].fetch_max(live, Ordering::Relaxed);
    let global = GLOBAL_LIVE.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    GLOBAL_PEAK.fetch_max(global, Ordering::Relaxed);
    IN_HOOK.with(|latch| latch.set(false));
}

fn record_free(size: usize) {
    let done = IN_HOOK.with(|latch| {
        if latch.get() {
            return true;
        }
        latch.set(true);
        false
    });
    if done {
        return;
    }
    let track = current_track();
    let shard = &SHARD_COUNTERS[shard_index()];
    shard.frees[track].fetch_add(1, Ordering::Relaxed);
    shard.freed_bytes[track].fetch_add(size as u64, Ordering::Relaxed);
    LIVE[track].fetch_sub(size as i64, Ordering::Relaxed);
    GLOBAL_LIVE.fetch_sub(size as i64, Ordering::Relaxed);
    IN_HOOK.with(|latch| latch.set(false));
}

/// The counting wrapper around [`std::alloc::System`]. Install it once
/// per binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: uniq_memprof::CountingAllocator = uniq_memprof::CountingAllocator::new();
/// ```
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// Const constructor for the `#[global_allocator]` static.
    pub const fn new() -> CountingAllocator {
        CountingAllocator
    }
}

// SAFETY: every method forwards the caller's request verbatim to
// `System`, which upholds the `GlobalAlloc` contract; the recording side
// only touches static atomics and const-initialized thread-locals and
// never allocates, deallocates, or unwinds.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if !INSTALLED.load(Ordering::Relaxed) {
            INSTALLED.store(true, Ordering::Relaxed);
        }
        // SAFETY: the caller's `layout` obligations are forwarded
        // unchanged to the system allocator.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: the caller's `layout` obligations are forwarded
        // unchanged to the system allocator.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if ENABLED.load(Ordering::Relaxed) {
            record_free(layout.size());
        }
        // SAFETY: `ptr` was returned by this allocator with this
        // `layout`, per the caller's `dealloc` contract; `System` only
        // ever sees pointers it produced because every alloc path above
        // forwards to it.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: `ptr`/`layout`/`new_size` obligations are the caller's,
        // forwarded unchanged; `ptr` originated from `System` (see
        // `dealloc`).
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() && ENABLED.load(Ordering::Relaxed) {
            // Counted as free-old + alloc-new: sizes stay exact and a
            // grow-in-place is indistinguishable from move, keeping the
            // counters a pure function of the request sequence.
            record_free(layout.size());
            record_alloc(new_size);
        }
        new_ptr
    }
}

/// Whether any allocation has passed through a [`CountingAllocator`] in
/// this process — i.e. whether the binary installed it as
/// `#[global_allocator]`. Used by CLI/test code to fail loudly instead of
/// reporting all-zero profiles.
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Starts recording. Cheap to call redundantly.
pub fn start() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops recording (the hook reverts to one relaxed load per allocation).
pub fn stop() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the profiler is currently recording.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter (the stage-name table is kept: slot assignment is
/// an implementation detail that snapshots never expose). Call while the
/// workload is quiescent — concurrent recording during a reset yields a
/// torn (but still safe) profile.
pub fn reset() {
    for shard in &SHARD_COUNTERS {
        for track in 0..TRACKS {
            shard.allocs[track].store(0, Ordering::Relaxed);
            shard.bytes[track].store(0, Ordering::Relaxed);
            shard.frees[track].store(0, Ordering::Relaxed);
            shard.freed_bytes[track].store(0, Ordering::Relaxed);
        }
    }
    for track in 0..TRACKS {
        LIVE[track].store(0, Ordering::Relaxed);
        PEAK[track].store(0, Ordering::Relaxed);
        LARGEST[track].store(0, Ordering::Relaxed);
    }
    GLOBAL_LIVE.store(0, Ordering::Relaxed);
    GLOBAL_PEAK.store(0, Ordering::Relaxed);
}

/// Allocation statistics for one stage (or one synthetic row).
///
/// `allocs`/`bytes` are the deterministic hard-gate columns; the rest are
/// warn-tier (see the crate docs for why).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageAlloc {
    /// Number of allocations charged to this stage.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// Frees charged to this stage (the freeing thread's stage, which may
    /// differ from the allocating stage).
    pub frees: u64,
    /// Bytes released by those frees.
    pub freed_bytes: u64,
    /// Peak of this stage's attributed live bytes (allocated − freed; may
    /// ride on cross-stage frees, hence signed underneath). Warn-tier.
    pub peak_live_bytes: i64,
    /// Largest single allocation charged to this stage, bytes.
    pub largest_bytes: u64,
}

impl StageAlloc {
    /// Associative, commutative merge: sums for the flow counters, maxima
    /// for the peaks — the shard-merge operation, exposed so tests can
    /// check the algebra directly.
    pub fn merged(&self, other: &StageAlloc) -> StageAlloc {
        StageAlloc {
            allocs: self.allocs + other.allocs,
            bytes: self.bytes + other.bytes,
            frees: self.frees + other.frees,
            freed_bytes: self.freed_bytes + other.freed_bytes,
            peak_live_bytes: self.peak_live_bytes.max(other.peak_live_bytes),
            largest_bytes: self.largest_bytes.max(other.largest_bytes),
        }
    }
}

/// A merged snapshot of the profiler's counters (see [`snapshot`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Per-stage statistics, keyed by span name.
    pub stages: BTreeMap<String, StageAlloc>,
    /// Allocations made with no open span or under suspended attribution
    /// (observability/pool infrastructure, harness threads). No gate
    /// compares this row.
    pub unattributed: StageAlloc,
    /// Allocations whose stage could not be slotted (name-table overflow;
    /// zero in any sane configuration).
    pub overflow: StageAlloc,
    /// Process-wide peak of live heap bytes while recording (not the sum
    /// of per-stage peaks). Warn-tier.
    pub peak_live_bytes: i64,
}

fn track_stats(track: usize) -> StageAlloc {
    let mut out = StageAlloc::default();
    // Merge shards in index order: fixed order keeps the (commutative)
    // sums trivially reproducible and mirrors uniq-telemetry's snapshot.
    for shard in &SHARD_COUNTERS {
        out.allocs += shard.allocs[track].load(Ordering::Relaxed);
        out.bytes += shard.bytes[track].load(Ordering::Relaxed);
        out.frees += shard.frees[track].load(Ordering::Relaxed);
        out.freed_bytes += shard.freed_bytes[track].load(Ordering::Relaxed);
    }
    out.peak_live_bytes = PEAK[track].load(Ordering::Relaxed);
    out.largest_bytes = LARGEST[track].load(Ordering::Relaxed);
    out
}

/// Merges all shards into an exportable snapshot. Stages appear in name
/// order regardless of slot-claim order, so output is deterministic.
pub fn snapshot() -> AllocSnapshot {
    let mut stages = BTreeMap::new();
    for (idx, slot) in NAMES.iter().enumerate() {
        let ptr = slot.ptr.load(Ordering::Acquire);
        if ptr.is_null() || std::ptr::eq(ptr, CLAIMING) {
            continue;
        }
        let len = slot.len.load(Ordering::Relaxed);
        // SAFETY: `ptr`/`len` were published from a live `&'static str`
        // (see `track_for`), so the bytes are initialized, immutable,
        // 'static UTF-8.
        let name = unsafe { std::str::from_utf8_unchecked(std::slice::from_raw_parts(ptr, len)) };
        let stats = track_stats(idx);
        if stats != StageAlloc::default() {
            stages.insert(name.to_string(), stats);
        }
    }
    AllocSnapshot {
        stages,
        unattributed: track_stats(UNATTRIBUTED),
        overflow: track_stats(OVERFLOW),
        peak_live_bytes: GLOBAL_PEAK.load(Ordering::Relaxed),
    }
}

/// Runs `f` with the profiler recording into freshly zeroed counters and
/// returns its result alongside the resulting snapshot. The enabled flag
/// is restored afterwards. Counters are process-global: concurrent
/// `measure` calls interleave, so gate-grade callers serialize.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocSnapshot) {
    let was_enabled = enabled();
    reset();
    start();
    let value = f();
    if !was_enabled {
        stop();
    }
    (value, snapshot())
}

impl AllocSnapshot {
    /// Looks up one stage by span name.
    pub fn stage(&self, name: &str) -> Option<&StageAlloc> {
        self.stages.get(name)
    }

    /// The deterministic totals across attributed stages (sum of
    /// count/bytes/frees; max of largest). Excludes the unattributed and
    /// overflow rows by construction.
    pub fn total(&self) -> StageAlloc {
        let mut out = StageAlloc::default();
        for stats in self.stages.values() {
            out = out.merged(stats);
        }
        out
    }

    /// Emits the snapshot's summary into the active `uniq-obs` sink under
    /// the registered `alloc.*` names (wrapped in the
    /// [`uniq_obs::names::SPAN_ALLOC_SNAPSHOT`] span), so allocation
    /// aggregates flow into the telemetry registry, the Prometheus
    /// expose, and JSONL traces exactly like every other plane.
    pub fn emit_obs_summary(&self) {
        use uniq_obs::names;
        let _span = uniq_obs::span(names::SPAN_ALLOC_SNAPSHOT);
        let total = self.total();
        uniq_obs::counter(names::ALLOC_TOTAL_COUNT, total.allocs);
        uniq_obs::counter(names::ALLOC_TOTAL_BYTES, total.bytes);
        uniq_obs::counter(names::ALLOC_TOTAL_FREES, total.frees);
        uniq_obs::metric(
            names::ALLOC_PEAK_LIVE_BYTES,
            self.peak_live_bytes.max(0) as f64,
            "bytes",
        );
        uniq_obs::metric(
            names::ALLOC_LARGEST_SINGLE_BYTES,
            total.largest_bytes as f64,
            "bytes",
        );
        uniq_obs::metric(
            names::ALLOC_UNATTRIBUTED_BYTES,
            self.unattributed.bytes as f64,
            "bytes",
        );
    }

    /// Human-readable per-stage table, matching the tone of
    /// `uniq-profile`'s latency table:
    ///
    /// ```text
    /// per-stage allocations:
    ///   stage                          allocs      bytes      frees  peak-live    largest
    ///   personalize                        12      18432         10      16384       8192
    ///   ...
    ///   (unattributed)                    340     122880        338      65536       4096
    /// peak live: 1.2 MB
    /// ```
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("per-stage allocations:\n");
        out.push_str(&format!(
            "  {:<30} {:>8} {:>12} {:>8} {:>12} {:>10}\n",
            "stage", "allocs", "bytes", "frees", "peak-live", "largest"
        ));
        let mut row = |label: &str, s: &StageAlloc| {
            out.push_str(&format!(
                "  {:<30} {:>8} {:>12} {:>8} {:>12} {:>10}\n",
                label, s.allocs, s.bytes, s.frees, s.peak_live_bytes, s.largest_bytes
            ));
        };
        for (name, stats) in &self.stages {
            row(name, stats);
        }
        if self.unattributed != StageAlloc::default() {
            row("(unattributed)", &self.unattributed);
        }
        if self.overflow != StageAlloc::default() {
            row("(overflow)", &self.overflow);
        }
        out.push_str(&format!("peak live: {} bytes\n", self.peak_live_bytes));
        out
    }

    /// Machine-readable JSON (schema [`ALLOC_SCHEMA_VERSION`]); parse it
    /// back with [`uniq_obs::json::Json::parse`].
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema_version\": {ALLOC_SCHEMA_VERSION},\n  \"stages\": ["
        ));
        let stage_json = |name: &str, s: &StageAlloc| {
            format!(
                "\n    {{\"name\": \"{}\", \"allocs\": {}, \"bytes\": {}, \"frees\": {}, \
                 \"freed_bytes\": {}, \"peak_live_bytes\": {}, \"largest_bytes\": {}}}",
                json_escape(name),
                s.allocs,
                s.bytes,
                s.frees,
                s.freed_bytes,
                s.peak_live_bytes,
                s.largest_bytes
            )
        };
        for (i, (name, stats)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&stage_json(name, stats));
        }
        out.push_str("\n  ],");
        out.push_str(&format!(
            "\n  \"unattributed\": {},",
            stage_json("(unattributed)", &self.unattributed).trim_start_matches(['\n', ' '])
        ));
        out.push_str(&format!(
            "\n  \"overflow\": {},",
            stage_json("(overflow)", &self.overflow).trim_start_matches(['\n', ' '])
        ));
        out.push_str(&format!(
            "\n  \"peak_live_bytes\": {}\n}}\n",
            self.peak_live_bytes
        ));
        out
    }

    /// CSV export (one row per stage plus the synthetic rows), the format
    /// the `alloc-profile` experiment writes to `bench_results/`.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("stage,allocs,bytes,frees,freed_bytes,peak_live_bytes,largest_bytes\n");
        let mut row = |label: &str, s: &StageAlloc| {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                label,
                s.allocs,
                s.bytes,
                s.frees,
                s.freed_bytes,
                s.peak_live_bytes,
                s.largest_bytes
            ));
        };
        for (name, stats) in &self.stages {
            row(name, stats);
        }
        row("(unattributed)", &self.unattributed);
        row("(overflow)", &self.overflow);
        out
    }
}

/// A [`Sink`] adapter so a memory profile can ride along any sink stack:
/// it ignores every event (attribution happens in the allocator hook, not
/// the event stream) but keeps spans enabled, which is what drives the
/// `uniq-obs` stage tracking the hook reads. Install it when no other
/// sink is active and a memory profile is wanted.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTrackingSink;

impl Sink for StageTrackingSink {
    fn on_event(&self, _event: &uniq_obs::Event) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global; tests that measure serialize here.
    static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn track_for_same_name_same_slot() {
        let a = track_for("memprof.test.stage.a");
        let b = track_for("memprof.test.stage.a");
        assert_eq!(a, b);
        let c = track_for("memprof.test.stage.b");
        assert_ne!(a, c);
    }

    #[test]
    fn merge_is_associative_and_commutative_on_samples() {
        let a = StageAlloc {
            allocs: 1,
            bytes: 100,
            frees: 1,
            freed_bytes: 50,
            peak_live_bytes: 70,
            largest_bytes: 100,
        };
        let b = StageAlloc {
            allocs: 3,
            bytes: 10,
            frees: 0,
            freed_bytes: 0,
            peak_live_bytes: 10,
            largest_bytes: 6,
        };
        let c = StageAlloc {
            allocs: 0,
            bytes: 0,
            frees: 9,
            freed_bytes: 900,
            peak_live_bytes: 0,
            largest_bytes: 0,
        };
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn snapshot_round_trips_through_json_parser() {
        let _serial = MEASURE_LOCK.lock().unwrap();
        let mut snap = AllocSnapshot::default();
        snap.stages.insert(
            "fusion".to_string(),
            StageAlloc {
                allocs: 4,
                bytes: 4096,
                frees: 2,
                freed_bytes: 2048,
                peak_live_bytes: 2048,
                largest_bytes: 1024,
            },
        );
        snap.peak_live_bytes = 9000;
        let doc = uniq_obs::json::Json::parse(&snap.to_json()).expect("self-emitted JSON");
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(ALLOC_SCHEMA_VERSION)
        );
        let stages = doc.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].get("name").unwrap().as_str(), Some("fusion"));
        assert_eq!(stages[0].get("bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(doc.get("peak_live_bytes").unwrap().as_u64(), Some(9000));
        assert!(doc.get("unattributed").is_some());
    }

    #[test]
    fn csv_and_table_render_every_stage() {
        let mut snap = AllocSnapshot::default();
        snap.stages
            .insert("session".to_string(), StageAlloc::default());
        snap.stages.insert(
            "fusion".to_string(),
            StageAlloc {
                allocs: 1,
                bytes: 64,
                ..StageAlloc::default()
            },
        );
        let csv = snap.to_csv();
        assert!(csv.starts_with("stage,allocs,bytes"));
        assert!(csv.contains("fusion,1,64"));
        assert!(csv.contains("(unattributed)"));
        let table = snap.render_table();
        assert!(table.contains("per-stage allocations:"));
        assert!(table.contains("fusion"));
    }

    // Note: tests exercising the live hook (counting real allocations)
    // live in the workspace `memprof` integration test, whose binary
    // installs the `#[global_allocator]`; unit tests here cannot, because
    // every test binary in this crate shares the default allocator.

    #[test]
    fn measure_without_installed_allocator_reports_empty() {
        let _serial = MEASURE_LOCK.lock().unwrap();
        let ((), snap) = measure(|| {
            let v: Vec<u64> = (0..100).collect();
            std::hint::black_box(&v);
        });
        // No #[global_allocator] in this binary: nothing recorded.
        assert!(!installed());
        assert_eq!(snap.total(), StageAlloc::default());
    }
}
