//! Property-based tests for the optimization routines.

use proptest::prelude::*;
use uniq_optim::{golden_section, grid_search, nelder_mead, solve_2d, NelderMeadOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nelder_mead_finds_random_quadratic_minimum(
        cx in -5.0..5.0f64, cy in -5.0..5.0f64,
        sx in 0.5..4.0f64, sy in 0.5..4.0f64,
        x0 in -8.0..8.0f64, y0 in -8.0..8.0f64,
    ) {
        let f = |x: &[f64]| sx * (x[0] - cx).powi(2) + sy * (x[1] - cy).powi(2);
        let opts = NelderMeadOptions { max_iter: 1000, ..Default::default() };
        let r = nelder_mead(f, &[x0, y0], &opts);
        prop_assert!((r.x[0] - cx).abs() < 1e-3, "x: {} vs {cx}", r.x[0]);
        prop_assert!((r.x[1] - cy).abs() < 1e-3, "y: {} vs {cy}", r.x[1]);
    }

    #[test]
    fn nelder_mead_never_worse_than_start(
        coeffs in prop::collection::vec(-2.0..2.0f64, 3),
        x0 in -3.0..3.0f64,
    ) {
        // Arbitrary smooth 1-D objective (bounded below on the tested range).
        let f = move |x: &[f64]| {
            let t = x[0];
            coeffs[0] * t.sin() + coeffs[1] * (0.5 * t).cos() + coeffs[2] * 0.01 * t * t + t * t * 0.1
        };
        let start = f(&[x0]);
        let r = nelder_mead(f, &[x0], &NelderMeadOptions::default());
        prop_assert!(r.fx <= start + 1e-12);
    }

    #[test]
    fn golden_section_brackets_quadratic(c in -4.0..4.0f64, scale in 0.1..5.0f64) {
        let (x, fx) = golden_section(|x| scale * (x - c).powi(2), -10.0, 10.0, 1e-7);
        prop_assert!((x - c).abs() < 1e-4);
        prop_assert!(fx >= 0.0);
    }

    #[test]
    fn grid_search_result_is_grid_optimal(
        cx in 0.1..0.9f64, steps in 3usize..20,
    ) {
        let f = |x: &[f64]| (x[0] - cx).powi(2);
        let r = grid_search(f, &[(0.0, 1.0)], steps);
        // The returned point must be within one grid cell of the optimum.
        let cell = 1.0 / (steps - 1) as f64;
        prop_assert!((r.x[0] - cx).abs() <= cell / 2.0 + 1e-12);
        prop_assert!(r.converged);
    }

    #[test]
    fn solve_2d_random_linear_systems(
        a in 0.5..3.0f64, b in -2.0..2.0f64,
        c in -2.0..2.0f64, d in 0.5..3.0f64,
        r1 in -5.0..5.0f64, r2 in -5.0..5.0f64,
    ) {
        // Diagonally dominant → invertible.
        let (sol, res) = solve_2d(
            move |x| [a * x[0] + 0.3 * b * x[1] - r1, 0.3 * c * x[0] + d * x[1] - r2],
            [0.0, 0.0],
            80,
        );
        prop_assert!(res < 1e-8, "residual {res}");
        // Verify against the analytic solution.
        let det = a * d - 0.09 * b * c;
        let x = (r1 * d - 0.3 * b * r2) / det;
        let y = (a * r2 - 0.3 * c * r1) / det;
        prop_assert!((sol[0] - x).abs() < 1e-5);
        prop_assert!((sol[1] - y).abs() < 1e-5);
    }
}
