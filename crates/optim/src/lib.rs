//! # uniq-optim
//!
//! Derivative-free optimization routines used by UNIQ's diffraction-aware
//! sensor fusion (Eq. 2 of the paper) and its calibration steps.
//!
//! The objective functions in this system are built from discretized
//! geometry (polygonal wrap paths, sampled channels), so they are cheap but
//! non-smooth — gradient-free methods are the right tool:
//!
//! * [`nelder_mead`] — the simplex method, used to minimize the head-
//!   parameter mismatch `Σ (α_i − θ_i(E))²` over `E = (a, b, c)`.
//! * [`golden_section`] — 1-D bracketing line search (λ training, Eq. 9).
//! * [`grid_search`] — coarse global sweeps that seed the simplex.
//! * [`solve_2d`] — damped Gauss–Newton for 2-D root finding (iso-delay
//!   curve intersection, Fig 10(b)).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Options for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum number of simplex iterations.
    pub max_iter: usize,
    /// Terminate when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Terminate when the simplex collapses below this size.
    pub x_tol: f64,
    /// Relative size of the initial simplex (per coordinate).
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iter: 400,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a minimization.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Minimizer found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether a tolerance criterion (rather than the iteration cap) fired.
    pub converged: bool,
}

/// Minimizes `f` with the Nelder–Mead simplex method starting from `x0`.
///
/// ```
/// use uniq_optim::{nelder_mead, NelderMeadOptions};
/// let r = nelder_mead(|x| (x[0] - 2.0).powi(2) + x[1].powi(2), &[0.0, 1.0],
///                     &NelderMeadOptions::default());
/// assert!((r.x[0] - 2.0).abs() < 1e-3 && r.x[1].abs() < 1e-3);
/// ```
///
/// Objective values may be `INFINITY` to mark infeasible regions; the
/// simplex will move away from them. NaN objectives panic.
///
/// # Panics
/// Panics if `x0` is empty or `f` returns NaN.
pub fn nelder_mead(f: impl Fn(&[f64]) -> f64, x0: &[f64], opts: &NelderMeadOptions) -> OptimResult {
    assert!(!x0.is_empty(), "nelder_mead: empty start point");
    let n = x0.len();
    let eval = |x: &[f64]| -> f64 {
        let v = f(x);
        assert!(!v.is_nan(), "nelder_mead: objective returned NaN at {x:?}");
        v
    };

    // Initial simplex: x0 plus a perturbed point per coordinate. The step
    // is relative to the coordinate, but floored against the problem's
    // overall scale — a coordinate that happens to start near zero must
    // not get a degenerate (needle-thin) simplex, or the search crawls.
    let scale = x0.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    let floor = opts.initial_step * 0.05 * (1.0 + scale);
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    // uniq-analyzer: allow(hot-path-alloc) — the optimizer allocates a handful of n-element points (n = 3 head parameters) per iteration, once per fusion solve — not in the per-sample path
    simplex.push((x0.to_vec(), eval(x0)));
    for i in 0..n {
        let mut x = x0.to_vec();
        let step = (x[i].abs() * opts.initial_step).max(floor);
        x[i] += step;
        let fx = eval(&x);
        simplex.push((x, fx));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    let mut iterations = 0;
    let mut converged = false;

    for it in 0..opts.max_iter {
        iterations = it + 1;
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Convergence checks.
        let best = simplex[0].1;
        let worst = simplex[n].1;
        let spread = (worst - best).abs();
        let size: f64 = (0..n)
            .map(|i| {
                let lo = simplex
                    .iter()
                    .map(|(x, _)| x[i])
                    .fold(f64::INFINITY, f64::min);
                let hi = simplex
                    .iter()
                    .map(|(x, _)| x[i])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0, f64::max);
        if (spread < opts.f_tol && best.is_finite()) || size < opts.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst.
        let centroid: Vec<f64> = (0..n)
            .map(|i| simplex[..n].iter().map(|(x, _)| x[i]).sum::<f64>() / n as f64)
            .collect();
        let worst_x = simplex[n].0.clone();
        let blend = |t: f64| -> Vec<f64> {
            (0..n)
                .map(|i| centroid[i] + t * (centroid[i] - worst_x[i]))
                .collect()
        };

        // Reflection.
        let xr = blend(alpha);
        let fr = eval(&xr);
        if fr < simplex[0].1 {
            // Expansion.
            let xe = blend(gamma);
            let fe = eval(&xe);
            simplex[n] = if fe < fr { (xe, fe) } else { (xr, fr) };
            continue;
        }
        if fr < simplex[n - 1].1 {
            simplex[n] = (xr, fr);
            continue;
        }
        // Contraction (outside if reflected better than worst, else inside).
        let (xc, fc) = if fr < simplex[n].1 {
            let x = blend(rho);
            let fx = eval(&x);
            (x, fx)
        } else {
            let x = blend(-rho);
            let fx = eval(&x);
            (x, fx)
        };
        if fc < simplex[n].1.min(fr) {
            simplex[n] = (xc, fc);
            continue;
        }
        // Shrink toward the best vertex.
        let best_x = simplex[0].0.clone();
        for entry in simplex.iter_mut().skip(1) {
            let x: Vec<f64> = entry
                .0
                .iter()
                .zip(&best_x)
                .map(|(&xi, &bi)| bi + sigma * (xi - bi))
                .collect();
            let fx = eval(&x);
            *entry = (x, fx);
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (x, fx) = simplex.swap_remove(0);
    OptimResult {
        x,
        fx,
        iterations,
        converged,
    }
}

/// Minimizes a 1-D unimodal function on `[lo, hi]` by golden-section
/// search; returns `(x_min, f_min)`.
///
/// # Panics
/// Panics unless `lo < hi` and `tol > 0`.
pub fn golden_section(f: impl Fn(f64) -> f64, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(lo < hi, "golden_section: empty interval");
    assert!(tol > 0.0, "golden_section: tolerance must be positive");
    let inv_phi = (5f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = (a + b) / 2.0;
    (x, f(x))
}

/// Evaluates `f` on a regular grid over the axis-aligned box and returns
/// the best point — a cheap global seed for [`nelder_mead`].
///
/// `bounds` gives `(lo, hi)` per dimension; `steps` the number of grid
/// points per dimension (≥ 2).
///
/// # Panics
/// Panics on empty bounds, `steps < 2`, or inverted bounds.
pub fn grid_search(f: impl Fn(&[f64]) -> f64, bounds: &[(f64, f64)], steps: usize) -> OptimResult {
    assert!(!bounds.is_empty(), "grid_search: no bounds");
    assert!(steps >= 2, "grid_search: need at least 2 steps");
    for &(lo, hi) in bounds {
        assert!(lo < hi, "grid_search: inverted bounds ({lo}, {hi})");
    }
    let dims = bounds.len();
    let total = steps.pow(dims as u32);
    let mut best_x = vec![0.0; dims];
    let mut best_f = f64::INFINITY;
    let mut x = vec![0.0; dims];
    for flat in 0..total {
        let mut rem = flat;
        for (d, &(lo, hi)) in bounds.iter().enumerate() {
            let idx = rem % steps;
            rem /= steps;
            x[d] = lo + (hi - lo) * idx as f64 / (steps - 1) as f64;
        }
        let fx = f(&x);
        assert!(!fx.is_nan(), "grid_search: objective returned NaN at {x:?}");
        if fx < best_f {
            best_f = fx;
            best_x.copy_from_slice(&x);
        }
    }
    OptimResult {
        x: best_x,
        fx: best_f,
        iterations: total,
        converged: best_f.is_finite(),
    }
}

/// Solves the 2-D system `r(x) = 0` by damped Gauss–Newton with
/// finite-difference Jacobians, starting from `x0`.
///
/// Returns the solution and the final residual norm; callers should check
/// the norm against their own tolerance. Used to intersect the two
/// iso-delay trajectories of Fig 10(b).
pub fn solve_2d(
    r: impl Fn([f64; 2]) -> [f64; 2],
    x0: [f64; 2],
    max_iter: usize,
) -> ([f64; 2], f64) {
    let norm = |v: [f64; 2]| (v[0] * v[0] + v[1] * v[1]).sqrt();
    let mut x = x0;
    let mut fx = r(x);
    for _ in 0..max_iter {
        let res = norm(fx);
        if res < 1e-12 {
            break;
        }
        // Finite-difference Jacobian.
        let h = 1e-7 * (1.0 + x[0].abs().max(x[1].abs()));
        let fx_dx = r([x[0] + h, x[1]]);
        let fx_dy = r([x[0], x[1] + h]);
        let j = [
            [(fx_dx[0] - fx[0]) / h, (fx_dy[0] - fx[0]) / h],
            [(fx_dx[1] - fx[1]) / h, (fx_dy[1] - fx[1]) / h],
        ];
        let det = j[0][0] * j[1][1] - j[0][1] * j[1][0];
        if det.abs() < 1e-18 {
            break; // singular; give up at current point
        }
        // Newton step: solve J·dx = -f.
        let dx = [
            (-fx[0] * j[1][1] + fx[1] * j[0][1]) / det,
            (-fx[1] * j[0][0] + fx[0] * j[1][0]) / det,
        ];
        // Damped line search: halve until the residual decreases.
        let mut t = 1.0;
        let mut accepted = false;
        for _ in 0..20 {
            let cand = [x[0] + t * dx[0], x[1] + t * dx[1]];
            let fc = r(cand);
            if norm(fc) < res {
                x = cand;
                fx = fc;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            break; // stuck — return best so far
        }
    }
    let res = norm(fx);
    (x, res)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nelder_mead_quadratic_bowl() {
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2);
        let r = nelder_mead(f, &[0.0, 0.0], &NelderMeadOptions::default());
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "x1 = {}", r.x[1]);
    }

    #[test]
    fn nelder_mead_rosenbrock() {
        let f = |x: &[f64]| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2);
        let opts = NelderMeadOptions {
            max_iter: 5000,
            ..Default::default()
        };
        let r = nelder_mead(f, &[-1.2, 1.0], &opts);
        assert!(r.fx < 1e-8, "fx = {}", r.fx);
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nelder_mead_handles_infinity_walls() {
        // Minimum at 2, infeasible below 1.
        let f = |x: &[f64]| {
            if x[0] < 1.0 {
                f64::INFINITY
            } else {
                (x[0] - 2.0).powi(2)
            }
        };
        let r = nelder_mead(f, &[1.5], &NelderMeadOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn nelder_mead_3d() {
        let f = |x: &[f64]| (x[0] - 0.08).powi(2) + (x[1] - 0.10).powi(2) + (x[2] - 0.09).powi(2);
        let r = nelder_mead(f, &[0.075, 0.095, 0.085], &NelderMeadOptions::default());
        assert!(r.fx < 1e-10);
    }

    #[test]
    #[should_panic(expected = "empty start")]
    fn nelder_mead_empty_start_panics() {
        nelder_mead(|_| 0.0, &[], &NelderMeadOptions::default());
    }

    #[test]
    fn golden_section_parabola() {
        let (x, fx) = golden_section(|x| (x - 1.25).powi(2), -10.0, 10.0, 1e-8);
        assert!((x - 1.25).abs() < 1e-6);
        assert!(fx < 1e-10);
    }

    #[test]
    fn golden_section_asymmetric() {
        let (x, _) = golden_section(|x| (x - 0.1).abs() + 0.5 * x, 0.0, 1.0, 1e-9);
        assert!((x - 0.1).abs() < 1e-6);
    }

    #[test]
    fn grid_search_finds_best_cell() {
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + (x[1] - 0.7).powi(2);
        let r = grid_search(f, &[(0.0, 1.0), (0.0, 1.0)], 11);
        assert!((r.x[0] - 0.3).abs() < 0.05);
        assert!((r.x[1] - 0.7).abs() < 0.05);
        assert_eq!(r.iterations, 121);
    }

    #[test]
    fn grid_then_simplex_pipeline() {
        // Multi-modal objective: grid finds the right basin, simplex refines.
        let f = |x: &[f64]| {
            let base = (x[0] - 2.0).powi(2);
            base + 0.5 * (5.0 * x[0]).sin().powi(2)
        };
        let seed = grid_search(f, &[(-5.0, 5.0)], 41);
        let r = nelder_mead(f, &seed.x, &NelderMeadOptions::default());
        assert!(r.fx <= seed.fx + 1e-12);
    }

    #[test]
    fn solve_2d_linear_system() {
        // x + y = 3, x - y = 1 → (2, 1).
        let r = solve_2d(|x| [x[0] + x[1] - 3.0, x[0] - x[1] - 1.0], [0.0, 0.0], 50);
        assert!(r.1 < 1e-9);
        assert!((r.0[0] - 2.0).abs() < 1e-6);
        assert!((r.0[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solve_2d_circle_intersection() {
        // Two circles: centred (0,0) r=5 and (6,0) r=5 → intersection (3, ±4).
        let r = solve_2d(
            |x| {
                [
                    x[0] * x[0] + x[1] * x[1] - 25.0,
                    (x[0] - 6.0).powi(2) + x[1] * x[1] - 25.0,
                ]
            },
            [2.0, 2.0],
            100,
        );
        assert!(r.1 < 1e-8, "residual {}", r.1);
        assert!((r.0[0] - 3.0).abs() < 1e-5);
        assert!((r.0[1].abs() - 4.0).abs() < 1e-5);
    }
}
