//! # uniq-subjects
//!
//! The synthetic subject population — the reproduction's stand-in for the
//! paper's human volunteers.
//!
//! A [`Subject`] is a head-parameter set `E = (a, b, c)` (the paper's own
//! 3-parameter model) plus one angle-sensitive pinna model per ear.
//! Subjects are sampled around adult anthropometric means from a seed, so
//! the whole study is reproducible.
//!
//! Two fixed casts are provided:
//!
//! * [`evaluation_cohort`] — the five "volunteers" used throughout the
//!   evaluation (Figs 17–22). Volunteers 4 and 5 perform the sloppier arm
//!   gesture, mirroring the paper's account of their arm-movement
//!   constraints (Fig 19).
//! * [`mannequin`] — the lab mannequin whose far-field HRTF plays the role
//!   of the *global template* ("the HRTF available online"): carefully
//!   measured, but personal to nobody.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uniq_acoustics::pinna::PinnaModel;
use uniq_acoustics::render::Renderer;
use uniq_acoustics::types::{HrirBank, RenderConfig};
use uniq_geometry::{HeadBoundary, HeadParams};
use uniq_imu::trajectory::Imperfections;

/// A synthetic study participant.
#[derive(Debug, Clone)]
pub struct Subject {
    /// Stable identifier (also the sampling seed).
    pub id: u64,
    /// Head geometry `E = (a, b, c)`.
    pub head: HeadParams,
    /// Left-ear pinna model.
    pub pinna_left: PinnaModel,
    /// Right-ear pinna model.
    pub pinna_right: PinnaModel,
    /// How carefully this subject performs the measurement gesture.
    pub gesture: Imperfections,
}

/// Anthropometric spread used when sampling heads (standard deviations
/// around [`HeadParams::average_adult`], metres).
const HEAD_SPREAD: (f64, f64, f64) = (0.006, 0.008, 0.008);

impl Subject {
    /// Samples a subject from a seed: head axes are drawn around the adult
    /// averages and each ear gets an independent pinna.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let base = HeadParams::average_adult();
        let head = HeadParams::new(
            base.a + HEAD_SPREAD.0 * symmetric(&mut rng),
            base.b + HEAD_SPREAD.1 * symmetric(&mut rng),
            base.c + HEAD_SPREAD.2 * symmetric(&mut rng),
        );
        Subject {
            id: seed,
            head,
            pinna_left: PinnaModel::from_seed(seed.wrapping_mul(2).wrapping_add(1)),
            pinna_right: PinnaModel::from_seed(seed.wrapping_mul(2).wrapping_add(2)),
            gesture: Imperfections::typical(),
        }
    }

    /// The forward renderer for this subject — the "physical truth" used
    /// both to synthesize measurements and to produce ground-truth HRTFs.
    ///
    /// `boundary_resolution` controls the forward model's fidelity; the
    /// inverse solver deliberately uses a coarser boundary, so keep this at
    /// [`FORWARD_RESOLUTION`] for experiments.
    pub fn renderer(&self, cfg: RenderConfig, boundary_resolution: usize) -> Renderer {
        Renderer::new(
            HeadBoundary::new(self.head, boundary_resolution),
            self.pinna_left.clone(),
            self.pinna_right.clone(),
            cfg,
        )
    }

    /// Ground-truth far-field HRIR bank — the reproduction of the paper's
    /// anechoic-chamber measurement of each volunteer.
    pub fn ground_truth(&self, cfg: RenderConfig, angles_deg: &[f64]) -> HrirBank {
        self.renderer(cfg, FORWARD_RESOLUTION)
            .ground_truth_bank(angles_deg)
    }
}

/// Boundary resolution of the forward (truth) model.
pub const FORWARD_RESOLUTION: usize = 4096;

/// Boundary resolution used by the inverse solver — deliberately coarser
/// than [`FORWARD_RESOLUTION`] to preserve realistic model mismatch.
pub const INVERSE_RESOLUTION: usize = 1024;

fn symmetric(rng: &mut StdRng) -> f64 {
    rng.gen_range(-1.0..1.0)
}

/// The five evaluation volunteers. Fixed seeds; volunteers 4 and 5 use the
/// severe gesture profile (their arms tired / were constrained, per the
/// paper's Fig 19 discussion).
pub fn evaluation_cohort() -> Vec<Subject> {
    (0..5)
        .map(|k| {
            let mut s = Subject::from_seed(1000 + k);
            if k >= 3 {
                s.gesture = Imperfections::severe();
            }
            s
        })
        .collect()
}

/// The lab mannequin behind the *global* HRTF template. Exactly average
/// head, its own (fixed) pinnae — a fine HRTF for the average nobody.
pub fn mannequin() -> Subject {
    Subject {
        id: 424_242,
        head: HeadParams::average_adult(),
        pinna_left: PinnaModel::from_seed(900_001),
        pinna_right: PinnaModel::from_seed(900_002),
        gesture: Imperfections::none(),
    }
}

/// The global HRTF template: the mannequin's far-field bank at the given
/// angles — the paper's "lower bound for personalization".
pub fn global_template(cfg: RenderConfig, angles_deg: &[f64]) -> HrirBank {
    mannequin().ground_truth(cfg, angles_deg)
}

/// A disjoint pool of extra subjects (ids ≥ 2000) for population studies
/// and ablations.
pub fn population(n: usize) -> Vec<Subject> {
    (0..n as u64)
        .map(|k| Subject::from_seed(2000 + k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_reproducible() {
        let a = Subject::from_seed(7);
        let b = Subject::from_seed(7);
        assert_eq!(a.head, b.head);
    }

    #[test]
    fn subjects_differ() {
        let a = Subject::from_seed(1);
        let b = Subject::from_seed(2);
        assert_ne!(a.head, b.head);
    }

    #[test]
    fn heads_within_anthropometric_bounds() {
        for s in population(50) {
            s.head.validate();
            let base = HeadParams::average_adult();
            assert!((s.head.a - base.a).abs() <= HEAD_SPREAD.0 + 1e-12);
            assert!((s.head.b - base.b).abs() <= HEAD_SPREAD.1 + 1e-12);
            assert!((s.head.c - base.c).abs() <= HEAD_SPREAD.2 + 1e-12);
        }
    }

    #[test]
    fn cohort_is_five_with_two_sloppy() {
        let cohort = evaluation_cohort();
        assert_eq!(cohort.len(), 5);
        let sloppy: Vec<bool> = cohort
            .iter()
            .map(|s| s.gesture.droop_m > Imperfections::typical().droop_m + 1e-12)
            .collect();
        assert_eq!(sloppy, vec![false, false, false, true, true]);
    }

    #[test]
    fn cohort_distinct_from_mannequin() {
        let m = mannequin();
        for s in evaluation_cohort() {
            assert_ne!(s.id, m.id);
            // Pinnae must differ (different seeds).
            let sl = s.pinna_left.response(0.0, 48_000.0, 64);
            let ml = m.pinna_left.response(0.0, 48_000.0, 64);
            assert_ne!(sl, ml);
        }
    }

    #[test]
    fn ground_truth_bank_renders() {
        let cfg = RenderConfig::default();
        let s = Subject::from_seed(3);
        let bank = s.ground_truth(cfg, &[0.0, 90.0, 180.0]);
        assert_eq!(bank.len(), 3);
        let e: f64 = bank.irs()[1].left.iter().map(|v| v * v).sum();
        assert!(e > 0.0);
    }

    #[test]
    fn global_template_differs_from_subject_truth() {
        let cfg = RenderConfig::default();
        let angles = [45.0];
        let template = global_template(cfg, &angles);
        let subject = evaluation_cohort()[0].ground_truth(cfg, &angles);
        let (sim_l, sim_r) = subject.irs()[0].similarity(&template.irs()[0]);
        assert!(
            sim_l < 0.95 && sim_r < 0.95,
            "global template suspiciously personal: {sim_l}, {sim_r}"
        );
    }
}
