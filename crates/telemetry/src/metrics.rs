//! The sharded metric registry: a [`Sink`] that folds the event stream
//! into counters and histograms with per-worker shards.
//!
//! Design constraints, in order:
//!
//! 1. **Low overhead on the hot path.** Each pool worker owns a shard;
//!    recording takes that shard's mutex, which is uncontended in steady
//!    state (only the snapshot ever touches another worker's shard). No
//!    allocation per event after a name's first sample.
//! 2. **Registered names only.** Names outside
//!    [`uniq_obs::names::ALL_METRICS`]/[`ALL_SPANS`] are not aggregated —
//!    they are counted in [`RegistrySnapshot::dropped`] so a typo is
//!    visible rather than silently creating a new series.
//! 3. **Deterministic aggregate.** Counter totals, sample counts, and
//!    metric min/max are independent of which shard a sample landed in,
//!    so [`RegistrySnapshot::determinism_key`] is bit-identical across
//!    thread counts for a deterministic workload. Cross-shard `f64` sums
//!    are *not* part of the key (addition order varies with sharding).
//! 4. **Self-accounting.** The registry times its own event handling and
//!    reports the total as the `obs.telemetry_overhead_ns` metric in
//!    every snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use uniq_obs::names::{
    ALLOC_LARGEST_SINGLE_BYTES, ALLOC_PEAK_LIVE_BYTES, ALLOC_UNATTRIBUTED_BYTES, ALL_METRICS,
    ALL_SPANS, BATCH_SUBJECT_SECONDS, OBS_TELEMETRY_OVERHEAD_NS, SERVE_REQUEST_SECONDS,
};
use uniq_obs::report::LogHistogram;
use uniq_obs::sink::Sink;
use uniq_obs::{Event, Stopwatch};

/// Shard count: shard 0 collects events from non-pool threads (the
/// caller's thread, tests), shards `1..` map pool workers by index. More
/// workers than shards simply share — correctness never depends on the
/// mapping, only contention does.
const SHARDS: usize = 17;

/// Metric names whose *values* are wall-clock or scheduling-dependent
/// measurements. Their sample counts are deterministic but their values
/// are not, so [`RegistrySnapshot::determinism_key`] covers only their
/// counts. The `alloc.*` entries are the memory-profile series whose
/// values depend on thread interleaving (peak overlap, infrastructure
/// allocation); the deterministic alloc totals arrive as *counters* and
/// are covered in full.
const TIMING_METRICS: &[&str] = &[
    BATCH_SUBJECT_SECONDS,
    OBS_TELEMETRY_OVERHEAD_NS,
    ALLOC_PEAK_LIVE_BYTES,
    ALLOC_LARGEST_SINGLE_BYTES,
    ALLOC_UNATTRIBUTED_BYTES,
    SERVE_REQUEST_SECONDS,
];

/// Streaming aggregate of one metric series: count, sum, min, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricAgg {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (shard merge order affects the low bits; see
    /// the module docs on determinism).
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl MetricAgg {
    fn new(v: f64) -> Self {
        MetricAgg {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(&mut self, other: &MetricAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Shard {
    counters: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, LogHistogram>,
    metrics: BTreeMap<&'static str, MetricAgg>,
}

/// A [`Sink`] aggregating the event stream into a sharded registry. See
/// the module docs for the design constraints.
#[derive(Debug)]
pub struct TelemetrySink {
    shards: Vec<Mutex<Shard>>,
    overhead_ns: AtomicU64,
    dropped: AtomicU64,
}

impl Default for TelemetrySink {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetrySink {
    /// Creates an empty registry.
    pub fn new() -> Self {
        TelemetrySink {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            overhead_ns: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// This thread's shard: pool workers get their own (by worker index),
    /// everything else shares shard 0.
    fn shard(&self) -> &Mutex<Shard> {
        let idx = match uniq_par::current_worker() {
            Some((_, worker)) => 1 + worker % (SHARDS - 1),
            None => 0,
        };
        &self.shards[idx]
    }

    /// Merges every shard (in index order) into one [`RegistrySnapshot`],
    /// appending the registry's own accumulated cost as the
    /// `obs.telemetry_overhead_ns` metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut out = RegistrySnapshot {
            counters: BTreeMap::new(),
            spans: BTreeMap::new(),
            metrics: BTreeMap::new(),
            overhead_ns: self.overhead_ns.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("telemetry shard poisoned");
            for (&name, &delta) in &shard.counters {
                *out.counters.entry(name.to_string()).or_insert(0) += delta;
            }
            for (&name, hist) in &shard.spans {
                out.spans.entry(name.to_string()).or_default().merge(hist);
            }
            for (&name, agg) in &shard.metrics {
                out.metrics
                    .entry(name.to_string())
                    .and_modify(|mine| mine.merge(agg))
                    .or_insert(*agg);
            }
        }
        out.metrics.insert(
            OBS_TELEMETRY_OVERHEAD_NS.to_string(),
            MetricAgg::new(out.overhead_ns as f64),
        );
        out
    }
}

impl Sink for TelemetrySink {
    fn on_event(&self, event: &Event) {
        // Span starts carry no aggregate information; returning before the
        // stopwatch keeps the hot path at one match arm.
        if matches!(event, Event::SpanStart { .. }) {
            return;
        }
        let sw = Stopwatch::start();
        match event {
            Event::SpanStart { .. } => {}
            Event::SpanEnd { name, nanos, .. } => {
                if ALL_SPANS.contains(name) {
                    let mut shard = self.shard().lock().expect("telemetry shard poisoned");
                    shard
                        .spans
                        .entry(name)
                        .or_default()
                        .record(u64::try_from(*nanos).unwrap_or(u64::MAX));
                } else {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::Counter { name, delta } => {
                if ALL_METRICS.contains(name) {
                    // uniq-analyzer: allow(lock-order) — match arms are mutually exclusive; each arm's shard guard drops at arm end, so two acquisitions are never live together
                    let mut shard = self.shard().lock().expect("telemetry shard poisoned");
                    *shard.counters.entry(name).or_insert(0) += delta;
                } else {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Event::Metric { name, value, .. } => {
                if ALL_METRICS.contains(name) {
                    let mut shard = self.shard().lock().expect("telemetry shard poisoned");
                    shard
                        .metrics
                        .entry(name)
                        .and_modify(|agg| agg.record(*value))
                        .or_insert_with(|| MetricAgg::new(*value));
                } else {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.overhead_ns
            .fetch_add((sw.elapsed_seconds() * 1e9) as u64, Ordering::Relaxed);
    }

    fn flush(&self) {}
}

/// The merged view of every shard at one instant (see
/// [`TelemetrySink::snapshot`]). Keys are sorted, so rendering the
/// snapshot is deterministic.
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Span duration histograms (nanoseconds) by name.
    pub spans: BTreeMap<String, LogHistogram>,
    /// Metric aggregates by name (includes `obs.telemetry_overhead_ns`).
    pub metrics: BTreeMap<String, MetricAgg>,
    /// Nanoseconds the registry spent handling events.
    pub overhead_ns: u64,
    /// Events discarded because their name was not registered.
    pub dropped: u64,
}

impl RegistrySnapshot {
    /// A canonical string covering every scheduling-independent aggregate:
    /// counter totals, span sample counts, and metric counts plus min/max
    /// bits (values are deterministic for a seeded workload; sums are
    /// excluded because shard merge order varies with the thread count,
    /// and wall-clock-valued series contribute counts only). Two runs of
    /// the same workload must produce equal keys at any thread count.
    pub fn determinism_key(&self) -> String {
        let mut lines = Vec::new();
        for (name, total) in &self.counters {
            lines.push(format!("counter {name} total={total}"));
        }
        for (name, hist) in &self.spans {
            lines.push(format!("span {name} count={}", hist.count()));
        }
        for (name, agg) in &self.metrics {
            if TIMING_METRICS.contains(&name.as_str()) {
                lines.push(format!("metric {name} count={}", agg.count));
            } else {
                lines.push(format!(
                    "metric {name} count={} min={:016x} max={:016x}",
                    agg.count,
                    agg.min.to_bits(),
                    agg.max.to_bits()
                ));
            }
        }
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use uniq_obs::names::{FUSION_OBJECTIVE, SESSION_STOPS, SPAN_FUSION};

    #[test]
    fn aggregates_counters_spans_and_metrics() {
        let sink = Arc::new(TelemetrySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            {
                let _s = uniq_obs::span(SPAN_FUSION);
            }
            uniq_obs::counter(SESSION_STOPS, 3);
            uniq_obs::counter(SESSION_STOPS, 2);
            uniq_obs::metric(FUSION_OBJECTIVE, 4.0, "deg2");
            uniq_obs::metric(FUSION_OBJECTIVE, 2.0, "deg2");
        });
        let snap = sink.snapshot();
        assert_eq!(snap.counters[SESSION_STOPS], 5);
        assert_eq!(snap.spans[SPAN_FUSION].count(), 1);
        let agg = snap.metrics[FUSION_OBJECTIVE];
        assert_eq!(agg.count, 2);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 4.0);
        assert_eq!(agg.mean(), 3.0);
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn unregistered_names_are_dropped_and_counted() {
        let sink = Arc::new(TelemetrySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            uniq_obs::counter("made.up_counter", 1);
            uniq_obs::metric("made.up_metric", 1.0, "");
            {
                let _s = uniq_obs::span("made.up_span");
            }
        });
        let snap = sink.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
        // Only the self-overhead metric survives.
        assert_eq!(snap.metrics.len(), 1);
        assert!(snap.metrics.contains_key(OBS_TELEMETRY_OVERHEAD_NS));
        assert_eq!(snap.dropped, 3);
    }

    #[test]
    fn snapshot_reports_own_overhead() {
        let sink = Arc::new(TelemetrySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            for _ in 0..100 {
                uniq_obs::counter(SESSION_STOPS, 1);
            }
        });
        let snap = sink.snapshot();
        let overhead = snap.metrics[OBS_TELEMETRY_OVERHEAD_NS];
        assert_eq!(overhead.count, 1);
        assert!(overhead.max >= 0.0);
        assert_eq!(overhead.max, snap.overhead_ns as f64);
    }

    #[test]
    fn determinism_key_ignores_sharding() {
        // Record the same samples from a pool worker and from the caller's
        // thread (different shards); the key must not change.
        let record_inline = || {
            let sink = Arc::new(TelemetrySink::new());
            uniq_obs::with_sink(sink.clone(), || {
                uniq_obs::counter(SESSION_STOPS, 4);
                uniq_obs::metric(FUSION_OBJECTIVE, 1.5, "deg2");
                uniq_obs::metric(FUSION_OBJECTIVE, 2.5, "deg2");
            });
            sink.snapshot().determinism_key()
        };
        let record_pooled = || {
            let sink = Arc::new(TelemetrySink::new());
            uniq_obs::with_sink(sink.clone(), || {
                let ctx = uniq_obs::capture();
                let pool = uniq_par::pool(2);
                let vals = [1.5, 2.5];
                let _: Vec<()> = pool.par_map_chunked(&vals, 1, |&v| {
                    ctx.run(|| {
                        if v == 1.5 {
                            uniq_obs::counter(SESSION_STOPS, 4);
                        }
                        uniq_obs::metric(FUSION_OBJECTIVE, v, "deg2");
                    })
                });
            });
            sink.snapshot().determinism_key()
        };
        assert_eq!(record_inline(), record_pooled());
    }
}
