//! The cross-run ledger: one JSON line per benchmark or pipeline run,
//! appended to `bench_results/history.jsonl`, plus the trend and
//! comparison gates CI runs over it.
//!
//! Records deliberately carry **no timestamps** — the workspace's
//! determinism discipline bars wall-clock values from anything a test
//! might compare, and run order is already the line order. Each record
//! carries its schema version inline (the file is append-only across
//! code revisions, so a single header line could not describe it).
//!
//! Gate semantics (shared by [`trend`] and [`compare_last_two`]):
//! exit 0 = clean, 1 = latency regression (warn tier — wall time varies
//! with the machine), 2 = quality drift (fatal — quality numbers are
//! pure functions of the pinned seeds).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use uniq_obs::json::Json;
use uniq_obs::sink::{json_escape, json_number};

/// Schema stamp carried inline by every ledger record.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Default relative tolerance for quality drift (fatal).
pub const DEFAULT_QUALITY_TOL: f64 = 0.02;

/// Default relative tolerance for latency regressions (warn tier).
pub const DEFAULT_LATENCY_TOL: f64 = 0.5;

/// The default ledger location, relative to the workspace root.
pub const DEFAULT_HISTORY_FILE: &str = "bench_results/history.jsonl";

/// One run's ledger entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Record schema version (see [`LEDGER_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Workload label — records are only trended against the same label
    /// (`"baseline"`, `"personalize"`, `"batch"`, …).
    pub label: String,
    /// Abbreviated git revision the run was built from (`"unknown"`
    /// outside a checkout).
    pub git_rev: String,
    /// Base seed of the workload.
    pub seed: u64,
    /// Thread count (largest pool size for matrix runs).
    pub threads: u64,
    /// Wall-clock seconds of the headline workload.
    pub wall_seconds: f64,
    /// Output fingerprint in hex (empty when the workload has none).
    pub fingerprint: String,
    /// Quality numbers by name (deterministic functions of the seed).
    pub quality: BTreeMap<String, f64>,
    /// Per-stage p50 latency, nanoseconds.
    pub stage_p50_ns: BTreeMap<String, f64>,
    /// Per-stage p99 latency, nanoseconds.
    pub stage_p99_ns: BTreeMap<String, f64>,
    /// Degradation summary of a faulted run (`None` = clean).
    pub degradation: Option<String>,
    /// Artifact-store summary of a run that persisted its result
    /// (`None` = nothing stored).
    pub store: Option<String>,
    /// Attributed allocation count across all stages (0 = the run carried
    /// no memory profile). Additive extension: absent in older records,
    /// which parse to the zero defaults.
    pub alloc_total_allocs: u64,
    /// Attributed allocated bytes across all stages.
    pub alloc_total_bytes: u64,
    /// Process-wide peak live heap bytes while recording (warn tier —
    /// scheduling-dependent).
    pub alloc_peak_live_bytes: u64,
    /// Per-stage attributed allocated bytes (the trended alloc columns).
    pub stage_alloc_bytes: BTreeMap<String, f64>,
}

impl LedgerRecord {
    /// An empty record for `label`, schema-stamped and revision-stamped.
    pub fn new(label: &str) -> Self {
        LedgerRecord {
            schema: LEDGER_SCHEMA_VERSION,
            label: label.to_string(),
            git_rev: git_rev(Path::new(".")),
            seed: 0,
            threads: 1,
            wall_seconds: 0.0,
            fingerprint: String::new(),
            quality: BTreeMap::new(),
            stage_p50_ns: BTreeMap::new(),
            stage_p99_ns: BTreeMap::new(),
            degradation: None,
            store: None,
            alloc_total_allocs: 0,
            alloc_total_bytes: 0,
            alloc_peak_live_bytes: 0,
            stage_alloc_bytes: BTreeMap::new(),
        }
    }

    /// Builds a `"baseline"` record from a `BENCH_BASELINE.json`-shaped
    /// document (the bench `baseline` binary's output).
    pub fn from_baseline_doc(doc: &Json, label: &str) -> Result<LedgerRecord, String> {
        let mut rec = LedgerRecord::new(label);
        let meta = doc.get("meta").ok_or("document has no meta section")?;
        rec.seed = meta
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("meta.seed missing")?;
        rec.threads = meta
            .get("thread_counts")
            .and_then(Json::as_array)
            .and_then(|counts| counts.iter().filter_map(Json::as_u64).max())
            .unwrap_or(1);
        let quality = doc
            .get("quality")
            .ok_or("document has no quality section")?;
        if let Some(members) = quality.as_object() {
            for (key, value) in members {
                match value {
                    Json::Num(v) => {
                        rec.quality.insert(key.clone(), *v);
                    }
                    Json::Str(s) if key.contains("fingerprint") && rec.fingerprint.is_empty() => {
                        rec.fingerprint = s.clone();
                    }
                    _ => {}
                }
            }
        }
        let perf = doc.get("perf").ok_or("document has no perf section")?;
        if let Some(members) = perf.as_object() {
            for (key, value) in members {
                if key.starts_with("personalize_seconds_t") {
                    if let Some(v) = value.as_f64() {
                        // Headline wall time: the largest pool's run.
                        rec.wall_seconds = v;
                    }
                }
            }
        }
        for stage in perf.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
            let Some(name) = stage.get("name").and_then(Json::as_str) else {
                continue;
            };
            if let Some(p50) = stage.get("p50_ns").and_then(Json::as_f64) {
                rec.stage_p50_ns.insert(name.to_string(), p50);
            }
            if let Some(p99) = stage.get("p99_ns").and_then(Json::as_f64) {
                rec.stage_p99_ns.insert(name.to_string(), p99);
            }
        }
        // Baseline schema ≥ 2 carries an alloc section; absent in older
        // documents (the record keeps its zero defaults).
        if let Some(alloc) = doc.get("alloc") {
            rec.alloc_total_allocs = alloc
                .get("total_allocs")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            rec.alloc_total_bytes = alloc.get("total_bytes").and_then(Json::as_u64).unwrap_or(0);
            rec.alloc_peak_live_bytes = alloc
                .get("peak_live_bytes")
                .and_then(Json::as_u64)
                .unwrap_or(0);
            for stage in alloc.get("stages").and_then(Json::as_array).unwrap_or(&[]) {
                let Some(name) = stage.get("name").and_then(Json::as_str) else {
                    continue;
                };
                if let Some(bytes) = stage.get("bytes").and_then(Json::as_f64) {
                    rec.stage_alloc_bytes.insert(name.to_string(), bytes);
                }
            }
        }
        Ok(rec)
    }

    /// Renders the record as one JSON line (stable key order).
    pub fn to_json_line(&self) -> String {
        let map = |m: &BTreeMap<String, f64>| {
            m.iter()
                .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_number(*v)))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut line = format!(
            "{{\"schema\":{},\"label\":\"{}\",\"git_rev\":\"{}\",\"seed\":{},\
             \"threads\":{},\"wall_seconds\":{},\"fingerprint\":\"{}\",\
             \"quality\":{{{}}},\"stage_p50_ns\":{{{}}},\"stage_p99_ns\":{{{}}}",
            self.schema,
            json_escape(&self.label),
            json_escape(&self.git_rev),
            self.seed,
            self.threads,
            json_number(self.wall_seconds),
            json_escape(&self.fingerprint),
            map(&self.quality),
            map(&self.stage_p50_ns),
            map(&self.stage_p99_ns),
        );
        if let Some(deg) = &self.degradation {
            line.push_str(&format!(",\"degradation\":\"{}\"", json_escape(deg)));
        }
        if let Some(store) = &self.store {
            line.push_str(&format!(",\"store\":\"{}\"", json_escape(store)));
        }
        // Written only for runs that carried a memory profile, keeping
        // alloc-less lines byte-identical to the pre-alloc format.
        if self.alloc_total_allocs > 0 || self.alloc_total_bytes > 0 {
            line.push_str(&format!(
                ",\"alloc\":{{\"allocs\":{},\"bytes\":{},\"peak_live_bytes\":{},\
                 \"stage_bytes\":{{{}}}}}",
                self.alloc_total_allocs,
                self.alloc_total_bytes,
                self.alloc_peak_live_bytes,
                map(&self.stage_alloc_bytes),
            ));
        }
        line.push('}');
        line
    }

    /// Parses one record from a parsed JSON line.
    pub fn from_json(doc: &Json) -> Result<LedgerRecord, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("record has no schema field")?;
        if schema > LEDGER_SCHEMA_VERSION {
            return Err(format!("unsupported ledger record schema v{schema}"));
        }
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or(format!("record has no {key}"))
        };
        let num_map = |key: &str| -> BTreeMap<String, f64> {
            doc.get(key)
                .and_then(Json::as_object)
                .map(|members| {
                    members
                        .iter()
                        .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                        .collect()
                })
                .unwrap_or_default()
        };
        Ok(LedgerRecord {
            schema,
            label: str_field("label")?,
            git_rev: str_field("git_rev").unwrap_or_else(|_| "unknown".into()),
            seed: doc.get("seed").and_then(Json::as_u64).unwrap_or(0),
            threads: doc.get("threads").and_then(Json::as_u64).unwrap_or(1),
            wall_seconds: doc
                .get("wall_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            fingerprint: str_field("fingerprint").unwrap_or_default(),
            quality: num_map("quality"),
            stage_p50_ns: num_map("stage_p50_ns"),
            stage_p99_ns: num_map("stage_p99_ns"),
            degradation: doc
                .get("degradation")
                .and_then(Json::as_str)
                .map(String::from),
            store: doc.get("store").and_then(Json::as_str).map(String::from),
            alloc_total_allocs: doc
                .get("alloc")
                .and_then(|a| a.get("allocs"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            alloc_total_bytes: doc
                .get("alloc")
                .and_then(|a| a.get("bytes"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            alloc_peak_live_bytes: doc
                .get("alloc")
                .and_then(|a| a.get("peak_live_bytes"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            stage_alloc_bytes: doc
                .get("alloc")
                .and_then(|a| a.get("stage_bytes"))
                .and_then(Json::as_object)
                .map(|members| {
                    members
                        .iter()
                        .filter_map(|(k, v)| v.as_f64().map(|v| (k.clone(), v)))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

/// Reads every record in a history file's text, in line order.
pub fn read_history(text: &str) -> Result<Vec<LedgerRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        records
            .push(LedgerRecord::from_json(&doc).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(records)
}

/// Appends one record to the ledger at `path`, creating parent
/// directories and the file as needed.
pub fn append(path: &Path, record: &LedgerRecord) -> std::io::Result<()> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", record.to_json_line())
}

/// Abbreviated git revision of the checkout at `root`, read directly from
/// `.git` (no subprocess): `"unknown"` when unreadable.
pub fn git_rev(root: &Path) -> String {
    let head = match std::fs::read_to_string(root.join(".git/HEAD")) {
        Ok(head) => head,
        Err(_) => return "unknown".into(),
    };
    let head = head.trim();
    let full = match head.strip_prefix("ref: ") {
        Some(reference) => match std::fs::read_to_string(root.join(".git").join(reference)) {
            Ok(rev) => rev.trim().to_string(),
            // Packed refs (after gc) keep the hash elsewhere; fall back to
            // scanning packed-refs for the reference.
            Err(_) => std::fs::read_to_string(root.join(".git/packed-refs"))
                .ok()
                .and_then(|packed| {
                    packed.lines().find_map(|line| {
                        line.strip_suffix(reference)
                            .map(|hash| hash.trim().to_string())
                    })
                })
                .unwrap_or_default(),
        },
        None => head.to_string(),
    };
    if full.len() >= 12 && full.chars().all(|c| c.is_ascii_hexdigit()) {
        full[..12].to_string()
    } else {
        "unknown".into()
    }
}

/// A gate verdict: the exit code plus human-readable findings.
#[derive(Debug, Clone, Default)]
pub struct TrendReport {
    /// 0 = clean, 1 = latency warning, 2 = quality regression.
    pub exit_code: i32,
    /// One line per finding (empty = clean).
    pub findings: Vec<String>,
    /// Informational lines (history size, medians).
    pub info: Vec<String>,
}

impl TrendReport {
    fn flag_quality(&mut self, finding: String) {
        self.findings.push(format!("QUALITY DRIFT: {finding}"));
        self.exit_code = 2;
    }

    fn flag_latency(&mut self, finding: String) {
        self.findings.push(format!("latency warning: {finding}"));
        self.exit_code = self.exit_code.max(1);
    }

    fn flag_alloc(&mut self, finding: String) {
        self.findings.push(format!("alloc warning: {finding}"));
        self.exit_code = self.exit_code.max(1);
    }

    /// Renders the verdict.
    pub fn render(&self) -> String {
        let mut lines = self.info.clone();
        lines.extend(self.findings.iter().cloned());
        lines.push(match self.exit_code {
            0 => "history gate: ok".into(),
            1 => "history gate: latency warning(s)".into(),
            _ => "history gate: QUALITY REGRESSION".into(),
        });
        lines.join("\n")
    }
}

fn median_of(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median and median-absolute-deviation of `values`.
fn median_mad(values: &[f64]) -> (f64, f64) {
    let mut v = values.to_vec();
    let med = median_of(&mut v);
    let mut dev: Vec<f64> = values.iter().map(|x| (x - med).abs()).collect();
    (med, median_of(&mut dev))
}

/// Trends the newest record against the history sharing its label.
/// Quality keys drift-test against `max(quality_tol·|median|, 4·MAD)`
/// (fatal); wall time and stage p50s regression-test against
/// `max(latency_tol·median, 4·MAD)`, slower-only (warn). With fewer than
/// two matching records the gate passes vacuously.
pub fn trend(records: &[LedgerRecord], quality_tol: f64, latency_tol: f64) -> TrendReport {
    let mut report = TrendReport::default();
    let Some(last) = records.last() else {
        report.info.push("history is empty".into());
        return report;
    };
    let history: Vec<&LedgerRecord> = records[..records.len() - 1]
        .iter()
        .filter(|r| r.label == last.label)
        .collect();
    report.info.push(format!(
        "label {:?}: {} historical record(s) + 1 under test (rev {})",
        last.label,
        history.len(),
        last.git_rev,
    ));
    if history.is_empty() {
        report.info.push("no history to trend against".into());
        return report;
    }

    for (key, &value) in &last.quality {
        let past: Vec<f64> = history
            .iter()
            .filter_map(|r| r.quality.get(key))
            .copied()
            .collect();
        if past.is_empty() {
            continue;
        }
        let (med, mad) = median_mad(&past);
        let threshold = (quality_tol * med.abs()).max(4.0 * mad);
        if (value - med).abs() > threshold {
            report.flag_quality(format!(
                "quality.{key}: {value} vs median {med} (threshold {threshold:.6})"
            ));
        }
    }

    let mut latency_series: Vec<(String, f64, Vec<f64>)> = vec![(
        "wall_seconds".into(),
        last.wall_seconds,
        history.iter().map(|r| r.wall_seconds).collect(),
    )];
    for (stage, &p50) in &last.stage_p50_ns {
        latency_series.push((
            format!("stage_p50_ns.{stage}"),
            p50,
            history
                .iter()
                .filter_map(|r| r.stage_p50_ns.get(stage))
                .copied()
                .collect(),
        ));
    }
    for (name, value, past) in latency_series {
        if past.is_empty() || value <= 0.0 {
            continue;
        }
        let (med, mad) = median_mad(&past);
        let threshold = (latency_tol * med).max(4.0 * mad);
        if value > med + threshold {
            report.flag_latency(format!(
                "{name}: {value} vs median {med} (threshold +{threshold:.6})"
            ));
        }
    }

    // Allocation columns, warn tier and growth-only like latency: a run's
    // per-stage bytes are deterministic, but across revisions code changes
    // legitimately move them — the trend only flags unexplained growth.
    let mut alloc_series: Vec<(String, f64, Vec<f64>)> = vec![
        (
            "alloc_total_bytes".into(),
            last.alloc_total_bytes as f64,
            history
                .iter()
                .map(|r| r.alloc_total_bytes as f64)
                .filter(|&v| v > 0.0)
                .collect(),
        ),
        (
            "alloc_peak_live_bytes".into(),
            last.alloc_peak_live_bytes as f64,
            history
                .iter()
                .map(|r| r.alloc_peak_live_bytes as f64)
                .filter(|&v| v > 0.0)
                .collect(),
        ),
    ];
    for (stage, &bytes) in &last.stage_alloc_bytes {
        alloc_series.push((
            format!("alloc_bytes.{stage}"),
            bytes,
            history
                .iter()
                .filter_map(|r| r.stage_alloc_bytes.get(stage))
                .copied()
                .collect(),
        ));
    }
    for (name, value, past) in alloc_series {
        if past.is_empty() || value <= 0.0 {
            continue;
        }
        let (med, mad) = median_mad(&past);
        let threshold = (latency_tol * med).max(4.0 * mad);
        if value > med + threshold {
            report.flag_alloc(format!(
                "{name}: {value} vs median {med} (threshold +{threshold:.6})"
            ));
        }
    }
    report
}

/// Compares the last two records sharing the newest record's label:
/// quality keys by relative difference (fatal past `quality_tol`),
/// wall time and stage p50s slower-only (warn past `latency_tol`), and
/// fingerprints exactly (fatal — two runs of one build must agree).
pub fn compare_last_two(
    records: &[LedgerRecord],
    quality_tol: f64,
    latency_tol: f64,
) -> TrendReport {
    let mut report = TrendReport::default();
    let Some(last) = records.last() else {
        report.info.push("history is empty".into());
        return report;
    };
    let Some(prev) = records[..records.len() - 1]
        .iter()
        .rev()
        .find(|r| r.label == last.label)
    else {
        report.info.push(format!(
            "only one {:?} record — nothing to compare",
            last.label
        ));
        return report;
    };
    report.info.push(format!(
        "label {:?}: comparing rev {} against rev {}",
        last.label, last.git_rev, prev.git_rev,
    ));
    if !last.fingerprint.is_empty()
        && !prev.fingerprint.is_empty()
        && last.fingerprint != prev.fingerprint
    {
        report.flag_quality(format!(
            "fingerprint: {} vs {}",
            last.fingerprint, prev.fingerprint
        ));
    }
    for (key, &value) in &last.quality {
        let Some(&before) = prev.quality.get(key) else {
            continue;
        };
        let rel = (value - before).abs() / before.abs().max(value.abs()).max(1e-12);
        if rel > quality_tol {
            report.flag_quality(format!(
                "quality.{key}: {before} → {value} (relative diff {rel:.4} > {quality_tol})"
            ));
        }
    }
    if prev.wall_seconds > 0.0 && last.wall_seconds > prev.wall_seconds * (1.0 + latency_tol) {
        report.flag_latency(format!(
            "wall_seconds: {} → {}",
            prev.wall_seconds, last.wall_seconds
        ));
    }
    for (stage, &p50) in &last.stage_p50_ns {
        if let Some(&before) = prev.stage_p50_ns.get(stage) {
            if before > 0.0 && p50 > before * (1.0 + latency_tol) {
                report.flag_latency(format!("stage_p50_ns.{stage}: {before} → {p50}"));
            }
        }
    }
    if prev.alloc_total_bytes > 0
        && last.alloc_total_bytes as f64 > prev.alloc_total_bytes as f64 * (1.0 + latency_tol)
    {
        report.flag_alloc(format!(
            "alloc_total_bytes: {} → {}",
            prev.alloc_total_bytes, last.alloc_total_bytes
        ));
    }
    for (stage, &bytes) in &last.stage_alloc_bytes {
        if let Some(&before) = prev.stage_alloc_bytes.get(stage) {
            if before > 0.0 && bytes > before * (1.0 + latency_tol) {
                report.flag_alloc(format!("alloc_bytes.{stage}: {before} → {bytes}"));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(label: &str, quality: f64, wall: f64) -> LedgerRecord {
        let mut r = LedgerRecord::new(label);
        r.seed = 6;
        r.quality.insert("localization_median_deg".into(), quality);
        r.wall_seconds = wall;
        r.stage_p50_ns.insert("fusion".into(), wall * 1e6);
        r.fingerprint = "0xabc".into();
        r
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut r = record("baseline", 4.5, 2.0);
        r.degradation = Some("dropped=1 retried=2".into());
        r.store = Some("key 00deadbeef00c0de, 1234 bytes, new".into());
        r.alloc_total_allocs = 120;
        r.alloc_total_bytes = 65536;
        r.alloc_peak_live_bytes = 32768;
        r.stage_alloc_bytes.insert("fusion".into(), 4096.0);
        let line = r.to_json_line();
        let parsed = LedgerRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, r);
        // And through the file reader.
        let all = read_history(&format!("{line}\n{line}\n")).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], r);
    }

    #[test]
    fn append_and_read_back() {
        let dir = std::env::temp_dir().join("uniq_ledger_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        std::fs::remove_file(&path).ok();
        let r = record("baseline", 4.5, 2.0);
        append(&path, &r).unwrap();
        append(&path, &r).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read_history(&text).unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trend_passes_on_stable_history() {
        let records: Vec<LedgerRecord> = (0..5).map(|_| record("baseline", 4.5, 2.0)).collect();
        let report = trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL);
        assert_eq!(report.exit_code, 0, "{report:?}");
    }

    #[test]
    fn trend_flags_quality_drift_past_two_percent() {
        let mut records: Vec<LedgerRecord> = (0..4).map(|_| record("baseline", 4.5, 2.0)).collect();
        records.push(record("baseline", 4.5 * 1.03, 2.0)); // +3% drift
        let report = trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL);
        assert_eq!(report.exit_code, 2, "{report:?}");
        assert!(report.render().contains("QUALITY"), "{report:?}");

        // 1% drift stays under the 2% gate.
        let mut records: Vec<LedgerRecord> = (0..4).map(|_| record("baseline", 4.5, 2.0)).collect();
        records.push(record("baseline", 4.5 * 1.01, 2.0));
        let report = trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL);
        assert_eq!(report.exit_code, 0, "{report:?}");
    }

    #[test]
    fn trend_warns_on_latency_regression() {
        let mut records: Vec<LedgerRecord> = (0..4).map(|_| record("baseline", 4.5, 2.0)).collect();
        records.push(record("baseline", 4.5, 2.0 * 3.0)); // 3× slower
        let report = trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL);
        assert_eq!(report.exit_code, 1, "{report:?}");
        assert!(report.render().contains("latency"), "{report:?}");
        // Faster is never flagged.
        let mut records: Vec<LedgerRecord> = (0..4).map(|_| record("baseline", 4.5, 2.0)).collect();
        records.push(record("baseline", 4.5, 0.5));
        assert_eq!(
            trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL).exit_code,
            0
        );
    }

    #[test]
    fn alloc_free_record_emits_no_alloc_key() {
        let line = record("baseline", 4.5, 2.0).to_json_line();
        assert!(!line.contains("\"alloc\""), "{line}");
    }

    #[test]
    fn trend_warns_on_alloc_growth() {
        let with_alloc = |bytes: u64| {
            let mut r = record("baseline", 4.5, 2.0);
            r.alloc_total_allocs = 100;
            r.alloc_total_bytes = bytes;
            r.stage_alloc_bytes.insert("fusion".into(), bytes as f64);
            r
        };
        let mut records: Vec<LedgerRecord> = (0..4).map(|_| with_alloc(1000)).collect();
        records.push(with_alloc(2000)); // 2× growth
        let report = trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL);
        assert_eq!(report.exit_code, 1, "{report:?}");
        assert!(report.render().contains("alloc warning"), "{report:?}");
        // Identical alloc totals stay clean (bit-identical history).
        let records: Vec<LedgerRecord> = (0..5).map(|_| with_alloc(1000)).collect();
        assert_eq!(
            trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL).exit_code,
            0
        );
        // Shrinking is never flagged.
        let mut records: Vec<LedgerRecord> = (0..4).map(|_| with_alloc(1000)).collect();
        records.push(with_alloc(400));
        assert_eq!(
            trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL).exit_code,
            0
        );
    }

    #[test]
    fn compare_flags_alloc_growth() {
        let with_alloc = |bytes: u64| {
            let mut r = record("baseline", 4.5, 2.0);
            r.alloc_total_allocs = 100;
            r.alloc_total_bytes = bytes;
            r
        };
        let report = compare_last_two(&[with_alloc(1000), with_alloc(1501)], 0.02, 0.5);
        assert_eq!(report.exit_code, 1, "{report:?}");
        assert_eq!(
            compare_last_two(&[with_alloc(1000), with_alloc(1000)], 0.02, 0.5).exit_code,
            0
        );
    }

    #[test]
    fn trend_ignores_other_labels_and_short_history() {
        let records = vec![record("batch", 9.9, 50.0), record("baseline", 4.5, 2.0)];
        let report = trend(&records, DEFAULT_QUALITY_TOL, DEFAULT_LATENCY_TOL);
        assert_eq!(report.exit_code, 0, "{report:?}");
    }

    #[test]
    fn compare_flags_fingerprint_and_quality_changes() {
        let a = record("baseline", 4.5, 2.0);
        let mut b = record("baseline", 4.5, 2.0);
        assert_eq!(
            compare_last_two(&[a.clone(), b.clone()], 0.02, 0.5).exit_code,
            0
        );
        b.fingerprint = "0xdef".into();
        assert_eq!(compare_last_two(&[a.clone(), b], 0.02, 0.5).exit_code, 2);
        let c = record("baseline", 4.5 * 1.10, 2.0);
        assert_eq!(compare_last_two(&[a, c], 0.02, 0.5).exit_code, 2);
    }

    #[test]
    fn baseline_doc_converts_to_record() {
        let doc = Json::parse(
            r#"{
              "schema_version": 1,
              "meta": {"seed": 6, "thread_counts": [1, 4]},
              "quality": {
                "localization_median_deg": 4.5,
                "personalize_fingerprint": "0x00deadbeef",
                "personalize_thread_invariant": true
              },
              "perf": {
                "personalize_seconds_t1": 2.5,
                "personalize_seconds_t4": 1.5,
                "stages": [{"name": "fusion", "count": 1, "p50_ns": 1000, "p99_ns": 2000}]
              },
              "alloc": {
                "total_allocs": 120,
                "total_bytes": 65536,
                "peak_live_bytes": 32768,
                "stages": [{"name": "fusion", "allocs": 12, "bytes": 4096}]
              }
            }"#,
        )
        .unwrap();
        let rec = LedgerRecord::from_baseline_doc(&doc, "baseline").unwrap();
        assert_eq!(rec.seed, 6);
        assert_eq!(rec.threads, 4);
        assert_eq!(rec.fingerprint, "0x00deadbeef");
        assert_eq!(rec.quality["localization_median_deg"], 4.5);
        assert_eq!(rec.stage_p50_ns["fusion"], 1000.0);
        assert_eq!(rec.stage_p99_ns["fusion"], 2000.0);
        assert!(rec.wall_seconds > 0.0);
        assert_eq!(rec.alloc_total_allocs, 120);
        assert_eq!(rec.alloc_total_bytes, 65536);
        assert_eq!(rec.alloc_peak_live_bytes, 32768);
        assert_eq!(rec.stage_alloc_bytes["fusion"], 4096.0);
    }

    #[test]
    fn unknown_schema_is_refused() {
        let line = r#"{"schema": 99, "label": "x"}"#;
        assert!(read_history(line).is_err());
    }
}
