//! # uniq-telemetry
//!
//! The layer above `uniq-obs`: where `uniq-obs` defines the event stream
//! (spans, counters, metrics, causal ids) and `uniq-profile` aggregates
//! wall-clock latency, this crate turns the stream into *operational*
//! artifacts:
//!
//! - [`metrics::TelemetrySink`] — a sharded, registered-names-only metric
//!   registry. Each pool worker records into its own shard (one
//!   uncontended mutex per worker), shards merge at snapshot time, and
//!   the registry measures its own cost and reports it as the
//!   `obs.telemetry_overhead_ns` metric.
//! - [`trace`] — rebuilds the causal span tree from a `--metrics-out`
//!   JSONL file using the deterministic `(trace, span, parent)` ids, and
//!   reports the critical path and per-stage self time. Files written
//!   before ids existed reconstruct via the depth-stack fallback.
//! - [`ledger`] — the cross-run history: one JSON line per benchmark or
//!   pipeline run (git revision, seed, threads, quality numbers, output
//!   fingerprint, per-stage p50/p99), plus median/MAD trend and pairwise
//!   comparison gates with CI-friendly exit codes (0 ok, 1 latency
//!   warning, 2 quality regression).
//! - [`expose`] — Prometheus-style text exposition and a machine-readable
//!   JSON snapshot of the aggregated registry.
//!
//! Everything here *observes*; nothing steers. The pipeline's numeric
//! output is bit-identical with or without a `TelemetrySink` installed
//! (asserted by the workspace `golden_baseline` and `telemetry` tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod ledger;
pub mod metrics;
pub mod trace;

pub use metrics::{MetricAgg, RegistrySnapshot, TelemetrySink};
