//! Causal trace reconstruction: turns a `--metrics-out` JSONL file back
//! into the span tree and reports where the time went.
//!
//! Files written by the current `JsonLinesSink` carry deterministic
//! `(trace, span, parent)` ids on every span event, so the tree is
//! rebuilt purely from parentage — scheduling and interleaving are
//! irrelevant, and the same seeded run reconstructs identically at any
//! thread count. Files from before the id scheme (no header line, no id
//! fields) reconstruct through a depth-stack fallback that assumes
//! single-threaded emission order, which is exactly what those files
//! contained.

use std::collections::BTreeMap;
use uniq_obs::json::Json;
use uniq_obs::sink::JSONL_SCHEMA_VERSION;

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct TraceNode {
    /// Span name.
    pub name: String,
    /// Span id (synthesized sequentially for legacy files).
    pub span: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// Enclosing trace id (0 for legacy files / untraced spans).
    pub trace: u64,
    /// Wall-clock duration, nanoseconds (0 if the span never closed).
    pub nanos: u128,
    /// Indices of child nodes, sorted by span id.
    pub children: Vec<usize>,
}

/// The reconstructed forest plus bookkeeping about its health.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// Every reconstructed span.
    pub nodes: Vec<TraceNode>,
    /// Indices of root nodes (parent id 0), sorted by span id.
    pub roots: Vec<usize>,
    /// Indices of orphans: spans naming a parent id that never appeared.
    pub orphans: Vec<usize>,
    /// Distinct non-zero trace ids seen.
    pub trace_ids: Vec<u64>,
}

fn hex_id(doc: &Json, key: &str) -> Option<u64> {
    u64::from_str_radix(doc.get(key)?.as_str()?, 16).ok()
}

/// Parses a JSONL trace file. Accepts files with the schema-1 header line
/// and pre-header legacy files; counter/metric lines are skipped. Errors
/// on malformed JSON or an unknown schema version.
pub fn parse_trace(text: &str) -> Result<TraceTree, String> {
    let mut nodes: Vec<TraceNode> = Vec::new();
    // span id → node index, for id-carrying files.
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    // Open-node stack for the legacy depth fallback.
    let mut stack: Vec<usize> = Vec::new();
    let mut legacy_next_id: u64 = 1;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let event = doc
            .get("event")
            .and_then(Json::as_str)
            .ok_or(format!("line {}: no \"event\" field", lineno + 1))?;
        match event {
            "header" => {
                let schema = doc.get("schema").and_then(Json::as_u64).unwrap_or(0);
                if schema > JSONL_SCHEMA_VERSION {
                    return Err(format!(
                        "unsupported trace schema v{schema} (reader supports up to v{JSONL_SCHEMA_VERSION})"
                    ));
                }
            }
            "span_start" => {
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("line {}: span_start without name", lineno + 1))?
                    .to_string();
                match hex_id(&doc, "span") {
                    Some(span) => {
                        let node = TraceNode {
                            name,
                            span,
                            parent: hex_id(&doc, "parent").unwrap_or(0),
                            trace: hex_id(&doc, "trace").unwrap_or(0),
                            nanos: 0,
                            children: Vec::new(),
                        };
                        by_id.insert(span, nodes.len());
                        nodes.push(node);
                    }
                    None => {
                        // Legacy: parent is whatever is open on the stack.
                        let span = legacy_next_id;
                        legacy_next_id += 1;
                        let parent = stack.last().map(|&i| nodes[i].span).unwrap_or(0);
                        stack.push(nodes.len());
                        by_id.insert(span, nodes.len());
                        nodes.push(TraceNode {
                            name,
                            span,
                            parent,
                            trace: 0,
                            nanos: 0,
                            children: Vec::new(),
                        });
                    }
                }
            }
            "span_end" => {
                let nanos = doc
                    .get("nanos")
                    .and_then(Json::as_u64)
                    .map(u128::from)
                    .unwrap_or(0);
                match hex_id(&doc, "span") {
                    Some(span) => {
                        if let Some(&idx) = by_id.get(&span) {
                            nodes[idx].nanos = nanos;
                        }
                        // An end without a start is tolerated: a sink may
                        // attach mid-span. Synthesize the node so its time
                        // still shows up.
                        else {
                            by_id.insert(span, nodes.len());
                            nodes.push(TraceNode {
                                name: doc
                                    .get("name")
                                    .and_then(Json::as_str)
                                    .unwrap_or("?")
                                    .to_string(),
                                span,
                                parent: hex_id(&doc, "parent").unwrap_or(0),
                                trace: hex_id(&doc, "trace").unwrap_or(0),
                                nanos,
                                children: Vec::new(),
                            });
                        }
                    }
                    None => {
                        // Legacy: close the innermost open span.
                        if let Some(idx) = stack.pop() {
                            nodes[idx].nanos = nanos;
                        }
                    }
                }
            }
            // Counters, metrics, and any future event kinds are not part
            // of the tree.
            _ => {}
        }
    }

    // Link children and classify roots/orphans by parent id.
    let mut tree = TraceTree {
        roots: Vec::new(),
        orphans: Vec::new(),
        trace_ids: Vec::new(),
        nodes,
    };
    for idx in 0..tree.nodes.len() {
        let parent = tree.nodes[idx].parent;
        if parent == 0 {
            tree.roots.push(idx);
        } else if let Some(&p) = by_id.get(&parent) {
            tree.nodes[p].children.push(idx);
        } else {
            tree.orphans.push(idx);
        }
        let t = tree.nodes[idx].trace;
        if t != 0 && !tree.trace_ids.contains(&t) {
            tree.trace_ids.push(t);
        }
    }
    // Sort everything by span id so the report is independent of file
    // order (which varies with scheduling).
    let span_of = |nodes: &[TraceNode], i: usize| nodes[i].span;
    tree.roots.sort_by_key(|&i| span_of(&tree.nodes, i));
    tree.orphans.sort_by_key(|&i| span_of(&tree.nodes, i));
    tree.trace_ids.sort_unstable();
    for idx in 0..tree.nodes.len() {
        let mut children = std::mem::take(&mut tree.nodes[idx].children);
        children.sort_by_key(|&i| span_of(&tree.nodes, i));
        tree.nodes[idx].children = children;
    }
    Ok(tree)
}

impl TraceTree {
    /// The critical path: starting from the slowest root, repeatedly
    /// descend into the slowest child. Returns `(name, nanos)` pairs from
    /// root to leaf.
    pub fn critical_path(&self) -> Vec<(String, u128)> {
        let mut path = Vec::new();
        let slowest = |candidates: &[usize]| {
            candidates
                .iter()
                .copied()
                .max_by_key(|&i| (self.nodes[i].nanos, std::cmp::Reverse(self.nodes[i].span)))
        };
        let mut cursor = slowest(&self.roots);
        while let Some(idx) = cursor {
            let node = &self.nodes[idx];
            path.push((node.name.clone(), node.nanos));
            cursor = slowest(&node.children);
        }
        path
    }

    /// Per-stage aggregate: `name → (count, total nanos, self nanos)`,
    /// where self time is the span's duration minus its children's
    /// (clamped at zero — parallel children can sum past the parent).
    pub fn self_times(&self) -> BTreeMap<String, (u64, u128, u128)> {
        let mut out: BTreeMap<String, (u64, u128, u128)> = BTreeMap::new();
        for node in &self.nodes {
            let child_total: u128 = node.children.iter().map(|&c| self.nodes[c].nanos).sum();
            let self_ns = node.nanos.saturating_sub(child_total);
            let entry = out.entry(node.name.clone()).or_insert((0, 0, 0));
            entry.0 += 1;
            entry.1 += node.nanos;
            entry.2 += self_ns;
        }
        out
    }

    /// Human-readable report: tree health, the critical path, and the
    /// per-stage self-time table.
    pub fn render_report(&self) -> String {
        let mut out = format!(
            "trace report: {} span(s), {} root(s), {} trace context(s), {} orphan(s)\n",
            self.nodes.len(),
            self.roots.len(),
            self.trace_ids.len(),
            self.orphans.len(),
        );
        let path = self.critical_path();
        let path_total: u128 = path.first().map(|(_, n)| *n).unwrap_or(0).max(1);
        out.push_str("\ncritical path:\n");
        for (depth, (name, nanos)) in path.iter().enumerate() {
            out.push_str(&format!(
                "  {:indent$}{name}  {}  ({:.0}%)\n",
                "",
                fmt_nanos(*nanos),
                100.0 * *nanos as f64 / path_total as f64,
                indent = depth * 2,
            ));
        }
        out.push_str("\nper-stage self time:\n");
        let mut rows: Vec<(String, (u64, u128, u128))> = self.self_times().into_iter().collect();
        rows.sort_by(|a, b| b.1 .2.cmp(&a.1 .2).then_with(|| a.0.cmp(&b.0)));
        out.push_str(&format!(
            "  {:<24} {:>7} {:>12} {:>12}\n",
            "stage", "count", "total", "self"
        ));
        for (name, (count, total, self_ns)) in rows {
            out.push_str(&format!(
                "  {name:<24} {count:>7} {:>12} {:>12}\n",
                fmt_nanos(total),
                fmt_nanos(self_ns),
            ));
        }
        if !self.orphans.is_empty() {
            out.push_str("\norphaned spans (parent id never seen):\n");
            for &idx in &self.orphans {
                let n = &self.nodes[idx];
                out.push_str(&format!(
                    "  {} (span {:016x}, parent {:016x})\n",
                    n.name, n.span, n.parent
                ));
            }
        }
        out
    }
}

fn fmt_nanos(nanos: u128) -> String {
    let secs = nanos as f64 / 1e9;
    if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.1}µs", secs * 1e6)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEADER: &str = r#"{"event":"header","schema":1,"format":"uniq-obs-jsonl"}"#;

    fn start(name: &str, trace: u64, span: u64, parent: u64) -> String {
        format!(
            r#"{{"event":"span_start","name":"{name}","depth":0,"trace":"{trace:016x}","span":"{span:016x}","parent":"{parent:016x}"}}"#
        )
    }

    fn end(name: &str, nanos: u64, trace: u64, span: u64, parent: u64) -> String {
        format!(
            r#"{{"event":"span_end","name":"{name}","depth":0,"nanos":{nanos},"trace":"{trace:016x}","span":"{span:016x}","parent":"{parent:016x}"}}"#
        )
    }

    #[test]
    fn rebuilds_tree_from_ids_regardless_of_line_order() {
        // Parent-before-child and child-before-parent must agree: only
        // parentage matters.
        let ordered = [
            HEADER.to_string(),
            start("root", 9, 1, 0),
            start("a", 9, 2, 1),
            end("a", 100, 9, 2, 1),
            start("b", 9, 3, 1),
            end("b", 300, 9, 3, 1),
            end("root", 500, 9, 1, 0),
        ]
        .join("\n");
        let shuffled = [
            HEADER.to_string(),
            start("b", 9, 3, 1),
            start("root", 9, 1, 0),
            end("b", 300, 9, 3, 1),
            start("a", 9, 2, 1),
            end("root", 500, 9, 1, 0),
            end("a", 100, 9, 2, 1),
        ]
        .join("\n");
        let a = parse_trace(&ordered).unwrap();
        let b = parse_trace(&shuffled).unwrap();
        assert_eq!(a.roots.len(), 1);
        assert_eq!(a.orphans.len(), 0);
        assert_eq!(a.trace_ids, vec![9]);
        let shape = |t: &TraceTree| {
            let mut v: Vec<(String, u64, u64, u128)> = t
                .nodes
                .iter()
                .map(|n| (n.name.clone(), n.span, n.parent, n.nanos))
                .collect();
            v.sort();
            v
        };
        assert_eq!(shape(&a), shape(&b));
        assert_eq!(
            a.critical_path(),
            vec![("root".to_string(), 500), ("b".to_string(), 300)]
        );
    }

    #[test]
    fn self_time_subtracts_children() {
        let text = [
            HEADER.to_string(),
            start("root", 9, 1, 0),
            end("a", 100, 9, 2, 1),
            end("b", 300, 9, 3, 1),
            end("root", 500, 9, 1, 0),
        ]
        .join("\n");
        let tree = parse_trace(&text).unwrap();
        let times = tree.self_times();
        assert_eq!(times["root"], (1, 500, 100));
        assert_eq!(times["a"], (1, 100, 100));
    }

    #[test]
    fn orphans_are_detected() {
        let text = [HEADER.to_string(), end("lost", 10, 9, 7, 999)].join("\n");
        let tree = parse_trace(&text).unwrap();
        assert_eq!(tree.orphans.len(), 1);
        assert!(tree.render_report().contains("orphaned spans"));
    }

    #[test]
    fn legacy_files_reconstruct_by_depth() {
        // Pre-schema format: no header, no id fields.
        let text = r#"{"event":"span_start","name":"root","depth":0}
{"event":"span_start","name":"child","depth":1}
{"event":"span_end","name":"child","depth":1,"nanos":40}
{"event":"span_end","name":"root","depth":0,"nanos":100}
{"event":"metric","name":"x.y","value":1.0,"unit":""}"#;
        let tree = parse_trace(text).unwrap();
        assert_eq!(tree.nodes.len(), 2);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.orphans.len(), 0);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 1);
        assert_eq!(tree.nodes[root.children[0]].name, "child");
        assert_eq!(
            tree.critical_path(),
            vec![("root".to_string(), 100), ("child".to_string(), 40)]
        );
    }

    #[test]
    fn future_schema_is_refused_and_garbage_errors() {
        let future = r#"{"event":"header","schema":99,"format":"uniq-obs-jsonl"}"#;
        assert!(parse_trace(future).unwrap_err().contains("unsupported"));
        assert!(parse_trace("not json at all").is_err());
    }

    #[test]
    fn report_contains_critical_path_and_stages() {
        let text = [
            HEADER.to_string(),
            start("root", 9, 1, 0),
            end("a", 100, 9, 2, 1),
            end("root", 500, 9, 1, 0),
        ]
        .join("\n");
        let report = parse_trace(&text).unwrap().render_report();
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("per-stage self time"), "{report}");
        assert!(report.contains("root"), "{report}");
    }
}
