//! Exposition: the aggregated registry rendered for machines.
//!
//! Two formats: Prometheus-style text (counters, metric summaries with
//! quantile-labelled min/max, span latency summaries in nanoseconds) and
//! a single JSON document (stable key order) for programmatic consumers.

use crate::metrics::RegistrySnapshot;
use uniq_obs::sink::{json_escape, json_number};

/// Maps a dotted registry name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("uniq_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the snapshot as Prometheus-style exposition text.
pub fn prometheus(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, total) in &snapshot.counters {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {total}\n"));
    }
    for (name, agg) in &snapshot.metrics {
        let p = prom_name(name);
        out.push_str(&format!(
            "# TYPE {p} summary\n\
             {p}{{quantile=\"0\"}} {}\n\
             {p}{{quantile=\"1\"}} {}\n\
             {p}_sum {}\n\
             {p}_count {}\n",
            prom_number(agg.min),
            prom_number(agg.max),
            prom_number(agg.sum),
            agg.count,
        ));
    }
    for (name, hist) in &snapshot.spans {
        let p = format!("{}_ns", prom_name(name));
        out.push_str(&format!(
            "# TYPE {p} summary\n\
             {p}{{quantile=\"0.5\"}} {}\n\
             {p}{{quantile=\"0.99\"}} {}\n\
             {p}_sum {}\n\
             {p}_count {}\n",
            hist.percentile(50.0),
            hist.percentile(99.0),
            hist.sum(),
            hist.count(),
        ));
    }
    out.push_str(&format!(
        "# TYPE uniq_telemetry_dropped_events counter\nuniq_telemetry_dropped_events {}\n",
        snapshot.dropped
    ));
    out
}

/// Prometheus number formatting (no `null` — NaN spells itself).
fn prom_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot as one JSON document (stable key order; parses
/// with `uniq_obs::json`).
pub fn snapshot_json(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n  \"counters\": {");
    let counters: Vec<String> = snapshot
        .counters
        .iter()
        .map(|(name, total)| format!("\"{}\": {total}", json_escape(name)))
        .collect();
    out.push_str(&counters.join(", "));
    out.push_str("},\n  \"metrics\": {");
    let metrics: Vec<String> = snapshot
        .metrics
        .iter()
        .map(|(name, agg)| {
            format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                json_escape(name),
                agg.count,
                json_number(agg.sum),
                json_number(agg.min),
                json_number(agg.max),
            )
        })
        .collect();
    out.push_str(&metrics.join(", "));
    out.push_str("},\n  \"spans\": {");
    let spans: Vec<String> = snapshot
        .spans
        .iter()
        .map(|(name, hist)| {
            format!(
                "\"{}\": {{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}",
                json_escape(name),
                hist.count(),
                hist.sum(),
                hist.percentile(50.0),
                hist.percentile(99.0),
            )
        })
        .collect();
    out.push_str(&spans.join(", "));
    out.push_str(&format!(
        "}},\n  \"overhead_ns\": {},\n  \"dropped\": {}\n}}\n",
        snapshot.overhead_ns, snapshot.dropped
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TelemetrySink;
    use std::sync::Arc;
    use uniq_obs::json::Json;
    use uniq_obs::names::{FUSION_OBJECTIVE, SESSION_STOPS, SPAN_FUSION};

    fn sample_snapshot() -> RegistrySnapshot {
        let sink = Arc::new(TelemetrySink::new());
        uniq_obs::with_sink(sink.clone(), || {
            {
                let _s = uniq_obs::span(SPAN_FUSION);
            }
            uniq_obs::counter(SESSION_STOPS, 7);
            uniq_obs::metric(FUSION_OBJECTIVE, 2.5, "deg2");
        });
        sink.snapshot()
    }

    #[test]
    fn prometheus_text_covers_every_series() {
        let text = prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE uniq_session_stops counter"), "{text}");
        assert!(text.contains("uniq_session_stops 7"), "{text}");
        assert!(text.contains("uniq_fusion_objective_count 1"), "{text}");
        assert!(
            text.contains("uniq_fusion_objective{quantile=\"0\"} 2.5"),
            "{text}"
        );
        assert!(text.contains("uniq_fusion_ns_count 1"), "{text}");
        assert!(text.contains("uniq_obs_telemetry_overhead_ns"), "{text}");
        assert!(text.contains("uniq_telemetry_dropped_events 0"), "{text}");
    }

    #[test]
    fn json_snapshot_parses_with_own_reader() {
        let doc = Json::parse(&snapshot_json(&sample_snapshot())).unwrap();
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get(SESSION_STOPS)
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            doc.get("spans")
                .unwrap()
                .get(SPAN_FUSION)
                .unwrap()
                .get("count")
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(doc.get("overhead_ns").is_some());
    }
}
