//! Property tests for the `.uhrtf` codec: encode→decode round-trips
//! bit-exactly for arbitrary grid shapes, IR lengths, and metadata —
//! including empty and degenerate grids — and the encoding is canonical
//! (decode→re-encode reproduces the input bytes verbatim).

use proptest::prelude::*;
use uniq_store::{content_key, decode, encode, Grid, HrtfArtifact};

/// Deterministic integer mixer so every float in a generated artifact is
/// a pure function of `(seed, j)` — the proptest runner only has to
/// sample a handful of scalars per case.
fn mix(seed: u64, j: u64) -> u64 {
    let mut x = seed ^ j.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A value in roughly `[-1, 1)` derived from the mixer.
fn mixed_f64(seed: u64, j: u64) -> f64 {
    (mix(seed, j) & 0xF_FFFF) as f64 / 524_288.0 - 1.0
}

/// A grid with `angles` entries of `ir_len` samples per ear, every value
/// a function of `seed`. Angles are strictly increasing but otherwise
/// arbitrary; `angles` or `ir_len` may be zero (degenerate grids).
fn synth_grid(seed: u64, angles: usize, ir_len: usize) -> Grid {
    Grid {
        angles_deg: (0..angles)
            .map(|a| a as f64 * 15.0 + mixed_f64(seed, 1000 + a as u64))
            .collect(),
        ir_len,
        irs: (0..angles)
            .map(|a| {
                let base = seed.wrapping_add(a as u64 * 7919);
                let left = (0..ir_len).map(|j| mixed_f64(base, j as u64)).collect();
                let right = (0..ir_len)
                    .map(|j| mixed_f64(base, 5000 + j as u64))
                    .collect();
                (left, right)
            })
            .collect(),
    }
}

/// A full artifact from sampled shape parameters. `deg` selects the
/// degradation report: 0 → absent, 1 → present but empty (the case the
/// header flag bit exists to disambiguate), otherwise a non-trivial
/// string with multi-byte UTF-8.
fn synth_artifact(
    seed: u64,
    near_angles: usize,
    far_angles: usize,
    ir_len: usize,
    loc_count: usize,
    deg: u32,
) -> HrtfArtifact {
    let mut artifact = HrtfArtifact {
        seed,
        subject_fingerprint: 0,
        config_hash: mix(seed, 2),
        sample_rate: 8_000.0 + (mix(seed, 3) & 0xFFFF) as f64,
        head: [
            0.05 + mixed_f64(seed, 4).abs() * 0.05,
            0.06 + mixed_f64(seed, 5).abs() * 0.05,
            0.07 + mixed_f64(seed, 6).abs() * 0.05,
        ],
        radius_m: 0.2 + mixed_f64(seed, 7).abs(),
        attempts: (mix(seed, 8) & 0xF) as u32,
        localization: (0..loc_count)
            .map(|i| {
                let i = i as u64;
                (
                    mixed_f64(seed, 9 + i) * 180.0,
                    mixed_f64(seed, 90 + i) * 180.0,
                )
            })
            .collect(),
        near: synth_grid(seed, near_angles, ir_len),
        far: synth_grid(seed ^ 0xFA2, far_angles, ir_len),
        degradation_json: match deg {
            0 => None,
            1 => Some(String::new()),
            _ => Some(format!(
                "{{\"faults\":{},\"note\":\"κ≤{}\"}}",
                deg,
                seed & 0xFF
            )),
        },
    };
    artifact.subject_fingerprint = artifact.fingerprint();
    artifact
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_bit_exact(
        seed in 0u64..u64::MAX,
        near_angles in 0usize..6,
        far_angles in 0usize..6,
        ir_len in 0usize..9,
        loc_count in 0usize..5,
        deg in 0u32..4,
    ) {
        let artifact = synth_artifact(seed, near_angles, far_angles, ir_len, loc_count, deg);
        let bytes = encode(&artifact).expect("arbitrary well-formed artifact encodes");
        let back = decode(&bytes).expect("encoded artifact decodes");
        prop_assert_eq!(&back, &artifact);
        // The fingerprint is a pure function of the payload, so the
        // decoded copy recomputes the stamped value exactly.
        prop_assert_eq!(back.fingerprint(), artifact.subject_fingerprint);
        // Canonical encoding: re-encoding the decoded artifact must
        // reproduce the input bytes verbatim (same content key).
        let again = encode(&back).expect("decoded artifact re-encodes");
        prop_assert_eq!(&again, &bytes);
        let key = content_key(&bytes);
        prop_assert_eq!(key.len(), 16);
        prop_assert!(key.bytes().all(|b| b.is_ascii_hexdigit()));
        prop_assert_eq!(content_key(&again), key);
    }

    #[test]
    fn degenerate_grids_round_trip(
        seed in 0u64..u64::MAX,
        ir_len in 0usize..9,
        loc_count in 0usize..3,
    ) {
        // Zero angles with a nonzero declared IR length, and nonzero
        // angles whose responses are zero-length, are both legal files.
        for (near_angles, far_angles) in [(0, 0), (0, 3), (3, 0)] {
            let artifact = synth_artifact(seed, near_angles, far_angles, ir_len, loc_count, 0);
            let bytes = encode(&artifact).expect("degenerate artifact encodes");
            prop_assert_eq!(decode(&bytes).expect("degenerate artifact decodes"), artifact);
        }
        let zero_len = synth_artifact(seed, 2, 2, 0, loc_count, 2);
        let bytes = encode(&zero_len).expect("zero-length IRs encode");
        prop_assert_eq!(decode(&bytes).expect("zero-length IRs decode"), zero_len);
    }

    #[test]
    fn arbitrary_float_bits_round_trip_through_bytes(
        bits_a in 0u64..u64::MAX,
        bits_b in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
    ) {
        // Any bit pattern — infinities, NaNs with payload, negative
        // zero — must survive the codec verbatim. Compare at the byte
        // level so NaN ≠ NaN equality semantics cannot mask a loss.
        let mut artifact = synth_artifact(seed, 1, 1, 2, 1, 0);
        artifact.sample_rate = f64::from_bits(bits_a);
        artifact.radius_m = f64::from_bits(bits_b);
        artifact.near.irs[0].0[0] = f64::from_bits(bits_a ^ bits_b);
        artifact.head[2] = f64::from_bits(!bits_a);
        let bytes = encode(&artifact).expect("artifact with raw float bits encodes");
        let back = decode(&bytes).expect("artifact with raw float bits decodes");
        prop_assert_eq!(back.sample_rate.to_bits(), bits_a);
        prop_assert_eq!(back.radius_m.to_bits(), bits_b);
        prop_assert_eq!(back.near.irs[0].0[0].to_bits(), bits_a ^ bits_b);
        prop_assert_eq!(back.head[2].to_bits(), !bits_a);
        prop_assert_eq!(encode(&back).expect("re-encode"), bytes);
    }

    #[test]
    fn absent_and_empty_degradation_are_distinct(seed in 0u64..u64::MAX) {
        // `None` and `Some("")` carry the same zero payload bytes and
        // differ only in the header flag bit — the codec must keep them
        // apart (and give them different content keys).
        let absent = synth_artifact(seed, 2, 2, 3, 1, 0);
        let empty = synth_artifact(seed, 2, 2, 3, 1, 1);
        let bytes_absent = encode(&absent).expect("absent-report artifact encodes");
        let bytes_empty = encode(&empty).expect("empty-report artifact encodes");
        prop_assert!(bytes_absent != bytes_empty);
        prop_assert!(content_key(&bytes_absent) != content_key(&bytes_empty));
        prop_assert_eq!(decode(&bytes_absent).expect("decode").degradation_json, None);
        prop_assert_eq!(
            decode(&bytes_empty).expect("decode").degradation_json,
            Some(String::new())
        );
    }
}
