//! Corruption battery for the `.uhrtf` codec and the content-addressed
//! store: truncate at every boundary, flip bytes in every header and
//! payload region, and craft checksum-valid-but-malformed payloads.
//! Every case must yield a typed [`StoreError`] — never a panic, never a
//! silent success.

use std::path::PathBuf;
use uniq_store::format::crc32;
use uniq_store::{decode, encode, Grid, HrtfArtifact, Store, StoreError, HEADER_LEN};

/// A small reference artifact with every feature populated (both grids,
/// localization pairs, a degradation report exercising the flag bit).
fn reference_artifact() -> HrtfArtifact {
    let grid = |offset: f64| Grid {
        angles_deg: vec![0.0 + offset, 90.0 + offset, 180.0 + offset],
        ir_len: 4,
        irs: (0..3)
            .map(|a| {
                let base = (a * 8) as f64 + offset;
                (
                    (0..4).map(|j| base + j as f64 * 0.25).collect(),
                    (0..4).map(|j| -base - j as f64 * 0.125).collect(),
                )
            })
            .collect(),
    };
    let mut artifact = HrtfArtifact {
        seed: 1234,
        subject_fingerprint: 0,
        config_hash: 0xC0FF_EE00_DEAD_BEEF,
        sample_rate: 48_000.0,
        head: [0.08, 0.09, 0.10],
        radius_m: 0.45,
        attempts: 2,
        localization: vec![(30.0, 31.5), (150.0, 148.0)],
        near: grid(0.0),
        far: grid(0.5),
        degradation_json: Some("{\"mode\":\"noisy\"}".to_string()),
    };
    artifact.subject_fingerprint = artifact.fingerprint();
    artifact
}

/// Recomputes payload length, payload CRC, and header CRC so structural
/// corruption tests isolate the parser (checksums deliberately valid).
fn reseal(bytes: &mut [u8]) {
    let payload_len = (bytes.len() - HEADER_LEN) as u64;
    let payload_crc = crc32(&bytes[HEADER_LEN..]);
    bytes[16..24].copy_from_slice(&payload_len.to_le_bytes());
    bytes[24..28].copy_from_slice(&payload_crc.to_le_bytes());
    bytes[12..16].copy_from_slice(&[0; 4]);
    let header_crc = crc32(&bytes[..HEADER_LEN]);
    bytes[12..16].copy_from_slice(&header_crc.to_le_bytes());
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let bytes = encode(&reference_artifact()).expect("reference artifact encodes");
    for len in 0..bytes.len() {
        let err = decode(&bytes[..len]).expect_err("every truncation must fail");
        if len < HEADER_LEN {
            assert_eq!(err, StoreError::TooShort { len }, "truncated at {len}");
        } else {
            assert!(
                matches!(err, StoreError::LengthMismatch { .. }),
                "truncated at {len}: expected LengthMismatch, got {err}"
            );
        }
    }
}

#[test]
fn byte_flips_in_every_region_are_typed_errors() {
    let bytes = encode(&reference_artifact()).expect("reference artifact encodes");
    for offset in 0..bytes.len() {
        for mask in [0x01u8, 0xFF] {
            let mut corrupt = bytes.clone();
            corrupt[offset] ^= mask;
            let err = decode(&corrupt).expect_err("a flipped byte must never decode silently");
            let region_ok = match offset {
                0..=7 => matches!(err, StoreError::BadMagic { .. }),
                8..=9 => matches!(err, StoreError::UnsupportedVersion { .. }),
                10..=63 => matches!(err, StoreError::HeaderChecksum { .. }),
                _ => matches!(err, StoreError::PayloadChecksum { .. }),
            };
            assert!(
                region_ok,
                "flip ^{mask:#04x} at offset {offset}: unexpected error {err}"
            );
        }
    }
}

#[test]
fn trailing_payload_bytes_are_malformed() {
    let mut bytes = encode(&reference_artifact()).expect("encodes");
    bytes.push(0xAB);
    reseal(&mut bytes);
    let err = decode(&bytes).expect_err("trailing byte must fail");
    assert!(
        matches!(&err, StoreError::Malformed(m) if m.contains("trail")),
        "got {err}"
    );
}

#[test]
fn hostile_counts_are_malformed_not_oom() {
    // Localization count lives at payload offset 36 (head 24 + radius 8
    // + attempts 4). A count of u32::MAX must be rejected by the byte
    // budget check, not trigger a multi-gigabyte allocation.
    let mut bytes = encode(&reference_artifact()).expect("encodes");
    bytes[HEADER_LEN + 36..HEADER_LEN + 40].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut bytes);
    assert!(
        matches!(decode(&bytes), Err(StoreError::Malformed(_))),
        "hostile localization count must be Malformed"
    );

    // Same for the near-grid angle count (right after the localization
    // pairs: offset 36 + 4 + 2·2·8 = 72).
    let mut bytes = encode(&reference_artifact()).expect("encodes");
    bytes[HEADER_LEN + 72..HEADER_LEN + 76].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut bytes);
    assert!(
        matches!(decode(&bytes), Err(StoreError::Malformed(_))),
        "hostile grid count must be Malformed"
    );
}

#[test]
fn degradation_flag_and_bytes_must_agree() {
    // Bytes present, flag cleared → Malformed.
    let mut bytes = encode(&reference_artifact()).expect("encodes");
    bytes[10] &= !0x01;
    reseal(&mut bytes);
    let err = decode(&bytes).expect_err("flag/payload disagreement must fail");
    assert!(
        matches!(&err, StoreError::Malformed(m) if m.contains("flag")),
        "got {err}"
    );

    // Invalid UTF-8 inside the report → Malformed.
    let mut bytes = encode(&reference_artifact()).expect("encodes");
    let last = bytes.len() - 1;
    bytes[last] = 0xFF;
    reseal(&mut bytes);
    let err = decode(&bytes).expect_err("invalid UTF-8 must fail");
    assert!(
        matches!(&err, StoreError::Malformed(m) if m.contains("UTF-8")),
        "got {err}"
    );
}

#[test]
fn future_versions_and_unknown_flags_are_gated() {
    let mut bytes = encode(&reference_artifact()).expect("encodes");
    bytes[8..10].copy_from_slice(&2u16.to_le_bytes());
    reseal(&mut bytes);
    assert_eq!(
        decode(&bytes),
        Err(StoreError::UnsupportedVersion { version: 2 })
    );

    let mut bytes = encode(&reference_artifact()).expect("encodes");
    bytes[11] |= 0x80; // flag bit 15, undefined in v1
    reseal(&mut bytes);
    assert!(
        matches!(decode(&bytes), Err(StoreError::UnsupportedFlags { .. })),
        "unknown flag bit must be gated"
    );
}

/// A scratch store rooted in a unique temp dir, removed on drop.
struct ScratchStore {
    root: PathBuf,
}

impl ScratchStore {
    fn new(tag: &str) -> ScratchStore {
        let root = std::env::temp_dir().join(format!(
            "uniq_store_corruption_{tag}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        ScratchStore { root }
    }
}

impl Drop for ScratchStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn corrupted_blob_is_caught_by_get_and_verify() {
    let scratch = ScratchStore::new("blob");
    let store = Store::open(&scratch.root).expect("open scratch store");
    let outcome = store.put(&reference_artifact()).expect("put");

    let blob = scratch
        .root
        .join("blobs")
        .join(format!("{}.uhrtf", outcome.key));
    let mut bytes = std::fs::read(&blob).expect("read blob");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&blob, &bytes).expect("rewrite blob");

    // The flipped byte changes the content hash, so the key check (which
    // runs before decoding) is what catches it.
    assert!(
        matches!(store.get(&outcome.key), Err(StoreError::KeyMismatch { .. })),
        "a flipped blob byte must fail the content-key check on get"
    );
    let report = store.verify();
    assert!(!report.is_clean());
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.failures[0].0, outcome.key);
}

#[test]
fn swapped_blob_content_is_a_key_mismatch() {
    let scratch = ScratchStore::new("swap");
    let store = Store::open(&scratch.root).expect("open scratch store");
    let a = store.put(&reference_artifact()).expect("put a");
    let mut other = reference_artifact();
    other.seed = 999;
    other.subject_fingerprint = other.fingerprint();
    let b = store.put(&other).expect("put b");

    // Overwrite a's blob with b's (valid!) bytes: the file decodes fine
    // but no longer hashes to its own name.
    let blob_dir = scratch.root.join("blobs");
    std::fs::copy(
        blob_dir.join(format!("{}.uhrtf", b.key)),
        blob_dir.join(format!("{}.uhrtf", a.key)),
    )
    .expect("swap blobs");

    assert!(
        matches!(store.get(&a.key), Err(StoreError::KeyMismatch { .. })),
        "content/key disagreement must be a KeyMismatch"
    );
    assert!(!store.verify().is_clean());
}

#[test]
fn missing_blob_and_stale_fingerprint_fail_verify() {
    let scratch = ScratchStore::new("verify");
    let store = Store::open(&scratch.root).expect("open scratch store");
    let gone = store.put(&reference_artifact()).expect("put");

    let mut stale = reference_artifact();
    stale.seed = 77;
    stale.subject_fingerprint = 0xBAD; // deliberately not fingerprint()
    let stale_key = store.put(&stale).expect("put stale").key;

    std::fs::remove_file(
        scratch
            .root
            .join("blobs")
            .join(format!("{}.uhrtf", gone.key)),
    )
    .expect("delete blob");

    let report = store.verify();
    assert_eq!(report.failures.len(), 2);
    for (key, err) in &report.failures {
        if key == &gone.key {
            assert!(matches!(err, StoreError::Io { .. }), "got {err}");
        } else {
            assert_eq!(key, &stale_key);
            assert!(
                matches!(err, StoreError::FingerprintMismatch { .. }),
                "got {err}"
            );
        }
    }
}

#[test]
fn corrupted_index_is_rejected_on_open() {
    use std::io::Write as _;

    let scratch = ScratchStore::new("index");
    {
        let store = Store::open(&scratch.root).expect("open scratch store");
        store.put(&reference_artifact()).expect("put");
    }
    let index = scratch.root.join("index");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&index)
        .expect("open index for append");
    writeln!(file, "put zzz not-a-hex-fingerprint 0 0 0").expect("append garbage");
    drop(file);
    assert!(
        matches!(
            Store::open(&scratch.root),
            Err(StoreError::IndexCorrupt { .. })
        ),
        "a garbage index line must fail open"
    );

    // A mangled header is equally fatal.
    let mut text = std::fs::read_to_string(&index).expect("read index");
    text.replace_range(0..1, "X");
    std::fs::write(&index, text).expect("rewrite index");
    assert!(
        matches!(
            Store::open(&scratch.root),
            Err(StoreError::IndexCorrupt { .. })
        ),
        "a mangled index header must fail open"
    );
}
