//! The content-addressed on-disk artifact store.
//!
//! Layout on disk:
//!
//! ```text
//! <root>/
//!   index                 append-only text index (one line per put)
//!   blobs/<key>.uhrtf     one encoded artifact per distinct content key
//! ```
//!
//! The content key is the FNV-1a 64 hash of the encoded bytes (16 hex
//! digits), so identical artifacts always land on the same blob and a
//! repeated `put` is a pure dedup hit. Blobs are written to a temporary
//! name and renamed into place, and the index is append-only with every
//! line re-validated on open — a crash mid-put leaves at worst an
//! orphaned temp file, never a corrupt store. All mutation funnels
//! through one mutex, so any number of parallel writers (the `uniq-par`
//! determinism test drives 8) observe a consistent index and dedup
//! count.

use crate::error::StoreError;
use crate::format::{content_key, decode, encode, fnv64, HrtfArtifact};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use uniq_core::batch::FingerprintBuilder;
use uniq_obs::names;

/// First line of every index file: format name and index schema version.
const INDEX_HEADER: &str = "UNIQSTORE 1";

/// One index line: the metadata needed to answer lookups without
/// touching the blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Content key — FNV-1a 64 of the blob bytes, 16 hex digits.
    pub key: String,
    /// Subject fingerprint stamped in the artifact header.
    pub subject_fingerprint: u64,
    /// Config hash stamped in the artifact header.
    pub config_hash: u64,
    /// Subject seed.
    pub seed: u64,
    /// Blob size, bytes.
    pub bytes: u64,
}

impl IndexEntry {
    fn to_line(&self) -> String {
        format!(
            "put {} {:016x} {:016x} {} {}",
            self.key, self.subject_fingerprint, self.config_hash, self.seed, self.bytes
        )
    }

    fn parse(line: &str, lineno: usize) -> Result<IndexEntry, StoreError> {
        let corrupt = |reason: &str| StoreError::IndexCorrupt {
            line: lineno,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split(' ').collect();
        if fields.len() != 6 || fields[0] != "put" {
            return Err(corrupt("expected `put <key> <fp> <cfg> <seed> <bytes>`"));
        }
        let key = fields[1];
        if key.len() != 16 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(corrupt("key is not 16 hex digits"));
        }
        let subject_fingerprint = u64::from_str_radix(fields[2], 16)
            .map_err(|_| corrupt("subject fingerprint is not hex"))?;
        let config_hash =
            u64::from_str_radix(fields[3], 16).map_err(|_| corrupt("config hash is not hex"))?;
        let seed = fields[4]
            .parse::<u64>()
            .map_err(|_| corrupt("seed is not an integer"))?;
        let bytes = fields[5]
            .parse::<u64>()
            .map_err(|_| corrupt("byte count is not an integer"))?;
        Ok(IndexEntry {
            key: key.to_string(),
            subject_fingerprint,
            config_hash,
            seed,
            bytes,
        })
    }
}

/// What a [`Store::put`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// Content key the artifact lives under.
    pub key: String,
    /// Encoded size, bytes.
    pub bytes: u64,
    /// `true` when the key already existed and nothing was written.
    pub deduped: bool,
}

/// Result of a full [`Store::verify`] sweep.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Entries checked.
    pub entries: usize,
    /// Every `(key, error)` found; empty for a clean store.
    pub failures: Vec<(String, StoreError)>,
}

impl VerifyReport {
    /// Whether every entry checked out.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

#[derive(Debug)]
struct Inner {
    index: std::fs::File,
    entries: BTreeMap<String, IndexEntry>,
    dedup_hits: u64,
}

/// A content-addressed store of `.uhrtf` artifacts rooted at one
/// directory. All methods take `&self`; mutation is serialized
/// internally, so a shared reference can be fanned across threads.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    inner: Mutex<Inner>,
}

impl Store {
    /// Opens (creating if needed) the store at `root`, replaying and
    /// validating the whole index. Duplicate identical lines are
    /// tolerated (an interrupted writer may repeat one); conflicting
    /// lines for the same key are [`StoreError::IndexCorrupt`].
    pub fn open(root: &Path) -> Result<Store, StoreError> {
        let blobs = root.join("blobs");
        std::fs::create_dir_all(&blobs).map_err(|e| StoreError::io(&blobs, &e))?;
        let index_path = root.join("index");
        let mut entries = BTreeMap::new();
        match std::fs::read_to_string(&index_path) {
            Ok(text) => {
                let mut lines = text.lines().enumerate();
                match lines.next() {
                    Some((_, INDEX_HEADER)) => {}
                    Some((_, other)) => {
                        return Err(StoreError::IndexCorrupt {
                            line: 1,
                            reason: format!("bad header {other:?}, expected {INDEX_HEADER:?}"),
                        })
                    }
                    None => {
                        return Err(StoreError::IndexCorrupt {
                            line: 1,
                            reason: "index file is empty".to_string(),
                        })
                    }
                }
                for (i, line) in lines {
                    if line.is_empty() {
                        continue;
                    }
                    let entry = IndexEntry::parse(line, i + 1)?;
                    if let Some(existing) = entries.get(&entry.key) {
                        if *existing != entry {
                            return Err(StoreError::IndexCorrupt {
                                line: i + 1,
                                reason: format!(
                                    "key {} re-listed with different fields",
                                    entry.key
                                ),
                            });
                        }
                    } else {
                        entries.insert(entry.key.clone(), entry);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(&index_path, format!("{INDEX_HEADER}\n"))
                    .map_err(|e| StoreError::io(&index_path, &e))?;
            }
            Err(e) => return Err(StoreError::io(&index_path, &e)),
        }
        let index = std::fs::OpenOptions::new()
            .append(true)
            .open(&index_path)
            .map_err(|e| StoreError::io(&index_path, &e))?;
        Ok(Store {
            root: root.to_path_buf(),
            inner: Mutex::new(Inner {
                index,
                entries,
                dedup_hits: 0,
            }),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn blob_path(&self, key: &str) -> PathBuf {
        self.root.join("blobs").join(format!("{key}.uhrtf"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex means another writer panicked mid-put; the
        // index on disk is still append-only consistent, so continue.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stores an artifact, deduplicating by content. Returns the content
    /// key plus whether the bytes were already present.
    pub fn put(&self, artifact: &HrtfArtifact) -> Result<PutOutcome, StoreError> {
        let _span = uniq_obs::span(names::SPAN_STORE_PUT);
        let bytes = encode(artifact)?;
        let key = content_key(&bytes);
        let mut inner = self.lock();
        if inner.entries.contains_key(&key) {
            inner.dedup_hits += 1;
            uniq_obs::counter(names::STORE_DEDUP_HITS, 1);
            return Ok(PutOutcome {
                key,
                // uniq-analyzer: allow(lock-order) — `bytes.len()` is Vec::len, not Store::len; no lock re-entry on this line
                bytes: bytes.len() as u64,
                deduped: true,
            });
        }
        let tmp = self.root.join("blobs").join(format!(".tmp-{key}"));
        std::fs::write(&tmp, &bytes).map_err(|e| StoreError::io(&tmp, &e))?;
        let final_path = self.blob_path(&key);
        std::fs::rename(&tmp, &final_path).map_err(|e| StoreError::io(&final_path, &e))?;
        let entry = IndexEntry {
            key: key.clone(),
            subject_fingerprint: artifact.subject_fingerprint,
            config_hash: artifact.config_hash,
            seed: artifact.seed,
            bytes: bytes.len() as u64,
        };
        let line = entry.to_line();
        let index_path = self.root.join("index");
        writeln!(inner.index, "{line}").map_err(|e| StoreError::io(&index_path, &e))?;
        inner
            .index
            .flush()
            .map_err(|e| StoreError::io(&index_path, &e))?;
        inner.entries.insert(key.clone(), entry);
        uniq_obs::metric(names::STORE_PUT_BYTES, bytes.len() as f64, "bytes");
        uniq_obs::metric(names::STORE_ENTRIES, inner.entries.len() as f64, "count");
        Ok(PutOutcome {
            key,
            bytes: bytes.len() as u64,
            deduped: false,
        })
    }

    /// Loads and decodes the artifact stored under `key`, re-checking
    /// that the blob's bytes still hash to its key.
    pub fn get(&self, key: &str) -> Result<HrtfArtifact, StoreError> {
        let _span = uniq_obs::span(names::SPAN_STORE_GET);
        if !self.lock().entries.contains_key(key) {
            return Err(StoreError::UnknownKey {
                key: key.to_string(),
            });
        }
        let path = self.blob_path(key);
        let bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
        let actual = content_key(&bytes);
        if actual != key {
            return Err(StoreError::KeyMismatch {
                key: key.to_string(),
                actual,
            });
        }
        decode(&bytes)
    }

    /// The raw bytes of the blob under `key`, key-checked.
    pub fn get_bytes(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let _span = uniq_obs::span(names::SPAN_STORE_GET);
        if !self.lock().entries.contains_key(key) {
            return Err(StoreError::UnknownKey {
                key: key.to_string(),
            });
        }
        let path = self.blob_path(key);
        let bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
        let actual = content_key(&bytes);
        if actual != key {
            return Err(StoreError::KeyMismatch {
                key: key.to_string(),
                actual,
            });
        }
        Ok(bytes)
    }

    /// Every index entry, sorted by key (the `BTreeMap` order), so a scan
    /// is deterministic regardless of put interleaving.
    pub fn scan(&self) -> Vec<IndexEntry> {
        self.lock().entries.values().cloned().collect()
    }

    /// The first entry (in key order) matching a subject fingerprint and
    /// config hash — the result-cache query.
    pub fn lookup(&self, subject_fingerprint: u64, config_hash: u64) -> Option<IndexEntry> {
        self.lock()
            .entries
            .values()
            .find(|e| e.subject_fingerprint == subject_fingerprint && e.config_hash == config_hash)
            .cloned()
    }

    /// The first entry (in key order) matching a subject seed and config
    /// hash — the *pre-computation* cache query. Unlike [`Store::lookup`],
    /// which keys on the result fingerprint (only known after a pipeline
    /// run), the seed is the subject's identity *before* personalization,
    /// so a server can answer "has this subject already been personalized
    /// under this exact config?" with a disk lookup instead of a run.
    pub fn lookup_by_seed(&self, seed: u64, config_hash: u64) -> Option<IndexEntry> {
        self.lock()
            .entries
            .values()
            .find(|e| e.seed == seed && e.config_hash == config_hash)
            .cloned()
    }

    /// Number of distinct artifacts stored.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// Dedup hits since this handle was opened.
    pub fn dedup_hits(&self) -> u64 {
        self.lock().dedup_hits
    }

    /// FNV-1a digest of the entry *set* (folded in key order), so the
    /// fingerprint is independent of put scheduling: 1 writer and 8
    /// writers storing the same artifacts agree bit for bit even though
    /// their index files list lines in different orders.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = FingerprintBuilder::new();
        for entry in self.lock().entries.values() {
            fp.eat(fnv64(entry.key.as_bytes()));
            fp.eat(entry.subject_fingerprint);
            fp.eat(entry.config_hash);
            fp.eat(entry.seed);
            fp.eat(entry.bytes);
        }
        fp.finish()
    }

    /// Deep-checks every entry: blob present, bytes hash to the key,
    /// payload decodes, header metadata matches the index line, and the
    /// decoded artifact's recomputed fingerprint equals the stamped
    /// subject fingerprint.
    pub fn verify(&self) -> VerifyReport {
        let _span = uniq_obs::span(names::SPAN_STORE_VERIFY);
        let entries = self.scan();
        let mut failures = Vec::new();
        for entry in &entries {
            if let Err(e) = self.verify_entry(entry) {
                failures.push((entry.key.clone(), e));
            }
        }
        uniq_obs::metric(names::STORE_ENTRIES, entries.len() as f64, "count");
        VerifyReport {
            entries: entries.len(),
            failures,
        }
    }

    fn verify_entry(&self, entry: &IndexEntry) -> Result<(), StoreError> {
        let path = self.blob_path(&entry.key);
        let bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, &e))?;
        let actual = content_key(&bytes);
        if actual != entry.key {
            return Err(StoreError::KeyMismatch {
                key: entry.key.clone(),
                actual,
            });
        }
        if bytes.len() as u64 != entry.bytes {
            return Err(StoreError::IndexCorrupt {
                line: 0,
                reason: format!(
                    "index records {} bytes for {}, blob has {}",
                    entry.bytes,
                    entry.key,
                    bytes.len()
                ),
            });
        }
        let artifact = decode(&bytes)?;
        if artifact.subject_fingerprint != entry.subject_fingerprint
            || artifact.config_hash != entry.config_hash
            || artifact.seed != entry.seed
        {
            return Err(StoreError::IndexCorrupt {
                line: 0,
                reason: format!("index metadata disagrees with the header of {}", entry.key),
            });
        }
        let computed = artifact.fingerprint();
        if computed != artifact.subject_fingerprint {
            return Err(StoreError::FingerprintMismatch {
                stored: artifact.subject_fingerprint,
                computed,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::Grid;

    fn artifact(seed: u64) -> HrtfArtifact {
        let mut a = HrtfArtifact {
            seed,
            subject_fingerprint: 0,
            config_hash: 0xC0FFEE,
            sample_rate: 48_000.0,
            head: [0.07, 0.09, 0.08],
            radius_m: 0.35,
            attempts: 1,
            localization: vec![(0.0, 1.0)],
            near: Grid {
                angles_deg: vec![0.0, 90.0],
                ir_len: 2,
                irs: vec![
                    (vec![seed as f64, 0.5], vec![0.25, 0.125]),
                    (vec![0.1, 0.2], vec![0.3, 0.4]),
                ],
            },
            far: Grid {
                angles_deg: vec![45.0],
                ir_len: 2,
                irs: vec![(vec![1.0, 0.0], vec![0.0, 1.0])],
            },
            degradation_json: None,
        };
        a.subject_fingerprint = a.fingerprint();
        a
    }

    fn temp_root(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uniq_store_unit")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip_and_dedup() {
        let root = temp_root("round_trip");
        let store = Store::open(&root).unwrap();
        let a = artifact(7);
        let first = store.put(&a).unwrap();
        assert!(!first.deduped);
        let second = store.put(&a).unwrap();
        assert!(second.deduped);
        assert_eq!(first.key, second.key);
        assert_eq!(store.len(), 1);
        assert_eq!(store.dedup_hits(), 1);
        let back = store.get(&first.key).unwrap();
        assert_eq!(back, a);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_replays_index() {
        let root = temp_root("reopen");
        let key = {
            let store = Store::open(&root).unwrap();
            store.put(&artifact(1)).unwrap();
            store.put(&artifact(2)).unwrap().key
        };
        let store = Store::open(&root).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(&key).unwrap().seed, 2);
        assert!(store.verify().is_clean());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_key_is_typed() {
        let root = temp_root("unknown");
        let store = Store::open(&root).unwrap();
        assert!(matches!(
            store.get("0123456789abcdef"),
            Err(StoreError::UnknownKey { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn lookup_by_subject_and_config() {
        let root = temp_root("lookup");
        let store = Store::open(&root).unwrap();
        let a = artifact(5);
        store.put(&a).unwrap();
        let hit = store.lookup(a.subject_fingerprint, a.config_hash).unwrap();
        assert_eq!(hit.seed, 5);
        assert!(store.lookup(a.subject_fingerprint, 0).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let root_ab = temp_root("order_ab");
        let root_ba = temp_root("order_ba");
        let ab = Store::open(&root_ab).unwrap();
        ab.put(&artifact(1)).unwrap();
        ab.put(&artifact(2)).unwrap();
        let ba = Store::open(&root_ba).unwrap();
        ba.put(&artifact(2)).unwrap();
        ba.put(&artifact(1)).unwrap();
        assert_eq!(ab.fingerprint(), ba.fingerprint());
        let _ = std::fs::remove_dir_all(&root_ab);
        let _ = std::fs::remove_dir_all(&root_ba);
    }

    #[test]
    fn conflicting_index_line_rejected_on_open() {
        let root = temp_root("conflict");
        let store = Store::open(&root).unwrap();
        let out = store.put(&artifact(3)).unwrap();
        drop(store);
        let index = root.join("index");
        let mut text = std::fs::read_to_string(&index).unwrap();
        text.push_str(&format!(
            "put {} {:016x} {:016x} 999 1\n",
            out.key, 0u64, 0u64
        ));
        std::fs::write(&index, text).unwrap();
        assert!(matches!(
            Store::open(&root),
            Err(StoreError::IndexCorrupt { .. })
        ));
        let _ = std::fs::remove_dir_all(&root);
    }
}
