//! The `.uhrtf` binary interchange format, version 1.
//!
//! A compact, SOFA-inspired container for one personalized HRTF: both
//! measurement grids (near field and the derived far field), the head
//! geometry, and the provenance metadata a result cache needs (seed,
//! subject fingerprint, config hash, degradation report). The reader and
//! writer are hand-rolled over little-endian byte slices — no serde,
//! following the `uniq_obs::json` precedent — and every byte of the file
//! is covered by one of two CRC-32 checksums, so any truncation or bit
//! flip surfaces as a typed [`StoreError`], never a panic or a silently
//! wrong table.
//!
//! ## Byte layout (all integers and floats little-endian)
//!
//! 64-byte header:
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `b"UHRTFBIN"` |
//! | 8      | 2    | format version (`u16`, currently 1) |
//! | 10     | 2    | flags (`u16`; bit 0 = degradation report present) |
//! | 12     | 4    | header CRC-32 (over the 64 header bytes with this field zeroed) |
//! | 16     | 8    | payload length in bytes (`u64`) |
//! | 24     | 4    | payload CRC-32 |
//! | 28     | 4    | reserved (zero) |
//! | 32     | 8    | subject fingerprint (`u64`, see [`HrtfArtifact::fingerprint`]) |
//! | 40     | 8    | config hash (`u64`, `UniqConfig::content_hash`) |
//! | 48     | 8    | sample rate (`f64` bits) |
//! | 56     | 8    | subject seed (`u64`) |
//!
//! Payload, immediately after the header:
//!
//! | field | encoding |
//! |-------|----------|
//! | head semi-axes a, b, c | 3 × `f64` |
//! | gesture radius, metres | `f64` |
//! | attempts | `u32` |
//! | localization pairs | count `u32`, then count × (truth `f64`, estimate `f64`) |
//! | near grid | angle count `u32`, IR length `u32`, angles (count × `f64`), then per angle left then right IR samples |
//! | far grid | same encoding |
//! | degradation report | UTF-8 length `u32`, then the JSON bytes |

use crate::error::StoreError;
use uniq_acoustics::types::{BinauralIr, HrirBank};
use uniq_core::batch::{fold_result_parts, FingerprintBuilder};
use uniq_core::hrtf::PersonalHrtf;
use uniq_core::pipeline::PersonalizationResult;
use uniq_geometry::HeadParams;

/// Current `.uhrtf` format version.
pub const FORMAT_VERSION: u16 = 1;

/// The eight magic bytes opening every `.uhrtf` file.
pub const MAGIC: [u8; 8] = *b"UHRTFBIN";

/// Fixed header size, bytes.
pub const HEADER_LEN: usize = 64;

/// Flag bit: the payload carries a degradation report.
pub const FLAG_DEGRADATION: u16 = 0x0001;

/// All flag bits a v1 reader understands.
const KNOWN_FLAGS: u16 = FLAG_DEGRADATION;

const CRC32_TABLE: [u32; 256] = build_crc32_table();

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    !crc
}

/// FNV-1a 64-bit hash of a byte string — the content-addressing hash
/// (same constants as the workspace's result fingerprints).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The content key of an encoded artifact: its [`fnv64`] hash as 16
/// lowercase hex digits. Blobs are filed under this key, so equal bytes
/// always deduplicate.
pub fn content_key(bytes: &[u8]) -> String {
    format!("{:016x}", fnv64(bytes))
}

/// One ear-pair grid: measurement angles plus a left/right impulse
/// response per angle. Unlike `HrirBank` this type tolerates empty and
/// degenerate shapes (zero angles, zero-length IRs, repeated angles) so
/// the format can round-trip anything a writer produced; conversion to a
/// lookup table re-validates.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Measurement angle of each entry, degrees, in writer order.
    pub angles_deg: Vec<f64>,
    /// Samples per ear per entry.
    pub ir_len: usize,
    /// One `(left, right)` impulse-response pair per angle.
    pub irs: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Grid {
    /// A grid with no entries.
    pub fn empty() -> Grid {
        Grid {
            angles_deg: Vec::new(),
            ir_len: 0,
            irs: Vec::new(),
        }
    }

    /// Copies a lookup-table bank into a grid.
    pub fn from_bank(bank: &HrirBank) -> Grid {
        Grid {
            angles_deg: bank.angles().to_vec(),
            ir_len: bank.irs().first().map_or(0, BinauralIr::len),
            irs: bank
                .irs()
                .iter()
                .map(|ir| (ir.left.clone(), ir.right.clone()))
                .collect(),
        }
    }

    /// Number of angle entries.
    pub fn len(&self) -> usize {
        self.angles_deg.len()
    }

    /// Whether the grid has no entries.
    pub fn is_empty(&self) -> bool {
        self.angles_deg.is_empty()
    }

    /// Checks the structural invariant the encoder relies on: one IR pair
    /// per angle, every response exactly `ir_len` samples.
    pub fn validate(&self, which: &str) -> Result<(), StoreError> {
        if self.irs.len() != self.angles_deg.len() {
            return Err(StoreError::BadGrid(format!(
                "{which} grid has {} angles but {} IR pairs",
                self.angles_deg.len(),
                self.irs.len()
            )));
        }
        for (i, (left, right)) in self.irs.iter().enumerate() {
            if left.len() != self.ir_len || right.len() != self.ir_len {
                return Err(StoreError::BadGrid(format!(
                    "{which} grid entry {i} has {}/{} samples, expected {}",
                    left.len(),
                    right.len(),
                    self.ir_len
                )));
            }
        }
        Ok(())
    }

    /// Converts the grid into an `HrirBank`, re-validating everything the
    /// bank constructor would otherwise assert (so a hostile file can
    /// never panic the reader): non-empty, shape-consistent, and strictly
    /// distinct finite angles.
    pub fn to_bank(&self, which: &str, sample_rate: f64) -> Result<HrirBank, StoreError> {
        self.validate(which)?;
        if self.is_empty() {
            return Err(StoreError::BadGrid(format!(
                "{which} grid is empty — cannot build a lookup table"
            )));
        }
        if self.angles_deg.iter().any(|a| !a.is_finite()) {
            return Err(StoreError::BadGrid(format!(
                "{which} grid has a non-finite angle"
            )));
        }
        let mut sorted = self.angles_deg.clone();
        sorted.sort_by(f64::total_cmp);
        for w in sorted.windows(2) {
            if w[1] - w[0] <= 1e-9 {
                return Err(StoreError::BadGrid(format!(
                    "{which} grid has near-duplicate angles {} and {}",
                    w[0], w[1]
                )));
            }
        }
        let pairs: Vec<(f64, BinauralIr)> = self
            .angles_deg
            .iter()
            .zip(&self.irs)
            .map(|(&angle, (left, right))| (angle, BinauralIr::new(left.clone(), right.clone())))
            .collect();
        Ok(HrirBank::new(pairs, sample_rate))
    }
}

/// One personalized HRTF as a storable artifact: the paper's output
/// grids plus everything needed to re-derive the run's fingerprint and
/// attribute the result to a subject and configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HrtfArtifact {
    /// Seed of the synthetic subject (drives anatomy, gesture, noise).
    pub seed: u64,
    /// Digest of the run's numeric output (see [`HrtfArtifact::fingerprint`]);
    /// stamped at write time, re-checked by store verification.
    pub subject_fingerprint: u64,
    /// `UniqConfig::content_hash` of the configuration that produced the
    /// result (zero when unknown, e.g. a table imported from text).
    pub config_hash: u64,
    /// Audio sample rate shared by both grids, hertz.
    pub sample_rate: f64,
    /// Fitted head semi-axes `[a, b, c]`, metres.
    pub head: [f64; 3],
    /// Estimated gesture radius, metres.
    pub radius_m: f64,
    /// Personalization attempts consumed (1 = first try).
    pub attempts: u32,
    /// Per-stop `(truth, estimate)` localization angles, degrees.
    pub localization: Vec<(f64, f64)>,
    /// Near-field grid.
    pub near: Grid,
    /// Far-field grid.
    pub far: Grid,
    /// Degradation report JSON of a faulted run (`None` = clean).
    pub degradation_json: Option<String>,
}

impl HrtfArtifact {
    /// Packages a pipeline result as a storable artifact. The subject
    /// fingerprint is computed from the result exactly as
    /// `uniq_core::batch::hrtf_fingerprint` would digest it, so a stored
    /// artifact can later prove it reproduces the in-memory run bit for
    /// bit (the acceptance gate against `BENCH_BASELINE.json`).
    pub fn from_result(
        seed: u64,
        result: &PersonalizationResult,
        config_hash: u64,
        degradation_json: Option<String>,
    ) -> HrtfArtifact {
        let head = result.hrtf.head();
        let mut artifact = HrtfArtifact {
            seed,
            subject_fingerprint: 0,
            config_hash,
            sample_rate: result.hrtf.sample_rate(),
            head: [head.a, head.b, head.c],
            radius_m: result.radius_m,
            attempts: result.attempts as u32,
            localization: result.localization.clone(),
            near: Grid::from_bank(result.hrtf.near()),
            far: Grid::from_bank(result.hrtf.far()),
            degradation_json,
        };
        artifact.subject_fingerprint = artifact.fingerprint();
        artifact
    }

    /// Packages a bare lookup table (e.g. parsed from the `.uniqhrtf`
    /// text format, which carries no run metadata) as an artifact with
    /// zeroed provenance.
    pub fn from_table(seed: u64, table: &PersonalHrtf, config_hash: u64) -> HrtfArtifact {
        let head = table.head();
        let mut artifact = HrtfArtifact {
            seed,
            subject_fingerprint: 0,
            config_hash,
            sample_rate: table.sample_rate(),
            head: [head.a, head.b, head.c],
            radius_m: 0.0,
            attempts: 0,
            localization: Vec::new(),
            near: Grid::from_bank(table.near()),
            far: Grid::from_bank(table.far()),
            degradation_json: None,
        };
        artifact.subject_fingerprint = artifact.fingerprint();
        artifact
    }

    /// Recomputes the subject fingerprint from the artifact's own fields,
    /// using the same FNV-1a fold as the batch fingerprint — so
    /// `put` → `get` → `fingerprint()` equals the fingerprint of the
    /// original in-memory result.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = FingerprintBuilder::new();
        fold_result_parts(
            &mut fp,
            self.seed,
            self.radius_m,
            u64::from(self.attempts),
            &self.localization,
            [&self.near, &self.far]
                .into_iter()
                .flat_map(|grid| grid.irs.iter())
                .map(|(left, right)| (left.as_slice(), right.as_slice())),
        );
        fp.finish()
    }

    /// Converts the artifact back into a runtime lookup table.
    pub fn to_table(&self) -> Result<PersonalHrtf, StoreError> {
        let near = self.near.to_bank("near", self.sample_rate)?;
        let far = self.far.to_bank("far", self.sample_rate)?;
        Ok(PersonalHrtf::new(
            near,
            far,
            HeadParams::new(self.head[0], self.head[1], self.head[2]),
        ))
    }
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn count_u32(n: usize, what: &str) -> Result<u32, StoreError> {
    u32::try_from(n).map_err(|_| StoreError::Malformed(format!("{what} count {n} exceeds u32")))
}

fn encode_grid(out: &mut Vec<u8>, grid: &Grid, which: &str) -> Result<(), StoreError> {
    grid.validate(which)?;
    push_u32(out, count_u32(grid.angles_deg.len(), which)?);
    push_u32(out, count_u32(grid.ir_len, which)?);
    for &angle in &grid.angles_deg {
        push_f64(out, angle);
    }
    for (left, right) in &grid.irs {
        for &v in left.iter().chain(right) {
            push_f64(out, v);
        }
    }
    Ok(())
}

/// Serializes an artifact to `.uhrtf` bytes. The encoding is canonical:
/// equal artifacts always produce identical bytes (and therefore the
/// same content key).
pub fn encode(artifact: &HrtfArtifact) -> Result<Vec<u8>, StoreError> {
    let mut payload = Vec::new();
    for v in artifact.head {
        push_f64(&mut payload, v);
    }
    push_f64(&mut payload, artifact.radius_m);
    push_u32(&mut payload, artifact.attempts);
    push_u32(
        &mut payload,
        count_u32(artifact.localization.len(), "localization")?,
    );
    for &(truth, est) in &artifact.localization {
        push_f64(&mut payload, truth);
        push_f64(&mut payload, est);
    }
    encode_grid(&mut payload, &artifact.near, "near")?;
    encode_grid(&mut payload, &artifact.far, "far")?;
    let degradation = artifact.degradation_json.as_deref().unwrap_or("");
    push_u32(&mut payload, count_u32(degradation.len(), "degradation")?);
    payload.extend_from_slice(degradation.as_bytes());

    let flags = if artifact.degradation_json.is_some() {
        FLAG_DEGRADATION
    } else {
        0
    };
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..10].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[10..12].copy_from_slice(&flags.to_le_bytes());
    // 12..16: header CRC, patched below once the rest is final.
    header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[24..28].copy_from_slice(&crc32(&payload).to_le_bytes());
    // 28..32 reserved, zero.
    header[32..40].copy_from_slice(&artifact.subject_fingerprint.to_le_bytes());
    header[40..48].copy_from_slice(&artifact.config_hash.to_le_bytes());
    header[48..56].copy_from_slice(&artifact.sample_rate.to_bits().to_le_bytes());
    header[56..64].copy_from_slice(&artifact.seed.to_le_bytes());
    let header_crc = crc32(&header);
    header[12..16].copy_from_slice(&header_crc.to_le_bytes());

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Bounds-checked little-endian payload reader: every overrun is a typed
/// [`StoreError::Malformed`], never a slice panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if n > self.remaining() {
            return Err(StoreError::Malformed(format!(
                "{what} needs {n} bytes, {} left in the payload",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4, what)?);
        Ok(u32::from_le_bytes(b))
    }

    fn f64(&mut self, what: &str) -> Result<f64, StoreError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8, what)?);
        Ok(f64::from_bits(u64::from_le_bytes(b)))
    }

    /// Reads `n` floats, pre-checking the byte budget before allocating
    /// so an absurd count in a crafted file cannot force a huge
    /// allocation.
    fn f64_vec(&mut self, n: usize, what: &str) -> Result<Vec<f64>, StoreError> {
        let bytes = n
            .checked_mul(8)
            .ok_or_else(|| StoreError::Malformed(format!("{what} count {n} overflows")))?;
        if bytes > self.remaining() {
            return Err(StoreError::Malformed(format!(
                "{what} claims {n} values but only {} payload bytes remain",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64(what)?);
        }
        Ok(out)
    }
}

fn decode_grid(cur: &mut Cursor<'_>, which: &str) -> Result<Grid, StoreError> {
    let count = cur.u32(which)? as usize;
    let ir_len = cur.u32(which)? as usize;
    let angles_deg = cur.f64_vec(count, which)?;
    // Pre-check the whole grid body so `count × ir_len` cannot multiply
    // into a huge reservation before the cursor notices the overrun.
    let body = count
        .checked_mul(ir_len)
        .and_then(|v| v.checked_mul(16))
        .ok_or_else(|| StoreError::Malformed(format!("{which} grid size overflows")))?;
    if body > cur.remaining() {
        return Err(StoreError::Malformed(format!(
            "{which} grid claims {body} bytes but only {} remain",
            cur.remaining()
        )));
    }
    let mut irs = Vec::with_capacity(count);
    for _ in 0..count {
        let left = cur.f64_vec(ir_len, which)?;
        let right = cur.f64_vec(ir_len, which)?;
        irs.push((left, right));
    }
    Ok(Grid {
        angles_deg,
        ir_len,
        irs,
    })
}

fn le_u16(bytes: &[u8], off: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&bytes[off..off + 2]);
    u16::from_le_bytes(b)
}

fn le_u32(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

fn le_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Parses `.uhrtf` bytes back into an artifact, verifying both checksums
/// and every structural invariant. See the module docs for the exact
/// validation order; every failure is a typed [`StoreError`].
pub fn decode(bytes: &[u8]) -> Result<HrtfArtifact, StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::TooShort { len: bytes.len() });
    }
    let header = &bytes[..HEADER_LEN];
    if header[0..8] != MAGIC {
        let mut found = [0u8; 8];
        found.copy_from_slice(&header[0..8]);
        return Err(StoreError::BadMagic { found });
    }
    let version = le_u16(header, 8);
    if version != FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { version });
    }
    let stored_header_crc = le_u32(header, 12);
    let mut crc_input = [0u8; HEADER_LEN];
    crc_input.copy_from_slice(header);
    crc_input[12..16].copy_from_slice(&[0; 4]);
    let computed_header_crc = crc32(&crc_input);
    if stored_header_crc != computed_header_crc {
        return Err(StoreError::HeaderChecksum {
            stored: stored_header_crc,
            computed: computed_header_crc,
        });
    }
    let flags = le_u16(header, 10);
    if flags & !KNOWN_FLAGS != 0 {
        return Err(StoreError::UnsupportedFlags { flags });
    }
    let declared = le_u64(header, 16);
    let actual = (bytes.len() - HEADER_LEN) as u64;
    if declared != actual {
        return Err(StoreError::LengthMismatch { declared, actual });
    }
    let payload = &bytes[HEADER_LEN..];
    let stored_payload_crc = le_u32(header, 24);
    let computed_payload_crc = crc32(payload);
    if stored_payload_crc != computed_payload_crc {
        return Err(StoreError::PayloadChecksum {
            stored: stored_payload_crc,
            computed: computed_payload_crc,
        });
    }

    let mut cur = Cursor::new(payload);
    let head = [cur.f64("head.a")?, cur.f64("head.b")?, cur.f64("head.c")?];
    let radius_m = cur.f64("radius_m")?;
    let attempts = cur.u32("attempts")?;
    let loc_count = cur.u32("localization")? as usize;
    let loc_flat = cur.f64_vec(
        loc_count
            .checked_mul(2)
            .ok_or_else(|| StoreError::Malformed("localization count overflows".into()))?,
        "localization",
    )?;
    let localization: Vec<(f64, f64)> = loc_flat.chunks_exact(2).map(|p| (p[0], p[1])).collect();
    let near = decode_grid(&mut cur, "near")?;
    let far = decode_grid(&mut cur, "far")?;
    let degradation_len = cur.u32("degradation")? as usize;
    let degradation_bytes = cur.take(degradation_len, "degradation")?;
    if cur.remaining() != 0 {
        return Err(StoreError::Malformed(format!(
            "{} bytes trail the last payload field",
            cur.remaining()
        )));
    }
    let degradation_json = if flags & FLAG_DEGRADATION != 0 {
        Some(
            std::str::from_utf8(degradation_bytes)
                .map_err(|_| StoreError::Malformed("degradation report is not UTF-8".into()))?
                .to_string(),
        )
    } else if degradation_len != 0 {
        return Err(StoreError::Malformed(
            "degradation bytes present but the flag bit is clear".into(),
        ));
    } else {
        None
    };

    Ok(HrtfArtifact {
        seed: le_u64(header, 56),
        subject_fingerprint: le_u64(header, 32),
        config_hash: le_u64(header, 40),
        sample_rate: f64::from_bits(le_u64(header, 48)),
        head,
        radius_m,
        attempts,
        localization,
        near,
        far,
        degradation_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> HrtfArtifact {
        let mut artifact = HrtfArtifact {
            seed: 9,
            subject_fingerprint: 0,
            config_hash: 0xBEEF,
            sample_rate: 48_000.0,
            head: [0.075, 0.1, 0.09],
            radius_m: 0.4,
            attempts: 1,
            localization: vec![(10.0, 11.5), (90.0, 88.0)],
            near: Grid {
                angles_deg: vec![0.0, 90.0],
                ir_len: 3,
                irs: vec![
                    (vec![1.0, 0.5, 0.0], vec![0.9, 0.4, 0.1]),
                    (vec![0.2, 0.1, 0.0], vec![0.3, 0.2, 0.1]),
                ],
            },
            far: Grid {
                angles_deg: vec![45.0],
                ir_len: 2,
                irs: vec![(vec![1.0, 0.0], vec![0.0, 1.0])],
            },
            degradation_json: Some("{\"stops_dropped\":1}".to_string()),
        };
        artifact.subject_fingerprint = artifact.fingerprint();
        artifact
    }

    #[test]
    fn round_trip_is_exact() {
        let artifact = tiny_artifact();
        let bytes = encode(&artifact).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, artifact);
        // Canonical: re-encoding reproduces the bytes.
        assert_eq!(encode(&back).unwrap(), bytes);
    }

    #[test]
    fn empty_grids_round_trip() {
        let mut artifact = tiny_artifact();
        artifact.near = Grid::empty();
        artifact.far = Grid::empty();
        artifact.localization.clear();
        artifact.degradation_json = None;
        artifact.subject_fingerprint = artifact.fingerprint();
        let bytes = encode(&artifact).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back, artifact);
        // …but cannot become a lookup table.
        assert!(matches!(back.to_table(), Err(StoreError::BadGrid(_))));
    }

    #[test]
    fn nan_samples_preserve_bits() {
        let mut artifact = tiny_artifact();
        artifact.far.irs[0].0[1] = f64::from_bits(0x7FF8_0000_0000_1234);
        artifact.subject_fingerprint = artifact.fingerprint();
        let bytes = encode(&artifact).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(
            back.far.irs[0].0[1].to_bits(),
            0x7FF8_0000_0000_1234,
            "NaN payload bits must survive the round trip"
        );
    }

    #[test]
    fn ragged_grid_rejected_at_encode() {
        let mut artifact = tiny_artifact();
        artifact.near.irs[0].0.push(7.0);
        assert!(matches!(encode(&artifact), Err(StoreError::BadGrid(_))));
    }

    #[test]
    fn content_key_is_hex_of_fnv() {
        let bytes = encode(&tiny_artifact()).unwrap();
        let key = content_key(&bytes);
        assert_eq!(key.len(), 16);
        assert_eq!(key, format!("{:016x}", fnv64(&bytes)));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
