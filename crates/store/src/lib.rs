//! uniq-store: persistence for personalized HRTFs.
//!
//! The UNIQ pipeline's output — a subject's near/far-field HRTF grids —
//! previously died with the process. This crate gives it a life on disk:
//!
//! * [`format`] — the `.uhrtf` binary interchange format, v1: a
//!   SOFA-inspired container with a versioned, CRC-checksummed header
//!   carrying both grids plus provenance (seed, subject fingerprint,
//!   config hash, degradation report). Hand-rolled reader/writer, no
//!   serde; every corruption is a typed [`StoreError`].
//! * [`store`] — a content-addressed store: blobs keyed by the FNV-1a
//!   hash of their bytes plus one append-only index, with put / get /
//!   lookup / dedup / scan / verify operations safe under parallel
//!   writers.
//!
//! The CLI front end is `uniq store put|get|ls|verify|export|import`;
//! the `baseline` bench bin can persist its pinned seed-6 artifact here,
//! and store I/O reports through the `store.*` obs names.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod format;
pub mod store;

pub use error::StoreError;
pub use format::{content_key, decode, encode, Grid, HrtfArtifact, FORMAT_VERSION, HEADER_LEN};
pub use store::{IndexEntry, PutOutcome, Store, VerifyReport};
