//! Typed failures for the format reader/writer and the on-disk store.
//!
//! Every way a `.uhrtf` file or a store directory can be wrong maps to
//! exactly one variant here — the corruption battery in
//! `tests/corruption.rs` asserts that no truncation or byte flip ever
//! panics or silently succeeds, and the CLI maps these onto its
//! 0/1/2 exit-code contract.

/// A failure while encoding, decoding, or storing an HRTF artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// File shorter than the fixed-size header.
    TooShort {
        /// Bytes actually present.
        len: usize,
    },
    /// The first eight bytes are not the `.uhrtf` magic.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 8],
    },
    /// A format version this reader does not understand.
    UnsupportedVersion {
        /// The version stamped in the header.
        version: u16,
    },
    /// Header flag bits this reader does not understand (v1 defines only
    /// bit 0, "degradation report present").
    UnsupportedFlags {
        /// The flag word found.
        flags: u16,
    },
    /// The header's CRC-32 does not match its bytes.
    HeaderChecksum {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum computed over the header bytes.
        computed: u32,
    },
    /// The payload length declared in the header disagrees with the bytes
    /// actually present (truncation or trailing garbage).
    LengthMismatch {
        /// Payload bytes the header promises.
        declared: u64,
        /// Payload bytes actually present after the header.
        actual: u64,
    },
    /// The payload's CRC-32 does not match its bytes.
    PayloadChecksum {
        /// Checksum recorded in the header.
        stored: u32,
        /// Checksum computed over the payload bytes.
        computed: u32,
    },
    /// The payload is structurally malformed (a count overruns the
    /// payload, a field is cut short, or bytes trail the last field).
    Malformed(String),
    /// A grid that cannot back a lookup table (empty, ragged, duplicate
    /// or non-finite angles) where one is required.
    BadGrid(String),
    /// A blob's content no longer hashes to its content key.
    KeyMismatch {
        /// The key the content was filed under.
        key: String,
        /// The key its bytes actually hash to.
        actual: String,
    },
    /// A decoded artifact's recomputed fingerprint disagrees with the
    /// subject fingerprint stamped in its header.
    FingerprintMismatch {
        /// Fingerprint stamped in the artifact header.
        stored: u64,
        /// Fingerprint recomputed from the decoded payload.
        computed: u64,
    },
    /// A key absent from the store index.
    UnknownKey {
        /// The key looked up.
        key: String,
    },
    /// The append-only index file is malformed.
    IndexCorrupt {
        /// 1-based line number of the offending index line.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// An underlying filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: String,
        /// The OS error rendered as text (kept as a string so the error
        /// stays `Clone + PartialEq` for tests).
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::TooShort { len } => {
                write!(f, "file too short for a .uhrtf header ({len} bytes)")
            }
            StoreError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            StoreError::UnsupportedVersion { version } => {
                write!(f, "unsupported format version {version}")
            }
            StoreError::UnsupportedFlags { flags } => {
                write!(f, "unsupported header flags {flags:#06x}")
            }
            StoreError::HeaderChecksum { stored, computed } => write!(
                f,
                "header checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            StoreError::LengthMismatch { declared, actual } => write!(
                f,
                "payload length mismatch (header declares {declared} bytes, found {actual})"
            ),
            StoreError::PayloadChecksum { stored, computed } => write!(
                f,
                "payload checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            StoreError::Malformed(what) => write!(f, "malformed payload: {what}"),
            StoreError::BadGrid(what) => write!(f, "bad grid: {what}"),
            StoreError::KeyMismatch { key, actual } => {
                write!(f, "content of blob {key} hashes to {actual}")
            }
            StoreError::FingerprintMismatch { stored, computed } => write!(
                f,
                "subject fingerprint mismatch (stored {stored:#018x}, recomputed {computed:#018x})"
            ),
            StoreError::UnknownKey { key } => write!(f, "key {key} not in the store index"),
            StoreError::IndexCorrupt { line, reason } => {
                write!(f, "index line {line} corrupt: {reason}")
            }
            StoreError::Io { path, reason } => write!(f, "I/O failure on {path}: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Wraps an OS error with the path it struck.
    pub fn io(path: &std::path::Path, err: &std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.display().to_string(),
            reason: err.to_string(),
        }
    }
}
