//! # uniq-profile
//!
//! A profiling layer over `uniq-obs`: [`ProfileSink`] implements
//! [`uniq_obs::sink::Sink`] and aggregates the span event stream into
//! per-stage latency statistics — count, total, min/max and
//! p50/p90/p99 from log-bucketed histograms
//! ([`uniq_obs::report::LogHistogram`]) — with per-thread attribution so
//! `uniq-par` worker imbalance is visible, plus per-call-path self-time
//! for flamegraphs. Zero external dependencies.
//!
//! Three exporters ship on [`ProfileReport`]:
//!
//! - [`ProfileReport::render_table`] — a human-readable table (also the
//!   `Display` impl), printed by `uniq profile <command>`;
//! - [`ProfileReport::to_json`] — machine-readable, consumed by the
//!   benchmark baseline comparator and the CI `verify-profile` smoke
//!   (parse it back with [`json::Json`]);
//! - [`ProfileReport::collapsed_stacks`] — Brendan-Gregg collapsed-stack
//!   lines (`path;to;frame self_nanos`), ready for `flamegraph.pl` or any
//!   compatible renderer.
//!
//! When a `uniq-memprof` [`uniq_memprof::AllocSnapshot`] is attached with
//! [`ProfileReport::attach_alloc`], the same report additionally carries
//! per-stage allocation counts/bytes: the table grows `allocs`/`alloc-b`
//! columns, the JSON gains an `"alloc"` object, and
//! [`ProfileReport::alloc_collapsed_stacks`] exports a *bytes*-weighted
//! collapsed-stack view (same paths as the latency flame, weighted by
//! allocated bytes instead of self time).
//!
//! Like every sink, profiling only observes: the pipeline's numeric
//! output is bit-identical with or without a `ProfileSink` installed
//! (asserted by the workspace `profiling` integration test).
//!
//! ## Attribution model
//!
//! Sinks run on the emitting thread, so each span sample is tagged with
//! [`uniq_par::current_worker`] at delivery time: `worker-<i>` for pool
//! workers (index within the pool), `main` for everything else —
//! including a pool *caller* helping run jobs while it waits, which is
//! uniq-par's design (see its crate docs). Worker indices are per-pool;
//! in the rare process that profiles across two pools of different sizes
//! the labels merge, which is acceptable for an imbalance overview.
//!
//! Span *paths* (for flamegraphs) are reconstructed per thread from
//! start/end nesting. Spans emitted on a pool worker root their own
//! stack there; cross-thread parentage is not stitched. Chunks the
//! caller runs itself nest under the caller's open spans as usual.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use uniq_obs::json;

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;
use std::thread::ThreadId;
use uniq_obs::report::LogHistogram;
use uniq_obs::sink::{human_duration, json_escape, Sink};
use uniq_obs::Event;

/// Schema stamp on [`ProfileReport::to_json`] output; bump on any
/// incompatible shape change so downstream readers can refuse early.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Span durations arrive as `u128` nanoseconds; the histogram records
/// `u64`. Saturate rather than wrap — a >584-year span is already wrong.
fn nanos_u64(nanos: u128) -> u64 {
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

/// The label a sample delivered on the current thread is attributed to.
fn thread_label() -> String {
    match uniq_par::current_worker() {
        Some((_pool, index)) => format!("worker-{index}"),
        None => "main".to_string(),
    }
}

/// One open span on one thread's reconstruction stack.
#[derive(Debug)]
struct Frame {
    name: &'static str,
    /// Nanoseconds consumed by already-closed direct children; subtracted
    /// from the span's own duration at close to get self time.
    child_nanos: u128,
}

/// Count/total/histogram for one slice of samples (a stage, or a stage on
/// one thread).
#[derive(Debug, Clone, Default)]
struct SliceAgg {
    count: u64,
    total_nanos: u128,
    hist: LogHistogram,
}

impl SliceAgg {
    fn record(&mut self, nanos: u128) {
        self.count += 1;
        self.total_nanos += nanos;
        self.hist.record(nanos_u64(nanos));
    }
}

#[derive(Debug)]
struct StageAgg {
    /// Minimum nesting depth seen (for table indentation).
    depth: usize,
    all: SliceAgg,
    by_thread: BTreeMap<String, SliceAgg>,
}

#[derive(Debug, Default)]
struct PathAgg {
    self_nanos: u128,
    total_nanos: u128,
    count: u64,
}

#[derive(Debug, Default)]
struct ThreadAgg {
    /// Sum of span *self* times delivered on this thread — each
    /// nanosecond of busy work counted exactly once, so thread rows are
    /// comparable even though spans nest.
    busy_nanos: u128,
    spans: u64,
}

#[derive(Debug, Default)]
struct State {
    stacks: HashMap<ThreadId, Vec<Frame>>,
    stages: BTreeMap<&'static str, StageAgg>,
    paths: BTreeMap<String, PathAgg>,
    threads: BTreeMap<String, ThreadAgg>,
    counters: BTreeMap<&'static str, u64>,
}

/// A [`Sink`] that aggregates span events into a [`ProfileReport`].
///
/// Install it like any sink — [`uniq_obs::with_sink`] for a scope,
/// [`uniq_obs::set_global_sink`] (usually inside a
/// [`uniq_obs::sink::MultiSink`]) for a whole process — run the workload,
/// then call [`ProfileSink::report`].
///
/// ```
/// use std::sync::Arc;
/// use uniq_profile::ProfileSink;
///
/// let profile = Arc::new(ProfileSink::new());
/// uniq_obs::with_sink(profile.clone(), || {
///     let _span = uniq_obs::span("stage");
/// });
/// let report = profile.report();
/// assert_eq!(report.stages.len(), 1);
/// assert_eq!(report.stages[0].count, 1);
/// ```
#[derive(Debug, Default)]
pub struct ProfileSink {
    state: Mutex<State>,
}

impl ProfileSink {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        ProfileSink::default()
    }

    /// Snapshots the aggregates into an exportable report. Stages are
    /// sorted by (depth, name), everything else by name — deterministic
    /// regardless of event arrival order.
    pub fn report(&self) -> ProfileReport {
        let state = self.state.lock().expect("profile sink poisoned");
        let mut stages: Vec<StageProfile> = state
            .stages
            .iter()
            .map(|(name, agg)| StageProfile {
                name: (*name).to_string(),
                depth: agg.depth,
                count: agg.all.count,
                total_nanos: agg.all.total_nanos,
                min_nanos: agg.all.hist.min(),
                p50_nanos: agg.all.hist.percentile(50.0),
                p90_nanos: agg.all.hist.percentile(90.0),
                p99_nanos: agg.all.hist.percentile(99.0),
                max_nanos: agg.all.hist.max(),
                threads: agg
                    .by_thread
                    .iter()
                    .map(|(label, slice)| StageThreadRow {
                        thread: label.clone(),
                        count: slice.count,
                        total_nanos: slice.total_nanos,
                        p50_nanos: slice.hist.percentile(50.0),
                    })
                    .collect(),
            })
            .collect();
        stages.sort_by(|a, b| a.depth.cmp(&b.depth).then_with(|| a.name.cmp(&b.name)));
        ProfileReport {
            stages,
            threads: state
                .threads
                .iter()
                .map(|(label, agg)| ThreadProfile {
                    thread: label.clone(),
                    busy_nanos: agg.busy_nanos,
                    spans: agg.spans,
                })
                .collect(),
            paths: state
                .paths
                .iter()
                .map(|(path, agg)| PathProfile {
                    path: path.clone(),
                    self_nanos: agg.self_nanos,
                    total_nanos: agg.total_nanos,
                    count: agg.count,
                })
                .collect(),
            counters: state
                .counters
                .iter()
                .map(|(k, v)| ((*k).to_string(), *v))
                .collect(),
            alloc: None,
        }
    }
}

impl Sink for ProfileSink {
    fn on_event(&self, event: &Event) {
        let mut state = self.state.lock().expect("profile sink poisoned");
        match event {
            Event::SpanStart { name, .. } => {
                state
                    .stacks
                    .entry(std::thread::current().id())
                    .or_default()
                    .push(Frame {
                        name,
                        child_nanos: 0,
                    });
            }
            Event::SpanEnd {
                name, depth, nanos, ..
            } => {
                let label = thread_label();
                let stack = state.stacks.entry(std::thread::current().id()).or_default();
                // Pop the matching frame. A mismatch means the sink was
                // installed mid-span (it saw an end without the start);
                // account the sample with zero known child time and leave
                // the stack alone.
                let child_nanos = match stack.last() {
                    Some(frame) if frame.name == *name => {
                        stack.pop().map(|f| f.child_nanos).unwrap_or(0)
                    }
                    _ => 0,
                };
                let self_nanos = nanos.saturating_sub(child_nanos);
                if let Some(parent) = stack.last_mut() {
                    parent.child_nanos += nanos;
                }
                let path = {
                    let mut parts: Vec<&str> = stack.iter().map(|f| f.name).collect();
                    parts.push(name);
                    parts.join(";")
                };
                let stage = state.stages.entry(name).or_insert_with(|| StageAgg {
                    depth: *depth,
                    all: SliceAgg::default(),
                    by_thread: BTreeMap::new(),
                });
                stage.depth = stage.depth.min(*depth);
                stage.all.record(*nanos);
                stage
                    .by_thread
                    .entry(label.clone())
                    .or_default()
                    .record(*nanos);
                let path_agg = state.paths.entry(path).or_default();
                path_agg.self_nanos += self_nanos;
                path_agg.total_nanos += nanos;
                path_agg.count += 1;
                let thread = state.threads.entry(label).or_default();
                thread.busy_nanos += self_nanos;
                thread.spans += 1;
            }
            Event::Counter { name, delta } => {
                *state.counters.entry(name).or_insert(0) += delta;
            }
            // Metrics carry quality numbers, not time; the report layer
            // (`uniq_obs::report::Report`) already aggregates them.
            Event::Metric { .. } => {}
        }
    }
}

/// Per-thread latency slice of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageThreadRow {
    /// Attribution label: `main` or `worker-<i>`.
    pub thread: String,
    /// Samples delivered on this thread.
    pub count: u64,
    /// Total nanoseconds of those samples.
    pub total_nanos: u128,
    /// Median nanoseconds of those samples.
    pub p50_nanos: u64,
}

/// Aggregated latency statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct StageProfile {
    /// Span name (see `uniq_obs::names`).
    pub name: String,
    /// Minimum nesting depth observed (indentation hint).
    pub depth: usize,
    /// Number of completed spans.
    pub count: u64,
    /// Total wall nanoseconds across all spans.
    pub total_nanos: u128,
    /// Fastest span, nanoseconds (exact).
    pub min_nanos: u64,
    /// Median span, nanoseconds (log-bucketed, ≤ ~0.4% relative error).
    pub p50_nanos: u64,
    /// 90th-percentile span, nanoseconds.
    pub p90_nanos: u64,
    /// 99th-percentile span, nanoseconds.
    pub p99_nanos: u64,
    /// Slowest span, nanoseconds (exact).
    pub max_nanos: u64,
    /// Per-thread breakdown, sorted by label.
    pub threads: Vec<StageThreadRow>,
}

/// Busy-time summary for one attribution label.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadProfile {
    /// Attribution label: `main` or `worker-<i>`.
    pub thread: String,
    /// Sum of span self times delivered on this thread (each busy
    /// nanosecond counted once despite nesting).
    pub busy_nanos: u128,
    /// Spans closed on this thread.
    pub spans: u64,
}

/// Self/total time for one call path (`;`-joined span names).
#[derive(Debug, Clone, PartialEq)]
pub struct PathProfile {
    /// Root-to-leaf span names joined with `;` (collapsed-stack syntax).
    pub path: String,
    /// Nanoseconds in this path excluding child spans.
    pub self_nanos: u128,
    /// Nanoseconds in this path including child spans.
    pub total_nanos: u128,
    /// Times the leaf span closed on this path.
    pub count: u64,
}

/// The exportable profiling snapshot (see [`ProfileSink::report`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Per-stage statistics, sorted by (depth, name).
    pub stages: Vec<StageProfile>,
    /// Per-thread busy time, sorted by label.
    pub threads: Vec<ThreadProfile>,
    /// Per-call-path self time, sorted by path.
    pub paths: Vec<PathProfile>,
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Optional memory profile for the same run (see
    /// [`ProfileReport::attach_alloc`]). `None` unless the process ran
    /// with the `uniq-memprof` counting allocator enabled.
    pub alloc: Option<uniq_memprof::AllocSnapshot>,
}

impl ProfileReport {
    /// Looks up one stage by span name.
    pub fn stage(&self, name: &str) -> Option<&StageProfile> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Attaches a memory profile captured over the same run. The table,
    /// JSON and flame exporters then include allocation data; stages
    /// present in the snapshot but absent from the latency profile (e.g.
    /// allocations under a span the sink never saw) still appear in the
    /// JSON via the embedded snapshot.
    pub fn attach_alloc(&mut self, snapshot: uniq_memprof::AllocSnapshot) {
        self.alloc = Some(snapshot);
    }

    /// The human-readable per-stage table (also the `Display` impl):
    ///
    /// ```text
    /// per-stage wall clock:
    ///   stage                          count      total        p50        p90        p99        max
    ///   personalize                        1     2.31s      2.31s      2.31s      2.31s      2.31s
    ///     session                          1   812.4ms    812.4ms    812.4ms    812.4ms    812.4ms
    ///       channel.estimate              12    40.1ms      3.3ms      3.6ms      3.8ms      3.8ms
    ///         [main]                       8    26.7ms      3.3ms
    ///         [worker-0]                   4    13.4ms      3.4ms
    /// threads:
    ///   main        busy 2.29s over 22 spans
    ///   worker-0    busy 13.4ms over 4 spans
    /// ```
    ///
    /// Per-thread subrows appear only for stages that ran on more than
    /// one thread, so single-threaded output stays compact.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("per-stage wall clock:\n");
        out.push_str(&format!(
            "  {:<30} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "count", "total", "p50", "p90", "p99", "max"
        ));
        if self.alloc.is_some() {
            out.push_str(&format!(" {:>8} {:>12}", "allocs", "alloc-b"));
        }
        out.push('\n');
        for stage in &self.stages {
            let label = format!("{}{}", "  ".repeat(stage.depth), stage.name);
            out.push_str(&format!(
                "  {:<30} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
                label,
                stage.count,
                human_duration(stage.total_nanos),
                human_duration(u128::from(stage.p50_nanos)),
                human_duration(u128::from(stage.p90_nanos)),
                human_duration(u128::from(stage.p99_nanos)),
                human_duration(u128::from(stage.max_nanos)),
            ));
            if let Some(snap) = &self.alloc {
                match snap.stage(&stage.name) {
                    Some(a) => out.push_str(&format!(" {:>8} {:>12}", a.allocs, a.bytes)),
                    None => out.push_str(&format!(" {:>8} {:>12}", "-", "-")),
                }
            }
            out.push('\n');
            if stage.threads.len() > 1 {
                for row in &stage.threads {
                    let label = format!("{}[{}]", "  ".repeat(stage.depth + 1), row.thread);
                    out.push_str(&format!(
                        "  {:<30} {:>6} {:>10} {:>10}\n",
                        label,
                        row.count,
                        human_duration(row.total_nanos),
                        human_duration(u128::from(row.p50_nanos)),
                    ));
                }
            }
        }
        if !self.threads.is_empty() {
            out.push_str("threads:\n");
            for t in &self.threads {
                out.push_str(&format!(
                    "  {:<11} busy {} over {} span{}\n",
                    t.thread,
                    human_duration(t.busy_nanos),
                    t.spans,
                    if t.spans == 1 { "" } else { "s" },
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, total) in &self.counters {
                out.push_str(&format!("  {name:<30} {total}\n"));
            }
        }
        // The full memory table (frees, peak-live, largest, unattributed)
        // follows the latency table so `uniq memprof profile <cmd>` shows
        // both planes in one report.
        if let Some(snap) = &self.alloc {
            out.push_str(&snap.render_table());
        }
        out
    }

    /// Machine-readable JSON (schema [`PROFILE_SCHEMA_VERSION`]); parse
    /// it back with [`json::Json::parse`]. All durations are integer
    /// nanoseconds.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema_version\": {PROFILE_SCHEMA_VERSION},\n  \"stages\": ["
        ));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"depth\": {}, \"count\": {}, \"total_ns\": {}, \
                 \"min_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \
                 \"threads\": [{}]}}",
                json_escape(&s.name),
                s.depth,
                s.count,
                s.total_nanos,
                s.min_nanos,
                s.p50_nanos,
                s.p90_nanos,
                s.p99_nanos,
                s.max_nanos,
                s.threads
                    .iter()
                    .map(|t| format!(
                        "{{\"thread\": \"{}\", \"count\": {}, \"total_ns\": {}, \"p50_ns\": {}}}",
                        json_escape(&t.thread),
                        t.count,
                        t.total_nanos,
                        t.p50_nanos
                    ))
                    .collect::<Vec<_>>()
                    .join(", "),
            ));
        }
        out.push_str("\n  ],\n  \"threads\": [");
        for (i, t) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"thread\": \"{}\", \"busy_ns\": {}, \"spans\": {}}}",
                json_escape(&t.thread),
                t.busy_nanos,
                t.spans
            ));
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, (name, total)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(name), total));
        }
        out.push_str("\n  }");
        // Additive: readers of schema 1 that ignore unknown keys keep
        // working; the embedded object is exactly
        // `uniq_memprof::AllocSnapshot::to_json` (its own schema stamp
        // included), so both exporters stay in lockstep.
        if let Some(snap) = &self.alloc {
            out.push_str(",\n  \"alloc\": ");
            out.push_str(snap.to_json().trim_end());
        }
        out.push_str("\n}\n");
        out
    }

    /// Collapsed-stack lines (`span;child;leaf self_nanos`, one per call
    /// path), the input format of `flamegraph.pl` and compatible tools.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            out.push_str(&format!("{} {}\n", p.path, p.self_nanos));
        }
        out
    }

    /// Bytes-weighted collapsed-stack lines: the attached
    /// [`uniq_memprof::AllocSnapshot`]'s per-stage allocated bytes mapped
    /// onto this report's call paths (`path;to;stage bytes`), so the same
    /// flamegraph tooling renders a memory flame next to the latency one.
    ///
    /// Per-stage bytes are attributed to the *hottest* latency path
    /// ending in that stage (highest sample count, ties broken by
    /// lexicographically smallest path — deterministic); stages the
    /// latency profile never saw fall back to a bare `stage bytes` line.
    /// Unattributed allocations (pool/sink infrastructure) appear as
    /// `(unattributed) bytes`. Returns an empty string when no snapshot
    /// is attached.
    pub fn alloc_collapsed_stacks(&self) -> String {
        let Some(snap) = &self.alloc else {
            return String::new();
        };
        let mut out = String::new();
        for (stage, alloc) in &snap.stages {
            if alloc.bytes == 0 && alloc.allocs == 0 {
                continue;
            }
            let best = self
                .paths
                .iter()
                .filter(|p| p.path.rsplit(';').next() == Some(stage.as_str()))
                .max_by(|a, b| a.count.cmp(&b.count).then_with(|| b.path.cmp(&a.path)));
            let path = best.map(|p| p.path.as_str()).unwrap_or(stage.as_str());
            out.push_str(&format!("{} {}\n", path, alloc.bytes));
        }
        if snap.unattributed.bytes > 0 {
            out.push_str(&format!("(unattributed) {}\n", snap.unattributed.bytes));
        }
        out
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn end(name: &'static str, depth: usize, nanos: u128) -> Event {
        Event::SpanEnd {
            name,
            depth,
            nanos,
            ids: uniq_obs::SpanIds::default(),
        }
    }

    fn start(name: &'static str, depth: usize) -> Event {
        Event::SpanStart {
            name,
            depth,
            ids: uniq_obs::SpanIds::default(),
        }
    }

    /// root(1000) { a(300), a(100) } — classic self-time split.
    fn feed_nested(sink: &ProfileSink) {
        for e in [
            start("root", 0),
            start("a", 1),
            end("a", 1, 300),
            start("a", 1),
            end("a", 1, 100),
            end("root", 0, 1000),
        ] {
            sink.on_event(&e);
        }
    }

    #[test]
    fn self_time_accounting() {
        let sink = ProfileSink::new();
        feed_nested(&sink);
        let r = sink.report();

        let root = r.stage("root").unwrap();
        assert_eq!((root.count, root.total_nanos, root.depth), (1, 1000, 0));
        let a = r.stage("a").unwrap();
        assert_eq!(
            (a.count, a.total_nanos, a.min_nanos, a.max_nanos),
            (2, 400, 100, 300)
        );

        // Paths: root has 600ns self (1000 - two `a` children), `a` keeps
        // all 400 of its own.
        let by_path: BTreeMap<&str, &PathProfile> =
            r.paths.iter().map(|p| (p.path.as_str(), p)).collect();
        assert_eq!(by_path["root"].self_nanos, 600);
        assert_eq!(by_path["root"].total_nanos, 1000);
        assert_eq!(by_path["root;a"].self_nanos, 400);
        assert_eq!(by_path["root;a"].count, 2);

        // One thread (the test thread = "main"), busy = sum of self times
        // = 1000 exactly: no double counting across nesting.
        assert_eq!(r.threads.len(), 1);
        assert_eq!(r.threads[0].thread, "main");
        assert_eq!(r.threads[0].busy_nanos, 1000);
        assert_eq!(r.threads[0].spans, 3);
    }

    #[test]
    fn stages_sorted_by_depth_then_name() {
        let sink = ProfileSink::new();
        for e in [
            start("z", 0),
            start("b", 1),
            end("b", 1, 10),
            start("a", 1),
            end("a", 1, 10),
            end("z", 0, 100),
        ] {
            sink.on_event(&e);
        }
        let report = sink.report();
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["z", "a", "b"]);
    }

    #[test]
    fn percentiles_from_many_samples() {
        let sink = ProfileSink::new();
        sink.on_event(&start("root", 0));
        for i in 1..=100u128 {
            sink.on_event(&start("s", 1));
            sink.on_event(&end("s", 1, i * 1_000_000));
        }
        sink.on_event(&end("root", 0, 200_000_000));
        let s = sink.report().stage("s").unwrap().clone();
        assert_eq!(s.count, 100);
        let tol = 1.0 / 200.0; // generous vs LogHistogram's 1/256 bound
        for (got, want) in [
            (s.p50_nanos, 50_000_000.0),
            (s.p90_nanos, 90_000_000.0),
            (s.p99_nanos, 99_000_000.0),
        ] {
            let err = (got as f64 - want).abs() / want;
            assert!(err <= tol, "{got} vs {want}: err {err}");
        }
        assert!(s.p50_nanos <= s.p90_nanos && s.p90_nanos <= s.p99_nanos);
        assert_eq!(s.max_nanos, 100_000_000);
        assert_eq!(s.min_nanos, 1_000_000);
    }

    #[test]
    fn counters_accumulate_and_metrics_ignored() {
        let sink = ProfileSink::new();
        sink.on_event(&Event::Counter {
            name: "c",
            delta: 2,
        });
        sink.on_event(&Event::Counter {
            name: "c",
            delta: 3,
        });
        sink.on_event(&Event::Metric {
            name: "m",
            value: 1.0,
            unit: "",
        });
        let r = sink.report();
        assert_eq!(r.counters["c"], 5);
        assert!(r.stages.is_empty());
    }

    #[test]
    fn end_without_start_is_tolerated() {
        // Sink installed mid-span: the end arrives with no frame. The
        // sample still counts; the stack stays sane for what follows.
        let sink = ProfileSink::new();
        sink.on_event(&end("orphan", 3, 500));
        feed_nested(&sink);
        let r = sink.report();
        assert_eq!(r.stage("orphan").unwrap().count, 1);
        assert_eq!(r.stage("root").unwrap().total_nanos, 1000);
    }

    #[test]
    fn table_renders_columns_and_indentation() {
        let sink = ProfileSink::new();
        feed_nested(&sink);
        sink.on_event(&Event::Counter {
            name: "retries",
            delta: 1,
        });
        let text = sink.report().render_table();
        for needle in ["per-stage wall clock:", "count", "p50", "p90", "p99", "max"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(text.contains("  root"));
        assert!(text.contains("    a"), "child not indented:\n{text}");
        assert!(text.contains("threads:"));
        assert!(text.contains("counters:"));
        assert!(text.contains("retries"));
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        let sink = ProfileSink::new();
        feed_nested(&sink);
        sink.on_event(&Event::Counter {
            name: "retries",
            delta: 7,
        });
        let doc = json::Json::parse(&sink.report().to_json()).expect("self-emitted JSON");
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(PROFILE_SCHEMA_VERSION)
        );
        let stages = doc.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), 2);
        let root = stages
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("root"))
            .unwrap();
        assert_eq!(root.get("total_ns").unwrap().as_u64(), Some(1000));
        assert_eq!(root.get("count").unwrap().as_u64(), Some(1));
        assert!(root.get("p50_ns").unwrap().as_u64().is_some());
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("retries")
                .unwrap()
                .as_u64(),
            Some(7)
        );
        let threads = doc.get("threads").unwrap().as_array().unwrap();
        assert_eq!(threads[0].get("thread").unwrap().as_str(), Some("main"));
    }

    #[test]
    fn collapsed_stack_line_format() {
        let sink = ProfileSink::new();
        feed_nested(&sink);
        let collapsed = sink.report().collapsed_stacks();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(lines, vec!["root 600", "root;a 400"]);
        for line in lines {
            let (path, value) = line.rsplit_once(' ').unwrap();
            assert!(!path.is_empty() && !path.contains(' '));
            value.parse::<u64>().expect("self time not an integer");
        }
    }

    #[test]
    fn live_spans_through_with_sink() {
        let profile = Arc::new(ProfileSink::new());
        uniq_obs::with_sink(profile.clone(), || {
            let _outer = uniq_obs::span("outer");
            let _inner = uniq_obs::span("inner");
        });
        let r = profile.report();
        assert_eq!(r.stages.len(), 2);
        let outer = r.stage("outer").unwrap();
        let inner = r.stage("inner").unwrap();
        assert_eq!((outer.depth, inner.depth), (0, 1));
        assert!(outer.total_nanos >= inner.total_nanos);
        assert_eq!(
            r.paths.iter().map(|p| p.path.as_str()).collect::<Vec<_>>(),
            vec!["outer", "outer;inner"]
        );
    }

    /// A hand-built snapshot matching `feed_nested`'s stage names.
    fn sample_alloc() -> uniq_memprof::AllocSnapshot {
        let mut snap = uniq_memprof::AllocSnapshot::default();
        snap.stages.insert(
            "a".to_string(),
            uniq_memprof::StageAlloc {
                allocs: 3,
                bytes: 768,
                frees: 1,
                freed_bytes: 256,
                peak_live_bytes: 512,
                largest_bytes: 512,
            },
        );
        snap.stages.insert(
            "root".to_string(),
            uniq_memprof::StageAlloc {
                allocs: 1,
                bytes: 64,
                ..Default::default()
            },
        );
        snap.unattributed.allocs = 2;
        snap.unattributed.bytes = 128;
        snap.peak_live_bytes = 640;
        snap
    }

    #[test]
    fn attached_alloc_shows_in_table_and_json() {
        let sink = ProfileSink::new();
        feed_nested(&sink);
        let mut report = sink.report();
        let plain = report.render_table();
        assert!(!plain.contains("alloc-b"), "columns must be opt-in");
        report.attach_alloc(sample_alloc());
        let table = report.render_table();
        for needle in [
            "alloc-b",
            "allocs",
            "768",
            "per-stage allocations:",
            "(unattributed)",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }

        let doc = json::Json::parse(&report.to_json()).expect("self-emitted JSON");
        let alloc = doc.get("alloc").expect("alloc section present");
        assert_eq!(
            alloc.get("schema_version").unwrap().as_u64(),
            Some(uniq_memprof::ALLOC_SCHEMA_VERSION)
        );
        let stages = alloc.get("stages").unwrap().as_array().unwrap();
        let a = stages
            .iter()
            .find(|s| s.get("name").unwrap().as_str() == Some("a"))
            .unwrap();
        assert_eq!(a.get("bytes").unwrap().as_u64(), Some(768));
        assert_eq!(alloc.get("peak_live_bytes").unwrap().as_u64(), Some(640));
    }

    #[test]
    fn alloc_collapsed_stacks_weights_paths_by_bytes() {
        let sink = ProfileSink::new();
        feed_nested(&sink);
        let mut report = sink.report();
        assert_eq!(report.alloc_collapsed_stacks(), "");
        let mut snap = sample_alloc();
        // A stage the latency profile never saw: bare-line fallback.
        snap.stages.insert(
            "orphan.stage".to_string(),
            uniq_memprof::StageAlloc {
                allocs: 1,
                bytes: 32,
                ..Default::default()
            },
        );
        report.attach_alloc(snap);
        let collapsed = report.alloc_collapsed_stacks();
        let lines: Vec<&str> = collapsed.lines().collect();
        assert_eq!(
            lines,
            vec![
                "root;a 768",
                "orphan.stage 32",
                "root 64",
                "(unattributed) 128"
            ]
        );
    }

    #[test]
    fn pool_worker_samples_get_worker_labels() {
        let profile = Arc::new(ProfileSink::new());
        uniq_obs::with_sink(profile.clone(), || {
            let ctx = uniq_obs::capture();
            let pool = uniq_par::pool(3);
            let items: Vec<u64> = (0..32).collect();
            let _: Vec<u64> = pool.par_map_chunked(&items, 1, |&i| {
                ctx.run(|| {
                    let _span = uniq_obs::span("chunk");
                    i
                })
            });
        });
        let r = profile.report();
        let chunk = r.stage("chunk").expect("worker spans reached the sink");
        assert_eq!(chunk.count, 32);
        // Labels are exactly main / worker-<i>, i < pool size - 1.
        for t in &r.threads {
            if t.thread != "main" {
                let idx: usize = t.thread.strip_prefix("worker-").unwrap().parse().unwrap();
                assert!(idx < 2, "unexpected worker index {idx}");
            }
        }
        let by_thread_total: u64 = chunk.threads.iter().map(|t| t.count).sum();
        assert_eq!(
            by_thread_total, 32,
            "per-thread rows must partition samples"
        );
    }
}
