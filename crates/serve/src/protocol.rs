//! The serve wire protocol: line-delimited JSON over TCP.
//!
//! One request per line, LF-terminated; one response line per request.
//! Framing is hand-rolled on top of a byte buffer ([`FrameBuffer`]) with
//! a hard line limit, parsing reuses the workspace JSON parser
//! ([`uniq_obs::json::Json`]) — no serde, no async runtime. The grammar
//! is *strict*: unknown fields and unknown request types are typed
//! errors, not silently ignored, so client typos fail loudly instead of
//! producing a default-configured HRTF.
//!
//! Request lines (`type` selects the variant; all other fields typed):
//!
//! ```text
//! {"type":"personalize","seed":7}                      minimal request
//! {"type":"personalize","seed":7,"grid":15.0,
//!  "snr":45.0,"anechoic":true,
//!  "fault_plan":"drop@2","no_cache":true}              full request
//! {"type":"ping"}   {"type":"stats"}   {"type":"shutdown"}
//! ```
//!
//! Response lines carry a `status` of `ok`, `error`, or `overloaded`;
//! see DESIGN.md §16 for the full grammar and the error `kind` table.

use std::collections::BTreeMap;

use uniq_obs::json::Json;
use uniq_obs::sink::{json_escape, json_number};

use crate::error::ServeError;

/// Hard cap on one frame (request line), bytes. A maximal legitimate
/// request is ~200 bytes; anything near this limit is garbage or abuse.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Cap on one string *field* inside a request (the fault-plan spec) —
/// the body limit beneath the line limit.
pub const MAX_STRING_BYTES: usize = 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The subject fingerprint of a request: FNV-1a over the seed's little-
/// endian bytes. This is the *identity* hash requests are sharded by —
/// a pure function of the request, stable across runs and platforms
/// (the result fingerprint, by contrast, exists only after a pipeline
/// run).
pub fn subject_key(seed: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for b in seed.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Personalize one subject (the workload request).
    Personalize(PersonalizeRequest),
    /// Liveness probe; answered inline by the connection handler.
    Ping,
    /// Counter snapshot; answered inline.
    Stats,
    /// Graceful-shutdown signal (the SIGTERM equivalent of the
    /// protocol): the server drains and exits.
    Shutdown,
}

/// The personalize request body. Optional fields override the server's
/// base [`uniq_core::config::UniqConfig`] per request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PersonalizeRequest {
    /// Synthetic-subject seed — the subject's identity.
    pub seed: u64,
    /// Output grid step override, degrees (`grid`).
    pub grid_step_deg: Option<f64>,
    /// Recording SNR override, dB (`snr`).
    pub snr_db: Option<f64>,
    /// Room-acoustics override (`anechoic`: true = free field).
    pub anechoic: Option<bool>,
    /// Fault-plan spec to inject into this request's session
    /// (`uniq_faults::FaultPlan` grammar). Faulted requests bypass the
    /// result cache.
    pub fault_plan: Option<String>,
    /// Skip the result cache for this request (compute even on a hit).
    pub no_cache: bool,
}

/// Incremental frame assembly over a byte stream: push raw chunks in,
/// pull complete lines out. Enforces the line limit and UTF-8 validity;
/// every violation is a typed [`ServeError`], never a panic. Pure (no
/// I/O), so the corruption battery can drive it directly.
#[derive(Debug)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    max: usize,
}

impl FrameBuffer {
    /// An empty buffer with the given line limit.
    pub fn new(max_line_bytes: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            max: max_line_bytes,
        }
    }

    /// Appends raw bytes read from the stream.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Extracts the next complete line, if one is buffered. A trailing
    /// `\r` is stripped (CRLF tolerated). Errors when the buffered prefix
    /// exceeds the line limit without a newline ([`ServeError::LineTooLong`],
    /// fatal) or a complete line is not UTF-8 ([`ServeError::InvalidUtf8`],
    /// survivable — the offending frame is consumed).
    pub fn next_line(&mut self) -> Result<Option<String>, ServeError> {
        match self.buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if pos > self.max {
                    return Err(ServeError::LineTooLong { limit: self.max });
                }
                let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                line.pop(); // the \n
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                match String::from_utf8(line) {
                    Ok(s) => Ok(Some(s)),
                    Err(e) => Err(ServeError::InvalidUtf8 {
                        valid_up_to: e.utf8_error().valid_up_to(),
                    }),
                }
            }
            None if self.buf.len() > self.max => Err(ServeError::LineTooLong { limit: self.max }),
            None => Ok(None),
        }
    }

    /// Called at EOF: clean if no partial frame is pending.
    pub fn finish(&self) -> Result<(), ServeError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ServeError::TruncatedFrame {
                bytes: self.buf.len(),
            })
        }
    }
}

fn field_f64(obj: &[(String, Json)], field: &'static str) -> Result<Option<f64>, ServeError> {
    match obj.iter().find(|(k, _)| k == field) {
        None => Ok(None),
        Some((_, v)) => v.as_f64().map(Some).ok_or(ServeError::BadField {
            field,
            detail: "expected a number".into(),
        }),
    }
}

fn field_bool(obj: &[(String, Json)], field: &'static str) -> Result<Option<bool>, ServeError> {
    match obj.iter().find(|(k, _)| k == field) {
        None => Ok(None),
        Some((_, v)) => v.as_bool().map(Some).ok_or(ServeError::BadField {
            field,
            detail: "expected a boolean".into(),
        }),
    }
}

fn field_str<'a>(
    obj: &'a [(String, Json)],
    field: &'static str,
) -> Result<Option<&'a str>, ServeError> {
    match obj.iter().find(|(k, _)| k == field) {
        None => Ok(None),
        Some((_, v)) => v.as_str().map(Some).ok_or(ServeError::BadField {
            field,
            detail: "expected a string".into(),
        }),
    }
}

/// Parses one request line. Strict: every field must be known to the
/// request type and well-typed, or the result is a typed error.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let doc = Json::parse(line).map_err(|detail| ServeError::BadJson { detail })?;
    let obj = doc.as_object().ok_or(ServeError::BadJson {
        detail: "request is not a JSON object".into(),
    })?;
    let ty = field_str(obj, "type")?.ok_or(ServeError::MissingField { field: "type" })?;
    let known: &[&str] = match ty {
        "personalize" => &[
            "type",
            "seed",
            "grid",
            "snr",
            "anechoic",
            "fault_plan",
            "no_cache",
        ],
        "ping" | "stats" | "shutdown" => &["type"],
        other => {
            return Err(ServeError::UnknownType {
                value: other.to_string(),
            })
        }
    };
    for (key, _) in obj {
        if !known.contains(&key.as_str()) {
            return Err(ServeError::UnknownField { field: key.clone() });
        }
    }
    match ty {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        _ => {
            let seed = obj
                .iter()
                .find(|(k, _)| k == "seed")
                .ok_or(ServeError::MissingField { field: "seed" })?
                .1
                .as_u64()
                .ok_or(ServeError::BadField {
                    field: "seed",
                    detail: "expected an unsigned integer".into(),
                })?;
            let fault_plan = match field_str(obj, "fault_plan")? {
                Some(spec) if spec.len() > MAX_STRING_BYTES => {
                    return Err(ServeError::BodyTooLarge {
                        field: "fault_plan",
                        limit: MAX_STRING_BYTES,
                        bytes: spec.len(),
                    })
                }
                Some(spec) => Some(spec.to_string()),
                None => None,
            };
            Ok(Request::Personalize(PersonalizeRequest {
                seed,
                grid_step_deg: field_f64(obj, "grid")?,
                snr_db: field_f64(obj, "snr")?,
                anechoic: field_bool(obj, "anechoic")?,
                fault_plan,
                no_cache: field_bool(obj, "no_cache")?.unwrap_or(false),
            }))
        }
    }
}

/// Degradation summary carried in a faulted request's response — the
/// per-request quality telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradationSummary {
    /// Mean quality over surviving stops.
    pub mean_quality: f64,
    /// Stops that survived into fusion.
    pub stops_used: u64,
    /// Stops the sweep scheduled.
    pub stops_planned: u64,
    /// Stops dropped by the degradation policy.
    pub stops_dropped: u64,
    /// Observed fault classes, comma-joined.
    pub fault_classes: String,
}

/// A successful personalize response.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizedReply {
    /// Echo of the request's subject seed.
    pub seed: u64,
    /// The result fingerprint — bit-identical to the library path's
    /// `hrtf_fingerprint` for the same (seed, config).
    pub fingerprint: u64,
    /// Content key of the `.uhrtf` artifact (empty when the server runs
    /// without a store).
    pub key: String,
    /// Whether the response came from the result cache (a store lookup)
    /// instead of a pipeline run.
    pub cache_hit: bool,
    /// Pipeline attempts consumed (0 on a cache hit).
    pub attempts: u64,
    /// Estimated gesture radius, metres.
    pub radius_m: f64,
    /// Worker wall-clock for this request, seconds.
    pub wall_seconds: f64,
    /// Present iff the request ran under fault injection.
    pub degradation: Option<DegradationSummary>,
}

/// Server counter snapshot (the `stats` reply, also embedded in the
/// shutdown acknowledgement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Personalize requests admitted off the wire.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that ran the pipeline.
    pub computed: u64,
}

/// A parsed response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `{"status":"ok","type":"personalize",...}`
    Personalized(PersonalizedReply),
    /// `{"status":"ok","type":"pong"}`
    Pong,
    /// `{"status":"ok","type":"stats",...}`
    Stats(StatsReply),
    /// `{"status":"ok","type":"shutdown"}` — drain acknowledged.
    ShutdownAck,
    /// `{"status":"error","kind":...,"message":...}`
    Error {
        /// The [`ServeError::kind`] identifier.
        kind: String,
        /// Human-readable diagnostic.
        message: String,
    },
    /// `{"status":"overloaded",...}` — the request was shed.
    Overloaded {
        /// Shard whose queue was full.
        shard: u64,
        /// That queue's capacity.
        queue_depth: u64,
    },
}

/// Renders a successful personalize response line.
pub fn render_personalized(r: &PersonalizedReply) -> String {
    let mut line = format!(
        "{{\"status\":\"ok\",\"type\":\"personalize\",\"seed\":{},\
         \"fingerprint\":\"{:#018x}\",\"key\":\"{}\",\"cache_hit\":{},\
         \"attempts\":{},\"radius_m\":{},\"wall_seconds\":{}",
        r.seed,
        r.fingerprint,
        json_escape(&r.key),
        r.cache_hit,
        r.attempts,
        json_number(r.radius_m),
        json_number(r.wall_seconds),
    );
    if let Some(d) = &r.degradation {
        line.push_str(&format!(
            ",\"degradation\":{{\"mean_quality\":{},\"stops_used\":{},\
             \"stops_planned\":{},\"stops_dropped\":{},\"fault_classes\":\"{}\"}}",
            json_number(d.mean_quality),
            d.stops_used,
            d.stops_planned,
            d.stops_dropped,
            json_escape(&d.fault_classes),
        ));
    }
    line.push('}');
    line
}

/// Renders an error response line from a typed error.
pub fn render_error(e: &ServeError) -> String {
    format!(
        "{{\"status\":\"error\",\"kind\":\"{}\",\"message\":\"{}\"}}",
        e.kind(),
        json_escape(&e.to_string()),
    )
}

/// Renders the load-shed response line.
pub fn render_overloaded(shard: usize, queue_depth: usize) -> String {
    format!("{{\"status\":\"overloaded\",\"shard\":{shard},\"queue_depth\":{queue_depth}}}")
}

/// Renders the ping reply.
pub fn render_pong() -> String {
    "{\"status\":\"ok\",\"type\":\"pong\"}".to_string()
}

fn stats_fields(s: &StatsReply) -> String {
    format!(
        "\"requests\":{},\"ok\":{},\"errors\":{},\"shed\":{},\"cache_hits\":{},\"computed\":{}",
        s.requests, s.ok, s.errors, s.shed, s.cache_hits, s.computed
    )
}

/// Renders the stats reply.
pub fn render_stats(s: &StatsReply) -> String {
    format!(
        "{{\"status\":\"ok\",\"type\":\"stats\",{}}}",
        stats_fields(s)
    )
}

/// Renders the shutdown acknowledgement.
pub fn render_shutdown_ack() -> String {
    "{\"status\":\"ok\",\"type\":\"shutdown\"}".to_string()
}

fn resp_u64(obj: &[(String, Json)], field: &'static str) -> Result<u64, ServeError> {
    obj.iter()
        .find(|(k, _)| k == field)
        .and_then(|(_, v)| v.as_u64())
        .ok_or(ServeError::BadField {
            field,
            detail: "missing or non-integer in response".into(),
        })
}

fn resp_f64(obj: &[(String, Json)], field: &'static str) -> Result<f64, ServeError> {
    obj.iter()
        .find(|(k, _)| k == field)
        .and_then(|(_, v)| v.as_f64())
        .ok_or(ServeError::BadField {
            field,
            detail: "missing or non-numeric in response".into(),
        })
}

/// Parses one response line (the client half of the protocol).
pub fn parse_response(line: &str) -> Result<Response, ServeError> {
    let doc = Json::parse(line).map_err(|detail| ServeError::BadJson { detail })?;
    let obj = doc.as_object().ok_or(ServeError::BadJson {
        detail: "response is not a JSON object".into(),
    })?;
    let status = field_str(obj, "status")?.ok_or(ServeError::MissingField { field: "status" })?;
    match status {
        "overloaded" => Ok(Response::Overloaded {
            shard: resp_u64(obj, "shard")?,
            queue_depth: resp_u64(obj, "queue_depth")?,
        }),
        "error" => Ok(Response::Error {
            kind: field_str(obj, "kind")?
                .ok_or(ServeError::MissingField { field: "kind" })?
                .to_string(),
            message: field_str(obj, "message")?.unwrap_or_default().to_string(),
        }),
        "ok" => {
            let ty = field_str(obj, "type")?.ok_or(ServeError::MissingField { field: "type" })?;
            match ty {
                "pong" => Ok(Response::Pong),
                "shutdown" => Ok(Response::ShutdownAck),
                "stats" => Ok(Response::Stats(StatsReply {
                    requests: resp_u64(obj, "requests")?,
                    ok: resp_u64(obj, "ok")?,
                    errors: resp_u64(obj, "errors")?,
                    shed: resp_u64(obj, "shed")?,
                    cache_hits: resp_u64(obj, "cache_hits")?,
                    computed: resp_u64(obj, "computed")?,
                })),
                "personalize" => {
                    let fp_text =
                        field_str(obj, "fingerprint")?.ok_or(ServeError::MissingField {
                            field: "fingerprint",
                        })?;
                    let fingerprint =
                        u64::from_str_radix(fp_text.strip_prefix("0x").unwrap_or(fp_text), 16)
                            .map_err(|e| ServeError::BadField {
                                field: "fingerprint",
                                detail: e.to_string(),
                            })?;
                    let degradation = match obj.iter().find(|(k, _)| k == "degradation") {
                        None => None,
                        Some((_, v)) => {
                            let d = v.as_object().ok_or(ServeError::BadField {
                                field: "degradation",
                                detail: "expected an object".into(),
                            })?;
                            Some(DegradationSummary {
                                mean_quality: resp_f64(d, "mean_quality")?,
                                stops_used: resp_u64(d, "stops_used")?,
                                stops_planned: resp_u64(d, "stops_planned")?,
                                stops_dropped: resp_u64(d, "stops_dropped")?,
                                fault_classes: field_str(d, "fault_classes")?
                                    .unwrap_or_default()
                                    .to_string(),
                            })
                        }
                    };
                    Ok(Response::Personalized(PersonalizedReply {
                        seed: resp_u64(obj, "seed")?,
                        fingerprint,
                        key: field_str(obj, "key")?.unwrap_or_default().to_string(),
                        cache_hit: field_bool(obj, "cache_hit")?.unwrap_or(false),
                        attempts: resp_u64(obj, "attempts")?,
                        radius_m: resp_f64(obj, "radius_m")?,
                        wall_seconds: resp_f64(obj, "wall_seconds")?,
                        degradation,
                    }))
                }
                other => Err(ServeError::UnknownType {
                    value: other.to_string(),
                }),
            }
        }
        other => Err(ServeError::BadField {
            field: "status",
            detail: format!("unknown status {other:?}"),
        }),
    }
}

/// Folds a per-subject fingerprint map (seed → result fingerprint) into
/// one digest, in ascending seed order — the deterministic identity of a
/// whole served population, used by the serve baseline gate and ledger
/// records.
pub fn fold_fingerprints(fingerprints: &BTreeMap<u64, u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for (seed, fp) in fingerprints {
        for b in seed.to_le_bytes().into_iter().chain(fp.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_buffer_splits_lines_and_strips_cr() {
        let mut fb = FrameBuffer::new(64);
        fb.push(b"{\"a\":1}\r\n{\"b\":");
        assert_eq!(fb.next_line().unwrap().unwrap(), "{\"a\":1}");
        assert_eq!(fb.next_line().unwrap(), None);
        fb.push(b"2}\n");
        assert_eq!(fb.next_line().unwrap().unwrap(), "{\"b\":2}");
        fb.finish().unwrap();
    }

    #[test]
    fn frame_buffer_enforces_limit_and_utf8() {
        let mut fb = FrameBuffer::new(8);
        fb.push(b"0123456789abcdef");
        assert_eq!(
            fb.next_line().unwrap_err(),
            ServeError::LineTooLong { limit: 8 }
        );
        let mut fb = FrameBuffer::new(64);
        fb.push(b"ab\xff\xfe\n");
        assert!(matches!(
            fb.next_line().unwrap_err(),
            ServeError::InvalidUtf8 { valid_up_to: 2 }
        ));
        // The bad frame was consumed; the stream resynchronizes.
        fb.push(b"{\"type\":\"ping\"}\n");
        assert_eq!(fb.next_line().unwrap().unwrap(), "{\"type\":\"ping\"}");
        fb.push(b"partial");
        assert_eq!(
            fb.finish().unwrap_err(),
            ServeError::TruncatedFrame { bytes: 7 }
        );
    }

    #[test]
    fn parse_request_is_strict() {
        assert!(matches!(
            parse_request("{\"type\":\"personalize\",\"seed\":7}").unwrap(),
            Request::Personalize(PersonalizeRequest { seed: 7, .. })
        ));
        assert_eq!(parse_request("{\"type\":\"ping\"}").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("{\"type\":\"personalize\"}")
                .unwrap_err()
                .kind(),
            "missing_field"
        );
        assert_eq!(
            parse_request("{\"type\":\"personalize\",\"seed\":7,\"grdi\":15}")
                .unwrap_err()
                .kind(),
            "unknown_field"
        );
        assert_eq!(
            parse_request("{\"type\":\"teleport\"}").unwrap_err().kind(),
            "unknown_type"
        );
        assert_eq!(parse_request("[1,2,3]").unwrap_err().kind(), "bad_json");
        assert_eq!(parse_request("{\"type\":").unwrap_err().kind(), "bad_json");
        assert_eq!(
            parse_request("{\"type\":\"personalize\",\"seed\":\"x\"}")
                .unwrap_err()
                .kind(),
            "bad_field"
        );
        let big = format!(
            "{{\"type\":\"personalize\",\"seed\":1,\"fault_plan\":\"{}\"}}",
            "d".repeat(MAX_STRING_BYTES + 1)
        );
        assert_eq!(parse_request(&big).unwrap_err().kind(), "body_too_large");
    }

    #[test]
    fn responses_round_trip() {
        let reply = PersonalizedReply {
            seed: 7,
            fingerprint: 0x0123_4567_89ab_cdef,
            key: "deadbeefdeadbeef".into(),
            cache_hit: true,
            attempts: 1,
            radius_m: 0.42,
            wall_seconds: 0.001,
            degradation: Some(DegradationSummary {
                mean_quality: 0.9,
                stops_used: 10,
                stops_planned: 12,
                stops_dropped: 2,
                fault_classes: "drop,snr".into(),
            }),
        };
        let line = render_personalized(&reply);
        assert_eq!(
            parse_response(&line).unwrap(),
            Response::Personalized(reply)
        );
        assert_eq!(
            parse_response(&render_overloaded(3, 8)).unwrap(),
            Response::Overloaded {
                shard: 3,
                queue_depth: 8
            }
        );
        match parse_response(&render_error(&ServeError::ShuttingDown)).unwrap() {
            Response::Error { kind, .. } => assert_eq!(kind, "shutting_down"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(parse_response(&render_pong()).unwrap(), Response::Pong);
        let stats = StatsReply {
            requests: 5,
            ok: 4,
            errors: 1,
            shed: 2,
            cache_hits: 3,
            computed: 1,
        };
        assert_eq!(
            parse_response(&render_stats(&stats)).unwrap(),
            Response::Stats(stats)
        );
    }

    #[test]
    fn fingerprint_fold_is_order_independent_by_construction() {
        let mut a = BTreeMap::new();
        a.insert(2u64, 20u64);
        a.insert(1u64, 10u64);
        let mut b = BTreeMap::new();
        b.insert(1u64, 10u64);
        b.insert(2u64, 20u64);
        assert_eq!(fold_fingerprints(&a), fold_fingerprints(&b));
        b.insert(3u64, 30u64);
        assert_ne!(fold_fingerprints(&a), fold_fingerprints(&b));
    }
}
