//! The sharded personalization server.
//!
//! One listener thread accepts TCP connections; each connection gets a
//! handler thread that frames and parses requests. Personalize requests
//! are hashed by subject fingerprint ([`crate::protocol::subject_key`])
//! onto N shard workers, each owning a *bounded* queue — a full queue
//! sheds the request with an explicit `overloaded` response instead of
//! blocking the connection (load shedding beats unbounded latency).
//! Workers run the existing pipeline, consulting a content-addressed
//! result cache (`uniq-store`) keyed by `(subject seed, config content
//! hash)` first, so a repeat personalization is a disk lookup, not a
//! recompute. Same subject → same shard, so concurrent duplicates
//! serialize behind each other and the second becomes a cache hit.
//!
//! Everything is plain `std`: threads, `TcpListener`, `Mutex`/`Condvar`
//! queues — no async runtime, following the `uniq-par` precedent.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use uniq_core::config::UniqConfig;
use uniq_core::degrade::{DegradationPolicy, FaultHook};
use uniq_core::pipeline::{personalize_faulted_with_retry, personalize_with_retry};
use uniq_faults::FaultPlan;
use uniq_obs::names::{
    SERVE_CACHE_HITS, SERVE_ERRORS, SERVE_REQUESTS, SERVE_REQUEST_SECONDS, SERVE_SHED,
    SPAN_SERVE_REQUEST,
};
use uniq_obs::ObsContext;
use uniq_store::{HrtfArtifact, Store};
use uniq_subjects::Subject;

use crate::error::ServeError;
use crate::protocol::{
    self, DegradationSummary, PersonalizeRequest, PersonalizedReply, Request, StatsReply,
};

/// How often blocked connection reads wake up to check the drain flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server configuration. `Default` gives 2 shards, a queue depth of 32,
/// and no store (every request computes).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard worker count (≥ 1). Requests hash onto shards by subject
    /// fingerprint, so a subject's requests always serialize.
    pub shards: usize,
    /// Bounded queue capacity per shard. `0` is legal and sheds every
    /// request — the load-shedding test hook.
    pub queue_depth: usize,
    /// Base pipeline configuration; per-request fields (`grid`, `snr`,
    /// `anechoic`) override it. Workers force `threads = 1` — the server
    /// parallelizes across subjects, not within one.
    pub base: UniqConfig,
    /// Result-cache directory (a `uniq-store` root). `None` disables
    /// caching and persistence.
    pub store_dir: Option<PathBuf>,
    /// Frame (line) limit, bytes.
    pub max_line_bytes: usize,
    /// Pipeline retry budget per request.
    pub max_attempts: usize,
    /// Server-level fault hook injected into *every* request's session
    /// (requests may also carry their own `fault_plan`). Faulted requests
    /// bypass the result cache.
    pub fault_hook: Option<Arc<dyn FaultHook + Send + Sync>>,
    /// Degradation policy for faulted requests.
    pub policy: DegradationPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            queue_depth: 32,
            base: UniqConfig::default(),
            store_dir: None,
            max_line_bytes: protocol::MAX_LINE_BYTES,
            max_attempts: 3,
            fault_hook: None,
            policy: DegradationPolicy::default(),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    computed: AtomicU64,
    /// Requests accepted into a shard queue (not on the wire; lets tests
    /// sequence backpressure scenarios without sleeping).
    submitted: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> StatsReply {
        StatsReply {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            computed: self.computed.load(Ordering::Relaxed),
        }
    }
}

struct Job {
    req: PersonalizeRequest,
    reply: mpsc::Sender<String>,
}

#[derive(Default)]
struct ShardState {
    jobs: VecDeque<Job>,
    /// Set by the worker on exit; pushes after this are refused, closing
    /// the submit-after-drain race (both sides hold the queue lock).
    closed: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    ready: Condvar,
}

enum SubmitError {
    Full,
    Closed,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState::default()),
            ready: Condvar::new(),
        }
    }

    fn try_submit(&self, job: Job, depth: usize) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= depth {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next job; once `draining` is set and the queue is empty,
    /// marks the shard closed and returns `None` (worker exit).
    fn next_job(&self, draining: &AtomicBool) -> Option<Job> {
        let mut state = self.state.lock().expect("shard queue poisoned");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if draining.load(Ordering::SeqCst) {
                state.closed = true;
                return None;
            }
            let (next, _) = self
                .ready
                .wait_timeout(state, POLL_INTERVAL)
                .expect("shard queue poisoned");
            state = next;
        }
    }
}

struct Inner {
    cfg: ServeConfig,
    counters: Counters,
    shards: Vec<Shard>,
    draining: AtomicBool,
    stop_accept: AtomicBool,
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    store: Option<Store>,
    /// seed → result fingerprint of every request answered `ok`, for the
    /// ledger/baseline fold ([`protocol::fold_fingerprints`]).
    fingerprints: Mutex<BTreeMap<u64, u64>>,
    /// Observability context captured at [`Server::start`]: worker and
    /// connection threads re-install the caller's sink so serve spans and
    /// counters land wherever the start site was pointing them.
    ctx: ObsContext,
}

/// A running server. Dropping without [`Server::shutdown`] leaks the
/// listener thread for the process lifetime; call `shutdown` for a clean
/// drain (the CLI and every test do).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("shards", &self.shards.len())
            .field("draining", &self.draining)
            .finish()
    }
}

/// What a graceful shutdown drained and flushed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Final counter snapshot.
    pub stats: StatsReply,
    /// seed → result fingerprint of every `ok` response.
    pub fingerprints: BTreeMap<u64, u64>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), spawns
    /// the listener and shard workers, and returns the running server.
    pub fn start(addr: &str, cfg: ServeConfig) -> Result<Server, ServeError> {
        if cfg.shards == 0 {
            return Err(ServeError::Config {
                detail: "shards must be >= 1".into(),
            });
        }
        if cfg.max_attempts == 0 {
            return Err(ServeError::Config {
                detail: "max_attempts must be >= 1".into(),
            });
        }
        let store = match &cfg.store_dir {
            Some(dir) => Some(Store::open(dir).map_err(|e| ServeError::Config {
                detail: format!("cannot open store {}: {e}", dir.display()),
            })?),
            None => None,
        };
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io {
            op: "bind",
            detail: format!("{addr}: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Io {
            op: "bind",
            detail: e.to_string(),
        })?;

        let inner = Arc::new(Inner {
            shards: (0..cfg.shards).map(|_| Shard::new()).collect(),
            cfg,
            counters: Counters::default(),
            draining: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            store,
            fingerprints: Mutex::new(BTreeMap::new()),
            ctx: uniq_obs::capture(),
        });

        let workers = (0..inner.cfg.shards)
            .map(|shard| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-shard-{shard}"))
                    .spawn(move || worker_loop(&inner, shard))
                    .expect("spawn shard worker")
            })
            .collect();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let listener_handle = {
            let inner = inner.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("serve-listener".into())
                .spawn(move || listener_loop(&listener, &inner, &conns))
                .expect("spawn listener")
        };

        Ok(Server {
            local_addr,
            inner,
            listener: Some(listener_handle),
            workers,
            conns,
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> StatsReply {
        self.inner.counters.snapshot()
    }

    /// Total requests accepted into a shard queue so far (in-flight,
    /// queued, or completed — everything that was not shed or refused).
    /// Backpressure tests poll this to sequence submissions without
    /// sleeping.
    pub fn submitted(&self) -> u64 {
        self.inner.counters.submitted.load(Ordering::Relaxed)
    }

    /// seed → result fingerprint of every request answered `ok` so far.
    pub fn fingerprints(&self) -> BTreeMap<u64, u64> {
        self.inner
            .fingerprints
            .lock()
            .expect("fingerprint map poisoned")
            .clone()
    }

    /// Whether a protocol-level `shutdown` request has arrived.
    pub fn shutdown_requested(&self) -> bool {
        *self
            .inner
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned")
    }

    /// Blocks until a protocol-level `shutdown` request arrives — the
    /// serve CLI's main loop.
    pub fn wait_shutdown_requested(&self) {
        let mut requested = self
            .inner
            .shutdown_requested
            .lock()
            .expect("shutdown flag poisoned");
        while !*requested {
            requested = self
                .inner
                .shutdown_cv
                .wait(requested)
                .expect("shutdown flag poisoned");
        }
    }

    /// Graceful shutdown: stop admitting work (new connections and new
    /// requests get a typed `shutting_down` response), let every queued
    /// request complete, join all threads, flush the observability sinks,
    /// and return what was drained. No torn artifacts: store writes are
    /// tmp-file + rename, and workers finish their in-flight put before
    /// exiting.
    pub fn shutdown(mut self) -> DrainReport {
        self.inner.draining.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.ready.notify_one();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Workers are done; stop the accept loop (a wake-up connection
        // unblocks the blocking accept) and reap connection handlers.
        self.inner.stop_accept.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock().expect("connection registry poisoned");
            conns.drain(..).collect()
        };
        for conn in handles {
            let _ = conn.join();
        }
        uniq_obs::flush_global_sink();
        DrainReport {
            stats: self.inner.counters.snapshot(),
            fingerprints: self
                .inner
                .fingerprints
                .lock()
                .expect("fingerprint map poisoned")
                .clone(),
        }
    }
}

fn listener_loop(
    listener: &TcpListener,
    inner: &Arc<Inner>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.stop_accept.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.stop_accept.load(Ordering::SeqCst) {
            return;
        }
        if inner.draining.load(Ordering::SeqCst) {
            // Refuse, typed: the client learns why instead of seeing a
            // silent RST.
            let mut stream = stream;
            let _ = writeln!(
                stream,
                "{}",
                protocol::render_error(&ServeError::ShuttingDown)
            );
            continue;
        }
        let inner = inner.clone();
        let handle = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || {
                let ctx = inner.ctx.clone();
                ctx.run(|| connection_loop(&inner, stream));
            })
            .expect("spawn connection handler");
        conns
            .lock()
            .expect("connection registry poisoned")
            .push(handle);
    }
}

/// Writes one response line; returns false when the peer is gone.
fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    stream.write_all(line.as_bytes()).is_ok() && stream.write_all(b"\n").is_ok()
}

fn connection_loop(inner: &Arc<Inner>, mut stream: TcpStream) {
    // Short read timeouts turn the blocking read into a poll so the
    // handler notices a drain even on an idle connection.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut frames = protocol::FrameBuffer::new(inner.cfg.max_line_bytes);
    let mut chunk = [0u8; 4096];
    loop {
        // Drain complete frames first, then read more bytes.
        match frames.next_line() {
            Ok(Some(line)) => {
                if !handle_line(inner, &mut stream, &line) {
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                uniq_obs::counter(SERVE_ERRORS, 1);
                let closes = e.closes_connection();
                if !send_line(&mut stream, &protocol::render_error(&e)) || closes {
                    return;
                }
                continue;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: a pending partial frame is a truncated-frame
                // protocol error (nobody left to tell — just count it).
                if frames.finish().is_err() {
                    inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                    uniq_obs::counter(SERVE_ERRORS, 1);
                }
                return;
            }
            Ok(n) => frames.push(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one complete frame; returns false to close the connection.
fn handle_line(inner: &Arc<Inner>, stream: &mut TcpStream, line: &str) -> bool {
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err(e) => {
            inner.counters.errors.fetch_add(1, Ordering::Relaxed);
            uniq_obs::counter(SERVE_ERRORS, 1);
            return send_line(stream, &protocol::render_error(&e)) && !e.closes_connection();
        }
    };
    match request {
        Request::Ping => send_line(stream, &protocol::render_pong()),
        Request::Stats => send_line(stream, &protocol::render_stats(&inner.counters.snapshot())),
        Request::Shutdown => {
            {
                let mut requested = inner
                    .shutdown_requested
                    .lock()
                    .expect("shutdown flag poisoned");
                *requested = true;
            }
            inner.shutdown_cv.notify_all();
            send_line(stream, &protocol::render_shutdown_ack())
        }
        Request::Personalize(req) => {
            inner.counters.requests.fetch_add(1, Ordering::Relaxed);
            uniq_obs::counter(SERVE_REQUESTS, 1);
            if inner.draining.load(Ordering::SeqCst) {
                return send_line(stream, &protocol::render_error(&ServeError::ShuttingDown));
            }
            let shard = (protocol::subject_key(req.seed) % inner.cfg.shards as u64) as usize;
            let (reply_tx, reply_rx) = mpsc::channel();
            match inner.shards[shard].try_submit(
                Job {
                    req,
                    reply: reply_tx,
                },
                inner.cfg.queue_depth,
            ) {
                Ok(()) => {
                    inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
                    match reply_rx.recv() {
                        Ok(response) => send_line(stream, &response),
                        // Worker exited between submit and reply — only
                        // possible mid-drain.
                        Err(_) => {
                            send_line(stream, &protocol::render_error(&ServeError::ShuttingDown))
                        }
                    }
                }
                Err(SubmitError::Full) => {
                    inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                    uniq_obs::counter(SERVE_SHED, 1);
                    send_line(
                        stream,
                        &protocol::render_overloaded(shard, inner.cfg.queue_depth),
                    )
                }
                Err(SubmitError::Closed) => {
                    send_line(stream, &protocol::render_error(&ServeError::ShuttingDown))
                }
            }
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, shard: usize) {
    let ctx = inner.ctx.clone();
    ctx.run_indexed(shard as u64, || {
        while let Some(job) = inner.shards[shard].next_job(&inner.draining) {
            let response = process(inner, &job.req);
            // A gone connection is the client's problem, not the worker's.
            let _ = job.reply.send(response);
        }
    });
}

/// Runs one personalize request to a response line: config merge, cache
/// lookup, pipeline run, store put.
fn process(inner: &Arc<Inner>, req: &PersonalizeRequest) -> String {
    let sw = uniq_obs::Stopwatch::start();
    let _span = uniq_obs::span(SPAN_SERVE_REQUEST);

    let mut cfg = inner.cfg.base.clone();
    if let Some(grid) = req.grid_step_deg {
        cfg.grid_step_deg = grid;
    }
    if let Some(snr) = req.snr_db {
        cfg.snr_db = snr;
    }
    if let Some(anechoic) = req.anechoic {
        cfg.in_room = !anechoic;
    }
    // The server parallelizes across subjects (one per shard worker);
    // within one subject the pipeline stays serial. This also makes the
    // config hash independent of the host's pool size (`content_hash`
    // excludes `threads` anyway, but a fixed value keeps the executed
    // pipeline identical across deployments).
    cfg.threads = 1;
    if let Err(e) = cfg.validate() {
        inner.counters.errors.fetch_add(1, Ordering::Relaxed);
        uniq_obs::counter(SERVE_ERRORS, 1);
        return protocol::render_error(&ServeError::BadField {
            field: "config",
            detail: e.to_string(),
        });
    }
    let config_hash = cfg.content_hash();

    // Faulted requests (per-request plan or server-level hook) bypass the
    // cache in both directions: degraded results must never masquerade as
    // clean ones under the same (seed, config) key.
    let faulted = req.fault_plan.is_some() || inner.cfg.fault_hook.is_some();

    if !faulted && !req.no_cache {
        if let Some(store) = &inner.store {
            if let Some(entry) = store.lookup_by_seed(req.seed, config_hash) {
                if let Ok(artifact) = store.get(&entry.key) {
                    inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    inner.counters.ok.fetch_add(1, Ordering::Relaxed);
                    uniq_obs::counter(SERVE_CACHE_HITS, 1);
                    record_fingerprint(inner, req.seed, artifact.subject_fingerprint);
                    let wall_seconds = sw.elapsed_seconds();
                    uniq_obs::metric(SERVE_REQUEST_SECONDS, wall_seconds, "s");
                    return protocol::render_personalized(&PersonalizedReply {
                        seed: req.seed,
                        fingerprint: artifact.subject_fingerprint,
                        key: entry.key,
                        cache_hit: true,
                        attempts: 0,
                        radius_m: artifact.radius_m,
                        wall_seconds,
                        degradation: None,
                    });
                }
                // An unreadable cached blob falls through to a recompute;
                // `store verify` will flag the corruption separately.
            }
        }
    }

    let subject = Subject::from_seed(req.seed);
    let (result, degradation) = if let Some(spec) = &req.fault_plan {
        let plan = match FaultPlan::parse(spec, req.seed) {
            Ok(plan) => plan,
            Err(e) => {
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                uniq_obs::counter(SERVE_ERRORS, 1);
                return protocol::render_error(&ServeError::BadField {
                    field: "fault_plan",
                    detail: e.to_string(),
                });
            }
        };
        match personalize_faulted_with_retry(
            &subject,
            &cfg,
            req.seed,
            &plan,
            &inner.cfg.policy,
            inner.cfg.max_attempts,
        ) {
            Ok(f) => (f.result, Some(f.degradation)),
            Err(e) => return pipeline_error(inner, e),
        }
    } else if let Some(hook) = &inner.cfg.fault_hook {
        match personalize_faulted_with_retry(
            &subject,
            &cfg,
            req.seed,
            hook.as_ref(),
            &inner.cfg.policy,
            inner.cfg.max_attempts,
        ) {
            Ok(f) => (f.result, Some(f.degradation)),
            Err(e) => return pipeline_error(inner, e),
        }
    } else {
        match personalize_with_retry(&subject, &cfg, req.seed, inner.cfg.max_attempts) {
            Ok(result) => (result, None),
            Err(e) => return pipeline_error(inner, e),
        }
    };

    let degradation_json = degradation.as_ref().map(|d| d.to_json());
    let artifact = HrtfArtifact::from_result(req.seed, &result, config_hash, degradation_json);
    let key = match (&inner.store, faulted) {
        // Only clean results enter the cache; see above.
        (Some(store), false) => match store.put(&artifact) {
            Ok(outcome) => outcome.key,
            Err(e) => {
                inner.counters.errors.fetch_add(1, Ordering::Relaxed);
                uniq_obs::counter(SERVE_ERRORS, 1);
                return protocol::render_error(&ServeError::Pipeline {
                    detail: format!("store put failed: {e}"),
                });
            }
        },
        _ => match uniq_store::encode(&artifact) {
            Ok(bytes) => uniq_store::content_key(&bytes),
            Err(_) => String::new(),
        },
    };

    inner.counters.computed.fetch_add(1, Ordering::Relaxed);
    inner.counters.ok.fetch_add(1, Ordering::Relaxed);
    record_fingerprint(inner, req.seed, artifact.subject_fingerprint);
    let wall_seconds = sw.elapsed_seconds();
    uniq_obs::metric(SERVE_REQUEST_SECONDS, wall_seconds, "s");
    protocol::render_personalized(&PersonalizedReply {
        seed: req.seed,
        fingerprint: artifact.subject_fingerprint,
        key,
        cache_hit: false,
        attempts: u64::from(artifact.attempts),
        radius_m: result.radius_m,
        wall_seconds,
        degradation: degradation.as_ref().map(|d| DegradationSummary {
            mean_quality: d.mean_quality,
            stops_used: d.stops_used as u64,
            stops_planned: d.stops_planned as u64,
            stops_dropped: d.stops_dropped as u64,
            fault_classes: d.fault_classes.join(","),
        }),
    })
}

fn pipeline_error(inner: &Arc<Inner>, e: uniq_core::pipeline::PersonalizationError) -> String {
    inner.counters.errors.fetch_add(1, Ordering::Relaxed);
    uniq_obs::counter(SERVE_ERRORS, 1);
    protocol::render_error(&ServeError::Pipeline {
        detail: e.to_string(),
    })
}

fn record_fingerprint(inner: &Arc<Inner>, seed: u64, fingerprint: u64) {
    inner
        .fingerprints
        .lock()
        .expect("fingerprint map poisoned")
        .insert(seed, fingerprint);
}
