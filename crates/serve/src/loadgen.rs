//! Seeded, deterministic closed-loop load generator.
//!
//! Replays a `uniq-subjects` population (seeds `seed_base..seed_base+n`)
//! as traffic against a live server. Clients are closed-loop: each owns
//! one connection and sends its next request only after the previous
//! response arrives, so offered load is bounded by service rate and the
//! harness never measures its own queueing. The schedule is a pure
//! function of the config — subject `i` belongs to client `i %
//! clients`, and each client re-requests the first `ceil(repeat ×
//! share)` of its subjects after the first pass (the repeat ratio that
//! exercises the server's result cache) — so two runs at any concurrency
//! offer byte-identical request streams per client.
//!
//! Latency is measured by wrapping every request in a
//! [`SPAN_LOADGEN_REQUEST`](uniq_obs::names::SPAN_LOADGEN_REQUEST) span
//! under a [`uniq_profile::ProfileSink`]; throughput and p50/p99 come
//! from its report. The profiler *composes* with the ambient sink
//! ([`uniq_obs::ambient_sink`]) instead of shadowing it, so `--trace`
//! and the observability audit still see loadgen spans.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;

use uniq_obs::names::SPAN_LOADGEN_REQUEST;
use uniq_obs::sink::{MultiSink, Sink};
use uniq_profile::{ProfileReport, ProfileSink};

use crate::error::ServeError;
use crate::protocol::{self, Response};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Population size (distinct subject seeds).
    pub subjects: u64,
    /// First subject seed.
    pub seed_base: u64,
    /// Concurrent closed-loop clients (≥ 1), each with one connection.
    pub clients: usize,
    /// Repeat ratio `0.0..=1.0`: fraction of each client's subjects
    /// re-requested after the first pass (cache exercise).
    pub repeat: f64,
    /// Per-request grid override, degrees.
    pub grid_step_deg: Option<f64>,
    /// Per-request SNR override, dB.
    pub snr_db: Option<f64>,
    /// Per-request room override.
    pub anechoic: Option<bool>,
    /// Ask the server to skip its result cache.
    pub no_cache: bool,
    /// Send a protocol `shutdown` after the run completes.
    pub shutdown_after: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: String::new(),
            subjects: 8,
            seed_base: 42,
            clients: 4,
            repeat: 0.25,
            grid_step_deg: None,
            snr_db: None,
            anechoic: None,
            no_cache: false,
            shutdown_after: false,
        }
    }
}

/// What a load-generation run observed.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests sent.
    pub requests: u64,
    /// `ok` responses.
    pub ok: u64,
    /// Responses flagged `cache_hit`.
    pub cache_hits: u64,
    /// `overloaded` (shed) responses.
    pub overloaded: u64,
    /// Typed error responses.
    pub errors: u64,
    /// Distinct seeds that answered `ok` with conflicting fingerprints —
    /// zero on a deterministic server.
    pub fingerprint_conflicts: u64,
    /// Wall clock of the whole run, seconds.
    pub wall_seconds: f64,
    /// Unique subjects personalized per second of wall clock.
    pub subjects_per_second: f64,
    /// Requests completed per second of wall clock.
    pub requests_per_second: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// seed → result fingerprint of every `ok` response.
    pub fingerprints: BTreeMap<u64, u64>,
    /// The full latency profile (the `loadgen.request` stage).
    pub profile: ProfileReport,
}

#[derive(Default)]
struct ClientTally {
    requests: u64,
    ok: u64,
    cache_hits: u64,
    overloaded: u64,
    errors: u64,
    conflicts: u64,
    fingerprints: BTreeMap<u64, u64>,
}

/// The seeds client `client` requests, in order: its share of the
/// population, then the repeated prefix. Pure, so tests can predict the
/// exact request stream.
pub fn client_schedule(cfg: &LoadgenConfig, client: usize) -> Vec<u64> {
    let mut seeds: Vec<u64> = (0..cfg.subjects)
        .filter(|i| (*i as usize) % cfg.clients == client)
        .map(|i| cfg.seed_base + i)
        .collect();
    let repeats = (cfg.repeat.clamp(0.0, 1.0) * seeds.len() as f64).ceil() as usize;
    let prefix: Vec<u64> = seeds.iter().take(repeats).copied().collect();
    seeds.extend(prefix);
    seeds
}

fn request_line(cfg: &LoadgenConfig, seed: u64) -> String {
    let mut line = format!("{{\"type\":\"personalize\",\"seed\":{seed}");
    if let Some(grid) = cfg.grid_step_deg {
        line.push_str(&format!(",\"grid\":{}", uniq_obs::sink::json_number(grid)));
    }
    if let Some(snr) = cfg.snr_db {
        line.push_str(&format!(",\"snr\":{}", uniq_obs::sink::json_number(snr)));
    }
    if let Some(anechoic) = cfg.anechoic {
        line.push_str(&format!(",\"anechoic\":{anechoic}"));
    }
    if cfg.no_cache {
        line.push_str(",\"no_cache\":true");
    }
    line.push('}');
    line
}

fn read_response(
    stream: &mut TcpStream,
    frames: &mut protocol::FrameBuffer,
) -> Result<Response, ServeError> {
    use std::io::Read;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(line) = frames.next_line()? {
            return protocol::parse_response(&line);
        }
        let n = stream.read(&mut chunk).map_err(|e| ServeError::Io {
            op: "read",
            detail: e.to_string(),
        })?;
        if n == 0 {
            return Err(ServeError::Io {
                op: "read",
                detail: "server closed the connection".into(),
            });
        }
        frames.push(&chunk[..n]);
    }
}

fn client_loop(cfg: &LoadgenConfig, client: usize) -> Result<ClientTally, ServeError> {
    let mut stream = TcpStream::connect(&cfg.addr).map_err(|e| ServeError::Io {
        op: "connect",
        detail: format!("{}: {e}", cfg.addr),
    })?;
    let mut frames = protocol::FrameBuffer::new(protocol::MAX_LINE_BYTES);
    let mut tally = ClientTally::default();
    for seed in client_schedule(cfg, client) {
        let _span = uniq_obs::span(SPAN_LOADGEN_REQUEST);
        let line = request_line(cfg, seed);
        stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .map_err(|e| ServeError::Io {
                op: "write",
                detail: e.to_string(),
            })?;
        tally.requests += 1;
        match read_response(&mut stream, &mut frames)? {
            Response::Personalized(reply) => {
                tally.ok += 1;
                if reply.cache_hit {
                    tally.cache_hits += 1;
                }
                match tally.fingerprints.get(&reply.seed) {
                    Some(prev) if *prev != reply.fingerprint => tally.conflicts += 1,
                    _ => {
                        tally.fingerprints.insert(reply.seed, reply.fingerprint);
                    }
                }
            }
            Response::Overloaded { .. } => tally.overloaded += 1,
            Response::Error { .. } => tally.errors += 1,
            other => {
                return Err(ServeError::BadJson {
                    detail: format!("unexpected response to personalize: {other:?}"),
                })
            }
        }
    }
    Ok(tally)
}

/// Runs the load generation and aggregates the report. Client errors
/// (connect/read/write failures) abort the run with the first error.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ServeError> {
    if cfg.clients == 0 {
        return Err(ServeError::Config {
            detail: "clients must be >= 1".into(),
        });
    }
    if cfg.subjects == 0 {
        return Err(ServeError::Config {
            detail: "subjects must be >= 1".into(),
        });
    }
    let profile = Arc::new(ProfileSink::new());
    let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
    if let Some(ambient) = uniq_obs::ambient_sink() {
        sinks.push(ambient);
    }
    sinks.push(profile.clone());
    let multi: Arc<dyn Sink> = Arc::new(MultiSink::new(sinks));

    let sw = uniq_obs::Stopwatch::start();
    let outcomes: Vec<Result<ClientTally, ServeError>> = uniq_obs::with_sink(multi, || {
        let ctx = uniq_obs::capture();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|client| {
                    let ctx = ctx.clone();
                    scope.spawn(move || ctx.run_indexed(client as u64, || client_loop(cfg, client)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(outcome) => outcome,
                    Err(_) => Err(ServeError::Io {
                        op: "client",
                        detail: "client thread panicked".into(),
                    }),
                })
                .collect()
        })
    });
    let wall_seconds = sw.elapsed_seconds();

    let mut total = ClientTally::default();
    for outcome in outcomes {
        let tally = outcome?;
        total.requests += tally.requests;
        total.ok += tally.ok;
        total.cache_hits += tally.cache_hits;
        total.overloaded += tally.overloaded;
        total.errors += tally.errors;
        total.conflicts += tally.conflicts;
        for (seed, fp) in tally.fingerprints {
            match total.fingerprints.get(&seed) {
                Some(prev) if *prev != fp => total.conflicts += 1,
                _ => {
                    total.fingerprints.insert(seed, fp);
                }
            }
        }
    }

    if cfg.shutdown_after {
        // Best-effort: the server may already be draining.
        if let Ok(mut stream) = TcpStream::connect(&cfg.addr) {
            let _ = stream.write_all(b"{\"type\":\"shutdown\"}\n");
            let mut frames = protocol::FrameBuffer::new(protocol::MAX_LINE_BYTES);
            let _ = read_response(&mut stream, &mut frames);
        }
    }

    let report = profile.report();
    let (p50_ms, p99_ms) = report
        .stage(SPAN_LOADGEN_REQUEST)
        .map(|s| (s.p50_nanos as f64 / 1e6, s.p99_nanos as f64 / 1e6))
        .unwrap_or((0.0, 0.0));
    let unique = total.fingerprints.len() as f64;
    Ok(LoadgenReport {
        requests: total.requests,
        ok: total.ok,
        cache_hits: total.cache_hits,
        overloaded: total.overloaded,
        errors: total.errors,
        fingerprint_conflicts: total.conflicts,
        wall_seconds,
        subjects_per_second: if wall_seconds > 0.0 {
            unique / wall_seconds
        } else {
            0.0
        },
        requests_per_second: if wall_seconds > 0.0 {
            total.requests as f64 / wall_seconds
        } else {
            0.0
        },
        p50_ms,
        p99_ms,
        fingerprints: total.fingerprints,
        profile: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(subjects: u64, clients: usize, repeat: f64) -> LoadgenConfig {
        LoadgenConfig {
            subjects,
            clients,
            repeat,
            seed_base: 100,
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn schedule_partitions_the_population() {
        let c = cfg(8, 3, 0.0);
        let mut all: Vec<u64> = (0..3).flat_map(|i| client_schedule(&c, i)).collect();
        all.sort_unstable();
        assert_eq!(all, (100..108).collect::<Vec<u64>>());
    }

    #[test]
    fn schedule_repeats_a_deterministic_prefix() {
        let c = cfg(8, 2, 0.5);
        let sched = client_schedule(&c, 0);
        // Client 0 owns 100,102,104,106; repeat 0.5 → 2 repeats.
        assert_eq!(sched, vec![100, 102, 104, 106, 100, 102]);
        assert_eq!(client_schedule(&c, 0), sched);
    }

    #[test]
    fn request_lines_carry_only_requested_overrides() {
        let mut c = cfg(1, 1, 0.0);
        assert_eq!(request_line(&c, 5), "{\"type\":\"personalize\",\"seed\":5}");
        c.grid_step_deg = Some(15.0);
        c.anechoic = Some(true);
        c.no_cache = true;
        let line = request_line(&c, 5);
        assert!(line.contains("\"grid\":15"));
        assert!(line.contains("\"anechoic\":true"));
        assert!(line.contains("\"no_cache\":true"));
        // Every generated line must parse under the strict grammar.
        protocol::parse_request(&line).unwrap();
    }
}
