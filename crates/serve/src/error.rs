//! Typed failures of the serve protocol and server runtime.
//!
//! Every malformed byte a client can send maps to one of these variants —
//! the framing layer and request parser return them instead of panicking,
//! and the connection handler renders them as `{"status":"error", ...}`
//! lines. The `kind` string is part of the wire contract: the conformance
//! battery in `tests/serve.rs` asserts on it.

use std::fmt;

/// A serve-side failure: framing, parsing, admission, or pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A frame exceeded the line limit before a newline arrived. Fatal:
    /// the stream cannot be resynchronized, the connection closes after
    /// the error response.
    LineTooLong {
        /// The configured limit, bytes.
        limit: usize,
    },
    /// The peer closed the stream mid-frame (bytes after the last
    /// newline). Nothing to respond to — the connection closes.
    TruncatedFrame {
        /// Unterminated bytes left in the buffer.
        bytes: usize,
    },
    /// A complete frame was not valid UTF-8. The frame boundary is known,
    /// so the connection survives.
    InvalidUtf8 {
        /// Bytes that decoded cleanly before the offending sequence.
        valid_up_to: usize,
    },
    /// A frame was not parseable JSON, or not a JSON object.
    BadJson {
        /// Parser diagnostic.
        detail: String,
    },
    /// A required field was absent.
    MissingField {
        /// The field name.
        field: &'static str,
    },
    /// A field was present with the wrong type or an invalid value.
    BadField {
        /// The field name.
        field: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// A field this request type does not define. The protocol is strict:
    /// unknown fields are rejected, not ignored, so typos fail loudly.
    UnknownField {
        /// The offending field name.
        field: String,
    },
    /// A `type` value naming no known request.
    UnknownType {
        /// The offending type value.
        value: String,
    },
    /// A string field exceeded its body limit.
    BodyTooLarge {
        /// The field name.
        field: &'static str,
        /// The configured limit, bytes.
        limit: usize,
        /// Actual size, bytes.
        bytes: usize,
    },
    /// The target shard's bounded queue was full; the request was shed.
    Overloaded {
        /// The shard the request hashed to.
        shard: usize,
        /// Its queue capacity.
        queue_depth: usize,
    },
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The personalization pipeline failed for this request.
    Pipeline {
        /// The pipeline's error.
        detail: String,
    },
    /// Invalid server configuration (bind address, shard count, ...).
    Config {
        /// What was invalid.
        detail: String,
    },
    /// A socket operation failed.
    Io {
        /// The operation ("bind", "connect", "read", "write", ...).
        op: &'static str,
        /// The OS error.
        detail: String,
    },
}

impl ServeError {
    /// The stable wire identifier of this error class, carried in the
    /// `kind` field of error responses.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::LineTooLong { .. } => "line_too_long",
            ServeError::TruncatedFrame { .. } => "truncated_frame",
            ServeError::InvalidUtf8 { .. } => "invalid_utf8",
            ServeError::BadJson { .. } => "bad_json",
            ServeError::MissingField { .. } => "missing_field",
            ServeError::BadField { .. } => "bad_field",
            ServeError::UnknownField { .. } => "unknown_field",
            ServeError::UnknownType { .. } => "unknown_type",
            ServeError::BodyTooLarge { .. } => "body_too_large",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Pipeline { .. } => "pipeline",
            ServeError::Config { .. } => "config",
            ServeError::Io { .. } => "io",
        }
    }

    /// Whether the connection must close after responding: `true` when
    /// the stream cannot be resynchronized to the next frame boundary.
    pub fn closes_connection(&self) -> bool {
        matches!(
            self,
            ServeError::LineTooLong { .. }
                | ServeError::TruncatedFrame { .. }
                | ServeError::Io { .. }
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::LineTooLong { limit } => {
                write!(f, "frame exceeds the {limit}-byte line limit")
            }
            ServeError::TruncatedFrame { bytes } => {
                write!(f, "stream ended mid-frame ({bytes} unterminated bytes)")
            }
            ServeError::InvalidUtf8 { valid_up_to } => {
                write!(
                    f,
                    "frame is not valid UTF-8 (valid up to byte {valid_up_to})"
                )
            }
            ServeError::BadJson { detail } => write!(f, "malformed JSON: {detail}"),
            ServeError::MissingField { field } => write!(f, "missing required field {field:?}"),
            ServeError::BadField { field, detail } => write!(f, "bad field {field:?}: {detail}"),
            ServeError::UnknownField { field } => write!(f, "unknown field {field:?}"),
            ServeError::UnknownType { value } => write!(f, "unknown request type {value:?}"),
            ServeError::BodyTooLarge {
                field,
                limit,
                bytes,
            } => write!(
                f,
                "field {field:?} is {bytes} bytes, over the {limit}-byte body limit"
            ),
            ServeError::Overloaded { shard, queue_depth } => write!(
                f,
                "shard {shard} queue full (depth {queue_depth}); request shed"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Pipeline { detail } => write!(f, "personalization failed: {detail}"),
            ServeError::Config { detail } => write!(f, "invalid server config: {detail}"),
            ServeError::Io { op, detail } => write!(f, "{op} failed: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}
