//! uniq-serve: a sharded, long-running personalization server.
//!
//! The server speaks line-delimited JSON over TCP: one request object
//! per `\n`-terminated line, one response object per line back. A
//! listener thread accepts connections; each connection gets a reader
//! thread that frames lines ([`protocol::FrameBuffer`]), parses them
//! under a strict grammar, and routes `personalize` requests to one of
//! N shard workers by the FNV hash of the subject seed
//! ([`protocol::subject_key`]). Every shard owns a bounded queue: a
//! full queue sheds the request with an explicit `overloaded` response
//! instead of blocking the connection.
//!
//! Workers run the exact library pipeline
//! ([`uniq_core::personalize_with_retry`]) and consult a
//! content-addressed result cache backed by [`uniq_store`], keyed by
//! `(subject seed, UniqConfig::content_hash)`. Responses carry the same
//! FNV-1a result fingerprint the library path computes, so a serve
//! deployment is bit-for-bit auditable against an offline run.
//!
//! Malformed input is never a panic: each failure class is a typed
//! [`ServeError`] with a stable wire `kind`, and only errors that lose
//! the frame boundary close the connection.
//!
//! [`loadgen`] is the matching deterministic closed-loop load harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use error::ServeError;
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use protocol::{
    fold_fingerprints, subject_key, PersonalizeRequest, PersonalizedReply, Request, Response,
    StatsReply, MAX_LINE_BYTES,
};
pub use server::{DrainReport, ServeConfig, Server};
