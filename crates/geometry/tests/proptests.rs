//! Property-based tests for the diffraction geometry.

use proptest::prelude::*;
use std::sync::OnceLock;
use uniq_geometry::diffraction::path_to_ear;
use uniq_geometry::planewave::{plane_itd_metres, plane_path_to_ear};
use uniq_geometry::vec2::{angle_diff_deg, theta_from_vec, unit_from_theta, Vec2};
use uniq_geometry::{Ear, HeadBoundary, HeadParams};

fn boundary() -> &'static HeadBoundary {
    static B: OnceLock<HeadBoundary> = OnceLock::new();
    B.get_or_init(|| HeadBoundary::new(HeadParams::average_adult(), 1024))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theta_roundtrip(theta in 0.0..360.0f64, r in 0.2..5.0f64) {
        let v = unit_from_theta(theta) * r;
        prop_assert!(angle_diff_deg(theta_from_vec(v), theta) < 1e-9);
    }

    #[test]
    fn wrap_never_shorter_than_euclid(theta in 0.0..360.0f64, r in 0.25..2.0f64) {
        let src = unit_from_theta(theta) * r;
        for ear in Ear::BOTH {
            let p = path_to_ear(boundary(), src, ear).unwrap();
            let euclid = src.dist(boundary().params().ear(ear));
            prop_assert!(p.length >= euclid - 1e-9,
                "θ={theta} r={r} {ear:?}: {} < {euclid}", p.length);
        }
    }

    #[test]
    fn wrap_bounded_by_detour(theta in 0.0..360.0f64, r in 0.25..2.0f64) {
        // The geodesic can never exceed Euclidean + half the perimeter.
        let src = unit_from_theta(theta) * r;
        let bound = boundary().perimeter() / 2.0;
        for ear in Ear::BOTH {
            let p = path_to_ear(boundary(), src, ear).unwrap();
            let euclid = src.dist(boundary().params().ear(ear));
            prop_assert!(p.length <= euclid + bound + 1e-9);
        }
    }

    #[test]
    fn path_length_continuous(theta in 0.0..359.0f64, r in 0.3..1.0f64) {
        let p1 = path_to_ear(boundary(), unit_from_theta(theta) * r, Ear::Right).unwrap();
        let p2 = path_to_ear(boundary(), unit_from_theta(theta + 0.5) * r, Ear::Right).unwrap();
        prop_assert!((p1.length - p2.length).abs() < 0.01,
            "jump at θ={theta}: {} vs {}", p1.length, p2.length);
    }

    #[test]
    fn arrival_direction_unit(theta in 0.0..360.0f64, r in 0.25..2.0f64) {
        let src = unit_from_theta(theta) * r;
        for ear in Ear::BOTH {
            let p = path_to_ear(boundary(), src, ear).unwrap();
            prop_assert!((p.arrival_dir.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn itd_antisymmetric_across_midline(theta in 0.0..180.0f64) {
        // Mirroring the source across the nose axis flips the ITD sign for
        // a laterally symmetric head.
        let itd_left = plane_itd_metres(boundary(), theta);
        let itd_right = plane_itd_metres(boundary(), 360.0 - theta);
        prop_assert!((itd_left + itd_right).abs() < 1e-3,
            "θ={theta}: {itd_left} vs {itd_right}");
    }

    #[test]
    fn plane_excess_bounded(theta in 0.0..360.0f64) {
        let bound = boundary().params().max_radius() + boundary().perimeter() / 2.0;
        for ear in Ear::BOTH {
            let p = plane_path_to_ear(boundary(), theta, ear);
            prop_assert!(p.excess.abs() <= bound);
        }
    }

    #[test]
    fn boundary_points_not_inside(t in 0.0..std::f64::consts::TAU) {
        let h = HeadParams::average_adult();
        prop_assert!(!h.contains(h.boundary_point(t)));
    }

    #[test]
    fn interior_points_inside(t in 0.0..std::f64::consts::TAU, f in 0.0..0.95f64) {
        let h = HeadParams::average_adult();
        let p = h.boundary_point(t) * f;
        prop_assert!(h.contains(p) || f < 1e-9);
    }

    #[test]
    fn segment_clear_symmetric(t1 in 0.0..360.0f64, t2 in 0.0..360.0f64, r in 0.2..1.0f64) {
        let a = unit_from_theta(t1) * r;
        let b = unit_from_theta(t2) * r;
        prop_assert_eq!(boundary().segment_clear(a, b), boundary().segment_clear(b, a));
    }

    #[test]
    fn critical_arcs_contain_center(theta in 0.0..180.0f64, r in 0.3..1.0f64) {
        let ca = uniq_geometry::critical::critical_angles(boundary(), theta, r);
        prop_assert!(ca.feeds_left(ca.theta_c));
        prop_assert!(ca.feeds_right(ca.theta_c));
    }

    #[test]
    fn vec2_rotation_preserves_norm(x in -5.0..5.0f64, y in -5.0..5.0f64, ang in -10.0..10.0f64) {
        let v = Vec2::new(x, y);
        prop_assert!((v.rotated(ang).norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn path3_never_shorter_than_euclid(az in 0.0..360.0f64, el in -70.0..70.0f64, r in 0.3..1.5f64) {
        use uniq_geometry::elevation::{path_to_ear_3d_res, Head3, Vec3};
        let head = Head3::average_adult();
        let src = Vec3::from_angles(az, el).scale(r);
        for ear in Ear::BOTH {
            let p = path_to_ear_3d_res(&head, src, ear, 128).unwrap();
            let euclid = src.dist(head.ear(ear));
            prop_assert!(p.length >= euclid - 1e-6,
                "az={az} el={el}: {} < {euclid}", p.length);
        }
    }

    #[test]
    fn itd3_lateral_symmetry(az in 0.0..180.0f64, el in -60.0..60.0f64) {
        use uniq_geometry::elevation::{plane_itd_3d, Head3};
        let head = Head3::average_adult();
        let left = plane_itd_3d(&head, az, el);
        let right = plane_itd_3d(&head, 360.0 - az, el);
        prop_assert!((left + right).abs() < 2e-3, "{left} vs {right}");
    }

    #[test]
    fn itd3_elevation_monotone_shrink(az in 30.0..150.0f64) {
        use uniq_geometry::elevation::{plane_itd_3d, Head3};
        let head = Head3::average_adult();
        let low = plane_itd_3d(&head, az, 0.0).abs();
        let high = plane_itd_3d(&head, az, 60.0).abs();
        prop_assert!(high <= low + 1e-6, "az={az}: {high} > {low}");
    }
}
