//! Generic convex-polygon wrap paths.
//!
//! The 3-D elevation extension (§7 of the paper) reduces ellipsoid
//! geodesics to 2-D wrap paths inside plane cross-sections; those
//! cross-sections are arbitrary convex polygons rather than the
//! two-half-ellipse of [`crate::head`], so the taut-string machinery is
//! provided here in polygon-generic form with exact (clipping-based)
//! segment visibility.

use crate::vec2::Vec2;

/// A convex polygon with precomputed cumulative arc lengths.
#[derive(Debug, Clone)]
pub struct ConvexPolygon {
    verts: Vec<Vec2>,
    cum: Vec<f64>,
}

/// A wrap path around a [`ConvexPolygon`].
#[derive(Debug, Clone, Copy)]
pub struct PolyPath {
    /// Total length (straight segment + arc).
    pub length: f64,
    /// Turning angle along the wrapped arc, radians (0 when direct).
    pub wrap_angle: f64,
    /// Whether the target vertex was directly visible.
    pub direct: bool,
}

impl ConvexPolygon {
    /// Builds a polygon from counter-clockwise vertices.
    ///
    /// # Panics
    /// Panics with fewer than 8 vertices or if the vertices are not
    /// (weakly) convex counter-clockwise.
    pub fn new(verts: Vec<Vec2>) -> Self {
        let n = verts.len();
        assert!(n >= 8, "polygon needs at least 8 vertices, got {n}");
        for k in 0..n {
            let a = verts[k];
            let b = verts[(k + 1) % n];
            let c = verts[(k + 2) % n];
            let cross = (b - a).cross(c - b);
            assert!(
                cross > -1e-12,
                "vertices not convex counter-clockwise at index {k}"
            );
        }
        let mut cum = Vec::with_capacity(n + 1);
        cum.push(0.0);
        for k in 0..n {
            let next = verts[(k + 1) % n];
            cum.push(cum[k] + verts[k].dist(next));
        }
        ConvexPolygon { verts, cum }
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Vec2] {
        &self.verts
    }

    /// Vertex count.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Never true after construction; for API completeness.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        // uniq-analyzer: allow(panic-safety) — the constructor rejects polygons with fewer than 3 vertices, so cum is never empty
        *self.cum.last().expect("non-empty")
    }

    /// Counter-clockwise arc length from vertex `i` to vertex `j`.
    pub fn arc_ccw(&self, i: usize, j: usize) -> f64 {
        let n = self.verts.len();
        let (i, j) = (i % n, j % n);
        if j >= i {
            self.cum[j] - self.cum[i]
        } else {
            self.perimeter() - (self.cum[i] - self.cum[j])
        }
    }

    /// `true` when `p` is strictly inside.
    pub fn contains(&self, p: Vec2) -> bool {
        let n = self.verts.len();
        (0..n).all(|k| {
            let a = self.verts[k];
            let b = self.verts[(k + 1) % n];
            (b - a).cross(p - a) > 1e-12
        })
    }

    /// `true` when the open segment `p`–`q` avoids the interior (endpoints
    /// may touch the boundary). Exact: clips the segment against every
    /// edge half-plane and checks whether a positive-length sub-interval
    /// lies strictly inside.
    pub fn segment_clear(&self, p: Vec2, q: Vec2) -> bool {
        let n = self.verts.len();
        let d = q - p;
        let (mut lo, mut hi): (f64, f64) = (1e-9, 1.0 - 1e-9);
        for k in 0..n {
            let a = self.verts[k];
            let b = self.verts[(k + 1) % n];
            let edge = b - a;
            // Inside condition: edge × (x(t) − a) > 0 where x(t) = p + t·d.
            let f0 = edge.cross(p - a);
            let f1 = edge.cross(d); // slope in t
            if f1.abs() < 1e-300 {
                if f0 <= 1e-12 {
                    return true; // entirely outside this half-plane
                }
                continue;
            }
            let t_zero = -f0 / f1;
            if f1 > 0.0 {
                lo = lo.max(t_zero);
            } else {
                hi = hi.min(t_zero);
            }
            if lo >= hi {
                return true;
            }
        }
        // A strictly interior interval remains → blocked. Guard against
        // grazing (zero-depth) contact: check the midpoint is truly inside.
        let mid = p + d * ((lo + hi) / 2.0);
        !self.contains(mid)
    }

    /// Shortest taut-string path from external point `src` to boundary
    /// vertex `target_idx`. Returns `None` if `src` is strictly inside.
    pub fn wrap_to_vertex(&self, src: Vec2, target_idx: usize) -> Option<PolyPath> {
        if self.contains(src) {
            return None;
        }
        let n = self.verts.len();
        let target_idx = target_idx % n;
        let target = self.verts[target_idx];

        if self.segment_clear(src, target) {
            return Some(PolyPath {
                length: src.dist(target),
                wrap_angle: 0.0,
                direct: true,
            });
        }

        // Tangent vertices: angular extremes as seen from src, measured
        // against the direction to the centroid.
        let centroid = self.verts.iter().fold(Vec2::ZERO, |acc, &v| acc + v) / n as f64;
        let base = (centroid - src).angle();
        let signed = |v: Vec2| -> f64 {
            let mut a = ((v - src).angle() - base).rem_euclid(std::f64::consts::TAU);
            if a > std::f64::consts::PI {
                a -= std::f64::consts::TAU;
            }
            a
        };
        let (mut t_min, mut t_max) = (0usize, 0usize);
        let (mut a_min, mut a_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for (k, &v) in self.verts.iter().enumerate() {
            let a = signed(v);
            if a < a_min {
                a_min = a;
                t_min = k;
            }
            if a > a_max {
                a_max = a;
                t_max = k;
            }
        }

        let mut best: Option<(f64, usize, bool)> = None;
        for &t in &[t_min, t_max] {
            let seg = src.dist(self.verts[t]);
            for ccw in [true, false] {
                let arc = if ccw {
                    self.arc_ccw(t, target_idx)
                } else {
                    self.arc_ccw(target_idx, t)
                };
                let total = seg + arc;
                if best.is_none_or(|(l, _, _)| total < l) {
                    best = Some((total, t, ccw));
                }
            }
        }
        // Two tangent candidates are always evaluated above, so `best`
        // is necessarily `Some`; `?` keeps the path panic-free anyway.
        let (length, t_idx, ccw) = best?;
        Some(PolyPath {
            length,
            wrap_angle: self.turning(t_idx, target_idx, ccw),
            direct: false,
        })
    }

    fn turning(&self, i: usize, j: usize, ccw: bool) -> f64 {
        let n = self.verts.len();
        let step = |k: usize| if ccw { (k + 1) % n } else { (k + n - 1) % n };
        let mut total = 0.0;
        let mut k = i;
        let mut prev: Option<Vec2> = None;
        for _ in 0..n {
            if k == j {
                break;
            }
            let nk = step(k);
            let dir = (self.verts[nk] - self.verts[k]).normalized();
            if let Some(p) = prev {
                total += p.cross(dir).clamp(-1.0, 1.0).asin().abs();
            }
            prev = Some(dir);
            k = nk;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn circle(n: usize, r: f64) -> ConvexPolygon {
        ConvexPolygon::new(
            (0..n)
                .map(|k| {
                    let t = TAU * k as f64 / n as f64;
                    Vec2::new(r * t.cos(), r * t.sin())
                })
                .collect(),
        )
    }

    #[test]
    fn contains_center_not_outside() {
        let p = circle(64, 1.0);
        assert!(p.contains(Vec2::ZERO));
        assert!(!p.contains(Vec2::new(2.0, 0.0)));
    }

    #[test]
    fn perimeter_of_circle() {
        let p = circle(1024, 1.0);
        assert!((p.perimeter() - TAU).abs() < 1e-3);
    }

    #[test]
    fn segment_clear_cases() {
        let p = circle(256, 1.0);
        // Through the middle: blocked.
        assert!(!p.segment_clear(Vec2::new(-2.0, 0.0), Vec2::new(2.0, 0.0)));
        // Passing well outside: clear.
        assert!(p.segment_clear(Vec2::new(-2.0, 1.5), Vec2::new(2.0, 1.5)));
        // To a boundary vertex from outside on the same side: clear.
        assert!(p.segment_clear(Vec2::new(2.0, 0.0), p.vertices()[0]));
    }

    #[test]
    fn wrap_matches_circle_closed_form() {
        let r = 1.0;
        let p = circle(2048, r);
        // Source on +x at distance d, target = vertex at angle π (−x).
        let d = 3.0;
        let src = Vec2::new(d, 0.0);
        let target_idx = 1024; // angle π
        let path = p.wrap_to_vertex(src, target_idx).unwrap();
        assert!(!path.direct);
        let tangent = (d * d - r * r).sqrt();
        let beta = (r / d).acos();
        let expect = tangent + r * (std::f64::consts::PI - beta);
        assert!(
            (path.length - expect).abs() < 2e-3,
            "{} vs {expect}",
            path.length
        );
    }

    #[test]
    fn direct_when_visible() {
        let p = circle(256, 1.0);
        let src = Vec2::new(3.0, 0.0);
        let path = p.wrap_to_vertex(src, 0).unwrap();
        assert!(path.direct);
        assert!((path.length - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inside_source_rejected() {
        let p = circle(64, 1.0);
        assert!(p.wrap_to_vertex(Vec2::new(0.1, 0.1), 0).is_none());
    }

    #[test]
    #[should_panic(expected = "not convex")]
    fn concave_rejected() {
        let mut verts: Vec<Vec2> = (0..16)
            .map(|k| {
                let t = TAU * k as f64 / 16.0;
                Vec2::new(t.cos(), t.sin())
            })
            .collect();
        verts[3] = Vec2::new(0.1, 0.1); // dent
        ConvexPolygon::new(verts);
    }
}
