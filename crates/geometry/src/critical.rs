//! Critical rays for near-far conversion (§4.3, Fig 12 of the paper).
//!
//! To synthesize the far-field HRTF at angle `θ` from near-field
//! measurements on a (roughly circular) trajectory of radius `r`, the paper
//! identifies three critical rays, all parallel to the far-field direction:
//!
//! * ray `C–Q` passes through the head and is normal to the boundary at
//!   `Q` — it splits rays into "bend left" and "bend right";
//! * ray `B–L` grazes the head at the tangent point feeding the **left**
//!   ear;
//! * ray `D–R` grazes at the tangent point feeding the **right** ear.
//!
//! Near-field measurements taken at trajectory angles inside arc `[C, B]`
//! contribute to the far-field **left**-ear HRTF; those in `[C, D]` to the
//! **right**. Outside `[B, D]` the rays miss the head entirely.

use crate::head::{Ear, HeadBoundary};
use crate::vec2::{theta_from_vec, unit_from_theta, Vec2};

/// Trajectory angles (degrees, paper convention) of the three critical
/// points for one far-field direction.
#[derive(Debug, Clone, Copy)]
pub struct CriticalAngles {
    /// Arc endpoint feeding the left ear (tangent ray `B`).
    pub theta_b: f64,
    /// Central ray `C` — the trajectory point in the source direction.
    pub theta_c: f64,
    /// Arc endpoint feeding the right ear (tangent ray `D`).
    pub theta_d: f64,
}

impl CriticalAngles {
    /// `true` when trajectory angle `phi` lies on the (shorter) arc between
    /// `C` and `B` — i.e. its near-field measurement feeds the left ear.
    pub fn feeds_left(&self, phi: f64) -> bool {
        on_arc(self.theta_c, self.theta_b, phi)
    }

    /// `true` when `phi` lies on the arc between `C` and `D` (right ear).
    pub fn feeds_right(&self, phi: f64) -> bool {
        on_arc(self.theta_c, self.theta_d, phi)
    }
}

/// Whether angle `x` (degrees) lies on the shorter arc from `from` to `to`.
fn on_arc(from: f64, to: f64, x: f64) -> bool {
    let span = (to - from).rem_euclid(360.0);
    let off = (x - from).rem_euclid(360.0);
    if span <= 180.0 {
        off <= span + 1e-9
    } else {
        // Shorter arc goes the other way.
        off >= span - 1e-9 || off <= 1e-9
    }
}

/// Computes the critical trajectory angles for far-field direction
/// `theta_deg` and a measurement trajectory of radius `radius` metres.
///
/// # Panics
/// Panics if the trajectory radius does not clear the head.
pub fn critical_angles(boundary: &HeadBoundary, theta_deg: f64, radius: f64) -> CriticalAngles {
    assert!(
        radius > boundary.params().max_radius() * 1.05,
        "trajectory radius {radius} m does not clear the head"
    );

    // Propagation direction of the far-field rays.
    let dir = -unit_from_theta(theta_deg);
    let n = dir.perp();

    // Tangent points: boundary extremes along the perpendicular axis.
    let verts = boundary.vertices();
    let mut lo = 0;
    let mut hi = 0;
    for (k, v) in verts.iter().enumerate() {
        if v.dot(n) < verts[lo].dot(n) {
            lo = k;
        }
        if v.dot(n) > verts[hi].dot(n) {
            hi = k;
        }
    }

    // A graze ray through tangent point T, travelling along `dir`, crossed
    // the trajectory circle upstream at T − dir·s (s > 0).
    let upstream = |t: Vec2| -> f64 {
        // Solve |t − dir·s| = radius for the s > 0 root.
        let b = -2.0 * t.dot(dir);
        let c = t.norm_sqr() - radius * radius;
        let disc = b * b - 4.0 * c;
        debug_assert!(disc > 0.0, "graze ray misses the trajectory circle");
        let s = (-b + disc.sqrt()) / 2.0;
        theta_from_vec(t - dir * s)
    };

    // Decide which tangent feeds the left ear: the one whose boundary arc
    // (continuing along the bend) reaches the left ear without passing the
    // other tangent. Equivalently, the tangent point closer to the left ear
    // along the boundary.
    let left_idx = boundary.ear_index(Ear::Left);
    let arc_to_left = |idx: usize| -> f64 {
        boundary
            .arc_ccw(idx, left_idx)
            .min(boundary.arc_cw(idx, left_idx))
    };
    let (left_tangent, right_tangent) = if arc_to_left(lo) <= arc_to_left(hi) {
        (verts[lo], verts[hi])
    } else {
        (verts[hi], verts[lo])
    };

    CriticalAngles {
        theta_b: upstream(left_tangent),
        theta_c: theta_deg.rem_euclid(360.0),
        theta_d: upstream(right_tangent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::HeadParams;
    use crate::vec2::angle_diff_deg;

    fn boundary() -> HeadBoundary {
        HeadBoundary::new(HeadParams::average_adult(), 1024)
    }

    #[test]
    fn c_is_at_source_angle() {
        let b = boundary();
        for theta in [0.0, 45.0, 90.0, 170.0] {
            let ca = critical_angles(&b, theta, 0.4);
            assert!((ca.theta_c - theta).abs() < 1e-9);
        }
    }

    #[test]
    fn b_and_d_straddle_c() {
        let b = boundary();
        let ca = critical_angles(&b, 60.0, 0.4);
        // B and D should be on opposite sides of C, within ~45° for this
        // radius/head ratio.
        let db = angle_diff_deg(ca.theta_b, ca.theta_c);
        let dd = angle_diff_deg(ca.theta_d, ca.theta_c);
        assert!(db > 1.0 && db < 45.0, "B offset {db}");
        assert!(dd > 1.0 && dd < 45.0, "D offset {dd}");
        // Opposite sides: the B→D arc through C spans roughly db + dd.
        let span = angle_diff_deg(ca.theta_b, ca.theta_d);
        assert!((span - (db + dd)).abs() < 1.0, "B and D on the same side");
    }

    #[test]
    fn left_arc_is_toward_left_ear() {
        // For a frontal source (θ=0, C at front), the left-ear arc endpoint
        // B must sit at a *larger* polar angle than C (toward 90° = left).
        let b = boundary();
        let ca = critical_angles(&b, 0.0, 0.4);
        let b_off = (ca.theta_b - ca.theta_c).rem_euclid(360.0);
        assert!(
            b_off < 180.0,
            "B not on the left side: θ_b={} θ_c={}",
            ca.theta_b,
            ca.theta_c
        );
        let d_off = (ca.theta_d - ca.theta_c).rem_euclid(360.0);
        assert!(d_off > 180.0, "D not on the right side: θ_d={}", ca.theta_d);
    }

    #[test]
    fn membership_tests() {
        let b = boundary();
        let ca = critical_angles(&b, 45.0, 0.4);
        // C itself feeds both ears.
        assert!(ca.feeds_left(ca.theta_c));
        assert!(ca.feeds_right(ca.theta_c));
        // B feeds left only; D feeds right only.
        assert!(ca.feeds_left(ca.theta_b));
        assert!(!ca.feeds_right(ca.theta_b));
        assert!(ca.feeds_right(ca.theta_d));
        assert!(!ca.feeds_left(ca.theta_d));
        // A point far outside both arcs feeds neither.
        let far = ca.theta_c + 180.0;
        assert!(!ca.feeds_left(far));
        assert!(!ca.feeds_right(far));
    }

    #[test]
    fn wider_radius_narrows_arcs() {
        // Farther trajectories see the head under a smaller angle, so the
        // B–D span shrinks.
        let b = boundary();
        let near = critical_angles(&b, 90.0, 0.3);
        let far = critical_angles(&b, 90.0, 0.8);
        let span = |ca: &CriticalAngles| angle_diff_deg(ca.theta_b, ca.theta_d);
        assert!(span(&far) < span(&near));
    }

    #[test]
    #[should_panic(expected = "does not clear the head")]
    fn radius_inside_head_rejected() {
        critical_angles(&boundary(), 0.0, 0.05);
    }
}
