//! Far-field (plane-wave) wrap delays.
//!
//! A far-away source produces parallel rays (§3.2, Fig 7 of the paper). The
//! relative arrival time at each ear is measured against the wavefront
//! passing through the head centre: a lit ear receives the ray directly
//! (negative delay when the ear faces the source); a shadowed ear receives
//! the ray after it grazes a tangent point and wraps along the boundary.
//!
//! Implementation: a plane wave is the limit of a point source receding
//! along the source direction, so we reuse the point-source geodesic with a
//! source placed [`FAR_DISTANCE`] away and subtract the reference distance
//! to the wavefront through the origin.

use crate::diffraction::path_to_ear;
use crate::head::{Ear, HeadBoundary};
use crate::vec2::unit_from_theta;

/// Distance (metres) used to emulate an infinitely far source. At 100 m the
/// residual near-field curvature across a 20 cm head is below 0.1 mm —
/// negligible against the boundary discretization.
pub const FAR_DISTANCE: f64 = 100.0;

/// A plane-wave arrival at one ear.
#[derive(Debug, Clone, Copy)]
pub struct PlanePath {
    /// Extra path length in metres relative to the wavefront through the
    /// head centre (can be negative for the ear facing the source).
    pub excess: f64,
    /// Wrap angle along the boundary, radians (0 when lit).
    pub wrap_angle: f64,
    /// `true` when the ear is in line of sight of the source direction.
    pub direct: bool,
    /// Unit propagation direction at the ear.
    pub arrival_dir: crate::vec2::Vec2,
}

/// Computes the plane-wave arrival at `ear` for a far-field source at polar
/// angle `theta_deg` (paper convention: 0° front, 90° left, 180° back).
pub fn plane_path_to_ear(boundary: &HeadBoundary, theta_deg: f64, ear: Ear) -> PlanePath {
    let src = unit_from_theta(theta_deg) * FAR_DISTANCE;
    // uniq-analyzer: allow(panic-safety) — FAR_DISTANCE is 100 m; no head model approaches that radius
    let p = path_to_ear(boundary, src, ear).expect("far source cannot be inside the head");
    PlanePath {
        excess: p.length - FAR_DISTANCE,
        wrap_angle: p.wrap_angle,
        direct: p.direct,
        arrival_dir: p.arrival_dir,
    }
}

/// Far-field interaural path difference (right minus left) in metres for a
/// source at `theta_deg`.
///
/// ```
/// use uniq_geometry::{HeadBoundary, HeadParams};
/// use uniq_geometry::planewave::plane_itd_metres;
/// let b = HeadBoundary::new(HeadParams::average_adult(), 512);
/// assert!(plane_itd_metres(&b, 0.0).abs() < 1e-3);  // frontal: symmetric
/// assert!(plane_itd_metres(&b, 90.0) > 0.15);       // lateral: big ITD
/// ```
pub fn plane_itd_metres(boundary: &HeadBoundary, theta_deg: f64) -> f64 {
    let l = plane_path_to_ear(boundary, theta_deg, Ear::Left);
    let r = plane_path_to_ear(boundary, theta_deg, Ear::Right);
    r.excess - l.excess
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::HeadParams;

    fn boundary() -> HeadBoundary {
        HeadBoundary::new(HeadParams::average_adult(), 2048)
    }

    #[test]
    fn frontal_wave_symmetric() {
        let b = boundary();
        let l = plane_path_to_ear(&b, 0.0, Ear::Left);
        let r = plane_path_to_ear(&b, 0.0, Ear::Right);
        assert!((l.excess - r.excess).abs() < 1e-4);
        assert!((plane_itd_metres(&b, 0.0)).abs() < 1e-4);
    }

    #[test]
    fn lateral_wave_itd_near_woodworth() {
        // Source at 90° (left). For a spherical head Woodworth gives
        // ITD·c = R(φ + sin φ) with φ = π/2 → R(π/2 + 1). Our head is not a
        // sphere; just check the ITD is in the plausible human range
        // (0.6–0.9 ms → 0.2–0.31 m of path).
        let b = boundary();
        let itd = plane_itd_metres(&b, 90.0);
        assert!(itd > 0.15 && itd < 0.35, "lateral ITD {itd} m");
    }

    #[test]
    fn itd_sign_flips_across_midline() {
        let b = boundary();
        // Source on the left (θ = 60°): right ear farther → positive.
        assert!(plane_itd_metres(&b, 60.0) > 0.0);
        // Source on the right (θ = 300°): left ear farther → negative.
        assert!(plane_itd_metres(&b, 300.0) < 0.0);
    }

    #[test]
    fn near_ear_is_lit_far_ear_shadowed() {
        let b = boundary();
        let l = plane_path_to_ear(&b, 90.0, Ear::Left);
        let r = plane_path_to_ear(&b, 90.0, Ear::Right);
        assert!(l.direct);
        assert!(!r.direct);
        assert!(r.wrap_angle > 0.3);
        // The lit ear is ahead of the wavefront through the origin.
        assert!(l.excess < 0.0);
        assert!(r.excess > 0.0);
    }

    #[test]
    fn excess_bounded_by_head_size() {
        let b = boundary();
        let bound = b.params().max_radius() + b.perimeter() / 2.0;
        for k in 0..36 {
            let p = plane_path_to_ear(&b, k as f64 * 10.0, Ear::Left);
            assert!(p.excess.abs() < bound, "θ={} excess {}", k * 10, p.excess);
        }
    }

    #[test]
    fn itd_continuous_in_theta() {
        let b = boundary();
        let mut prev: Option<f64> = None;
        for k in 0..=180 {
            let itd = plane_itd_metres(&b, k as f64);
            if let Some(p) = prev {
                assert!((itd - p).abs() < 6e-3, "ITD jump at θ={k}");
            }
            prev = Some(itd);
        }
    }

    #[test]
    fn front_back_produce_distinct_wrap() {
        // The asymmetric head (b ≠ c) must give different shadow-side wrap
        // delays for mirrored front/back angles — the physical basis for
        // front/back disambiguation (§5.1).
        let b = boundary();
        let front = plane_path_to_ear(&b, 45.0, Ear::Right);
        let back = plane_path_to_ear(&b, 135.0, Ear::Right);
        assert!(
            (front.excess - back.excess).abs() > 1e-4,
            "front {} vs back {}",
            front.excess,
            back.excess
        );
    }
}
