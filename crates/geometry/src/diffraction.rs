//! Shortest wrap paths from a point source around the head to an ear.
//!
//! Physics (§2 of the paper): audible sound does not penetrate the head;
//! when the straight line from the phone to an ear is occluded, the signal
//! creeps around the convex boundary. The shortest such path — the
//! *taut-string geodesic* — is a straight tangent segment from the source
//! to the boundary followed by an arc along the boundary to the ear.
//!
//! On the discretized boundary this is computed exactly for the polygon:
//! the geodesic is `min` over the two source tangent vertices and the two
//! wrap directions of `|src→T| + arc(T→ear)`; non-geodesic combinations are
//! strictly longer (taut-string argument), so the minimum is safe.

use crate::head::{Ear, HeadBoundary};
use crate::vec2::Vec2;

/// A resolved propagation path from a source point to an ear.
#[derive(Debug, Clone, Copy)]
pub struct DiffractionPath {
    /// Total path length in metres (straight segment + wrap arc).
    pub length: f64,
    /// Boundary angle subtended by the wrap arc, radians (0 when direct).
    /// Used by the frequency-dependent shadow attenuation model.
    pub wrap_angle: f64,
    /// `true` when the ear is in line of sight of the source.
    pub direct: bool,
    /// Unit direction of propagation as the wave arrives at the ear
    /// (drives the angle-sensitive pinna model).
    pub arrival_dir: Vec2,
}

/// Computes the shortest diffraction path from `src` to the given ear.
///
/// ```
/// use uniq_geometry::{HeadBoundary, HeadParams, Ear, Vec2};
/// use uniq_geometry::diffraction::path_to_ear;
/// let b = HeadBoundary::new(HeadParams::average_adult(), 256);
/// let phone = Vec2::new(-0.4, 0.0);              // 40 cm to the left
/// let near = path_to_ear(&b, phone, Ear::Left).unwrap();
/// let far = path_to_ear(&b, phone, Ear::Right).unwrap();
/// assert!(near.direct && !far.direct);           // far ear is shadowed
/// assert!(far.length > near.length + 0.1);       // and its path wraps
/// ```
///
/// Returns `None` when `src` lies strictly inside the head (no physical
/// path; optimizers treat this as an infeasible candidate).
pub fn path_to_ear(boundary: &HeadBoundary, src: Vec2, ear: Ear) -> Option<DiffractionPath> {
    path_to_vertex(boundary, src, boundary.ear_index(ear))
}

/// Computes the shortest diffraction path from `src` to an arbitrary
/// boundary vertex (e.g. a test microphone taped to the cheek, Fig 5).
///
/// Returns `None` when `src` lies strictly inside the head.
pub fn path_to_vertex(
    boundary: &HeadBoundary,
    src: Vec2,
    target_idx: usize,
) -> Option<DiffractionPath> {
    if boundary.contains(src) {
        return None;
    }
    let n = boundary.len();
    let target_idx = target_idx % n;
    let target = boundary.vertices()[target_idx];

    if boundary.segment_clear(src, target) {
        let d = target - src;
        let len = d.norm();
        let arrival = if len > 0.0 {
            d / len
        } else {
            // Source coincides with the target: degenerate but harmless.
            Vec2::new(1.0, 0.0)
        };
        return Some(DiffractionPath {
            length: len,
            wrap_angle: 0.0,
            direct: true,
            arrival_dir: arrival,
        });
    }

    // Tangent vertices: extremes of the signed angle of each vertex as seen
    // from src (convex body subtends < π from outside, so the reference
    // direction toward the head centre gives a branch-safe angle).
    let to_center = (-src).normalized();
    let base = to_center.angle();
    let signed_angle = |v: Vec2| -> f64 {
        let ang = (v - src).angle() - base;
        // Wrap to (-π, π].
        let mut a = ang.rem_euclid(2.0 * std::f64::consts::PI);
        if a > std::f64::consts::PI {
            a -= 2.0 * std::f64::consts::PI;
        }
        a
    };
    let mut t_min = 0;
    let mut t_max = 0;
    let mut a_min = f64::INFINITY;
    let mut a_max = f64::NEG_INFINITY;
    for (k, &v) in boundary.vertices().iter().enumerate() {
        let a = signed_angle(v);
        if a < a_min {
            a_min = a;
            t_min = k;
        }
        if a > a_max {
            a_max = a;
            t_max = k;
        }
    }

    let mut best: Option<(f64, usize, bool)> = None; // (length, tangent idx, ccw)
    for &t_idx in &[t_min, t_max] {
        let t_vert = boundary.vertices()[t_idx];
        let seg = src.dist(t_vert);
        for ccw in [true, false] {
            let arc = if ccw {
                boundary.arc_ccw(t_idx, target_idx)
            } else {
                boundary.arc_cw(t_idx, target_idx)
            };
            let total = seg + arc;
            if best.is_none_or(|(l, _, _)| total < l) {
                best = Some((total, t_idx, ccw));
            }
        }
    }
    // Both tangent candidates are evaluated unconditionally above, so
    // `best` is necessarily `Some`; `?` keeps this path panic-free even
    // if the loop were ever restructured (a panic here would kill a
    // whole personalization batch).
    let (length, t_idx, ccw) = best?;

    // Arrival direction: boundary tangent at the target, oriented along the
    // traversal direction of the final wrap step.
    let prev = boundary.vertices()[(target_idx + n - 1) % n];
    let next = boundary.vertices()[(target_idx + 1) % n];
    let arrival_dir = if ccw {
        (target - prev).normalized()
    } else {
        (target - next).normalized()
    };

    // Wrap angle: total turning of the boundary tangent along the arc.
    let wrap_angle = turning_angle(boundary, t_idx, target_idx, ccw);

    Some(DiffractionPath {
        length,
        wrap_angle,
        direct: false,
        arrival_dir,
    })
}

/// Convenience: paths to both ears as `[left, right]`.
pub fn paths_to_ears(boundary: &HeadBoundary, src: Vec2) -> Option<[DiffractionPath; 2]> {
    Some([
        path_to_ear(boundary, src, Ear::Left)?,
        path_to_ear(boundary, src, Ear::Right)?,
    ])
}

/// Sum of exterior turning angles along the boundary from vertex `i` to
/// vertex `j` in the given direction (radians, non-negative for the convex
/// boundary).
fn turning_angle(boundary: &HeadBoundary, i: usize, j: usize, ccw: bool) -> f64 {
    let n = boundary.len();
    let verts = boundary.vertices();
    let step = |k: usize| -> usize {
        if ccw {
            (k + 1) % n
        } else {
            (k + n - 1) % n
        }
    };
    let mut total = 0.0;
    let mut k = i;
    let mut prev_dir: Option<Vec2> = None;
    // Bounded walk (at most n steps) from i to j.
    for _ in 0..n {
        if k == j {
            break;
        }
        let nk = step(k);
        let dir = (verts[nk] - verts[k]).normalized();
        if let Some(p) = prev_dir {
            let cross = p.cross(dir).clamp(-1.0, 1.0);
            total += cross.asin().abs();
        }
        prev_dir = Some(dir);
        k = nk;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::HeadParams;
    use crate::vec2::unit_from_theta;

    fn boundary() -> HeadBoundary {
        HeadBoundary::new(HeadParams::average_adult(), 1024)
    }

    #[test]
    fn near_ear_is_direct() {
        let b = boundary();
        // Source on the left of the head, left ear visible.
        let src = Vec2::new(-0.4, 0.0);
        let p = path_to_ear(&b, src, Ear::Left).unwrap();
        assert!(p.direct);
        assert!((p.length - (0.4 - 0.075)).abs() < 1e-6);
        assert_eq!(p.wrap_angle, 0.0);
    }

    #[test]
    fn far_ear_is_wrapped() {
        let b = boundary();
        let src = Vec2::new(-0.4, 0.0);
        let p = path_to_ear(&b, src, Ear::Right).unwrap();
        assert!(!p.direct);
        assert!(p.wrap_angle > 0.5, "wrap angle {}", p.wrap_angle);
        // Must exceed the Euclidean distance (0.475) but be shorter than
        // going around via straight + half perimeter.
        let euclid = 0.4 + 0.075;
        assert!(p.length > euclid);
        assert!(p.length < euclid + 0.3);
    }

    #[test]
    fn wrap_length_exceeds_euclid_always() {
        let b = boundary();
        for k in 0..36 {
            let theta = k as f64 * 10.0;
            let src = unit_from_theta(theta) * 0.35;
            for ear in Ear::BOTH {
                let p = path_to_ear(&b, src, ear).unwrap();
                let euclid = src.dist(b.params().ear(ear));
                assert!(
                    p.length >= euclid - 1e-9,
                    "θ={theta} ear={ear:?}: {} < {euclid}",
                    p.length
                );
            }
        }
    }

    #[test]
    fn frontal_source_nearly_symmetric() {
        let b = boundary();
        let src = Vec2::new(0.0, 0.5); // straight ahead
        let l = path_to_ear(&b, src, Ear::Left).unwrap();
        let r = path_to_ear(&b, src, Ear::Right).unwrap();
        assert!((l.length - r.length).abs() < 1e-4);
    }

    #[test]
    fn source_inside_head_rejected() {
        let b = boundary();
        assert!(path_to_ear(&b, Vec2::ZERO, Ear::Left).is_none());
        assert!(paths_to_ears(&b, Vec2::new(0.01, 0.01)).is_none());
    }

    #[test]
    fn tdoa_monotone_with_angle() {
        // As the source sweeps from front (0°) toward the left ear (90°),
        // the left-right path difference grows.
        let b = boundary();
        let mut prev = f64::NEG_INFINITY;
        for theta in [0.0, 30.0, 60.0, 90.0] {
            let src = unit_from_theta(theta) * 0.4;
            let [l, r] = paths_to_ears(&b, src).unwrap();
            let delta = r.length - l.length;
            assert!(
                delta > prev - 1e-9,
                "TDoA not monotone at θ={theta}: {delta} <= {prev}"
            );
            prev = delta;
        }
    }

    #[test]
    fn shadowed_path_matches_tangent_plus_arc_for_circle() {
        // For a circular head (a = b = c = R) the wrap geodesic has the
        // closed form √(d² − R²) + R·(φ_wrap). Validate against it.
        let r0 = 0.08;
        let b = HeadBoundary::new(HeadParams::new(r0, r0, r0), 4096);
        let d = 0.5;
        let src = Vec2::new(d, 0.0); // at the right ear side
        let p = path_to_ear(&b, src, Ear::Left).unwrap();
        // Tangent length from src to circle.
        let tan_len = (d * d - r0 * r0).sqrt();
        // Angle from src-tangent point to the left ear along the circle:
        // tangent point at angle β from +x where cos β = R/d; ear at π.
        let beta = (r0 / d).acos();
        let arc = r0 * (std::f64::consts::PI - beta);
        let expect = tan_len + arc;
        assert!(
            (p.length - expect).abs() < 2e-4,
            "got {}, closed form {expect}",
            p.length
        );
        // Wrap angle should equal the arc's central angle for a circle.
        assert!((p.wrap_angle - (std::f64::consts::PI - beta)).abs() < 0.02);
    }

    #[test]
    fn arrival_direction_is_unit() {
        let b = boundary();
        for theta in [0.0, 45.0, 135.0, 225.0, 315.0] {
            let src = unit_from_theta(theta) * 0.3;
            for ear in Ear::BOTH {
                let p = path_to_ear(&b, src, ear).unwrap();
                assert!((p.arrival_dir.norm() - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn path_to_cheek_vertex() {
        let b = boundary();
        // Speaker on the right; microphone taped a quarter of the way along
        // the front-left face (the Fig 5 setup).
        let src = Vec2::new(0.5, 0.1);
        let mic_idx = b.len() * 3 / 8; // front-left region
        let p = path_to_vertex(&b, src, mic_idx).unwrap();
        assert!(p.length > 0.0);
        // Must never beat the straight-line distance.
        let euclid = src.dist(b.vertices()[mic_idx]);
        assert!(p.length >= euclid - 1e-9);
    }

    #[test]
    fn continuity_across_shadow_edge() {
        // Path length should vary continuously as the source crosses from
        // lit to shadowed regions.
        let b = boundary();
        let mut last: Option<f64> = None;
        for k in 0..=200 {
            let theta = k as f64 * 180.0 / 200.0;
            let src = unit_from_theta(theta) * 0.4;
            let p = path_to_ear(&b, src, Ear::Right).unwrap();
            if let Some(prev) = last {
                assert!(
                    (p.length - prev).abs() < 5e-3,
                    "jump at θ={theta}: {prev} -> {}",
                    p.length
                );
            }
            last = Some(p.length);
        }
    }
}
