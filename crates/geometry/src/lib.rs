//! # uniq-geometry
//!
//! Head geometry and acoustic diffraction path models for the UNIQ HRTF
//! personalization system.
//!
//! The paper (§4.1) models the head as **two half-ellipses** joined at the
//! ear line — semi-axes `a` (lateral, through the ears), `b` (front/face
//! depth) and `c` (rear/skull depth) — because heads are not front/back
//! symmetric. Audible sound does not penetrate the head; it *diffracts*
//! (wraps) around the convex boundary (§2, Fig 5). This crate provides:
//!
//! * [`vec2`] — plane vectors and the head-centric coordinate frame.
//! * [`head`] — the three-parameter head model and its discretized convex
//!   boundary with cumulative arc lengths.
//! * [`diffraction`] — shortest wrap paths from a *point source* (the
//!   phone) to either ear: Euclidean when line-of-sight, tangent + boundary
//!   arc when the head occludes.
//! * [`planewave`] — the far-field analogue: wrap delays for parallel rays
//!   from a distant source (used by near-far conversion and ground truth).
//! * [`critical`] — the critical rays `B`, `C`, `D` of §4.3 that decide
//!   which near-field measurements contribute to a far-field HRTF.
//! * [`convex`] — generic convex-polygon wrap paths (shared machinery).
//! * [`elevation`] — the §7 "3D HRTF" extension prototype: ellipsoid
//!   heads, plane-section geodesics, elevation-dependent ITDs and the
//!   cone of confusion.
//!
//! ## Coordinate frame
//!
//! The head centre is the origin. The **x axis runs through the ears**
//! (left ear at `(-a, 0)`, right ear at `(+a, 0)`); **+y points out of the
//! nose** (front). The paper's polar angle `θ ∈ [0°, 180°]` sweeps the left
//! side of the head: `θ = 0°` is straight ahead, `θ = 90°` is the left ear
//! direction, `θ = 180°` is straight behind. [`vec2::unit_from_theta`]
//! converts between the two.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convex;
pub mod critical;
pub mod diffraction;
pub mod elevation;
pub mod head;
pub mod planewave;
pub mod vec2;

pub use head::{Ear, HeadBoundary, HeadParams};
pub use vec2::Vec2;
