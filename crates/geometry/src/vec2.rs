//! Plane vectors and the head-centric polar convention.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 2-D vector / point with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Lateral component (positive toward the right ear).
    pub x: f64,
    /// Frontal component (positive out of the nose).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    /// Positive when `o` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec2) -> f64 {
        (self - o).norm()
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    /// Panics for the zero vector.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Rotates counter-clockwise by `angle` radians.
    #[inline]
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Perpendicular vector (counter-clockwise quarter turn).
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Standard mathematical angle in radians (`atan2(y, x)`).
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Linear interpolation toward `o`.
    #[inline]
    pub fn lerp(self, o: Vec2, t: f64) -> Vec2 {
        self + (o - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, o: Vec2) {
        *self = *self + o;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, k: f64) -> Vec2 {
        Vec2::new(self.x / k, self.y / k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// Unit vector pointing *toward* the paper's polar angle `θ` (degrees).
///
/// `θ = 0°` is straight ahead (+y), `θ = 90°` is the left-ear direction
/// (−x), `θ = 180°` is straight behind (−y). Angles outside `[0, 360)` wrap.
#[inline]
pub fn unit_from_theta(theta_deg: f64) -> Vec2 {
    let rad = theta_deg.to_radians();
    Vec2::new(-rad.sin(), rad.cos())
}

/// Inverse of [`unit_from_theta`]: the paper's polar angle (degrees, in
/// `[0, 360)`) of a direction/point as seen from the head centre.
///
/// # Panics
/// Panics for the zero vector.
#[inline]
pub fn theta_from_vec(v: Vec2) -> f64 {
    assert!(v.norm() > 0.0, "theta of zero vector undefined");
    let deg = (-v.x).atan2(v.y).to_degrees();
    deg.rem_euclid(360.0)
}

/// Smallest absolute angular difference between two angles in degrees,
/// result in `[0, 180]`.
#[inline]
pub fn angle_diff_deg(a: f64, b: f64) -> f64 {
    let d = (a - b).rem_euclid(360.0);
    d.min(360.0 - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn norm_and_dist() {
        assert_eq!(Vec2::new(3.0, 4.0).norm(), 5.0);
        assert_eq!(Vec2::new(1.0, 1.0).dist(Vec2::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn rotation_quarter_turn() {
        let r = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((r.x).abs() < EPS && (r.y - 1.0).abs() < EPS);
        assert_eq!(Vec2::new(1.0, 0.0).perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn theta_convention() {
        // 0° = front (+y)
        let f = unit_from_theta(0.0);
        assert!((f.x).abs() < EPS && (f.y - 1.0).abs() < EPS);
        // 90° = left (−x)
        let l = unit_from_theta(90.0);
        assert!((l.x + 1.0).abs() < EPS && l.y.abs() < EPS);
        // 180° = back (−y)
        let b = unit_from_theta(180.0);
        assert!(b.x.abs() < EPS && (b.y + 1.0).abs() < EPS);
        // 270° = right (+x)
        let r = unit_from_theta(270.0);
        assert!((r.x - 1.0).abs() < EPS && r.y.abs() < EPS);
    }

    #[test]
    fn theta_roundtrip() {
        for deg in [0.0, 17.0, 90.0, 133.0, 180.0, 260.0, 359.0] {
            let v = unit_from_theta(deg);
            assert!(
                (theta_from_vec(v) - deg).abs() < 1e-9,
                "roundtrip failed at {deg}"
            );
        }
    }

    #[test]
    fn angle_diff_wraps() {
        assert_eq!(angle_diff_deg(10.0, 350.0), 20.0);
        assert_eq!(angle_diff_deg(350.0, 10.0), 20.0);
        assert_eq!(angle_diff_deg(0.0, 180.0), 180.0);
        assert_eq!(angle_diff_deg(90.0, 90.0), 0.0);
    }

    #[test]
    fn lerp_midpoint() {
        let m = Vec2::new(0.0, 0.0).lerp(Vec2::new(2.0, 4.0), 0.5);
        assert_eq!(m, Vec2::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalize_zero_panics() {
        Vec2::ZERO.normalized();
    }
}
